#![warn(missing_docs)]
//! # sdo-geom — geometry engine
//!
//! The geometry substrate for the table-function spatial processing
//! stack. It reimplements, from scratch, the parts of Oracle Spatial's
//! geometry layer that the ICDE 2003 paper depends on:
//!
//! * the [`SdoGeometry`](sdo::SdoGeometry) object model (`gtype` +
//!   `elem_info` + `ordinates` arrays) and its conversion to typed
//!   geometries,
//! * 2-dimensional simple features: [`Point`], [`LineString`],
//!   [`Polygon`] (with holes) and their `Multi*` aggregates,
//! * minimum bounding rectangles ([`Rect`]) with the MBR algebra used by
//!   R-trees (union, intersection, `mindist`, distance expansion),
//! * exact geometry–geometry predicates (the paper's *secondary
//!   filter*): `ANYINTERACT`, containment masks, and within-distance,
//! * supporting computational geometry: robust-enough orientation
//!   tests, segment intersection, point-in-polygon, distance, area,
//!   centroid, convex hull and Douglas–Peucker simplification,
//! * WKT parsing/serialization for interchange and test fixtures.
//!
//! Everything operates on `f64` coordinates with a small absolute
//! tolerance ([`EPS`]) for degeneracy decisions, which matches the
//! fixed-precision behaviour of the original system closely enough for
//! the paper's workloads (GIS data in geographic or planar coordinates).

pub mod algorithms;
pub mod codec;
pub mod error;
pub mod geometry;
pub mod linestring;
pub mod multi;
pub mod point;
pub mod polygon;
pub mod prepared;
pub mod rect;
pub mod relate;
pub mod sdo;
pub mod segment;
pub mod simd;
pub mod validate;
pub mod wkt;

pub use error::GeomError;
pub use geometry::{Geometry, TopoDim};
pub use linestring::LineString;
pub use multi::{MultiLineString, MultiPoint, MultiPolygon};
pub use point::Point;
pub use polygon::{Polygon, Ring};
pub use prepared::{PreparedGeometry, SegIndex};
pub use rect::{axis_mindist, Rect};
pub use relate::{covered_by, distance, intersects, relate, within_distance, RelateMask};
pub use sdo::SdoGeometry;
pub use segment::Segment;

/// Absolute tolerance used for degeneracy decisions (collinearity,
/// coincident points, zero-length segments).
///
/// The paper's datasets are GIS coordinates with ~1e-6 degree precision;
/// 1e-9 is far below any meaningful coordinate difference while
/// absorbing `f64` rounding in the predicate arithmetic.
pub const EPS: f64 = 1e-9;

/// Returns true when two floating point values are equal within [`EPS`].
#[inline]
pub fn feq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}
