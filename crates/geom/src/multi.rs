//! Multi-element geometry aggregates.

use crate::error::GeomError;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// A collection of points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiPoint {
    points: Vec<Point>,
}

impl MultiPoint {
    /// Build from at least one finite point.
    pub fn new(points: Vec<Point>) -> Result<Self, GeomError> {
        if points.is_empty() {
            return Err(GeomError::TooFewPoints { expected: 1, got: 0 });
        }
        if points.iter().any(|p| !p.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        Ok(MultiPoint { points })
    }

    /// The member points.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Bounding rectangle over every member.
    pub fn bbox(&self) -> Rect {
        Rect::from_points(self.points.iter())
    }
}

/// A collection of line strings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiLineString {
    lines: Vec<LineString>,
}

impl MultiLineString {
    /// Build from at least one polyline.
    pub fn new(lines: Vec<LineString>) -> Result<Self, GeomError> {
        if lines.is_empty() {
            return Err(GeomError::TooFewPoints { expected: 1, got: 0 });
        }
        Ok(MultiLineString { lines })
    }

    /// The member polylines.
    #[inline]
    pub fn lines(&self) -> &[LineString] {
        &self.lines
    }

    /// Total length across members.
    pub fn length(&self) -> f64 {
        self.lines.iter().map(|l| l.length()).sum()
    }

    /// Bounding rectangle over every member.
    pub fn bbox(&self) -> Rect {
        self.lines.iter().fold(Rect::EMPTY, |acc, l| acc.union(&l.bbox()))
    }
}

/// A collection of polygons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiPolygon {
    polygons: Vec<Polygon>,
}

impl MultiPolygon {
    /// Build from at least one polygon.
    pub fn new(polygons: Vec<Polygon>) -> Result<Self, GeomError> {
        if polygons.is_empty() {
            return Err(GeomError::TooFewPoints { expected: 1, got: 0 });
        }
        Ok(MultiPolygon { polygons })
    }

    /// The member polygons.
    #[inline]
    pub fn polygons(&self) -> &[Polygon] {
        &self.polygons
    }

    /// Total area across members.
    pub fn area(&self) -> f64 {
        self.polygons.iter().map(|p| p.area()).sum()
    }

    /// Bounding rectangle over every member.
    pub fn bbox(&self) -> Rect {
        self.polygons.iter().fold(Rect::EMPTY, |acc, p| acc.union(&p.bbox()))
    }

    /// True when any member covers `p`.
    pub fn contains_point(&self, p: &Point) -> bool {
        self.polygons.iter().any(|poly| poly.contains_point(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Ring;

    fn poly(pts: &[(f64, f64)]) -> Polygon {
        Polygon::from_exterior(
            Ring::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap(),
        )
    }

    #[test]
    fn multipoint_bbox() {
        let mp = MultiPoint::new(vec![Point::new(0.0, 0.0), Point::new(2.0, 3.0)]).unwrap();
        assert_eq!(mp.bbox(), Rect::new(0.0, 0.0, 2.0, 3.0));
        assert!(MultiPoint::new(vec![]).is_err());
    }

    #[test]
    fn multiline_length() {
        let l1 = LineString::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).unwrap();
        let l2 = LineString::new(vec![Point::new(0.0, 1.0), Point::new(0.0, 3.0)]).unwrap();
        let ml = MultiLineString::new(vec![l1, l2]).unwrap();
        assert_eq!(ml.length(), 3.0);
        assert_eq!(ml.bbox(), Rect::new(0.0, 0.0, 1.0, 3.0));
    }

    #[test]
    fn multipolygon_area_and_containment() {
        let a = poly(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        let b = poly(&[(5.0, 5.0), (7.0, 5.0), (7.0, 7.0), (5.0, 7.0)]);
        let mp = MultiPolygon::new(vec![a, b]).unwrap();
        assert_eq!(mp.area(), 1.0 + 4.0);
        assert!(mp.contains_point(&Point::new(6.0, 6.0)));
        assert!(mp.contains_point(&Point::new(0.5, 0.5)));
        assert!(!mp.contains_point(&Point::new(3.0, 3.0)));
    }
}
