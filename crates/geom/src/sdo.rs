//! The `SDO_GEOMETRY` object model.
//!
//! Oracle Spatial stores every geometry as an object with three parts:
//!
//! * `SDO_GTYPE` — a `dltt` code: `d` is the dimensionality (always 2
//!   here) and `tt` the type (01 point, 02 line, 03 polygon, 05
//!   multipoint, 06 multiline, 07 multipolygon),
//! * `SDO_ELEM_INFO` — triplets `(starting_offset, etype,
//!   interpretation)` describing each element; offsets are **1-based**
//!   into the ordinate array, exactly as in Oracle,
//! * `SDO_ORDINATES` — the flat `x1, y1, x2, y2, ...` coordinate array.
//!
//! Supported etypes: `1` (point cluster), `2` (line string of straight
//! segments), `1003`/`2003` (exterior/interior polygon ring) with
//! interpretation `1` (vertex-connected) or `3` (axis-aligned rectangle
//! given by two corner ordinate pairs).

use crate::error::GeomError;
use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::multi::{MultiLineString, MultiPoint, MultiPolygon};
use crate::point::Point;
use crate::polygon::{Polygon, Ring};
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// `SDO_GTYPE` `tt` digits: point.
pub const TT_POINT: u32 = 1;
/// `SDO_GTYPE` `tt` digits: line string.
pub const TT_LINE: u32 = 2;
/// `SDO_GTYPE` `tt` digits: polygon.
pub const TT_POLYGON: u32 = 3;
/// `SDO_GTYPE` `tt` digits: multipoint.
pub const TT_MULTIPOINT: u32 = 5;
/// `SDO_GTYPE` `tt` digits: multiline.
pub const TT_MULTILINE: u32 = 6;
/// `SDO_GTYPE` `tt` digits: multipolygon.
pub const TT_MULTIPOLYGON: u32 = 7;

/// `SDO_ELEM_INFO` etype: point cluster.
pub const ETYPE_POINT: u32 = 1;
/// `SDO_ELEM_INFO` etype: line string.
pub const ETYPE_LINE: u32 = 2;
/// `SDO_ELEM_INFO` etype: polygon exterior ring.
pub const ETYPE_EXTERIOR_RING: u32 = 1003;
/// `SDO_ELEM_INFO` etype: polygon interior (hole) ring.
pub const ETYPE_INTERIOR_RING: u32 = 2003;

/// Interpretation: vertex-connected straight segments.
pub const INTERP_STRAIGHT: u32 = 1;
/// Interpretation: axis-aligned rectangle given by two corners.
pub const INTERP_RECTANGLE: u32 = 3;

/// An Oracle-style encoded geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SdoGeometry {
    /// `dltt` type code, e.g. `2003` for a 2-D polygon.
    pub gtype: u32,
    /// `(offset, etype, interpretation)` triplets, flattened.
    pub elem_info: Vec<u32>,
    /// Flat ordinate array `x1, y1, x2, y2, ...`.
    pub ordinates: Vec<f64>,
}

impl SdoGeometry {
    /// Dimensionality encoded in the gtype (`d` digit).
    #[inline]
    pub fn dims(&self) -> u32 {
        self.gtype / 1000
    }

    /// Geometry-type code (`tt` digits).
    #[inline]
    pub fn type_code(&self) -> u32 {
        self.gtype % 100
    }

    /// Number of `(offset, etype, interpretation)` triplets.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.elem_info.len() / 3
    }

    /// Encode a typed geometry.
    pub fn from_geometry(g: &Geometry) -> SdoGeometry {
        let mut enc = Encoder::default();
        match g {
            Geometry::Point(p) => {
                enc.element(ETYPE_POINT, 1);
                enc.push_point(p);
                enc.finish(TT_POINT)
            }
            Geometry::MultiPoint(m) => {
                // Oracle encodes a point cluster as one element whose
                // interpretation is the point count.
                enc.element(ETYPE_POINT, m.points().len() as u32);
                for p in m.points() {
                    enc.push_point(p);
                }
                enc.finish(TT_MULTIPOINT)
            }
            Geometry::LineString(l) => {
                enc.element(ETYPE_LINE, INTERP_STRAIGHT);
                enc.push_points(l.points());
                enc.finish(TT_LINE)
            }
            Geometry::MultiLineString(m) => {
                for l in m.lines() {
                    enc.element(ETYPE_LINE, INTERP_STRAIGHT);
                    enc.push_points(l.points());
                }
                enc.finish(TT_MULTILINE)
            }
            Geometry::Polygon(p) => {
                enc.push_polygon(p);
                enc.finish(TT_POLYGON)
            }
            Geometry::MultiPolygon(m) => {
                for p in m.polygons() {
                    enc.push_polygon(p);
                }
                enc.finish(TT_MULTIPOLYGON)
            }
        }
    }

    /// Convenience: an axis-aligned rectangle polygon using Oracle's
    /// optimized two-corner encoding (etype 1003, interpretation 3).
    pub fn rectangle(r: &Rect) -> SdoGeometry {
        SdoGeometry {
            gtype: 2000 + TT_POLYGON,
            elem_info: vec![1, ETYPE_EXTERIOR_RING, INTERP_RECTANGLE],
            ordinates: vec![r.min_x, r.min_y, r.max_x, r.max_y],
        }
    }

    /// Decode into a typed geometry, validating the encoding.
    pub fn to_geometry(&self) -> Result<Geometry, GeomError> {
        if self.dims() != 2 {
            return Err(GeomError::InvalidSdo(format!(
                "only 2-D geometries supported, gtype={}",
                self.gtype
            )));
        }
        if !self.elem_info.len().is_multiple_of(3) || self.elem_info.is_empty() {
            return Err(GeomError::InvalidSdo(
                "elem_info length must be a positive multiple of 3".into(),
            ));
        }
        if !self.ordinates.len().is_multiple_of(2) {
            return Err(GeomError::InvalidSdo("odd ordinate count".into()));
        }
        if self.ordinates.iter().any(|v| !v.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        let elems = self.decode_elements()?;
        self.assemble(elems)
    }

    /// Split the ordinate array into per-element point runs.
    fn decode_elements(&self) -> Result<Vec<Element>, GeomError> {
        let n = self.num_elements();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let offset = self.elem_info[3 * i] as usize;
            let etype = self.elem_info[3 * i + 1];
            let interp = self.elem_info[3 * i + 2];
            if offset < 1 || offset > self.ordinates.len() || offset.is_multiple_of(2) {
                return Err(GeomError::InvalidSdo(format!(
                    "element {i}: bad starting offset {offset}"
                )));
            }
            let end = if i + 1 < n {
                let next = self.elem_info[3 * (i + 1)] as usize;
                if next <= offset {
                    return Err(GeomError::InvalidSdo(format!(
                        "element {}: offsets not increasing ({offset} -> {next})",
                        i + 1
                    )));
                }
                next - 1
            } else {
                self.ordinates.len()
            };
            let ords = &self.ordinates[offset - 1..end];
            let points: Vec<Point> = ords.chunks_exact(2).map(|c| Point::new(c[0], c[1])).collect();
            out.push(Element { etype, interp, points });
        }
        Ok(out)
    }

    fn assemble(&self, elems: Vec<Element>) -> Result<Geometry, GeomError> {
        match self.type_code() {
            TT_POINT => {
                let e = single(&elems, ETYPE_POINT)?;
                let p = e.points.first().ok_or_else(|| {
                    GeomError::InvalidSdo("point element with no ordinates".into())
                })?;
                Ok(Geometry::Point(*p))
            }
            TT_MULTIPOINT => {
                let mut pts = Vec::new();
                for e in &elems {
                    if e.etype != ETYPE_POINT {
                        return Err(GeomError::InvalidSdo(
                            "multipoint may only contain point elements".into(),
                        ));
                    }
                    pts.extend_from_slice(&e.points);
                }
                Ok(Geometry::MultiPoint(MultiPoint::new(pts)?))
            }
            TT_LINE => {
                let e = single(&elems, ETYPE_LINE)?;
                Ok(Geometry::LineString(LineString::new(e.points.clone())?))
            }
            TT_MULTILINE => {
                let mut lines = Vec::new();
                for e in &elems {
                    if e.etype != ETYPE_LINE {
                        return Err(GeomError::InvalidSdo(
                            "multiline may only contain line elements".into(),
                        ));
                    }
                    lines.push(LineString::new(e.points.clone())?);
                }
                Ok(Geometry::MultiLineString(MultiLineString::new(lines)?))
            }
            TT_POLYGON | TT_MULTIPOLYGON => {
                let polys = assemble_polygons(&elems)?;
                if self.type_code() == TT_POLYGON {
                    if polys.len() != 1 {
                        return Err(GeomError::InvalidSdo(format!(
                            "polygon gtype with {} exterior rings",
                            polys.len()
                        )));
                    }
                    Ok(Geometry::Polygon(polys.into_iter().next().unwrap()))
                } else {
                    Ok(Geometry::MultiPolygon(MultiPolygon::new(polys)?))
                }
            }
            tt => Err(GeomError::InvalidSdo(format!("unsupported gtype tt={tt}"))),
        }
    }
}

/// Incremental builder for the `elem_info` / `ordinates` arrays.
#[derive(Default)]
struct Encoder {
    elem_info: Vec<u32>,
    ordinates: Vec<f64>,
}

impl Encoder {
    /// Begin a new element at the current (1-based) ordinate offset.
    fn element(&mut self, etype: u32, interp: u32) {
        self.elem_info.extend_from_slice(&[self.ordinates.len() as u32 + 1, etype, interp]);
    }

    fn push_point(&mut self, p: &Point) {
        self.ordinates.push(p.x);
        self.ordinates.push(p.y);
    }

    fn push_points(&mut self, pts: &[Point]) {
        for p in pts {
            self.push_point(p);
        }
    }

    /// Encode a polygon's rings; the ring closure vertex is implicit in
    /// our model, so rings are written open (Oracle writes them closed,
    /// but both forms decode identically through [`Ring::new`]).
    fn push_polygon(&mut self, p: &Polygon) {
        self.element(ETYPE_EXTERIOR_RING, INTERP_STRAIGHT);
        self.push_points(p.exterior().points());
        for h in p.holes() {
            self.element(ETYPE_INTERIOR_RING, INTERP_STRAIGHT);
            self.push_points(h.points());
        }
    }

    fn finish(self, tt: u32) -> SdoGeometry {
        SdoGeometry { gtype: 2000 + tt, elem_info: self.elem_info, ordinates: self.ordinates }
    }
}

struct Element {
    etype: u32,
    interp: u32,
    points: Vec<Point>,
}

impl Element {
    /// Ring vertices, expanding the two-corner rectangle interpretation.
    fn ring_points(&self) -> Result<Vec<Point>, GeomError> {
        if self.interp == INTERP_RECTANGLE {
            if self.points.len() != 2 {
                return Err(GeomError::InvalidSdo(
                    "rectangle interpretation requires exactly 2 corner points".into(),
                ));
            }
            let r = Rect::from_corners(self.points[0], self.points[1]);
            Ok(r.corners().to_vec())
        } else {
            Ok(self.points.clone())
        }
    }
}

fn single(elems: &[Element], want: u32) -> Result<&Element, GeomError> {
    if elems.len() != 1 || elems[0].etype != want {
        return Err(GeomError::InvalidSdo(format!("expected a single element of etype {want}")));
    }
    Ok(&elems[0])
}

/// Group exterior rings with the interior rings that follow them.
fn assemble_polygons(elems: &[Element]) -> Result<Vec<Polygon>, GeomError> {
    let mut polys: Vec<Polygon> = Vec::new();
    let mut current: Option<(Ring, Vec<Ring>)> = None;
    for e in elems {
        match e.etype {
            ETYPE_EXTERIOR_RING => {
                if let Some((ext, holes)) = current.take() {
                    polys.push(Polygon::new(ext, holes));
                }
                current = Some((Ring::new(e.ring_points()?)?, Vec::new()));
            }
            ETYPE_INTERIOR_RING => match current.as_mut() {
                Some((_, holes)) => holes.push(Ring::new(e.ring_points()?)?),
                None => {
                    return Err(GeomError::InvalidSdo(
                        "interior ring before any exterior ring".into(),
                    ))
                }
            },
            other => {
                return Err(GeomError::InvalidSdo(format!(
                    "unexpected etype {other} in polygon geometry"
                )))
            }
        }
    }
    if let Some((ext, holes)) = current.take() {
        polys.push(Polygon::new(ext, holes));
    }
    if polys.is_empty() {
        return Err(GeomError::InvalidSdo("polygon geometry with no rings".into()));
    }
    Ok(polys)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn roundtrip(g: Geometry) {
        let sdo = SdoGeometry::from_geometry(&g);
        let back = sdo.to_geometry().unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn point_roundtrip() {
        let g = Geometry::Point(pt(1.5, -2.5));
        let sdo = SdoGeometry::from_geometry(&g);
        assert_eq!(sdo.gtype, 2001);
        assert_eq!(sdo.elem_info, vec![1, 1, 1]);
        assert_eq!(sdo.ordinates, vec![1.5, -2.5]);
        roundtrip(g);
    }

    #[test]
    fn line_roundtrip() {
        let g = Geometry::LineString(
            LineString::new(vec![pt(0.0, 0.0), pt(1.0, 1.0), pt(2.0, 0.0)]).unwrap(),
        );
        let sdo = SdoGeometry::from_geometry(&g);
        assert_eq!(sdo.gtype, 2002);
        assert_eq!(sdo.ordinates.len(), 6);
        roundtrip(g);
    }

    #[test]
    fn polygon_with_hole_roundtrip() {
        let outer = Ring::new(Rect::new(0.0, 0.0, 10.0, 10.0).corners().to_vec()).unwrap();
        let hole = Ring::new(Rect::new(4.0, 4.0, 6.0, 6.0).corners().to_vec()).unwrap();
        let g = Geometry::Polygon(Polygon::new(outer, vec![hole]));
        let sdo = SdoGeometry::from_geometry(&g);
        assert_eq!(sdo.gtype, 2003);
        assert_eq!(sdo.num_elements(), 2);
        assert_eq!(sdo.elem_info[1], ETYPE_EXTERIOR_RING);
        assert_eq!(sdo.elem_info[4], ETYPE_INTERIOR_RING);
        // second element starts after the 4 outer vertices: offset 9
        assert_eq!(sdo.elem_info[3], 9);
        roundtrip(g);
    }

    #[test]
    fn multipolygon_roundtrip() {
        let g = Geometry::MultiPolygon(
            MultiPolygon::new(vec![
                Polygon::from_rect(&Rect::new(0.0, 0.0, 1.0, 1.0)),
                Polygon::from_rect(&Rect::new(5.0, 5.0, 7.0, 7.0)),
            ])
            .unwrap(),
        );
        let sdo = SdoGeometry::from_geometry(&g);
        assert_eq!(sdo.gtype, 2007);
        assert_eq!(sdo.num_elements(), 2);
        roundtrip(g);
    }

    #[test]
    fn multipoint_roundtrip() {
        let g = Geometry::MultiPoint(MultiPoint::new(vec![pt(1.0, 2.0), pt(3.0, 4.0)]).unwrap());
        let sdo = SdoGeometry::from_geometry(&g);
        assert_eq!(sdo.gtype, 2005);
        assert_eq!(sdo.elem_info, vec![1, 1, 2]);
        roundtrip(g);
    }

    #[test]
    fn multiline_roundtrip() {
        let g = Geometry::MultiLineString(
            MultiLineString::new(vec![
                LineString::new(vec![pt(0.0, 0.0), pt(1.0, 0.0)]).unwrap(),
                LineString::new(vec![pt(0.0, 1.0), pt(1.0, 1.0), pt(2.0, 2.0)]).unwrap(),
            ])
            .unwrap(),
        );
        let sdo = SdoGeometry::from_geometry(&g);
        assert_eq!(sdo.gtype, 2006);
        assert_eq!(sdo.elem_info, vec![1, 2, 1, 5, 2, 1]);
        roundtrip(g);
    }

    #[test]
    fn rectangle_interpretation_expands() {
        let sdo = SdoGeometry::rectangle(&Rect::new(1.0, 2.0, 3.0, 5.0));
        let g = sdo.to_geometry().unwrap();
        assert_eq!(g.bbox(), Rect::new(1.0, 2.0, 3.0, 5.0));
        assert_eq!(g.area(), 6.0);
        match g {
            Geometry::Polygon(p) => assert_eq!(p.exterior().num_points(), 4),
            other => panic!("expected polygon, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_encodings() {
        // 3-D gtype
        let bad = SdoGeometry { gtype: 3001, elem_info: vec![1, 1, 1], ordinates: vec![0.0, 0.0] };
        assert!(bad.to_geometry().is_err());
        // odd ordinates
        let bad = SdoGeometry { gtype: 2001, elem_info: vec![1, 1, 1], ordinates: vec![0.0] };
        assert!(bad.to_geometry().is_err());
        // truncated elem_info
        let bad = SdoGeometry { gtype: 2001, elem_info: vec![1, 1], ordinates: vec![0.0, 0.0] };
        assert!(bad.to_geometry().is_err());
        // non-increasing offsets
        let bad =
            SdoGeometry { gtype: 2006, elem_info: vec![5, 2, 1, 1, 2, 1], ordinates: vec![0.0; 8] };
        assert!(bad.to_geometry().is_err());
        // even (non 1-based-pair) offset
        let bad = SdoGeometry { gtype: 2001, elem_info: vec![2, 1, 1], ordinates: vec![0.0, 0.0] };
        assert!(bad.to_geometry().is_err());
        // interior ring first
        let bad = SdoGeometry {
            gtype: 2003,
            elem_info: vec![1, ETYPE_INTERIOR_RING, 1],
            ordinates: vec![0.0, 0.0, 1.0, 0.0, 1.0, 1.0],
        };
        assert!(bad.to_geometry().is_err());
        // NaN ordinate
        let bad =
            SdoGeometry { gtype: 2001, elem_info: vec![1, 1, 1], ordinates: vec![f64::NAN, 0.0] };
        assert_eq!(bad.to_geometry(), Err(GeomError::NonFiniteCoordinate));
    }

    #[test]
    fn polygon_gtype_with_two_exteriors_rejected() {
        let sdo = SdoGeometry {
            gtype: 2003,
            elem_info: vec![1, 1003, 1, 9, 1003, 1],
            ordinates: vec![
                0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, // first ring
                5.0, 5.0, 6.0, 5.0, 6.0, 6.0, 5.0, 6.0, // second ring
            ],
        };
        assert!(sdo.to_geometry().is_err());
        // but the same encoding is a valid multipolygon
        let ok = SdoGeometry { gtype: 2007, ..sdo };
        assert!(ok.to_geometry().is_ok());
    }
}
