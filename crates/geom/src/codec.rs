//! Compact binary wire format for `SDO_GEOMETRY`.
//!
//! Oracle stores `SDO_GEOMETRY` values as packed object bytes inside
//! table blocks; this module is the equivalent: a deterministic,
//! versioned little-endian encoding of [`SdoGeometry`] suitable for
//! on-disk index tables, replication streams, or interchange.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic  u16  0x5D0E          version u8  1
//! gtype  u32
//! n_elem u32                  elem_info: n_elem * 3 x u32
//! n_ord  u32                  ordinates: n_ord x f64
//! ```

use crate::error::GeomError;
use crate::geometry::Geometry;
use crate::sdo::SdoGeometry;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Format magic: "SDO" squeezed into 16 bits.
const MAGIC: u16 = 0x5D0E;
/// Current format version.
const VERSION: u8 = 1;

/// Serialize an encoded geometry into its wire bytes.
pub fn encode_sdo(sdo: &SdoGeometry) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        2 + 1 + 4 + 4 + sdo.elem_info.len() * 4 + 4 + sdo.ordinates.len() * 8,
    );
    buf.put_u16_le(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32_le(sdo.gtype);
    debug_assert!(sdo.elem_info.len().is_multiple_of(3));
    buf.put_u32_le((sdo.elem_info.len() / 3) as u32);
    for v in &sdo.elem_info {
        buf.put_u32_le(*v);
    }
    buf.put_u32_le(sdo.ordinates.len() as u32);
    for v in &sdo.ordinates {
        buf.put_f64_le(*v);
    }
    buf.freeze()
}

/// Serialize a typed geometry (through its SDO encoding).
pub fn encode_geometry(g: &Geometry) -> Bytes {
    encode_sdo(&SdoGeometry::from_geometry(g))
}

/// Deserialize wire bytes back into an [`SdoGeometry`].
///
/// Validates framing (magic, version, lengths) but not geometry
/// semantics — call [`SdoGeometry::to_geometry`] for that, as with any
/// bytes of unknown provenance.
pub fn decode_sdo(mut buf: impl Buf) -> Result<SdoGeometry, GeomError> {
    let err = |m: &str| GeomError::InvalidSdo(format!("codec: {m}"));
    if buf.remaining() < 2 + 1 + 4 + 4 {
        return Err(err("truncated header"));
    }
    if buf.get_u16_le() != MAGIC {
        return Err(err("bad magic"));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(GeomError::InvalidSdo(format!("codec: unsupported version {version}")));
    }
    let gtype = buf.get_u32_le();
    let n_elem = buf.get_u32_le() as usize;
    if n_elem > buf.remaining() / 12 {
        return Err(err("element count exceeds payload"));
    }
    let mut elem_info = Vec::with_capacity(n_elem * 3);
    for _ in 0..n_elem * 3 {
        elem_info.push(buf.get_u32_le());
    }
    if buf.remaining() < 4 {
        return Err(err("truncated ordinate count"));
    }
    let n_ord = buf.get_u32_le() as usize;
    if n_ord > buf.remaining() / 8 {
        return Err(err("ordinate count exceeds payload"));
    }
    let mut ordinates = Vec::with_capacity(n_ord);
    for _ in 0..n_ord {
        ordinates.push(buf.get_f64_le());
    }
    if buf.has_remaining() {
        return Err(err("trailing bytes"));
    }
    Ok(SdoGeometry { gtype, elem_info, ordinates })
}

/// Deserialize wire bytes into a typed geometry, with full validation.
pub fn decode_geometry(buf: impl Buf) -> Result<Geometry, GeomError> {
    decode_sdo(buf)?.to_geometry()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::polygon::{Polygon, Ring};
    use crate::rect::Rect;

    fn samples() -> Vec<Geometry> {
        let outer = Ring::new(Rect::new(0.0, 0.0, 10.0, 10.0).corners().to_vec()).unwrap();
        let hole = Ring::new(Rect::new(4.0, 4.0, 6.0, 6.0).corners().to_vec()).unwrap();
        vec![
            Geometry::Point(Point::new(1.5, -2.5)),
            Geometry::LineString(
                crate::linestring::LineString::new(vec![
                    Point::new(0.0, 0.0),
                    Point::new(3.0, 4.0),
                ])
                .unwrap(),
            ),
            Geometry::Polygon(Polygon::new(outer, vec![hole])),
            Geometry::MultiPoint(
                crate::multi::MultiPoint::new(vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)])
                    .unwrap(),
            ),
        ]
    }

    #[test]
    fn roundtrip_all_types() {
        for g in samples() {
            let bytes = encode_geometry(&g);
            let back = decode_geometry(bytes).unwrap();
            assert_eq!(g, back);
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let g = samples().pop().unwrap();
        assert_eq!(encode_geometry(&g), encode_geometry(&g));
    }

    #[test]
    fn rejects_corruption() {
        let g = &samples()[2];
        let good = encode_geometry(g);
        // truncations at every prefix length must error, not panic
        for cut in 0..good.len() {
            let slice = good.slice(..cut);
            assert!(decode_sdo(slice).is_err(), "prefix of {cut} bytes accepted");
        }
        // bad magic
        let mut bad = BytesMut::from(&good[..]);
        bad[0] ^= 0xFF;
        assert!(decode_sdo(bad.freeze()).is_err());
        // bad version
        let mut bad = BytesMut::from(&good[..]);
        bad[2] = 99;
        assert!(decode_sdo(bad.freeze()).is_err());
        // trailing garbage
        let mut bad = BytesMut::from(&good[..]);
        bad.put_u8(0);
        assert!(decode_sdo(bad.freeze()).is_err());
        // absurd element count must not allocate/panic
        let mut bad = BytesMut::from(&good[..]);
        bad[7] = 0xFF;
        bad[8] = 0xFF;
        bad[9] = 0xFF;
        bad[10] = 0x7F;
        assert!(decode_sdo(bad.freeze()).is_err());
    }

    #[test]
    fn decoded_bytes_still_validate_semantically() {
        // Framing-valid but semantically-broken SDO must fail at
        // to_geometry, demonstrating the two-layer validation.
        let sdo = SdoGeometry {
            gtype: 2003,
            elem_info: vec![1, 2003, 1], // interior ring first: invalid
            ordinates: vec![0.0, 0.0, 1.0, 0.0, 1.0, 1.0],
        };
        let bytes = encode_sdo(&sdo);
        let decoded = decode_sdo(bytes).unwrap();
        assert_eq!(decoded, sdo);
        assert!(decoded.to_geometry().is_err());
    }
}
