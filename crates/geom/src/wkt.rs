//! Well-Known Text parsing and serialization.
//!
//! Supports the 2-D subset matching [`Geometry`]: `POINT`, `LINESTRING`,
//! `POLYGON`, `MULTIPOINT`, `MULTILINESTRING`, `MULTIPOLYGON`. Used for
//! interchange, test fixtures, and the SQL layer's geometry literals.

use crate::error::GeomError;
use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::multi::{MultiLineString, MultiPoint, MultiPolygon};
use crate::point::Point;
use crate::polygon::{Polygon, Ring};
use std::fmt::Write as _;

/// Serialize a geometry to WKT. Rings are written closed (first vertex
/// repeated), as the WKT spec requires.
pub fn to_wkt(g: &Geometry) -> String {
    let mut s = String::new();
    match g {
        Geometry::Point(p) => {
            let _ = write!(s, "POINT ({} {})", fmt(p.x), fmt(p.y));
        }
        Geometry::LineString(l) => {
            s.push_str("LINESTRING ");
            write_coord_list(&mut s, l.points(), false);
        }
        Geometry::Polygon(p) => {
            s.push_str("POLYGON ");
            write_polygon(&mut s, p);
        }
        Geometry::MultiPoint(m) => {
            s.push_str("MULTIPOINT ");
            write_coord_list(&mut s, m.points(), false);
        }
        Geometry::MultiLineString(m) => {
            s.push_str("MULTILINESTRING (");
            for (i, l) in m.lines().iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                write_coord_list(&mut s, l.points(), false);
            }
            s.push(')');
        }
        Geometry::MultiPolygon(m) => {
            s.push_str("MULTIPOLYGON (");
            for (i, p) in m.polygons().iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                write_polygon(&mut s, p);
            }
            s.push(')');
        }
    }
    s
}

fn write_polygon(s: &mut String, p: &Polygon) {
    s.push('(');
    write_coord_list(s, p.exterior().points(), true);
    for h in p.holes() {
        s.push_str(", ");
        write_coord_list(s, h.points(), true);
    }
    s.push(')');
}

fn write_coord_list(s: &mut String, pts: &[Point], close: bool) {
    s.push('(');
    for (i, p) in pts.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{} {}", fmt(p.x), fmt(p.y));
    }
    if close {
        if let Some(p) = pts.first() {
            let _ = write!(s, ", {} {}", fmt(p.x), fmt(p.y));
        }
    }
    s.push(')');
}

/// Format a coordinate without trailing `.0` noise for integral values.
fn fmt(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Parse a WKT string into a geometry.
pub fn parse_wkt(input: &str) -> Result<Geometry, GeomError> {
    let mut p = Parser { input, pos: 0 };
    let g = p.parse_geometry()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing characters after geometry"));
    }
    Ok(g)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> GeomError {
        GeomError::WktParse { offset: self.pos, message: message.to_string() }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn keyword(&mut self) -> Result<String, GeomError> {
        self.skip_ws();
        let start = self.pos;
        let end = self
            .rest()
            .find(|c: char| !c.is_ascii_alphabetic())
            .map(|i| start + i)
            .unwrap_or(self.input.len());
        if end == start {
            return Err(self.err("expected a geometry keyword"));
        }
        let kw = self.input[start..end].to_ascii_uppercase();
        self.pos = end;
        Ok(kw)
    }

    fn expect(&mut self, ch: char) -> Result<(), GeomError> {
        self.skip_ws();
        if self.rest().starts_with(ch) {
            self.pos += ch.len_utf8();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{ch}'")))
        }
    }

    fn peek(&mut self, ch: char) -> bool {
        self.skip_ws();
        self.rest().starts_with(ch)
    }

    fn number(&mut self) -> Result<f64, GeomError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.rest().as_bytes();
        let mut i = 0;
        if i < bytes.len() && (bytes[i] == b'-' || bytes[i] == b'+') {
            i += 1;
        }
        while i < bytes.len()
            && (bytes[i].is_ascii_digit()
                || bytes[i] == b'.'
                || bytes[i] == b'e'
                || bytes[i] == b'E'
                || ((bytes[i] == b'-' || bytes[i] == b'+')
                    && i > 0
                    && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
        {
            i += 1;
        }
        if i == 0 {
            return Err(self.err("expected a number"));
        }
        let text = &self.rest()[..i];
        let v: f64 = text.parse().map_err(|_| self.err(&format!("invalid number '{text}'")))?;
        self.pos = start + i;
        Ok(v)
    }

    fn coord(&mut self) -> Result<Point, GeomError> {
        let x = self.number()?;
        let y = self.number()?;
        Ok(Point::new(x, y))
    }

    /// `( x y, x y, ... )`
    fn coord_list(&mut self) -> Result<Vec<Point>, GeomError> {
        self.expect('(')?;
        let mut pts = vec![self.coord()?];
        while self.peek(',') {
            self.expect(',')?;
            pts.push(self.coord()?);
        }
        self.expect(')')?;
        Ok(pts)
    }

    /// `( ring, ring, ... )` where each ring is a coord list.
    fn ring_list(&mut self) -> Result<Vec<Vec<Point>>, GeomError> {
        self.expect('(')?;
        let mut rings = vec![self.coord_list()?];
        while self.peek(',') {
            self.expect(',')?;
            rings.push(self.coord_list()?);
        }
        self.expect(')')?;
        Ok(rings)
    }

    fn parse_geometry(&mut self) -> Result<Geometry, GeomError> {
        let kw = self.keyword()?;
        match kw.as_str() {
            "POINT" => {
                self.expect('(')?;
                let p = self.coord()?;
                self.expect(')')?;
                Ok(Geometry::Point(p))
            }
            "LINESTRING" => Ok(Geometry::LineString(LineString::new(self.coord_list()?)?)),
            "POLYGON" => {
                let rings = self.ring_list()?;
                Ok(Geometry::Polygon(polygon_from_rings(rings)?))
            }
            "MULTIPOINT" => {
                // Accept both `MULTIPOINT (1 2, 3 4)` and
                // `MULTIPOINT ((1 2), (3 4))`.
                self.expect('(')?;
                let mut pts = Vec::new();
                loop {
                    if self.peek('(') {
                        self.expect('(')?;
                        pts.push(self.coord()?);
                        self.expect(')')?;
                    } else {
                        pts.push(self.coord()?);
                    }
                    if self.peek(',') {
                        self.expect(',')?;
                    } else {
                        break;
                    }
                }
                self.expect(')')?;
                Ok(Geometry::MultiPoint(MultiPoint::new(pts)?))
            }
            "MULTILINESTRING" => {
                let lists = self.ring_list()?;
                let lines =
                    lists.into_iter().map(LineString::new).collect::<Result<Vec<_>, _>>()?;
                Ok(Geometry::MultiLineString(MultiLineString::new(lines)?))
            }
            "MULTIPOLYGON" => {
                self.expect('(')?;
                let mut polys = vec![polygon_from_rings(self.ring_list()?)?];
                while self.peek(',') {
                    self.expect(',')?;
                    polys.push(polygon_from_rings(self.ring_list()?)?);
                }
                self.expect(')')?;
                Ok(Geometry::MultiPolygon(MultiPolygon::new(polys)?))
            }
            other => Err(self.err(&format!("unknown geometry type '{other}'"))),
        }
    }
}

fn polygon_from_rings(mut rings: Vec<Vec<Point>>) -> Result<Polygon, GeomError> {
    if rings.is_empty() {
        return Err(GeomError::Invalid("polygon with no rings".into()));
    }
    let exterior = Ring::new(rings.remove(0))?;
    let holes = rings.into_iter().map(Ring::new).collect::<Result<Vec<_>, _>>()?;
    Ok(Polygon::new(exterior, holes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    fn roundtrip(wkt: &str) {
        let g = parse_wkt(wkt).unwrap();
        let out = to_wkt(&g);
        let g2 = parse_wkt(&out).unwrap();
        assert_eq!(g, g2, "roundtrip failed for {wkt}");
    }

    #[test]
    fn point() {
        let g = parse_wkt("POINT (1 2)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(1.0, 2.0)));
        assert_eq!(to_wkt(&g), "POINT (1 2)");
        roundtrip("POINT (-1.5 2.25)");
    }

    #[test]
    fn linestring() {
        let g = parse_wkt("LINESTRING (0 0, 1 1, 2 0)").unwrap();
        match &g {
            Geometry::LineString(l) => assert_eq!(l.num_points(), 3),
            _ => panic!(),
        }
        roundtrip("LINESTRING (0 0, 1 1, 2 0)");
    }

    #[test]
    fn polygon_with_hole() {
        let wkt = "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))";
        let g = parse_wkt(wkt).unwrap();
        assert_eq!(g.area(), 96.0);
        roundtrip(wkt);
    }

    #[test]
    fn multi_variants() {
        roundtrip("MULTIPOINT (1 2, 3 4)");
        roundtrip("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3, 4 4))");
        roundtrip("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 7 5, 7 7, 5 7, 5 5)))");
        // nested-parens multipoint form
        let g = parse_wkt("MULTIPOINT ((1 2), (3 4))").unwrap();
        assert_eq!(g, parse_wkt("MULTIPOINT (1 2, 3 4)").unwrap());
    }

    #[test]
    fn scientific_notation_and_signs() {
        let g = parse_wkt("POINT (1e3 -2.5E-2)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(1000.0, -0.025)));
    }

    #[test]
    fn case_insensitive_keywords() {
        assert!(parse_wkt("point (1 2)").is_ok());
        assert!(parse_wkt("Polygon ((0 0, 1 0, 1 1, 0 0))").is_ok());
    }

    #[test]
    fn errors_carry_offsets() {
        match parse_wkt("POINT (1 )") {
            Err(GeomError::WktParse { offset, .. }) => assert!(offset >= 8),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse_wkt("TRIANGLE (0 0, 1 1, 2 2)").is_err());
        assert!(parse_wkt("POINT (1 2) garbage").is_err());
        assert!(parse_wkt("LINESTRING (0 0)").is_err()); // too few points
        assert!(parse_wkt("").is_err());
    }

    #[test]
    fn wkt_of_rect_polygon() {
        let g = Geometry::Polygon(Polygon::from_rect(&Rect::new(0.0, 0.0, 1.0, 1.0)));
        let wkt = to_wkt(&g);
        assert!(wkt.starts_with("POLYGON (("));
        assert!(wkt.ends_with("))"));
        roundtrip(&wkt);
    }
}
