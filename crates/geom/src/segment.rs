//! Line segments and the segment-level primitives the predicates build on.

use crate::point::Point;
use crate::rect::Rect;
use crate::EPS;

/// Orientation of the ordered triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// The triple turns clockwise.
    Clockwise,
    /// The triple turns counterclockwise.
    CounterClockwise,
    /// The three points are collinear (within tolerance).
    Collinear,
}

/// Signed twice-area of triangle `(a, b, c)`; positive when the triple
/// turns counterclockwise.
#[inline]
pub fn cross3(a: &Point, b: &Point, c: &Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Classify the turn made at `b` when walking `a -> b -> c`.
#[inline]
pub fn orientation(a: &Point, b: &Point, c: &Point) -> Orientation {
    let v = cross3(a, b, c);
    // Scale the tolerance by the magnitude of the inputs so that large
    // coordinates (e.g. projected meters) do not misclassify near-collinear
    // triples as proper turns.
    let scale = (b.x - a.x).abs() + (b.y - a.y).abs() + (c.x - a.x).abs() + (c.y - a.y).abs();
    let tol = EPS * scale.max(1.0);
    if v > tol {
        Orientation::CounterClockwise
    } else if v < -tol {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// A closed line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// The segment from `a` to `b`.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Euclidean length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.dist(&self.b)
    }

    /// Bounding rectangle of the two endpoints.
    #[inline]
    pub fn bbox(&self) -> Rect {
        Rect::from_corners(self.a, self.b)
    }

    /// True when `p` lies on this segment (within tolerance).
    pub fn contains_point(&self, p: &Point) -> bool {
        if orientation(&self.a, &self.b, p) != Orientation::Collinear {
            return false;
        }
        p.x >= self.a.x.min(self.b.x) - EPS
            && p.x <= self.a.x.max(self.b.x) + EPS
            && p.y >= self.a.y.min(self.b.y) - EPS
            && p.y <= self.a.y.max(self.b.y) + EPS
    }

    /// True when the closed segments share at least one point.
    ///
    /// Standard orientation-based test with collinear overlap handling.
    pub fn intersects(&self, other: &Segment) -> bool {
        let (p1, p2, p3, p4) = (&self.a, &self.b, &other.a, &other.b);
        let o1 = orientation(p1, p2, p3);
        let o2 = orientation(p1, p2, p4);
        let o3 = orientation(p3, p4, p1);
        let o4 = orientation(p3, p4, p2);

        if o1 != o2
            && o3 != o4
            && o1 != Orientation::Collinear
            && o2 != Orientation::Collinear
            && o3 != Orientation::Collinear
            && o4 != Orientation::Collinear
        {
            return true;
        }
        // Collinear / endpoint cases.
        (o1 == Orientation::Collinear && self.contains_point(p3))
            || (o2 == Orientation::Collinear && self.contains_point(p4))
            || (o3 == Orientation::Collinear && other.contains_point(p1))
            || (o4 == Orientation::Collinear && other.contains_point(p2))
            || (o1 != o2 && o3 != o4)
    }

    /// True when the segments cross at a point interior to both
    /// (a "proper" crossing: not merely touching at an endpoint and not
    /// collinear overlap).
    pub fn crosses_properly(&self, other: &Segment) -> bool {
        let o1 = orientation(&self.a, &self.b, &other.a);
        let o2 = orientation(&self.a, &self.b, &other.b);
        let o3 = orientation(&other.a, &other.b, &self.a);
        let o4 = orientation(&other.a, &other.b, &self.b);
        o1 != Orientation::Collinear
            && o2 != Orientation::Collinear
            && o3 != Orientation::Collinear
            && o4 != Orientation::Collinear
            && o1 != o2
            && o3 != o4
    }

    /// True when the segments are collinear and overlap in more than a
    /// single point.
    pub fn collinear_overlaps(&self, other: &Segment) -> bool {
        if orientation(&self.a, &self.b, &other.a) != Orientation::Collinear
            || orientation(&self.a, &self.b, &other.b) != Orientation::Collinear
        {
            return false;
        }
        // Project onto the dominant axis and test interval overlap length.
        let dx = (self.b.x - self.a.x).abs();
        let dy = (self.b.y - self.a.y).abs();
        let (s0, s1, t0, t1) = if dx >= dy {
            (
                self.a.x.min(self.b.x),
                self.a.x.max(self.b.x),
                other.a.x.min(other.b.x),
                other.a.x.max(other.b.x),
            )
        } else {
            (
                self.a.y.min(self.b.y),
                self.a.y.max(self.b.y),
                other.a.y.min(other.b.y),
                other.a.y.max(other.b.y),
            )
        };
        (s1.min(t1) - s0.max(t0)) > EPS
    }

    /// Closest point on this segment to `p`.
    pub fn closest_point(&self, p: &Point) -> Point {
        let d = self.b - self.a;
        let len2 = d.dot(&d);
        if len2 <= EPS * EPS {
            return self.a;
        }
        let t = ((*p - self.a).dot(&d) / len2).clamp(0.0, 1.0);
        self.a + d * t
    }

    /// Distance from `p` to this segment.
    #[inline]
    pub fn dist_point(&self, p: &Point) -> f64 {
        self.closest_point(p).dist(p)
    }

    /// Minimum distance between two segments; zero when they intersect.
    pub fn dist_segment(&self, other: &Segment) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        self.dist_point(&other.a)
            .min(self.dist_point(&other.b))
            .min(other.dist_point(&self.a))
            .min(other.dist_point(&self.b))
    }

    /// Intersection point of two properly crossing segments (or of their
    /// supporting lines when they merely touch). Returns `None` for
    /// parallel non-collinear segments.
    pub fn intersection_point(&self, other: &Segment) -> Option<Point> {
        let r = self.b - self.a;
        let s = other.b - other.a;
        let denom = r.cross(&s);
        if denom.abs() <= EPS {
            return None;
        }
        let t = (other.a - self.a).cross(&s) / denom;
        Some(self.a + r * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn orientation_classifies_turns() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(orientation(&a, &b, &Point::new(1.0, 1.0)), Orientation::CounterClockwise);
        assert_eq!(orientation(&a, &b, &Point::new(1.0, -1.0)), Orientation::Clockwise);
        assert_eq!(orientation(&a, &b, &Point::new(2.0, 0.0)), Orientation::Collinear);
    }

    #[test]
    fn proper_crossing() {
        let s1 = seg(0.0, 0.0, 2.0, 2.0);
        let s2 = seg(0.0, 2.0, 2.0, 0.0);
        assert!(s1.intersects(&s2));
        assert!(s1.crosses_properly(&s2));
        assert!(s1.intersection_point(&s2).unwrap().almost_eq(&Point::new(1.0, 1.0)));
    }

    #[test]
    fn endpoint_touch_is_intersection_but_not_proper() {
        let s1 = seg(0.0, 0.0, 1.0, 1.0);
        let s2 = seg(1.0, 1.0, 2.0, 0.0);
        assert!(s1.intersects(&s2));
        assert!(!s1.crosses_properly(&s2));
    }

    #[test]
    fn disjoint_segments() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(0.0, 1.0, 1.0, 1.0);
        assert!(!s1.intersects(&s2));
        assert_eq!(s1.dist_segment(&s2), 1.0);
    }

    #[test]
    fn collinear_overlap() {
        let s1 = seg(0.0, 0.0, 2.0, 0.0);
        let s2 = seg(1.0, 0.0, 3.0, 0.0);
        assert!(s1.intersects(&s2));
        assert!(s1.collinear_overlaps(&s2));
        // touching only at a point: not an overlap
        let s3 = seg(2.0, 0.0, 3.0, 0.0);
        assert!(s1.intersects(&s3));
        assert!(!s1.collinear_overlaps(&s3));
        // vertical segments use the y-axis projection
        let v1 = seg(0.0, 0.0, 0.0, 2.0);
        let v2 = seg(0.0, 1.0, 0.0, 3.0);
        assert!(v1.collinear_overlaps(&v2));
    }

    #[test]
    fn collinear_disjoint_do_not_intersect() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(2.0, 0.0, 3.0, 0.0);
        assert!(!s1.intersects(&s2));
        assert!(!s1.collinear_overlaps(&s2));
    }

    #[test]
    fn point_on_segment() {
        let s = seg(0.0, 0.0, 2.0, 2.0);
        assert!(s.contains_point(&Point::new(1.0, 1.0)));
        assert!(s.contains_point(&Point::new(0.0, 0.0)));
        assert!(!s.contains_point(&Point::new(3.0, 3.0)));
        assert!(!s.contains_point(&Point::new(1.0, 0.0)));
    }

    #[test]
    fn closest_point_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        assert_eq!(s.closest_point(&Point::new(-1.0, 0.0)), Point::new(0.0, 0.0));
        assert_eq!(s.closest_point(&Point::new(5.0, 3.0)), Point::new(1.0, 0.0));
        assert_eq!(s.closest_point(&Point::new(0.5, 2.0)), Point::new(0.5, 0.0));
        assert_eq!(s.dist_point(&Point::new(0.5, 2.0)), 2.0);
    }

    #[test]
    fn degenerate_segment_distance() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert_eq!(s.dist_point(&Point::new(4.0, 5.0)), 5.0);
    }

    #[test]
    fn segment_distance_parallel() {
        let s1 = seg(0.0, 0.0, 10.0, 0.0);
        let s2 = seg(2.0, 3.0, 8.0, 3.0);
        assert_eq!(s1.dist_segment(&s2), 3.0);
    }
}
