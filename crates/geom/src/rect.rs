//! Axis-aligned rectangles (minimum bounding rectangles).
//!
//! `Rect` is the workhorse of the R-tree and the join primary filter:
//! the paper's index-based join compares "index-based MBRs ... for
//! intersection with each other", optionally expanded by a distance for
//! within-distance joins.

use crate::point::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Clamped separation between the closed intervals `[lo_a, hi_a]` and
/// `[lo_b, hi_b]`: zero when they overlap, the gap between them
/// otherwise.
///
/// This single `max(·, 0)` form is the per-axis building block of
/// [`Rect::mindist`] and is shared verbatim by the batch and SIMD
/// filter kernels in `sdo-rtree::kernel`, so rect-distance results are
/// bit-identical across every code path (including the `sqrt` that
/// follows: IEEE 754 square root is correctly rounded, scalar and
/// vector alike).
#[inline]
pub fn axis_mindist(lo_a: f64, hi_a: f64, lo_b: f64, hi_b: f64) -> f64 {
    (lo_b - hi_a).max(lo_a - hi_b).max(0.0)
}

/// An axis-aligned rectangle: `[min_x, max_x] x [min_y, max_y]`.
///
/// Degenerate rectangles (zero width/height) are valid and represent
/// points or axis-parallel segments. An *empty* rectangle, used as the
/// identity for [`Rect::union`], has `min > max` in both axes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Smallest x.
    pub min_x: f64,
    /// Smallest y.
    pub min_y: f64,
    /// Largest x.
    pub max_x: f64,
    /// Largest y.
    pub max_y: f64,
}

impl Rect {
    /// A rectangle from explicit bounds (callers keep `min <= max`).
    #[inline]
    pub const fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Rect { min_x, min_y, max_x, max_y }
    }

    /// The empty rectangle: the identity element for [`Rect::union`].
    pub const EMPTY: Rect = Rect {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };

    /// Rectangle spanning two corner points in any order.
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect { min_x: a.x.min(b.x), min_y: a.y.min(b.y), max_x: a.x.max(b.x), max_y: a.y.max(b.y) }
    }

    /// Smallest rectangle containing every point in `points`.
    pub fn from_points<'a>(points: impl IntoIterator<Item = &'a Point>) -> Self {
        let mut r = Rect::EMPTY;
        for p in points {
            r.expand_point(p);
        }
        r
    }

    /// True when this is the empty rectangle (contains nothing).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Extent along x (zero for empty rectangles).
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    /// Extent along y (zero for empty rectangles).
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    /// Covered area (zero for empty rectangles).
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Half-perimeter, the "margin" used by R*-tree split heuristics.
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)
    }

    /// Grow in place to include `p`.
    #[inline]
    pub fn expand_point(&mut self, p: &Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Smallest rectangle containing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Intersection, or `None` when the rectangles are disjoint.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let r = Rect {
            min_x: self.min_x.max(other.min_x),
            min_y: self.min_y.max(other.min_y),
            max_x: self.max_x.min(other.max_x),
            max_y: self.max_y.min(other.max_y),
        };
        if r.is_empty() {
            None
        } else {
            Some(r)
        }
    }

    /// True when the rectangles share at least one point (closed sense:
    /// touching edges intersect).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// True when `other` lies entirely inside `self` (closed sense).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        !other.is_empty()
            && self.min_x <= other.min_x
            && self.min_y <= other.min_y
            && self.max_x >= other.max_x
            && self.max_y >= other.max_y
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// True when `p` lies strictly inside (not on the boundary).
    #[inline]
    pub fn contains_point_strict(&self, p: &Point) -> bool {
        p.x > self.min_x && p.x < self.max_x && p.y > self.min_y && p.y < self.max_y
    }

    /// Minimum distance between any point of `self` and any point of
    /// `other`; zero when they intersect.
    ///
    /// This is the `MINDIST` bound that makes MBR filtering correct for
    /// within-distance joins: `mindist(a, b) <= d` is implied by the
    /// exact geometries being within distance `d`.
    #[inline]
    pub fn mindist(&self, other: &Rect) -> f64 {
        let dx = axis_mindist(self.min_x, self.max_x, other.min_x, other.max_x);
        let dy = axis_mindist(self.min_y, self.max_y, other.min_y, other.max_y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Minimum distance from `p` to this rectangle; zero when inside.
    #[inline]
    pub fn mindist_point(&self, p: &Point) -> f64 {
        let dx = axis_mindist(self.min_x, self.max_x, p.x, p.x);
        let dy = axis_mindist(self.min_y, self.max_y, p.y, p.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum distance between any point of `self` and any point of `other`.
    #[inline]
    pub fn maxdist(&self, other: &Rect) -> f64 {
        let dx = (self.max_x - other.min_x).abs().max((other.max_x - self.min_x).abs());
        let dy = (self.max_y - other.min_y).abs().max((other.max_y - self.min_y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// The rectangle grown by `d` on every side (Minkowski sum with a
    /// square of radius `d`); used to turn a within-distance predicate
    /// into an intersection test on expanded MBRs.
    #[inline]
    pub fn expanded(&self, d: f64) -> Rect {
        Rect {
            min_x: self.min_x - d,
            min_y: self.min_y - d,
            max_x: self.max_x + d,
            max_y: self.max_y + d,
        }
    }

    /// Area of overlap with `other` (zero when disjoint).
    #[inline]
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        self.intersection(other).map_or(0.0, |r| r.area())
    }

    /// Increase in area if this rectangle were enlarged to cover `other`.
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// The four corner points, counterclockwise from `(min_x, min_y)`.
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.min_x, self.min_y),
            Point::new(self.max_x, self.min_y),
            Point::new(self.max_x, self.max_y),
            Point::new(self.min_x, self.max_y),
        ]
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}] x [{}, {}]", self.min_x, self.max_x, self.min_y, self.max_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::new(a, b, c, d)
    }

    #[test]
    fn empty_is_union_identity() {
        let a = r(1.0, 2.0, 3.0, 4.0);
        assert_eq!(Rect::EMPTY.union(&a), a);
        assert_eq!(a.union(&Rect::EMPTY), a);
        assert!(Rect::EMPTY.is_empty());
        assert_eq!(Rect::EMPTY.area(), 0.0);
        assert_eq!(Rect::EMPTY.margin(), 0.0);
    }

    #[test]
    fn union_and_intersection() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.union(&b), r(0.0, 0.0, 3.0, 3.0));
        assert_eq!(a.intersection(&b), Some(r(1.0, 1.0, 2.0, 2.0)));
        assert_eq!(a.overlap_area(&b), 1.0);
        let c = r(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.intersection(&c), None);
        assert_eq!(a.overlap_area(&c), 0.0);
    }

    #[test]
    fn touching_rects_intersect() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.mindist(&b), 0.0);
    }

    #[test]
    fn mindist_matches_geometry() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(4.0, 5.0, 6.0, 7.0);
        // closest points are (1,1) and (4,5): dist = 5
        assert_eq!(a.mindist(&b), 5.0);
        assert_eq!(b.mindist(&a), 5.0);
        // aligned in y: pure x distance
        let c = r(3.0, 0.0, 4.0, 1.0);
        assert_eq!(a.mindist(&c), 2.0);
    }

    #[test]
    fn mindist_zero_iff_intersects() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.mindist(&b), 0.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn containment() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(2.0, 2.0, 3.0, 3.0);
        assert!(a.contains_rect(&b));
        assert!(!b.contains_rect(&a));
        assert!(a.contains_rect(&a));
        assert!(a.contains_point(&Point::new(0.0, 5.0)));
        assert!(!a.contains_point_strict(&Point::new(0.0, 5.0)));
        assert!(a.contains_point_strict(&Point::new(5.0, 5.0)));
    }

    #[test]
    fn expansion_for_distance_predicates() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let e = a.expanded(0.5);
        assert_eq!(e, r(-0.5, -0.5, 1.5, 1.5));
        // disjoint at distance 2, intersect once expanded by >= 1
        let b = r(3.0, 0.0, 4.0, 1.0);
        assert!(!a.intersects(&b));
        assert!(a.expanded(2.0).intersects(&b));
    }

    #[test]
    fn enlargement_is_union_area_delta() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 0.0, 3.0, 1.0);
        assert_eq!(a.enlargement(&b), 3.0 - 1.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [Point::new(1.0, 5.0), Point::new(-2.0, 0.0), Point::new(4.0, 2.0)];
        let bb = Rect::from_points(pts.iter());
        assert_eq!(bb, r(-2.0, 0.0, 4.0, 5.0));
        for p in &pts {
            assert!(bb.contains_point(p));
        }
    }

    #[test]
    fn axis_mindist_clamps_overlap_to_zero() {
        assert_eq!(axis_mindist(0.0, 1.0, 2.0, 3.0), 1.0); // gap to the right
        assert_eq!(axis_mindist(2.0, 3.0, 0.0, 1.0), 1.0); // gap to the left
        assert_eq!(axis_mindist(0.0, 2.0, 1.0, 3.0), 0.0); // overlap
        assert_eq!(axis_mindist(0.0, 1.0, 1.0, 2.0), 0.0); // touching
        assert_eq!(axis_mindist(1.0, 1.0, 1.0, 1.0), 0.0); // coincident points
    }

    #[test]
    fn mindist_on_degenerate_rects() {
        // Point-rects and line-rects are valid degenerate rectangles;
        // mindist must agree with plain geometry on them.
        let p = r(1.0, 1.0, 1.0, 1.0);
        let q = r(4.0, 5.0, 4.0, 5.0);
        assert_eq!(p.mindist(&q), 5.0);
        let line = r(0.0, 0.0, 10.0, 0.0);
        assert_eq!(p.mindist(&line), 1.0);
        assert_eq!(line.mindist(&line), 0.0);
        assert_eq!(p.mindist_point(&Point::new(4.0, 5.0)), 5.0);
    }

    #[test]
    fn corners_ccw() {
        let a = r(0.0, 0.0, 2.0, 1.0);
        let c = a.corners();
        assert_eq!(c[0], Point::new(0.0, 0.0));
        assert_eq!(c[2], Point::new(2.0, 1.0));
    }
}
