//! Runtime SIMD instruction-set detection shared by the vectorized
//! filter kernels.
//!
//! The explicit SIMD kernels in `sdo-rtree::kernel::simd` and the
//! prepared-geometry prefilters in [`crate::prepared`] all dispatch on
//! the same detected ISA so a query profile can report one coherent
//! `kernel_isa` value. Detection runs once per process
//! ([`dispatched`]) and honours the [`FORCE_SCALAR_ENV`] environment
//! variable, which pins every kernel to the portable scalar path —
//! CI uses it to cover the fallback code on AVX2 hosts.
//!
//! Everything here is stable Rust: `is_x86_feature_detected!` for
//! AVX2, and the baseline guarantees that x86-64 always has SSE2 and
//! AArch64 always has NEON. No nightly `std::simd` anywhere.

use std::sync::OnceLock;

/// Environment variable that forces every SIMD kernel onto the scalar
/// fallback when set to anything but the empty string or `0`.
pub const FORCE_SCALAR_ENV: &str = "SDO_FORCE_SCALAR_KERNEL";

/// The instruction set a SIMD kernel runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdIsa {
    /// Portable scalar code — the fallback on unknown targets and
    /// under [`FORCE_SCALAR_ENV`].
    Scalar,
    /// x86-64 SSE2 (2×f64 / 8×u16 lanes) — baseline on every x86-64.
    Sse2,
    /// AArch64 NEON (2×f64 / 8×u16 lanes) — baseline on every AArch64.
    Neon,
    /// x86-64 AVX2 (4×f64 / 16×u16 lanes), runtime-detected.
    Avx2,
}

impl SimdIsa {
    /// Lower-case name as recorded in `EXPLAIN ANALYZE` (`kernel_isa`).
    pub fn name(self) -> &'static str {
        match self {
            SimdIsa::Scalar => "scalar",
            SimdIsa::Sse2 => "sse2",
            SimdIsa::Neon => "neon",
            SimdIsa::Avx2 => "avx2",
        }
    }

    /// The widest ISA this machine supports, ignoring the force-scalar
    /// override. Prefer [`dispatched`] outside of tests.
    pub fn detect() -> SimdIsa {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                SimdIsa::Avx2
            } else {
                SimdIsa::Sse2
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            SimdIsa::Neon
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            SimdIsa::Scalar
        }
    }

    /// True when this machine can execute kernels compiled for `self`.
    /// Explicit-ISA kernel entry points check this and fall back to
    /// scalar rather than fault, which keeps them safe to call with
    /// any requested ISA (the equivalence proptests rely on that).
    pub fn available(self) -> bool {
        match self {
            SimdIsa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            SimdIsa::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }
}

/// The ISA every auto-dispatching kernel in the workspace uses:
/// [`SimdIsa::detect`] once per process, downgraded to
/// [`SimdIsa::Scalar`] when [`FORCE_SCALAR_ENV`] is set.
pub fn dispatched() -> SimdIsa {
    static ISA: OnceLock<SimdIsa> = OnceLock::new();
    *ISA.get_or_init(|| {
        let forced =
            std::env::var(FORCE_SCALAR_ENV).map(|v| !v.is_empty() && v != "0").unwrap_or(false);
        if forced {
            SimdIsa::Scalar
        } else {
            SimdIsa::detect()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_sane() {
        let isa = SimdIsa::detect();
        assert!(isa.available(), "detected ISA must be executable");
        assert!(SimdIsa::Scalar.available(), "scalar is always available");
        // dispatched() never exceeds what the machine supports.
        assert!(dispatched() <= isa);
        assert_eq!(dispatched(), dispatched(), "dispatch is cached");
        for isa in [SimdIsa::Scalar, SimdIsa::Sse2, SimdIsa::Neon, SimdIsa::Avx2] {
            assert!(!isa.name().is_empty());
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn x86_always_has_sse2() {
        assert!(SimdIsa::Sse2.available());
        assert!(SimdIsa::detect() >= SimdIsa::Sse2);
    }
}
