//! 2-D points.

use crate::rect::Rect;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A 2-dimensional point with `f64` coordinates.
///
/// `Point` doubles as a vector for the small amount of vector algebra
/// the predicate code needs (differences, dot/cross products).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// A point at `(x, y)`.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Origin point.
    pub const ZERO: Point = Point { x: 0.0, y: 0.0 };

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Dot product, treating both points as vectors.
    #[inline]
    pub fn dot(&self, other: &Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product magnitude (z of the 3-D cross product).
    #[inline]
    pub fn cross(&self, other: &Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// The degenerate MBR of this point.
    #[inline]
    pub fn bbox(&self) -> Rect {
        Rect::new(self.x, self.y, self.x, self.y)
    }

    /// True when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Returns true when the points coincide within [`crate::EPS`].
    #[inline]
    pub fn almost_eq(&self, other: &Point) -> bool {
        crate::feq(self.x, other.x) && crate::feq(self.y, other.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, s: f64) -> Point {
        Point::new(self.x * s, self.y * s)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist2(&b), 25.0);
    }

    #[test]
    fn vector_algebra() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!((a + b), Point::new(4.0, 1.0));
        assert_eq!((a - b), Point::new(-2.0, 3.0));
        assert_eq!(a.dot(&b), 1.0);
        assert_eq!(a.cross(&b), -7.0);
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
    }

    #[test]
    fn bbox_is_degenerate_rect() {
        let p = Point::new(5.0, 7.0);
        let r = p.bbox();
        assert_eq!(r.min_x, 5.0);
        assert_eq!(r.max_y, 7.0);
        assert_eq!(r.area(), 0.0);
    }

    #[test]
    fn almost_eq_uses_tolerance() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(1.0 + 1e-12, 1.0 - 1e-12);
        assert!(a.almost_eq(&b));
        assert!(!a.almost_eq(&Point::new(1.001, 1.0)));
    }
}
