//! The unified geometry enum.

use crate::linestring::LineString;
use crate::multi::{MultiLineString, MultiPoint, MultiPolygon};
use crate::point::Point;
use crate::polygon::Polygon;
use crate::rect::Rect;
use crate::segment::Segment;
use serde::{Deserialize, Serialize};

/// Any supported 2-D geometry (the OGC simple-feature subset that
/// Oracle's `SDO_GEOMETRY` models in two dimensions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Geometry {
    /// A single point.
    Point(Point),
    /// An open polyline.
    LineString(LineString),
    /// A polygon with optional holes.
    Polygon(Polygon),
    /// A collection of points.
    MultiPoint(MultiPoint),
    /// A collection of polylines.
    MultiLineString(MultiLineString),
    /// A collection of polygons.
    MultiPolygon(MultiPolygon),
}

/// Topological dimension of a geometry type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TopoDim {
    /// Points.
    Zero,
    /// Curves.
    One,
    /// Areas.
    Two,
}

impl Geometry {
    /// Minimum bounding rectangle.
    pub fn bbox(&self) -> Rect {
        match self {
            Geometry::Point(p) => p.bbox(),
            Geometry::LineString(l) => l.bbox(),
            Geometry::Polygon(p) => p.bbox(),
            Geometry::MultiPoint(m) => m.bbox(),
            Geometry::MultiLineString(m) => m.bbox(),
            Geometry::MultiPolygon(m) => m.bbox(),
        }
    }

    /// Topological dimension.
    pub fn dim(&self) -> TopoDim {
        match self {
            Geometry::Point(_) | Geometry::MultiPoint(_) => TopoDim::Zero,
            Geometry::LineString(_) | Geometry::MultiLineString(_) => TopoDim::One,
            Geometry::Polygon(_) | Geometry::MultiPolygon(_) => TopoDim::Two,
        }
    }

    /// Total number of vertices.
    pub fn num_points(&self) -> usize {
        match self {
            Geometry::Point(_) => 1,
            Geometry::LineString(l) => l.num_points(),
            Geometry::Polygon(p) => p.num_points(),
            Geometry::MultiPoint(m) => m.points().len(),
            Geometry::MultiLineString(m) => m.lines().iter().map(|l| l.num_points()).sum(),
            Geometry::MultiPolygon(m) => m.polygons().iter().map(|p| p.num_points()).sum(),
        }
    }

    /// Area of areal geometries; zero for points and curves.
    pub fn area(&self) -> f64 {
        match self {
            Geometry::Polygon(p) => p.area(),
            Geometry::MultiPolygon(m) => m.area(),
            _ => 0.0,
        }
    }

    /// Length of curves, perimeter of areal geometries (Oracle
    /// `SDO_GEOM.SDO_LENGTH` semantics), zero for points.
    pub fn length(&self) -> f64 {
        match self {
            Geometry::Point(_) | Geometry::MultiPoint(_) => 0.0,
            Geometry::LineString(l) => l.length(),
            Geometry::MultiLineString(m) => m.length(),
            Geometry::Polygon(p) => {
                p.exterior().perimeter() + p.holes().iter().map(|h| h.perimeter()).sum::<f64>()
            }
            Geometry::MultiPolygon(m) => {
                m.polygons().iter().map(|p| Geometry::Polygon(p.clone()).length()).sum()
            }
        }
    }

    /// All boundary/curve segments of the geometry. Points yield none.
    pub fn segments(&self) -> Vec<Segment> {
        match self {
            Geometry::Point(_) | Geometry::MultiPoint(_) => Vec::new(),
            Geometry::LineString(l) => l.segments().collect(),
            Geometry::Polygon(p) => p.boundary_segments().collect(),
            Geometry::MultiLineString(m) => {
                m.lines().iter().flat_map(|l| l.segments().collect::<Vec<_>>()).collect()
            }
            Geometry::MultiPolygon(m) => m
                .polygons()
                .iter()
                .flat_map(|p| p.boundary_segments().collect::<Vec<_>>())
                .collect(),
        }
    }

    /// Every vertex of the geometry, flattened.
    pub fn vertices(&self) -> Vec<Point> {
        match self {
            Geometry::Point(p) => vec![*p],
            Geometry::MultiPoint(m) => m.points().to_vec(),
            Geometry::LineString(l) => l.points().to_vec(),
            Geometry::MultiLineString(m) => {
                m.lines().iter().flat_map(|l| l.points().iter().copied()).collect()
            }
            Geometry::Polygon(p) => {
                let mut v: Vec<Point> = p.exterior().points().to_vec();
                for h in p.holes() {
                    v.extend_from_slice(h.points());
                }
                v
            }
            Geometry::MultiPolygon(m) => {
                m.polygons().iter().flat_map(|p| Geometry::Polygon(p.clone()).vertices()).collect()
            }
        }
    }

    /// True when `pt` lies on/in the geometry.
    pub fn covers_point(&self, pt: &Point) -> bool {
        match self {
            Geometry::Point(p) => p.almost_eq(pt),
            Geometry::MultiPoint(m) => m.points().iter().any(|p| p.almost_eq(pt)),
            Geometry::LineString(l) => l.contains_point(pt),
            Geometry::MultiLineString(m) => m.lines().iter().any(|l| l.contains_point(pt)),
            Geometry::Polygon(p) => p.contains_point(pt),
            Geometry::MultiPolygon(m) => m.contains_point(pt),
        }
    }

    /// Decompose a multi-geometry into its elements; single geometries
    /// yield themselves. Used by predicate code to reduce multi-to-multi
    /// comparisons to pairwise element comparisons.
    pub fn elements(&self) -> Vec<Geometry> {
        match self {
            Geometry::MultiPoint(m) => m.points().iter().map(|p| Geometry::Point(*p)).collect(),
            Geometry::MultiLineString(m) => {
                m.lines().iter().map(|l| Geometry::LineString(l.clone())).collect()
            }
            Geometry::MultiPolygon(m) => {
                m.polygons().iter().map(|p| Geometry::Polygon(p.clone())).collect()
            }
            g => vec![g.clone()],
        }
    }

    /// True for the `Multi*` variants.
    pub fn is_multi(&self) -> bool {
        matches!(
            self,
            Geometry::MultiPoint(_) | Geometry::MultiLineString(_) | Geometry::MultiPolygon(_)
        )
    }
}

impl From<Point> for Geometry {
    fn from(p: Point) -> Self {
        Geometry::Point(p)
    }
}

impl From<LineString> for Geometry {
    fn from(l: LineString) -> Self {
        Geometry::LineString(l)
    }
}

impl From<Polygon> for Geometry {
    fn from(p: Polygon) -> Self {
        Geometry::Polygon(p)
    }
}

impl From<MultiPoint> for Geometry {
    fn from(m: MultiPoint) -> Self {
        Geometry::MultiPoint(m)
    }
}

impl From<MultiLineString> for Geometry {
    fn from(m: MultiLineString) -> Self {
        Geometry::MultiLineString(m)
    }
}

impl From<MultiPolygon> for Geometry {
    fn from(m: MultiPolygon) -> Self {
        Geometry::MultiPolygon(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Ring;

    fn square(x: f64, y: f64, s: f64) -> Geometry {
        Geometry::Polygon(Polygon::from_rect(&Rect::new(x, y, x + s, y + s)))
    }

    #[test]
    fn dims() {
        assert_eq!(Geometry::Point(Point::ZERO).dim(), TopoDim::Zero);
        assert_eq!(square(0.0, 0.0, 1.0).dim(), TopoDim::Two);
        let l =
            Geometry::LineString(LineString::new(vec![Point::ZERO, Point::new(1.0, 0.0)]).unwrap());
        assert_eq!(l.dim(), TopoDim::One);
        assert!(TopoDim::Zero < TopoDim::Two);
    }

    #[test]
    fn bbox_dispatch() {
        let g = square(1.0, 2.0, 3.0);
        assert_eq!(g.bbox(), Rect::new(1.0, 2.0, 4.0, 5.0));
        assert_eq!(g.area(), 9.0);
        assert_eq!(g.num_points(), 4);
        assert_eq!(g.segments().len(), 4);
    }

    #[test]
    fn elements_of_multi() {
        let mp =
            Geometry::MultiPoint(MultiPoint::new(vec![Point::ZERO, Point::new(1.0, 1.0)]).unwrap());
        assert_eq!(mp.elements().len(), 2);
        assert!(mp.is_multi());
        let p = Geometry::Point(Point::ZERO);
        assert_eq!(p.elements(), vec![p.clone()]);
        assert!(!p.is_multi());
    }

    #[test]
    fn covers_point_dispatch() {
        let g = square(0.0, 0.0, 2.0);
        assert!(g.covers_point(&Point::new(1.0, 1.0)));
        assert!(g.covers_point(&Point::new(0.0, 0.0)));
        assert!(!g.covers_point(&Point::new(3.0, 1.0)));
    }

    #[test]
    fn vertices_flatten_holes() {
        let outer = Ring::new(Rect::new(0.0, 0.0, 10.0, 10.0).corners().to_vec()).unwrap();
        let hole = Ring::new(Rect::new(4.0, 4.0, 6.0, 6.0).corners().to_vec()).unwrap();
        let g = Geometry::Polygon(Polygon::new(outer, vec![hole]));
        assert_eq!(g.vertices().len(), 8);
        assert_eq!(g.num_points(), 8);
    }
}
