//! Error type shared by geometry construction, parsing and validation.

use std::fmt;

/// Errors produced while constructing, parsing or validating geometries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// A ring or line string had fewer vertices than its type requires.
    TooFewPoints {
        /// Minimum vertex count for the type.
        expected: usize,
        /// Vertices actually supplied.
        got: usize,
    },
    /// An `SDO_GEOMETRY` encoding was structurally invalid.
    InvalidSdo(String),
    /// A WKT string could not be parsed.
    WktParse {
        /// Byte offset of the failure.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// A geometry failed validation (self-intersection, unclosed ring, ...).
    Invalid(String),
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate,
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::TooFewPoints { expected, got } => {
                write!(f, "too few points: expected at least {expected}, got {got}")
            }
            GeomError::InvalidSdo(msg) => write!(f, "invalid SDO_GEOMETRY: {msg}"),
            GeomError::WktParse { offset, message } => {
                write!(f, "WKT parse error at byte {offset}: {message}")
            }
            GeomError::Invalid(msg) => write!(f, "invalid geometry: {msg}"),
            GeomError::NonFiniteCoordinate => write!(f, "coordinate is NaN or infinite"),
        }
    }
}

impl std::error::Error for GeomError {}
