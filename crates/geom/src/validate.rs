//! Geometry validation, mirroring `SDO_GEOM.VALIDATE_GEOMETRY`.

use crate::error::GeomError;
use crate::geometry::Geometry;
use crate::polygon::{PointLocation, Polygon};
use crate::relate::interior_point;

/// Validate a geometry against the structural rules the index and
/// predicate code assume:
///
/// * all coordinates finite (enforced at construction, re-checked),
/// * rings simple (no self-intersection),
/// * holes inside their exterior ring and mutually non-overlapping,
/// * multipolygon elements with disjoint interiors.
///
/// Returns `Ok(())` or the first violation found. Validation is
/// O(n²) in vertices per ring pair; it is meant for load-time checking,
/// not query paths.
pub fn validate(g: &Geometry) -> Result<(), GeomError> {
    match g {
        Geometry::Point(p) => {
            if !p.is_finite() {
                return Err(GeomError::NonFiniteCoordinate);
            }
            Ok(())
        }
        Geometry::MultiPoint(_) | Geometry::LineString(_) | Geometry::MultiLineString(_) => Ok(()),
        Geometry::Polygon(p) => validate_polygon(p),
        Geometry::MultiPolygon(m) => {
            for p in m.polygons() {
                validate_polygon(p)?;
            }
            // Element interiors must be disjoint.
            let polys = m.polygons();
            for i in 0..polys.len() {
                for j in (i + 1)..polys.len() {
                    let a = Geometry::Polygon(polys[i].clone());
                    let b = Geometry::Polygon(polys[j].clone());
                    if crate::relate::interiors_intersect(&a, &b) {
                        return Err(GeomError::Invalid(format!(
                            "multipolygon elements {i} and {j} have overlapping interiors"
                        )));
                    }
                }
            }
            Ok(())
        }
    }
}

fn validate_polygon(p: &Polygon) -> Result<(), GeomError> {
    if !p.exterior().is_simple() {
        return Err(GeomError::Invalid("exterior ring self-intersects".into()));
    }
    for (i, h) in p.holes().iter().enumerate() {
        if !h.is_simple() {
            return Err(GeomError::Invalid(format!("hole {i} self-intersects")));
        }
        // Every hole vertex must be inside (or on) the exterior ring.
        for v in h.points() {
            if p.exterior().locate_point(v) == PointLocation::Outside {
                return Err(GeomError::Invalid(format!(
                    "hole {i} extends outside the exterior ring"
                )));
            }
        }
        // A hole's representative interior point must be inside the
        // exterior ring too (a hole could share all vertices yet bulge
        // out between them).
        let ip = interior_point(&Polygon::from_exterior(h.clone()));
        if p.exterior().locate_point(&ip) == PointLocation::Outside {
            return Err(GeomError::Invalid(format!(
                "hole {i} interior falls outside the exterior ring"
            )));
        }
    }
    // Holes must not overlap each other.
    for i in 0..p.holes().len() {
        for j in (i + 1)..p.holes().len() {
            let a = Geometry::Polygon(Polygon::from_exterior(p.holes()[i].clone()));
            let b = Geometry::Polygon(Polygon::from_exterior(p.holes()[j].clone()));
            if crate::relate::interiors_intersect(&a, &b) {
                return Err(GeomError::Invalid(format!("holes {i} and {j} overlap")));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::polygon::Ring;
    use crate::rect::Rect;

    fn ring(pts: &[(f64, f64)]) -> Ring {
        Ring::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn valid_square() {
        let g = Geometry::Polygon(Polygon::from_rect(&Rect::new(0.0, 0.0, 1.0, 1.0)));
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn bowtie_rejected() {
        let bow = ring(&[(0.0, 0.0), (2.0, 2.0), (2.0, 0.0), (0.0, 2.0)]);
        let g = Geometry::Polygon(Polygon::from_exterior(bow));
        assert!(validate(&g).is_err());
    }

    #[test]
    fn hole_outside_rejected() {
        let outer = ring(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]);
        let stray = ring(&[(10.0, 10.0), (11.0, 10.0), (11.0, 11.0), (10.0, 11.0)]);
        let g = Geometry::Polygon(Polygon::new(outer, vec![stray]));
        assert!(validate(&g).is_err());
    }

    #[test]
    fn overlapping_holes_rejected() {
        let outer = ring(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let h1 = ring(&[(1.0, 1.0), (5.0, 1.0), (5.0, 5.0), (1.0, 5.0)]);
        let h2 = ring(&[(3.0, 3.0), (7.0, 3.0), (7.0, 7.0), (3.0, 7.0)]);
        let g = Geometry::Polygon(Polygon::new(outer, vec![h1, h2]));
        assert!(validate(&g).is_err());
    }

    #[test]
    fn disjoint_holes_accepted() {
        let outer = ring(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let h1 = ring(&[(1.0, 1.0), (2.0, 1.0), (2.0, 2.0), (1.0, 2.0)]);
        let h2 = ring(&[(5.0, 5.0), (6.0, 5.0), (6.0, 6.0), (5.0, 6.0)]);
        let g = Geometry::Polygon(Polygon::new(outer, vec![h1, h2]));
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn overlapping_multipolygon_elements_rejected() {
        let m = crate::multi::MultiPolygon::new(vec![
            Polygon::from_rect(&Rect::new(0.0, 0.0, 2.0, 2.0)),
            Polygon::from_rect(&Rect::new(1.0, 1.0, 3.0, 3.0)),
        ])
        .unwrap();
        assert!(validate(&Geometry::MultiPolygon(m)).is_err());
        let ok = crate::multi::MultiPolygon::new(vec![
            Polygon::from_rect(&Rect::new(0.0, 0.0, 1.0, 1.0)),
            Polygon::from_rect(&Rect::new(5.0, 5.0, 6.0, 6.0)),
        ])
        .unwrap();
        assert!(validate(&Geometry::MultiPolygon(ok)).is_ok());
    }
}
