//! Polygons with optional holes.

use crate::error::GeomError;
use crate::point::Point;
use crate::rect::Rect;
use crate::segment::Segment;
use serde::{Deserialize, Serialize};

/// Where a point lies relative to a ring or polygon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointLocation {
    /// Strictly interior.
    Inside,
    /// On a ring edge or vertex.
    OnBoundary,
    /// Strictly exterior.
    Outside,
}

/// A simple closed ring.
///
/// Stored *without* the repeated closing vertex; the closing edge from
/// the last vertex back to the first is implicit. Orientation is not
/// normalized on construction — use [`Ring::signed_area`] /
/// [`Ring::ensure_ccw`] when orientation matters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ring {
    points: Vec<Point>,
}

impl Ring {
    /// Build a ring from vertices. A trailing vertex equal to the first
    /// is dropped. Fails with fewer than three distinct vertices.
    pub fn new(mut points: Vec<Point>) -> Result<Self, GeomError> {
        if points.len() >= 2 {
            let first = points[0];
            if points.last().unwrap().almost_eq(&first) {
                points.pop();
            }
        }
        if points.len() < 3 {
            return Err(GeomError::TooFewPoints { expected: 3, got: points.len() });
        }
        if points.iter().any(|p| !p.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        Ok(Ring { points })
    }

    /// The ring's vertices (closing vertex implicit).
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of distinct vertices.
    #[inline]
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Iterate the ring's edges, including the implicit closing edge.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.points.len();
        (0..n).map(move |i| Segment::new(self.points[i], self.points[(i + 1) % n]))
    }

    /// Shoelace signed area: positive for counterclockwise rings.
    pub fn signed_area(&self) -> f64 {
        let n = self.points.len();
        let mut sum = 0.0;
        for i in 0..n {
            let a = &self.points[i];
            let b = &self.points[(i + 1) % n];
            sum += a.cross(b);
        }
        sum / 2.0
    }

    /// Unsigned enclosed area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Reverse vertex order in place if the ring is clockwise.
    pub fn ensure_ccw(&mut self) {
        if self.signed_area() < 0.0 {
            self.points.reverse();
        }
    }

    /// Reverse vertex order in place if the ring is counterclockwise.
    pub fn ensure_cw(&mut self) {
        if self.signed_area() > 0.0 {
            self.points.reverse();
        }
    }

    /// Total boundary length, closing edge included.
    pub fn perimeter(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    /// Bounding rectangle over the vertices.
    pub fn bbox(&self) -> Rect {
        Rect::from_points(self.points.iter())
    }

    /// Ray-casting point location with an explicit boundary class.
    ///
    /// Casts a ray in +x and counts crossings, treating vertices on the
    /// ray with the standard "lower endpoint inclusive" rule so shared
    /// vertices are not double counted.
    pub fn locate_point(&self, p: &Point) -> PointLocation {
        let n = self.points.len();
        let mut inside = false;
        for i in 0..n {
            let a = self.points[i];
            let b = self.points[(i + 1) % n];
            if Segment::new(a, b).contains_point(p) {
                return PointLocation::OnBoundary;
            }
            // Half-open rule: edge counts when exactly one endpoint is
            // strictly above the ray.
            if (a.y > p.y) != (b.y > p.y) {
                let x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if x_at > p.x {
                    inside = !inside;
                }
            }
        }
        if inside {
            PointLocation::Inside
        } else {
            PointLocation::Outside
        }
    }

    /// True when `p` is inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        self.locate_point(p) != PointLocation::Outside
    }

    /// Minimum distance from `p` to the ring boundary.
    pub fn boundary_dist_point(&self, p: &Point) -> f64 {
        self.segments().map(|s| s.dist_point(p)).fold(f64::INFINITY, f64::min)
    }

    /// True when the ring is simple (no self-intersections apart from
    /// consecutive edges sharing a vertex). Small rings use the direct
    /// quadratic pair scan; larger rings route through the segment
    /// index ([`crate::prepared::SegIndex`]) for `O(n log n)` expected
    /// work — same pair tests, so the answer is identical.
    pub fn is_simple(&self) -> bool {
        if self.num_points() > crate::prepared::SIMPLE_SCAN_CUTOFF {
            return crate::prepared::ring_is_simple_indexed(self);
        }
        let edges: Vec<Segment> = self.segments().collect();
        let n = edges.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let adjacent = j == i + 1 || (i == 0 && j == n - 1);
                if adjacent {
                    if edges[i].collinear_overlaps(&edges[j]) {
                        return false;
                    }
                } else if edges[i].intersects(&edges[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// Consume the ring, yielding its vertices.
    pub fn into_points(self) -> Vec<Point> {
        self.points
    }
}

/// A polygon: one outer ring and zero or more holes.
///
/// Hole rings must lie inside the outer ring and must not overlap each
/// other — enforced by [`crate::validate`], not by construction, to keep
/// bulk loading cheap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    exterior: Ring,
    holes: Vec<Ring>,
}

impl Polygon {
    /// Assemble a polygon, normalizing ring orientations (exterior
    /// counterclockwise, holes clockwise, as Oracle stores them).
    pub fn new(mut exterior: Ring, mut holes: Vec<Ring>) -> Self {
        // Normalize orientations the way Oracle's model does: outer ring
        // counterclockwise, holes clockwise.
        exterior.ensure_ccw();
        for h in &mut holes {
            h.ensure_cw();
        }
        Polygon { exterior, holes }
    }

    /// A polygon with no holes.
    pub fn from_exterior(exterior: Ring) -> Self {
        Polygon::new(exterior, Vec::new())
    }

    /// Axis-aligned rectangle as a polygon.
    pub fn from_rect(r: &Rect) -> Self {
        Polygon::from_exterior(Ring::new(r.corners().to_vec()).expect("rect has 4 corners"))
    }

    /// The outer ring.
    #[inline]
    pub fn exterior(&self) -> &Ring {
        &self.exterior
    }

    /// The interior (hole) rings.
    #[inline]
    pub fn holes(&self) -> &[Ring] {
        &self.holes
    }

    /// Net area: outer area minus hole areas.
    pub fn area(&self) -> f64 {
        self.exterior.area() - self.holes.iter().map(|h| h.area()).sum::<f64>()
    }

    /// Bounding rectangle (the exterior ring's).
    pub fn bbox(&self) -> Rect {
        self.exterior.bbox()
    }

    /// All boundary edges: exterior ring plus hole rings.
    pub fn boundary_segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.exterior.segments().chain(self.holes.iter().flat_map(|h| h.segments()))
    }

    /// Total number of vertices across all rings.
    pub fn num_points(&self) -> usize {
        self.exterior.num_points() + self.holes.iter().map(|h| h.num_points()).sum::<usize>()
    }

    /// Point location accounting for holes.
    pub fn locate_point(&self, p: &Point) -> PointLocation {
        match self.exterior.locate_point(p) {
            PointLocation::Outside => PointLocation::Outside,
            PointLocation::OnBoundary => PointLocation::OnBoundary,
            PointLocation::Inside => {
                for h in &self.holes {
                    match h.locate_point(p) {
                        PointLocation::Inside => return PointLocation::Outside,
                        PointLocation::OnBoundary => return PointLocation::OnBoundary,
                        PointLocation::Outside => {}
                    }
                }
                PointLocation::Inside
            }
        }
    }

    /// True when `p` is inside the polygon or on any of its rings.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        self.locate_point(p) != PointLocation::Outside
    }

    /// Minimum distance from `p` to the polygon (zero when inside).
    pub fn dist_point(&self, p: &Point) -> f64 {
        match self.locate_point(p) {
            PointLocation::Inside | PointLocation::OnBoundary => 0.0,
            PointLocation::Outside => {
                self.boundary_segments().map(|s| s.dist_point(p)).fold(f64::INFINITY, f64::min)
            }
        }
    }

    /// Consume the polygon, yielding `(exterior, holes)`.
    pub fn into_rings(self) -> (Ring, Vec<Ring>) {
        (self.exterior, self.holes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn ring(pts: &[(f64, f64)]) -> Ring {
        Ring::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    fn unit_square() -> Ring {
        ring(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)])
    }

    #[test]
    fn closing_vertex_dropped() {
        let r = ring(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 0.0)]);
        assert_eq!(r.num_points(), 3);
    }

    #[test]
    fn rejects_degenerate() {
        assert!(Ring::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).is_err());
    }

    #[test]
    fn signed_area_orientation() {
        let ccw = unit_square();
        assert_eq!(ccw.signed_area(), 1.0);
        let mut cw = ring(&[(0.0, 1.0), (1.0, 1.0), (1.0, 0.0), (0.0, 0.0)]);
        assert_eq!(cw.signed_area(), -1.0);
        cw.ensure_ccw();
        assert_eq!(cw.signed_area(), 1.0);
    }

    #[test]
    fn ring_point_location() {
        let r = unit_square();
        assert_eq!(r.locate_point(&Point::new(0.5, 0.5)), PointLocation::Inside);
        assert_eq!(r.locate_point(&Point::new(0.0, 0.5)), PointLocation::OnBoundary);
        assert_eq!(r.locate_point(&Point::new(1.0, 1.0)), PointLocation::OnBoundary);
        assert_eq!(r.locate_point(&Point::new(1.5, 0.5)), PointLocation::Outside);
        assert_eq!(r.locate_point(&Point::new(0.5, -0.1)), PointLocation::Outside);
    }

    #[test]
    fn ray_through_vertex_counted_once() {
        // Diamond whose vertices are axis-aligned with interior points.
        let r = ring(&[(0.0, 1.0), (1.0, 0.0), (2.0, 1.0), (1.0, 2.0)]);
        assert_eq!(r.locate_point(&Point::new(1.0, 1.0)), PointLocation::Inside);
        assert_eq!(r.locate_point(&Point::new(-0.5, 1.0)), PointLocation::Outside);
        assert_eq!(r.locate_point(&Point::new(2.5, 1.0)), PointLocation::Outside);
    }

    #[test]
    fn polygon_with_hole() {
        let outer = ring(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let hole = ring(&[(4.0, 4.0), (6.0, 4.0), (6.0, 6.0), (4.0, 6.0)]);
        let p = Polygon::new(outer, vec![hole]);
        assert_eq!(p.area(), 100.0 - 4.0);
        assert_eq!(p.locate_point(&Point::new(5.0, 5.0)), PointLocation::Outside);
        assert_eq!(p.locate_point(&Point::new(4.0, 5.0)), PointLocation::OnBoundary);
        assert_eq!(p.locate_point(&Point::new(2.0, 2.0)), PointLocation::Inside);
        assert_eq!(p.dist_point(&Point::new(5.0, 5.0)), 1.0);
        assert_eq!(p.dist_point(&Point::new(2.0, 2.0)), 0.0);
        assert_eq!(p.dist_point(&Point::new(13.0, 14.0)), 5.0);
    }

    #[test]
    fn orientations_normalized() {
        let outer = ring(&[(0.0, 10.0), (10.0, 10.0), (10.0, 0.0), (0.0, 0.0)]); // cw input
        let hole = ring(&[(4.0, 4.0), (6.0, 4.0), (6.0, 6.0), (4.0, 6.0)]); // ccw input
        let p = Polygon::new(outer, vec![hole]);
        assert!(p.exterior().signed_area() > 0.0);
        assert!(p.holes()[0].signed_area() < 0.0);
    }

    #[test]
    fn simplicity() {
        assert!(unit_square().is_simple());
        // Bowtie: self-intersecting.
        let bowtie = ring(&[(0.0, 0.0), (2.0, 2.0), (2.0, 0.0), (0.0, 2.0)]);
        assert!(!bowtie.is_simple());
    }

    #[test]
    fn from_rect_round_trip() {
        let r = Rect::new(1.0, 2.0, 3.0, 5.0);
        let p = Polygon::from_rect(&r);
        assert_eq!(p.bbox(), r);
        assert_eq!(p.area(), 6.0);
    }
}
