//! Exact geometry–geometry predicates — the paper's *secondary filter*.
//!
//! `SDO_RELATE(a.geom, b.geom, 'mask=ANYINTERACT')` style masks are
//! evaluated here on exact geometries; the primary filter (index MBRs)
//! lives in the index crates. Masks follow Oracle Spatial's 9-intersection
//! derived vocabulary: `ANYINTERACT`, `INSIDE`, `CONTAINS`, `COVERS`,
//! `COVEREDBY`, `TOUCH`, `OVERLAP`, `EQUAL`, `DISJOINT`.

use crate::algorithms::geometry_distance;
use crate::error::GeomError;
use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::{PointLocation, Polygon};
use crate::segment::Segment;
use crate::EPS;

/// A spatial interaction mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelateMask {
    /// Geometries share at least one point.
    AnyInteract,
    /// Geometries share no point.
    Disjoint,
    /// `a` lies in the interior of `b` with no boundary contact.
    Inside,
    /// `b` lies in the interior of `a` with no boundary contact.
    Contains,
    /// `a` lies entirely within `b`, boundary contact allowed (and the
    /// geometries are not equal).
    CoveredBy,
    /// `b` lies entirely within `a`, boundary contact allowed (and the
    /// geometries are not equal).
    Covers,
    /// Boundaries intersect but interiors do not.
    Touch,
    /// Interiors intersect and neither geometry contains the other.
    Overlap,
    /// The geometries cover each other.
    Equal,
}

impl RelateMask {
    /// Parse a single mask name, case-insensitively. Accepts Oracle's
    /// `OVERLAPBDYINTERSECT`/`OVERLAPBDYDISJOINT` as synonyms of
    /// `OVERLAP`.
    pub fn parse(s: &str) -> Result<Self, GeomError> {
        match s.trim().to_ascii_uppercase().as_str() {
            "ANYINTERACT" | "INTERSECT" | "INTERSECTS" => Ok(RelateMask::AnyInteract),
            "DISJOINT" => Ok(RelateMask::Disjoint),
            "INSIDE" => Ok(RelateMask::Inside),
            "CONTAINS" => Ok(RelateMask::Contains),
            "COVEREDBY" => Ok(RelateMask::CoveredBy),
            "COVERS" => Ok(RelateMask::Covers),
            "TOUCH" => Ok(RelateMask::Touch),
            "OVERLAP" | "OVERLAPBDYINTERSECT" | "OVERLAPBDYDISJOINT" => Ok(RelateMask::Overlap),
            "EQUAL" => Ok(RelateMask::Equal),
            other => Err(GeomError::Invalid(format!("unknown relate mask: {other}"))),
        }
    }

    /// Parse a `'+'`-separated mask list (Oracle allows unions such as
    /// `'INSIDE+COVEREDBY'`).
    pub fn parse_list(s: &str) -> Result<Vec<Self>, GeomError> {
        let s = s.trim();
        let s = s.strip_prefix("mask=").or_else(|| s.strip_prefix("MASK=")).unwrap_or(s);
        s.split('+').map(RelateMask::parse).collect()
    }

    /// The mask with the roles of the two geometries swapped:
    /// `relate(a, b, m)` ⇔ `relate(b, a, m.transpose())`.
    pub fn transpose(self) -> Self {
        match self {
            RelateMask::Inside => RelateMask::Contains,
            RelateMask::Contains => RelateMask::Inside,
            RelateMask::CoveredBy => RelateMask::Covers,
            RelateMask::Covers => RelateMask::CoveredBy,
            m => m,
        }
    }
}

/// Evaluate `mask` on exact geometries.
///
/// ```
/// use sdo_geom::{relate, RelateMask, wkt::parse_wkt};
///
/// let a = parse_wkt("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))").unwrap();
/// let b = parse_wkt("POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))").unwrap(); // shares an edge
/// assert!(relate(&a, &b, RelateMask::Touch));
/// assert!(!relate(&a, &b, RelateMask::Overlap));
/// ```
pub fn relate(a: &Geometry, b: &Geometry, mask: RelateMask) -> bool {
    match mask {
        RelateMask::AnyInteract => intersects(a, b),
        RelateMask::Disjoint => !intersects(a, b),
        RelateMask::Inside => covered_by(a, b) && !boundaries_interact(a, b),
        RelateMask::Contains => covered_by(b, a) && !boundaries_interact(a, b),
        RelateMask::CoveredBy => covered_by(a, b) && boundaries_interact(a, b) && !covered_by(b, a),
        RelateMask::Covers => covered_by(b, a) && boundaries_interact(a, b) && !covered_by(a, b),
        RelateMask::Touch => intersects(a, b) && !interiors_intersect(a, b),
        RelateMask::Overlap => interiors_intersect(a, b) && !covered_by(a, b) && !covered_by(b, a),
        RelateMask::Equal => covered_by(a, b) && covered_by(b, a),
    }
}

/// Evaluate the union of several masks (Oracle's `m1+m2` semantics).
pub fn relate_any(a: &Geometry, b: &Geometry, masks: &[RelateMask]) -> bool {
    masks.iter().any(|m| relate(a, b, *m))
}

/// Exact minimum distance between two geometries.
#[inline]
pub fn distance(a: &Geometry, b: &Geometry) -> f64 {
    geometry_distance(a, b)
}

/// True when the geometries lie within distance `d` of each other
/// (Oracle's `SDO_WITHIN_DISTANCE`). `d = 0` degenerates to
/// `ANYINTERACT`.
pub fn within_distance(a: &Geometry, b: &Geometry, d: f64) -> bool {
    if d <= 0.0 {
        return intersects(a, b);
    }
    // Cheap MBR rejection before the exact distance computation.
    if a.bbox().mindist(&b.bbox()) > d + EPS {
        return false;
    }
    geometry_distance(a, b) <= d + EPS
}

// ---------------------------------------------------------------------------
// ANYINTERACT
// ---------------------------------------------------------------------------

/// True when the geometries share at least one point.
pub fn intersects(a: &Geometry, b: &Geometry) -> bool {
    if !a.bbox().intersects(&b.bbox()) {
        return false;
    }
    if a.is_multi() || b.is_multi() {
        return a
            .elements()
            .iter()
            .any(|ea| b.elements().iter().any(|eb| intersects_simple(ea, eb)));
    }
    intersects_simple(a, b)
}

fn intersects_simple(a: &Geometry, b: &Geometry) -> bool {
    use Geometry::*;
    match (a, b) {
        (Point(p), Point(q)) => p.almost_eq(q),
        (Point(p), LineString(l)) | (LineString(l), Point(p)) => l.contains_point(p),
        (Point(p), Polygon(poly)) | (Polygon(poly), Point(p)) => poly.contains_point(p),
        (LineString(l1), LineString(l2)) => lines_intersect(l1, l2),
        (LineString(l), Polygon(poly)) | (Polygon(poly), LineString(l)) => {
            line_polygon_intersect(l, poly)
        }
        (Polygon(p1), Polygon(p2)) => polygons_intersect(p1, p2),
        _ => unreachable!("multi geometries decomposed by caller"),
    }
}

fn lines_intersect(l1: &LineString, l2: &LineString) -> bool {
    l1.segments().any(|s| l2.segments().any(|t| s.intersects(&t)))
}

fn line_polygon_intersect(l: &LineString, poly: &Polygon) -> bool {
    if l.points().iter().any(|p| poly.contains_point(p)) {
        return true;
    }
    let boundary: Vec<Segment> = poly.boundary_segments().collect();
    l.segments().any(|s| boundary.iter().any(|t| s.intersects(t)))
}

fn polygons_intersect(p1: &Polygon, p2: &Polygon) -> bool {
    if !p1.bbox().intersects(&p2.bbox()) {
        return false;
    }
    // Vertex of one on/in the other covers containment and most overlap.
    if p1.exterior().points().iter().any(|p| p2.contains_point(p))
        || p2.exterior().points().iter().any(|p| p1.contains_point(p))
    {
        return true;
    }
    // Remaining case: boundaries cross without exterior vertices inside.
    let b1: Vec<Segment> = p1.boundary_segments().collect();
    let b2: Vec<Segment> = p2.boundary_segments().collect();
    segments_intersect_filtered(&b1, &b2)
}

/// Segment-set intersection with MBR prefiltering; quadratic worst case
/// but the bbox test rejects nearly all pairs on real data.
fn segments_intersect_filtered(a: &[Segment], b: &[Segment]) -> bool {
    for s in a {
        let sb = s.bbox();
        for t in b {
            if sb.intersects(&t.bbox()) && s.intersects(t) {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Containment
// ---------------------------------------------------------------------------

/// True when every point of `a` lies in `b` (closed sense): `a ⊆ b`.
pub fn covered_by(a: &Geometry, b: &Geometry) -> bool {
    if a.bbox().is_empty() {
        return false;
    }
    if !b.bbox().contains_rect(&a.bbox()) {
        return false;
    }
    // a ⊆ b iff every element of a is covered by the union of b's
    // elements; for disjoint simple elements of b, each element of a
    // must be covered by a single element (true for valid OGC multis).
    a.elements().iter().all(|ea| b.elements().iter().any(|eb| covered_by_simple(ea, eb)))
}

fn covered_by_simple(a: &Geometry, b: &Geometry) -> bool {
    use Geometry::*;
    match (a, b) {
        (Point(p), _) => b.covers_point(p),
        (LineString(_), Point(_)) | (Polygon(_), Point(_)) | (Polygon(_), LineString(_)) => false,
        (LineString(l1), LineString(l2)) => {
            // Every vertex and every segment midpoint of l1 on l2.
            l1.points().iter().all(|p| l2.contains_point(p))
                && l1.segments().all(|s| l2.contains_point(&((s.a + s.b) * 0.5)))
        }
        (LineString(l), Polygon(poly)) => {
            l.points().iter().all(|p| poly.contains_point(p))
                && !crosses_out_of_polygon(&l.segments().collect::<Vec<_>>(), poly)
        }
        (Polygon(p1), Polygon(p2)) => polygon_covered_by(p1, p2),
        _ => unreachable!("multi geometries decomposed by caller"),
    }
}

/// True when some segment of `segs` leaves the polygon: a proper
/// crossing with the boundary, or a midpoint falling outside.
fn crosses_out_of_polygon(segs: &[Segment], poly: &Polygon) -> bool {
    let boundary: Vec<Segment> = poly.boundary_segments().collect();
    for s in segs {
        let sb = s.bbox();
        for t in &boundary {
            if sb.intersects(&t.bbox()) && s.crosses_properly(t) {
                return true;
            }
        }
        if poly.locate_point(&((s.a + s.b) * 0.5)) == PointLocation::Outside {
            return true;
        }
    }
    false
}

fn polygon_covered_by(a: &Polygon, b: &Polygon) -> bool {
    // Every exterior and hole vertex of a must lie in b.
    if !a.exterior().points().iter().all(|p| b.contains_point(p)) {
        return false;
    }
    for h in a.holes() {
        if !h.points().iter().all(|p| b.contains_point(p)) {
            return false;
        }
    }
    // No edge of a may leave b.
    if crosses_out_of_polygon(&a.boundary_segments().collect::<Vec<_>>(), b) {
        return false;
    }
    // A hole of b strictly inside a would punch uncovered area out of a.
    for h in b.holes() {
        if h.points().iter().any(|p| a.locate_point(p) == PointLocation::Inside) {
            return false;
        }
        // Hole of b entirely within a but vertex-coincident with a's
        // boundary: catch via a representative interior point of the hole.
        if h.points().iter().all(|p| a.contains_point(p)) {
            let c =
                crate::algorithms::centroid(&Geometry::Polygon(Polygon::from_exterior(h.clone())));
            if a.locate_point(&c) == PointLocation::Inside
                && b.locate_point(&c) == PointLocation::Outside
            {
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Interior / boundary interaction (TOUCH vs OVERLAP)
// ---------------------------------------------------------------------------

/// True when the boundaries (or point sets for points) of the two
/// geometries share at least one point.
pub fn boundaries_interact(a: &Geometry, b: &Geometry) -> bool {
    let sa = a.segments();
    let sb = b.segments();
    match (sa.is_empty(), sb.is_empty()) {
        (true, true) => intersects(a, b),
        (true, false) => a.vertices().iter().any(|p| sb.iter().any(|s| s.contains_point(p))),
        (false, true) => b.vertices().iter().any(|p| sa.iter().any(|s| s.contains_point(p))),
        (false, false) => segments_intersect_filtered(&sa, &sb),
    }
}

/// True when the interiors of the two geometries share a point.
///
/// For mixed dimensions, the interior of the lower-dimensional geometry
/// is taken relative to itself (a point's interior is the point, a
/// line's interior is the line minus endpoints) — matching Oracle's
/// mask semantics where a point inside a polygon "overlaps" nothing but
/// is INSIDE.
pub fn interiors_intersect(a: &Geometry, b: &Geometry) -> bool {
    if !a.bbox().intersects(&b.bbox()) {
        return false;
    }
    if a.is_multi() || b.is_multi() {
        return a
            .elements()
            .iter()
            .any(|ea| b.elements().iter().any(|eb| interiors_intersect(ea, eb)));
    }
    use Geometry::*;
    match (a, b) {
        (Point(p), Point(q)) => p.almost_eq(q),
        (Point(p), LineString(l)) | (LineString(l), Point(p)) => line_interior_contains(l, p),
        (Point(p), Polygon(poly)) | (Polygon(poly), Point(p)) => {
            poly.locate_point(p) == PointLocation::Inside
        }
        (LineString(l1), LineString(l2)) => {
            // Proper crossing, or collinear overlap, or an interior point
            // of one lying in the interior of the other.
            for s in l1.segments() {
                for t in l2.segments() {
                    if s.crosses_properly(&t) || s.collinear_overlaps(&t) {
                        return true;
                    }
                }
            }
            l1.points()[1..l1.num_points().saturating_sub(1)]
                .iter()
                .any(|p| line_interior_contains(l2, p))
                || l2.points()[1..l2.num_points().saturating_sub(1)]
                    .iter()
                    .any(|p| line_interior_contains(l1, p))
        }
        (LineString(l), Polygon(poly)) | (Polygon(poly), LineString(l)) => {
            // Any point of the line strictly inside the polygon.
            if l.points().iter().any(|p| poly.locate_point(p) == PointLocation::Inside) {
                return true;
            }
            l.segments().any(|s| {
                poly.locate_point(&((s.a + s.b) * 0.5)) == PointLocation::Inside
                    || poly.boundary_segments().any(|t| s.crosses_properly(&t))
            })
        }
        (Polygon(p1), Polygon(p2)) => polygon_interiors_intersect(p1, p2),
        _ => unreachable!("multi geometries decomposed above"),
    }
}

fn line_interior_contains(l: &LineString, p: &Point) -> bool {
    if !l.contains_point(p) {
        return false;
    }
    let first = l.points().first().unwrap();
    let last = l.points().last().unwrap();
    if l.is_closed() {
        return true; // a closed line has no boundary
    }
    !p.almost_eq(first) && !p.almost_eq(last)
}

fn polygon_interiors_intersect(a: &Polygon, b: &Polygon) -> bool {
    // 1. Any vertex of one strictly inside the other.
    if a.exterior().points().iter().any(|p| b.locate_point(p) == PointLocation::Inside)
        || b.exterior().points().iter().any(|p| a.locate_point(p) == PointLocation::Inside)
    {
        return true;
    }
    // 2. Proper boundary crossings imply interior overlap.
    let ba: Vec<Segment> = a.boundary_segments().collect();
    let bb: Vec<Segment> = b.boundary_segments().collect();
    for s in &ba {
        let sbb = s.bbox();
        for t in &bb {
            if sbb.intersects(&t.bbox()) && s.crosses_properly(t) {
                return true;
            }
        }
    }
    // 3. Edge-sharing cases (equal polygons, one inside the other with
    //    coincident edges): probe midpoints of boundary edges and a
    //    representative interior point.
    for s in &ba {
        let mid = (s.a + s.b) * 0.5;
        if b.locate_point(&mid) == PointLocation::Inside {
            return true;
        }
    }
    for t in &bb {
        let mid = (t.a + t.b) * 0.5;
        if a.locate_point(&mid) == PointLocation::Inside {
            return true;
        }
    }
    let ia = interior_point(a);
    if b.locate_point(&ia) == PointLocation::Inside && a.locate_point(&ia) == PointLocation::Inside
    {
        return true;
    }
    let ib = interior_point(b);
    a.locate_point(&ib) == PointLocation::Inside && b.locate_point(&ib) == PointLocation::Inside
}

/// A point guaranteed to lie in the interior of a valid polygon
/// ("point on surface"): scanline through the bbox, midpoint of the
/// first inside span. Falls back to the centroid.
pub fn interior_point(poly: &Polygon) -> Point {
    let bb = poly.bbox();
    // Try several scanlines to dodge degeneracies at vertex heights.
    for frac in [0.5, 0.37, 0.61, 0.23, 0.79, 0.11, 0.93] {
        let y = bb.min_y + (bb.max_y - bb.min_y) * frac;
        let mut xs: Vec<f64> = Vec::new();
        for s in poly.boundary_segments() {
            let (y0, y1) = (s.a.y, s.b.y);
            if (y0 > y) != (y1 > y) {
                xs.push(s.a.x + (y - y0) / (y1 - y0) * (s.b.x - s.a.x));
            }
        }
        xs.sort_by(f64::total_cmp);
        for w in xs.chunks_exact(2) {
            let mid = Point::new((w[0] + w[1]) / 2.0, y);
            if poly.locate_point(&mid) == PointLocation::Inside {
                return mid;
            }
        }
    }
    crate::algorithms::polygon_centroid(poly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Ring;
    use crate::rect::Rect;

    fn pt(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn square(x: f64, y: f64, s: f64) -> Geometry {
        Geometry::Polygon(Polygon::from_rect(&Rect::new(x, y, x + s, y + s)))
    }

    fn line(pts: &[(f64, f64)]) -> Geometry {
        Geometry::LineString(LineString::new(pts.iter().map(|&(x, y)| pt(x, y)).collect()).unwrap())
    }

    #[test]
    fn mask_parsing() {
        assert_eq!(RelateMask::parse("anyinteract").unwrap(), RelateMask::AnyInteract);
        assert_eq!(RelateMask::parse(" TOUCH ").unwrap(), RelateMask::Touch);
        assert_eq!(
            RelateMask::parse_list("mask=INSIDE+COVEREDBY").unwrap(),
            vec![RelateMask::Inside, RelateMask::CoveredBy]
        );
        assert!(RelateMask::parse("bogus").is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        for m in [
            RelateMask::AnyInteract,
            RelateMask::Inside,
            RelateMask::Contains,
            RelateMask::Covers,
            RelateMask::CoveredBy,
            RelateMask::Touch,
            RelateMask::Overlap,
            RelateMask::Equal,
            RelateMask::Disjoint,
        ] {
            assert_eq!(m.transpose().transpose(), m);
        }
        assert_eq!(RelateMask::Inside.transpose(), RelateMask::Contains);
    }

    #[test]
    fn overlapping_squares() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(1.0, 1.0, 2.0);
        assert!(relate(&a, &b, RelateMask::AnyInteract));
        assert!(relate(&a, &b, RelateMask::Overlap));
        assert!(!relate(&a, &b, RelateMask::Touch));
        assert!(!relate(&a, &b, RelateMask::Inside));
        assert!(!relate(&a, &b, RelateMask::Disjoint));
    }

    #[test]
    fn touching_squares() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(1.0, 0.0, 1.0); // shares the x=1 edge
        assert!(relate(&a, &b, RelateMask::AnyInteract));
        assert!(relate(&a, &b, RelateMask::Touch));
        assert!(!relate(&a, &b, RelateMask::Overlap));
        // corner touch
        let c = square(1.0, 1.0, 1.0);
        assert!(relate(&a, &c, RelateMask::Touch));
    }

    #[test]
    fn disjoint_squares() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(5.0, 5.0, 1.0);
        assert!(relate(&a, &b, RelateMask::Disjoint));
        assert!(!relate(&a, &b, RelateMask::AnyInteract));
    }

    #[test]
    fn nested_squares_inside_contains() {
        let outer = square(0.0, 0.0, 10.0);
        let inner = square(3.0, 3.0, 2.0);
        assert!(relate(&inner, &outer, RelateMask::Inside));
        assert!(relate(&outer, &inner, RelateMask::Contains));
        assert!(!relate(&inner, &outer, RelateMask::CoveredBy)); // no boundary contact
        assert!(!relate(&inner, &outer, RelateMask::Overlap));
        assert!(relate(&inner, &outer, RelateMask::AnyInteract));
    }

    #[test]
    fn covered_by_with_shared_edge() {
        let outer = square(0.0, 0.0, 10.0);
        let inner = square(0.0, 0.0, 4.0); // shares two edges with outer
        assert!(relate(&inner, &outer, RelateMask::CoveredBy));
        assert!(relate(&outer, &inner, RelateMask::Covers));
        assert!(!relate(&inner, &outer, RelateMask::Inside));
        assert!(!relate(&inner, &outer, RelateMask::Equal));
    }

    #[test]
    fn equal_polygons() {
        let a = square(0.0, 0.0, 3.0);
        let b = square(0.0, 0.0, 3.0);
        assert!(relate(&a, &b, RelateMask::Equal));
        assert!(!relate(&a, &b, RelateMask::CoveredBy)); // EQUAL excludes COVEREDBY
        assert!(!relate(&a, &b, RelateMask::Touch));
        assert!(relate(&a, &b, RelateMask::AnyInteract));
    }

    #[test]
    fn hole_excludes_containment() {
        let outer = Ring::new(Rect::new(0.0, 0.0, 10.0, 10.0).corners().to_vec()).unwrap();
        let hole = Ring::new(Rect::new(2.0, 2.0, 8.0, 8.0).corners().to_vec()).unwrap();
        let donut = Geometry::Polygon(Polygon::new(outer, vec![hole]));
        let inner = square(4.0, 4.0, 2.0); // entirely within the hole
        assert!(!covered_by(&inner, &donut));
        assert!(relate(&inner, &donut, RelateMask::Disjoint));
        // and the donut is not covered by a polygon that would fill it
        let filler = square(0.0, 0.0, 10.0);
        assert!(covered_by(&donut, &filler));
        assert!(!covered_by(&filler, &donut));
    }

    #[test]
    fn point_predicates() {
        let sq = square(0.0, 0.0, 2.0);
        let inside = Geometry::Point(pt(1.0, 1.0));
        let on_edge = Geometry::Point(pt(0.0, 1.0));
        let outside = Geometry::Point(pt(5.0, 5.0));
        assert!(relate(&inside, &sq, RelateMask::Inside));
        assert!(relate(&sq, &inside, RelateMask::Contains));
        assert!(relate(&on_edge, &sq, RelateMask::Touch));
        assert!(!relate(&on_edge, &sq, RelateMask::Inside));
        assert!(relate(&outside, &sq, RelateMask::Disjoint));
        assert!(relate(&inside, &inside, RelateMask::Equal));
    }

    #[test]
    fn line_crosses_polygon() {
        let sq = square(0.0, 0.0, 2.0);
        let crossing = line(&[(-1.0, 1.0), (3.0, 1.0)]);
        assert!(relate(&crossing, &sq, RelateMask::AnyInteract));
        assert!(interiors_intersect(&crossing, &sq));
        let touching = line(&[(-1.0, 0.0), (3.0, 0.0)]); // along bottom edge
        assert!(relate(&touching, &sq, RelateMask::Touch));
        let inside = line(&[(0.5, 0.5), (1.5, 1.5)]);
        assert!(relate(&inside, &sq, RelateMask::Inside));
    }

    #[test]
    fn line_line_relations() {
        let a = line(&[(0.0, 0.0), (2.0, 2.0)]);
        let b = line(&[(0.0, 2.0), (2.0, 0.0)]);
        assert!(relate(&a, &b, RelateMask::AnyInteract));
        assert!(interiors_intersect(&a, &b));
        // touch at endpoints only
        let c = line(&[(2.0, 2.0), (3.0, 0.0)]);
        assert!(relate(&a, &c, RelateMask::Touch));
        // sub-line covered by longer line
        let d = line(&[(0.5, 0.5), (1.5, 1.5)]);
        assert!(covered_by(&d, &a));
        assert!(relate(&d, &a, RelateMask::CoveredBy));
    }

    #[test]
    fn within_distance_basics() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(3.0, 0.0, 1.0);
        assert!(!within_distance(&a, &b, 1.0));
        assert!(within_distance(&a, &b, 2.0));
        assert!(within_distance(&a, &b, 2.5));
        // d = 0 means intersects
        assert!(!within_distance(&a, &b, 0.0));
        assert!(within_distance(&a, &a, 0.0));
    }

    #[test]
    fn symmetry_of_symmetric_masks() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(1.0, 1.0, 2.0);
        for m in [
            RelateMask::AnyInteract,
            RelateMask::Touch,
            RelateMask::Overlap,
            RelateMask::Equal,
            RelateMask::Disjoint,
        ] {
            assert_eq!(relate(&a, &b, m), relate(&b, &a, m), "{m:?} not symmetric");
        }
    }

    #[test]
    fn interior_point_inside() {
        let outer = Ring::new(Rect::new(0.0, 0.0, 10.0, 10.0).corners().to_vec()).unwrap();
        let hole = Ring::new(Rect::new(1.0, 1.0, 9.0, 9.0).corners().to_vec()).unwrap();
        let donut = Polygon::new(outer, vec![hole]);
        let ip = interior_point(&donut);
        assert_eq!(donut.locate_point(&ip), PointLocation::Inside);
    }

    #[test]
    fn multipolygon_relations() {
        let mp = Geometry::MultiPolygon(
            crate::multi::MultiPolygon::new(vec![
                Polygon::from_rect(&Rect::new(0.0, 0.0, 1.0, 1.0)),
                Polygon::from_rect(&Rect::new(5.0, 5.0, 6.0, 6.0)),
            ])
            .unwrap(),
        );
        let probe = square(5.5, 5.5, 0.2);
        assert!(relate(&probe, &mp, RelateMask::AnyInteract));
        assert!(covered_by(&probe, &mp));
        let gap = square(2.5, 2.5, 0.5);
        assert!(relate(&gap, &mp, RelateMask::Disjoint));
    }
}
