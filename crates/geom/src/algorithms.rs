//! Supporting computational-geometry algorithms.

use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::{PointLocation, Polygon};
use crate::segment::{cross3, Segment};
use crate::EPS;

/// Andrew's monotone-chain convex hull.
///
/// Returns hull vertices in counterclockwise order without a repeated
/// closing vertex. Degenerate inputs (all collinear) return the two
/// extreme points; a single point returns itself.
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    pts.dedup_by(|a, b| a.almost_eq(b));
    let n = pts.len();
    if n <= 2 {
        return pts;
    }
    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for p in &pts {
        while hull.len() >= 2 && cross3(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= EPS {
            hull.pop();
        }
        hull.push(*p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && cross3(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= EPS
        {
            hull.pop();
        }
        hull.push(*p);
    }
    hull.pop(); // last point equals first
    if hull.len() < 3 {
        // Fully collinear input: return the extremes.
        return vec![pts[0], pts[n - 1]];
    }
    hull
}

/// Douglas–Peucker polyline simplification with absolute tolerance
/// `epsilon`. Always keeps the first and last vertices.
pub fn simplify(points: &[Point], epsilon: f64) -> Vec<Point> {
    if points.len() <= 2 {
        return points.to_vec();
    }
    let mut keep = vec![false; points.len()];
    keep[0] = true;
    keep[points.len() - 1] = true;
    let mut stack = vec![(0usize, points.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let chord = Segment::new(points[lo], points[hi]);
        let (mut best, mut best_d) = (lo, -1.0f64);
        for (i, p) in points.iter().enumerate().take(hi).skip(lo + 1) {
            let d = chord.dist_point(p);
            if d > best_d {
                best = i;
                best_d = d;
            }
        }
        if best_d > epsilon {
            keep[best] = true;
            stack.push((lo, best));
            stack.push((best, hi));
        }
    }
    points.iter().zip(keep.iter()).filter_map(|(p, &k)| k.then_some(*p)).collect()
}

/// Area-weighted centroid of a polygon (exterior minus holes).
pub fn polygon_centroid(poly: &Polygon) -> Point {
    let mut cx = 0.0;
    let mut cy = 0.0;
    let mut a = 0.0;
    let mut accumulate = |pts: &[Point]| {
        let n = pts.len();
        for i in 0..n {
            let p = pts[i];
            let q = pts[(i + 1) % n];
            let w = p.cross(&q);
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
            a += w;
        }
    };
    accumulate(poly.exterior().points());
    for h in poly.holes() {
        accumulate(h.points());
    }
    if a.abs() <= EPS {
        // Degenerate polygon: fall back to vertex average.
        let pts = poly.exterior().points();
        let n = pts.len() as f64;
        let sum = pts.iter().fold(Point::ZERO, |acc, p| acc + *p);
        return sum * (1.0 / n);
    }
    Point::new(cx / (3.0 * a), cy / (3.0 * a))
}

/// Centroid of any geometry: area-weighted for polygons,
/// length-weighted for curves, vertex mean for points.
pub fn centroid(g: &Geometry) -> Point {
    match g {
        Geometry::Point(p) => *p,
        Geometry::MultiPoint(m) => {
            let pts = m.points();
            let sum = pts.iter().fold(Point::ZERO, |acc, p| acc + *p);
            sum * (1.0 / pts.len() as f64)
        }
        Geometry::LineString(l) => linestring_centroid(l),
        Geometry::MultiLineString(m) => {
            let mut acc = Point::ZERO;
            let mut total = 0.0;
            for l in m.lines() {
                let w = l.length();
                acc = acc + linestring_centroid(l) * w;
                total += w;
            }
            if total <= EPS {
                linestring_centroid(&m.lines()[0])
            } else {
                acc * (1.0 / total)
            }
        }
        Geometry::Polygon(p) => polygon_centroid(p),
        Geometry::MultiPolygon(m) => {
            let mut acc = Point::ZERO;
            let mut total = 0.0;
            for p in m.polygons() {
                let w = p.area();
                acc = acc + polygon_centroid(p) * w;
                total += w;
            }
            if total <= EPS {
                polygon_centroid(&m.polygons()[0])
            } else {
                acc * (1.0 / total)
            }
        }
    }
}

fn linestring_centroid(l: &LineString) -> Point {
    let mut acc = Point::ZERO;
    let mut total = 0.0;
    for s in l.segments() {
        let w = s.length();
        let mid = (s.a + s.b) * 0.5;
        acc = acc + mid * w;
        total += w;
    }
    if total <= EPS {
        l.points()[0]
    } else {
        acc * (1.0 / total)
    }
}

/// Exact minimum distance between two geometries (zero when they
/// interact). This is the secondary-filter distance the join uses for
/// within-distance predicates.
pub fn geometry_distance(a: &Geometry, b: &Geometry) -> f64 {
    // Multi-geometries: min over element pairs.
    if a.is_multi() || b.is_multi() {
        let mut best = f64::INFINITY;
        for ea in a.elements() {
            for eb in b.elements() {
                best = best.min(geometry_distance(&ea, &eb));
                if best == 0.0 {
                    return 0.0;
                }
            }
        }
        return best;
    }
    match (a, b) {
        (Geometry::Point(p), Geometry::Point(q)) => p.dist(q),
        (Geometry::Point(p), Geometry::LineString(l))
        | (Geometry::LineString(l), Geometry::Point(p)) => l.dist_point(p),
        (Geometry::Point(p), Geometry::Polygon(poly))
        | (Geometry::Polygon(poly), Geometry::Point(p)) => poly.dist_point(p),
        (Geometry::LineString(l1), Geometry::LineString(l2)) => segments_min_dist(
            &l1.segments().collect::<Vec<_>>(),
            &l2.segments().collect::<Vec<_>>(),
        ),
        (Geometry::LineString(l), Geometry::Polygon(poly))
        | (Geometry::Polygon(poly), Geometry::LineString(l)) => {
            // Zero if any line vertex is inside the polygon, else min
            // boundary distance.
            if l.points().iter().any(|p| poly.locate_point(p) != PointLocation::Outside) {
                return 0.0;
            }
            segments_min_dist(
                &l.segments().collect::<Vec<_>>(),
                &poly.boundary_segments().collect::<Vec<_>>(),
            )
        }
        (Geometry::Polygon(p1), Geometry::Polygon(p2)) => {
            // Zero if either contains a vertex of the other (covers the
            // containment case); else min distance between boundaries.
            if p1.exterior().points().iter().any(|p| p2.locate_point(p) != PointLocation::Outside)
                || p2
                    .exterior()
                    .points()
                    .iter()
                    .any(|p| p1.locate_point(p) != PointLocation::Outside)
            {
                return 0.0;
            }
            segments_min_dist(
                &p1.boundary_segments().collect::<Vec<_>>(),
                &p2.boundary_segments().collect::<Vec<_>>(),
            )
        }
        // Multi cases handled above.
        _ => unreachable!("multi geometries decomposed above"),
    }
}

fn segments_min_dist(a: &[Segment], b: &[Segment]) -> f64 {
    let mut best = f64::INFINITY;
    for s in a {
        for t in b {
            best = best.min(s.dist_segment(t));
            if best == 0.0 {
                return 0.0;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Ring;
    use crate::rect::Rect;

    fn pt(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn square(x: f64, y: f64, s: f64) -> Geometry {
        Geometry::Polygon(Polygon::from_rect(&Rect::new(x, y, x + s, y + s)))
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            pt(0.0, 0.0),
            pt(4.0, 0.0),
            pt(4.0, 4.0),
            pt(0.0, 4.0),
            pt(2.0, 2.0),
            pt(1.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        // CCW orientation
        let ring = Ring::new(hull).unwrap();
        assert!(ring.signed_area() > 0.0);
        assert_eq!(ring.area(), 16.0);
    }

    #[test]
    fn hull_collinear() {
        let pts = vec![pt(0.0, 0.0), pt(1.0, 1.0), pt(2.0, 2.0)];
        let hull = convex_hull(&pts);
        assert_eq!(hull, vec![pt(0.0, 0.0), pt(2.0, 2.0)]);
    }

    #[test]
    fn hull_single_and_duplicate_points() {
        assert_eq!(convex_hull(&[pt(1.0, 1.0)]), vec![pt(1.0, 1.0)]);
        assert_eq!(convex_hull(&[pt(1.0, 1.0), pt(1.0, 1.0)]), vec![pt(1.0, 1.0)]);
    }

    #[test]
    fn simplify_collapses_collinear_runs() {
        let pts = vec![pt(0.0, 0.0), pt(1.0, 0.001), pt(2.0, 0.0), pt(3.0, 1.0)];
        let out = simplify(&pts, 0.01);
        assert_eq!(out, vec![pt(0.0, 0.0), pt(2.0, 0.0), pt(3.0, 1.0)]);
        // With a huge epsilon only endpoints survive.
        let out = simplify(&pts, 10.0);
        assert_eq!(out, vec![pt(0.0, 0.0), pt(3.0, 1.0)]);
    }

    #[test]
    fn simplify_keeps_salient_vertices() {
        let pts = vec![pt(0.0, 0.0), pt(5.0, 5.0), pt(10.0, 0.0)];
        assert_eq!(simplify(&pts, 1.0), pts);
    }

    #[test]
    fn centroid_of_square() {
        let g = square(0.0, 0.0, 2.0);
        let c = centroid(&g);
        assert!(c.almost_eq(&pt(1.0, 1.0)));
    }

    #[test]
    fn centroid_with_hole_shifts_away() {
        let outer = Ring::new(Rect::new(0.0, 0.0, 10.0, 10.0).corners().to_vec()).unwrap();
        // hole near the right side pulls centroid left
        let hole = Ring::new(Rect::new(7.0, 4.0, 9.0, 6.0).corners().to_vec()).unwrap();
        let g = Geometry::Polygon(Polygon::new(outer, vec![hole]));
        let c = centroid(&g);
        assert!(c.x < 5.0);
        assert!((c.y - 5.0).abs() < 1e-9);
    }

    #[test]
    fn centroid_of_linestring_is_length_weighted() {
        let l = LineString::new(vec![pt(0.0, 0.0), pt(2.0, 0.0), pt(2.0, 2.0)]).unwrap();
        let c = centroid(&Geometry::LineString(l));
        // segment mids (1,0) w=2 and (2,1) w=2 -> (1.5, 0.5)
        assert!(c.almost_eq(&pt(1.5, 0.5)));
    }

    #[test]
    fn distance_between_disjoint_squares() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(4.0, 0.0, 1.0);
        assert!((geometry_distance(&a, &b) - 3.0).abs() < 1e-12);
        assert_eq!(geometry_distance(&a, &a), 0.0);
    }

    #[test]
    fn distance_containment_is_zero() {
        let big = square(0.0, 0.0, 10.0);
        let small = square(4.0, 4.0, 1.0);
        assert_eq!(geometry_distance(&big, &small), 0.0);
    }

    #[test]
    fn distance_point_to_polygon() {
        let g = square(0.0, 0.0, 2.0);
        assert_eq!(geometry_distance(&g, &Geometry::Point(pt(5.0, 1.0))), 3.0);
        assert_eq!(geometry_distance(&Geometry::Point(pt(1.0, 1.0)), &g), 0.0);
    }

    #[test]
    fn distance_multi_decomposes() {
        let mp = Geometry::MultiPoint(
            crate::multi::MultiPoint::new(vec![pt(100.0, 0.0), pt(5.0, 0.0)]).unwrap(),
        );
        let g = square(0.0, 0.0, 1.0);
        assert_eq!(geometry_distance(&mp, &g), 4.0);
    }
}
