//! Prepared geometries: decoded-once edge arrays with a per-geometry
//! segment index for repeated secondary-filter evaluation.
//!
//! The paper's `SDO_RELATE`/`SDO_WITHIN_DISTANCE` secondary filter
//! evaluates exact predicates against the *same* stored geometry for
//! every candidate the primary filter emits. The naive predicates in
//! [`crate::relate`] re-collect `Vec<Segment>` edge lists on every call
//! and test segment pairs quadratically. [`PreparedGeometry`] amortizes
//! that work:
//!
//! * boundary segments are decoded **once** into a flat edge array,
//! * a small STR-packed bounding-box hierarchy ([`SegIndex`]) over the
//!   edges answers "which segments can touch this rectangle" in
//!   `O(log n + k)` with a fixed-size traversal stack — no per-query
//!   allocation,
//! * a representative interior point per polygon element is computed
//!   once and cached.
//!
//! With both sides prepared, `intersects` / `covered_by` /
//! `within_distance` drop from `O(n·m)` segment tests to
//! `O((n + m)·log)` candidate probes, and the steady-state
//! secondary-filter loop performs no heap allocation.
//!
//! ## Equivalence with the naive predicates
//!
//! Every fast path funnels its candidates into the *same*
//! [`Segment`]/ring primitives the naive code uses, so prepared results
//! match `relate`/`within_distance` exactly as long as the candidate
//! set is a superset of the pairs the naive code tests:
//!
//! * point-on-boundary probes pad the query by [`EPS`], the exact
//!   absolute bound `Segment::contains_point` enforces;
//! * ray-cast point location counts the same half-open edge crossings
//!   as `Ring::locate_point`; parity over exterior-plus-hole edges
//!   equals the sequential exterior/holes logic of
//!   `Polygon::locate_point` for validly nested rings (holes inside the
//!   exterior, mutually disjoint — what [`crate::validate`] enforces);
//! * segment-pair probes that mirror a bbox-prefiltered naive loop
//!   (`segments_intersect_filtered`, `crosses_out_of_polygon`) query
//!   with the raw segment bbox and reproduce the identical pair set;
//! * segment-pair probes that mirror an *unfiltered* naive loop
//!   (`lines_intersect`) pad the query by [`join_pad`]: the orientation
//!   tolerance can let `Segment::intersects` accept pairs whose bboxes
//!   are disjoint by up to roughly `EPS * extent / min_edge_length`,
//!   and the pad dominates that band (clamping to the full extent, i.e.
//!   a plain scan, for degenerate inputs). Extra candidates only cost
//!   time — the exact segment test runs afterwards.

use crate::geometry::Geometry;
use crate::point::Point;
use crate::polygon::{PointLocation, Polygon, Ring};
use crate::rect::Rect;
use crate::relate::RelateMask;
use crate::segment::Segment;
use crate::EPS;
use std::ops::ControlFlow;
use std::sync::{Arc, OnceLock};

/// Fanout of the packed segment-index hierarchy. Sixteen keeps the
/// tree two levels deep for the ring sizes validation sees (~10k
/// edges) while leaf groups still scan in a few cache lines.
const FAN: usize = 16;

/// Edge count below which `Ring::is_simple` keeps its quadratic scan;
/// building an index does not pay for itself under this.
pub(crate) const SIMPLE_SCAN_CUTOFF: usize = 48;

// ---------------------------------------------------------------------------
// Segment index
// ---------------------------------------------------------------------------

/// A static STR-packed bounding-box hierarchy over a segment array.
///
/// Built once per prepared geometry (or per validated ring); queries
/// descend with a fixed-size stack and never allocate. The index stores
/// raw (unpadded) segment bboxes — callers pad the *query* rectangle to
/// the tolerance their probe needs.
pub struct SegIndex {
    /// Segment index (into the caller's edge array) at each packed
    /// leaf position.
    perm: Vec<u32>,
    /// Segment bbox at each packed leaf position.
    leaf: Vec<Rect>,
    /// The leaf bboxes again as four parallel coordinate arrays, so a
    /// leaf run can be prefiltered four boxes per AVX2 compare (the
    /// SIMD bbox prefilter; unused on non-AVX2 hosts).
    lmin_x: Vec<f64>,
    lmin_y: Vec<f64>,
    lmax_x: Vec<f64>,
    lmax_y: Vec<f64>,
    /// `levels[0]` groups `FAN` leaves per node, `levels[k]` groups
    /// `FAN` nodes of `levels[k-1]`; the last level has at most `FAN`
    /// nodes and acts as the root's children.
    levels: Vec<Vec<Rect>>,
}

impl SegIndex {
    /// Build over one bbox per segment.
    pub fn build(boxes: &[Rect]) -> SegIndex {
        let n = boxes.len();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        if n > FAN {
            // Sort-Tile-Recursive: slice by center x, order each
            // vertical slice by center y, pack consecutive runs.
            perm.sort_unstable_by(|&i, &j| {
                boxes[i as usize].center().x.total_cmp(&boxes[j as usize].center().x)
            });
            let pages = n.div_ceil(FAN);
            let slices = (pages as f64).sqrt().ceil() as usize;
            let per_slice = n.div_ceil(slices.max(1));
            for chunk in perm.chunks_mut(per_slice.max(1)) {
                chunk.sort_unstable_by(|&i, &j| {
                    boxes[i as usize].center().y.total_cmp(&boxes[j as usize].center().y)
                });
            }
        }
        let leaf: Vec<Rect> = perm.iter().map(|&i| boxes[i as usize]).collect();
        let lmin_x = leaf.iter().map(|r| r.min_x).collect();
        let lmin_y = leaf.iter().map(|r| r.min_y).collect();
        let lmax_x = leaf.iter().map(|r| r.max_x).collect();
        let lmax_y = leaf.iter().map(|r| r.max_y).collect();
        let mut levels: Vec<Vec<Rect>> = Vec::new();
        let mut cur: &[Rect] = &leaf;
        loop {
            if cur.len() <= FAN {
                break;
            }
            let parents: Vec<Rect> = cur
                .chunks(FAN)
                .map(|c| c.iter().fold(Rect::EMPTY, |acc, r| acc.union(r)))
                .collect();
            levels.push(parents);
            // Re-borrow from `levels` so the loop-carried reference
            // does not outlive the temporary.
            cur = levels.last().unwrap();
        }
        SegIndex { perm, leaf, lmin_x, lmin_y, lmax_x, lmax_y, levels }
    }

    /// Number of indexed segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.leaf.len()
    }

    /// True when the index holds no segments.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.leaf.is_empty()
    }

    /// Visit every segment whose bbox intersects `q`; the visitor gets
    /// the segment's index in the original edge array and may break
    /// early. Returns `true` when the visitor broke.
    ///
    /// Traversal uses a fixed stack: depth is `log_FAN(n)` (≤ 8 for
    /// `u32` counts) and at most `FAN` children are pending per level,
    /// so 160 slots can never overflow.
    pub fn query<F>(&self, q: &Rect, mut visit: F) -> bool
    where
        F: FnMut(u32) -> ControlFlow<()>,
    {
        if self.levels.is_empty() {
            return self.scan_leaves(q, 0, self.leaf.len(), &mut visit);
        }
        let top = self.levels.len() - 1;
        let mut stack = [(0u8, 0u32); 160];
        let mut sp = 0usize;
        for (i, r) in self.levels[top].iter().enumerate() {
            if r.intersects(q) {
                stack[sp] = (top as u8, i as u32);
                sp += 1;
            }
        }
        while sp > 0 {
            sp -= 1;
            let (lvl, idx) = stack[sp];
            let start = idx as usize * FAN;
            if lvl == 0 {
                let end = (start + FAN).min(self.leaf.len());
                if self.scan_leaves(q, start, end, &mut visit) {
                    return true;
                }
            } else {
                let children = &self.levels[lvl as usize - 1];
                let end = (start + FAN).min(children.len());
                for (off, child) in children[start..end].iter().enumerate() {
                    if child.intersects(q) {
                        stack[sp] = (lvl - 1, (start + off) as u32);
                        sp += 1;
                    }
                }
            }
        }
        false
    }

    /// Visit leaf positions `start..end` whose bbox intersects `q`, in
    /// ascending position order. On AVX2 hosts the bbox prefilter runs
    /// four boxes per compare over the SoA arrays; hit order, visited
    /// set, and early-break behaviour are identical to the scalar loop.
    fn scan_leaves<F>(&self, q: &Rect, start: usize, end: usize, visit: &mut F) -> bool
    where
        F: FnMut(u32) -> ControlFlow<()>,
    {
        #[cfg(target_arch = "x86_64")]
        if crate::simd::dispatched() == crate::simd::SimdIsa::Avx2 {
            // An `unsafe fn` call, guarded by the runtime AVX2 check.
            return unsafe { self.scan_leaves_avx2(q, start, end, visit) };
        }
        for pos in start..end {
            if self.leaf[pos].intersects(q) && visit(self.perm[pos]).is_break() {
                return true;
            }
        }
        false
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn scan_leaves_avx2<F>(&self, q: &Rect, start: usize, end: usize, visit: &mut F) -> bool
    where
        F: FnMut(u32) -> ControlFlow<()>,
    {
        use core::arch::x86_64::*;
        let qminx = _mm256_set1_pd(q.min_x);
        let qminy = _mm256_set1_pd(q.min_y);
        let qmaxx = _mm256_set1_pd(q.max_x);
        let qmaxy = _mm256_set1_pd(q.max_y);
        let mut pos = start;
        while pos + 4 <= end {
            let minx = _mm256_loadu_pd(self.lmin_x.as_ptr().add(pos));
            let miny = _mm256_loadu_pd(self.lmin_y.as_ptr().add(pos));
            let maxx = _mm256_loadu_pd(self.lmax_x.as_ptr().add(pos));
            let maxy = _mm256_loadu_pd(self.lmax_y.as_ptr().add(pos));
            let m = _mm256_and_pd(
                _mm256_and_pd(
                    _mm256_cmp_pd::<_CMP_LE_OQ>(minx, qmaxx),
                    _mm256_cmp_pd::<_CMP_LE_OQ>(qminx, maxx),
                ),
                _mm256_and_pd(
                    _mm256_cmp_pd::<_CMP_LE_OQ>(miny, qmaxy),
                    _mm256_cmp_pd::<_CMP_LE_OQ>(qminy, maxy),
                ),
            );
            let mut bits = _mm256_movemask_pd(m) as u32;
            while bits != 0 {
                let lane = bits.trailing_zeros() as usize;
                if visit(self.perm[pos + lane]).is_break() {
                    return true;
                }
                bits &= bits - 1;
            }
            pos += 4;
        }
        while pos < end {
            if self.leaf[pos].intersects(q) && visit(self.perm[pos]).is_break() {
                return true;
            }
            pos += 1;
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Prepared geometry
// ---------------------------------------------------------------------------

/// Segment endpoints as four parallel coordinate arrays, feeding the
/// vectorized ray-cast crossing kernel four edges per AVX2 iteration.
#[derive(Default)]
struct SegSoa {
    ax: Vec<f64>,
    ay: Vec<f64>,
    bx: Vec<f64>,
    by: Vec<f64>,
}

impl SegSoa {
    fn from_segs(segs: &[Segment]) -> SegSoa {
        SegSoa {
            ax: segs.iter().map(|s| s.a.x).collect(),
            ay: segs.iter().map(|s| s.a.y).collect(),
            bx: segs.iter().map(|s| s.b.x).collect(),
            by: segs.iter().map(|s| s.b.y).collect(),
        }
    }
}

/// Edge count up to which polygon point location scans every edge with
/// the SIMD crossing kernel instead of descending the segment index:
/// at 4 edges per compare the full scan beats the indexed strip query
/// comfortably in this range, and the arrays stay cache-resident.
const SIMD_LOCATE_CUTOFF: usize = 1024;

/// One simple (non-multi) element of a prepared geometry.
struct PrepElem {
    /// The element itself (points/linestring/polygon — never `Multi*`).
    geom: Geometry,
    /// Element bbox.
    bbox: Rect,
    /// Decoded edges: linestring segments, or polygon boundary segments
    /// in `boundary_segments()` order (exterior ring then holes).
    segs: Vec<Segment>,
    /// `segs` again in SoA form for the vectorized crossing kernel.
    soa: SegSoa,
    /// Index over `segs`.
    index: SegIndex,
    /// Representative interior point, polygons only, computed on first
    /// use.
    interior: OnceLock<Point>,
}

/// Lazily built per-geometry acceleration state.
struct Shape {
    elems: Vec<PrepElem>,
    /// Shortest edge across all elements (`INFINITY` for point-only
    /// geometries); feeds the conservative [`join_pad`].
    min_len: f64,
}

/// A geometry plus cached acceleration structures for repeated exact
/// predicate evaluation (the paper's secondary filter).
///
/// Construction is cheap — the edge arrays and segment index are built
/// on the first predicate call (`OnceLock`), so callers that only ever
/// run the primary filter pay nothing.
pub struct PreparedGeometry {
    geom: Arc<Geometry>,
    bbox: Rect,
    shape: OnceLock<Shape>,
}

impl PreparedGeometry {
    /// Wrap a geometry; no index is built until a predicate runs.
    pub fn new(geom: Geometry) -> Self {
        Self::from_arc(Arc::new(geom))
    }

    /// Wrap a shared geometry without cloning its coordinate data
    /// (buffer caches hand out `Arc<Geometry>`).
    pub fn from_arc(geom: Arc<Geometry>) -> Self {
        let bbox = geom.bbox();
        PreparedGeometry { geom, bbox, shape: OnceLock::new() }
    }

    /// The wrapped geometry.
    #[inline]
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// Cached bounding box.
    #[inline]
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    fn shape(&self) -> &Shape {
        self.shape.get_or_init(|| {
            let mut min_len = f64::INFINITY;
            let elems = self
                .geom
                .elements()
                .into_iter()
                .map(|e| {
                    let segs: Vec<Segment> = match &e {
                        Geometry::Point(_) => Vec::new(),
                        Geometry::LineString(l) => l.segments().collect(),
                        Geometry::Polygon(p) => p.boundary_segments().collect(),
                        _ => unreachable!("elements() yields simple geometries"),
                    };
                    for s in &segs {
                        min_len = min_len.min(s.length());
                    }
                    let boxes: Vec<Rect> = segs.iter().map(|s| s.bbox()).collect();
                    PrepElem {
                        bbox: e.bbox(),
                        index: SegIndex::build(&boxes),
                        soa: SegSoa::from_segs(&segs),
                        segs,
                        geom: e,
                        interior: OnceLock::new(),
                    }
                })
                .collect();
            Shape { elems, min_len }
        })
    }

    /// Cached representative interior point of the first polygon
    /// element (`None` for point/line geometries).
    pub fn interior_point(&self) -> Option<Point> {
        self.shape().elems.iter().find_map(|e| match &e.geom {
            Geometry::Polygon(p) => {
                Some(*e.interior.get_or_init(|| crate::relate::interior_point(p)))
            }
            _ => None,
        })
    }

    /// Prepared `ANYINTERACT`: equals [`crate::relate::intersects`].
    pub fn intersects(&self, other: &PreparedGeometry) -> bool {
        if !self.bbox.intersects(&other.bbox) {
            return false;
        }
        let (sa, sb) = (self.shape(), other.shape());
        let pad = join_pad(self, other);
        sa.elems.iter().any(|ea| sb.elems.iter().any(|eb| elem_intersects(ea, eb, pad)))
    }

    /// Prepared covered-by: equals [`crate::relate::covered_by`]
    /// (`self ⊆ other`, closed sense).
    pub fn covered_by(&self, other: &PreparedGeometry) -> bool {
        if self.bbox.is_empty() {
            return false;
        }
        if !other.bbox.contains_rect(&self.bbox) {
            return false;
        }
        let (sa, sb) = (self.shape(), other.shape());
        sa.elems.iter().all(|ea| sb.elems.iter().any(|eb| elem_covered_by(ea, eb)))
    }

    /// Prepared boundary interaction: equals
    /// [`crate::relate::boundaries_interact`].
    pub fn boundaries_interact(&self, other: &PreparedGeometry) -> bool {
        let (sa, sb) = (self.shape(), other.shape());
        let a_has_segs = sa.elems.iter().any(|e| !e.segs.is_empty());
        let b_has_segs = sb.elems.iter().any(|e| !e.segs.is_empty());
        match (a_has_segs, b_has_segs) {
            (false, false) => self.intersects(other),
            (false, true) => vertices_touch_segments(sa, sb),
            (true, false) => vertices_touch_segments(sb, sa),
            (true, true) => {
                // Same pair set as `segments_intersect_filtered` over
                // the flattened segment arrays: raw-bbox candidates,
                // exact test.
                for ea in &sa.elems {
                    for s in &ea.segs {
                        let q = s.bbox();
                        for eb in &sb.elems {
                            if seg_hits_index(s, &q, eb, |s, t| s.intersects(t)) {
                                return true;
                            }
                        }
                    }
                }
                false
            }
        }
    }

    /// Prepared within-distance: equals
    /// [`crate::relate::within_distance`].
    pub fn within_distance(&self, other: &PreparedGeometry, d: f64) -> bool {
        if d <= 0.0 {
            return self.intersects(other);
        }
        if self.bbox.mindist(&other.bbox) > d + EPS {
            return false;
        }
        let (sa, sb) = (self.shape(), other.shape());
        // `geometry_distance` is a min over element pairs; `min <= d`
        // iff some pair is within `d`.
        let reach = d + EPS + join_pad(self, other);
        sa.elems.iter().any(|ea| sb.elems.iter().any(|eb| elem_within(ea, eb, d, reach)))
    }

    /// Prepared single-mask relate: equals [`crate::relate::relate`].
    ///
    /// `TOUCH` and `OVERLAP` need interior-interior analysis that the
    /// index does not accelerate; they evaluate their containment and
    /// intersection terms through the prepared paths and fall back to
    /// the naive `interiors_intersect` for the rest.
    pub fn relate(&self, other: &PreparedGeometry, mask: RelateMask) -> bool {
        match mask {
            RelateMask::AnyInteract => self.intersects(other),
            RelateMask::Disjoint => !self.intersects(other),
            RelateMask::Inside => self.covered_by(other) && !self.boundaries_interact(other),
            RelateMask::Contains => other.covered_by(self) && !self.boundaries_interact(other),
            RelateMask::CoveredBy => {
                self.covered_by(other) && self.boundaries_interact(other) && !other.covered_by(self)
            }
            RelateMask::Covers => {
                other.covered_by(self) && self.boundaries_interact(other) && !self.covered_by(other)
            }
            RelateMask::Touch => {
                self.intersects(other)
                    && !crate::relate::interiors_intersect(&self.geom, &other.geom)
            }
            RelateMask::Overlap => {
                crate::relate::interiors_intersect(&self.geom, &other.geom)
                    && !self.covered_by(other)
                    && !other.covered_by(self)
            }
            RelateMask::Equal => self.covered_by(other) && other.covered_by(self),
        }
    }

    /// Prepared mask union: equals [`crate::relate::relate_any`].
    pub fn relate_any(&self, other: &PreparedGeometry, masks: &[RelateMask]) -> bool {
        masks.iter().any(|m| self.relate(other, *m))
    }

    /// Prepared point cover test: equals [`Geometry::covers_point`].
    pub fn covers_point(&self, p: &Point) -> bool {
        self.shape().elems.iter().any(|e| elem_covers_point(e, p))
    }
}

/// Conservative query padding for segment-pair probes that mirror an
/// *unfiltered* naive loop. See the module docs: the orientation
/// tolerance admits "intersections" between segments whose bboxes are
/// disjoint by up to ~`EPS * extent / min_edge_length`; clamped to the
/// combined extent so degenerate edges degrade to a full scan, never a
/// missed pair.
fn join_pad(a: &PreparedGeometry, b: &PreparedGeometry) -> f64 {
    let u = a.bbox.union(&b.bbox);
    let extent = (u.width() + u.height()).max(1.0);
    let min_len = a.shape().min_len.min(b.shape().min_len).max(EPS);
    (EPS * 8.0 * (1.0 + extent) * (1.0 + 1.0 / min_len)).min(extent)
}

/// `a`'s vertices against `b`'s segments — the point-side arm of
/// `boundaries_interact`. Query pads by `EPS`, the exact
/// `Segment::contains_point` bbox slack.
fn vertices_touch_segments(points_side: &Shape, segs_side: &Shape) -> bool {
    points_side.elems.iter().any(|ea| {
        vertex_iter(&ea.geom).any(|p| {
            let q = point_query(&p);
            segs_side.elems.iter().any(|eb| index_any(eb, &q, |t| t.contains_point(&p)))
        })
    })
}

/// Vertices of a simple element without allocating.
fn vertex_iter(g: &Geometry) -> impl Iterator<Item = Point> + '_ {
    // Chained option iterators keep this allocation-free; exactly one
    // arm is non-empty per variant.
    let pt = match g {
        Geometry::Point(p) => Some(*p),
        _ => None,
    };
    let line = match g {
        Geometry::LineString(l) => Some(l.points().iter().copied()),
        _ => None,
    };
    let poly = match g {
        Geometry::Polygon(p) => Some(
            p.exterior()
                .points()
                .iter()
                .chain(p.holes().iter().flat_map(|h| h.points().iter()))
                .copied(),
        ),
        _ => None,
    };
    pt.into_iter().chain(line.into_iter().flatten()).chain(poly.into_iter().flatten())
}

/// Query rectangle for "which segments can contain this point":
/// `Segment::contains_point` accepts points within `EPS` of the
/// segment bbox, so an `EPS` pad is exact.
#[inline]
fn point_query(p: &Point) -> Rect {
    Rect::new(p.x - EPS, p.y - EPS, p.x + EPS, p.y + EPS)
}

/// True when any indexed segment of `e` intersecting `q` satisfies
/// `test`.
#[inline]
fn index_any(e: &PrepElem, q: &Rect, mut test: impl FnMut(&Segment) -> bool) -> bool {
    e.index.query(q, |j| {
        if test(&e.segs[j as usize]) {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    })
}

/// True when `s` matches any of `e`'s segments near `q` under `test`.
#[inline]
fn seg_hits_index(
    s: &Segment,
    q: &Rect,
    e: &PrepElem,
    mut test: impl FnMut(&Segment, &Segment) -> bool,
) -> bool {
    index_any(e, q, |t| test(s, t))
}

/// Indexed equivalent of `Ring`/`Polygon` point location over one
/// polygon element: ray-cast parity across every boundary edge with
/// the same half-open crossing rule, boundary class first.
///
/// On AVX2 hosts with at most [`SIMD_LOCATE_CUTOFF`] edges the kernel
/// scans *every* edge four lanes at a time instead of descending the
/// index. Equivalence: the index's strip query visits a superset of
/// the contributing edges — a straddling edge whose crossing satisfies
/// `x_at > p.x` always intersects the strip (its bbox reaches past
/// `p.x` at height `p.y`), and every `contains_point` candidate
/// intersects the `EPS`-padded probe box — so parity and the
/// boundary class agree between the two scans.
fn elem_locate_poly(e: &PrepElem, p: &Point) -> PointLocation {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::dispatched() == crate::simd::SimdIsa::Avx2
        && !e.segs.is_empty()
        && e.segs.len() <= SIMD_LOCATE_CUTOFF
    {
        return unsafe { elem_locate_poly_avx2(e, p) };
    }
    let q = Rect::new(p.x - EPS, p.y - EPS, f64::INFINITY, p.y + EPS);
    let mut on_boundary = false;
    let mut inside = false;
    e.index.query(&q, |j| {
        let s = &e.segs[j as usize];
        if s.contains_point(p) {
            on_boundary = true;
            return ControlFlow::Break(());
        }
        if (s.a.y > p.y) != (s.b.y > p.y) {
            let x_at = s.a.x + (p.y - s.a.y) / (s.b.y - s.a.y) * (s.b.x - s.a.x);
            if x_at > p.x {
                inside = !inside;
            }
        }
        ControlFlow::Continue(())
    });
    if on_boundary {
        PointLocation::OnBoundary
    } else if inside {
        PointLocation::Inside
    } else {
        PointLocation::Outside
    }
}

/// Full-scan SIMD point location: the half-open ray-cast crossing test
/// four edges per iteration, with a vectorized bbox prefilter feeding
/// boundary candidates into the exact `Segment::contains_point`.
///
/// The per-lane crossing arithmetic (`x_at = ax + (py-ay)/(by-ay)*(bx-ax)`)
/// is the identical IEEE 754 operation sequence as the scalar path, so
/// each lane's toggle decision is bit-identical; non-straddling lanes
/// may divide by zero but their inf/NaN results are masked out
/// (`_CMP_GT_OQ` is false on NaN).
///
/// # Safety
/// Caller must ensure AVX2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn elem_locate_poly_avx2(e: &PrepElem, p: &Point) -> PointLocation {
    use core::arch::x86_64::*;
    let n = e.segs.len();
    let px = _mm256_set1_pd(p.x);
    let py = _mm256_set1_pd(p.y);
    let eps = _mm256_set1_pd(EPS);
    let mut crossings = 0u32;
    let mut i = 0;
    while i + 4 <= n {
        let ax = _mm256_loadu_pd(e.soa.ax.as_ptr().add(i));
        let ay = _mm256_loadu_pd(e.soa.ay.as_ptr().add(i));
        let bx = _mm256_loadu_pd(e.soa.bx.as_ptr().add(i));
        let by = _mm256_loadu_pd(e.soa.by.as_ptr().add(i));
        // Boundary candidates: p inside the EPS-padded edge bbox.
        let minx = _mm256_sub_pd(_mm256_min_pd(ax, bx), eps);
        let maxx = _mm256_add_pd(_mm256_max_pd(ax, bx), eps);
        let miny = _mm256_sub_pd(_mm256_min_pd(ay, by), eps);
        let maxy = _mm256_add_pd(_mm256_max_pd(ay, by), eps);
        let near = _mm256_and_pd(
            _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_LE_OQ>(minx, px),
                _mm256_cmp_pd::<_CMP_LE_OQ>(px, maxx),
            ),
            _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_LE_OQ>(miny, py),
                _mm256_cmp_pd::<_CMP_LE_OQ>(py, maxy),
            ),
        );
        let mut cand = _mm256_movemask_pd(near) as u32;
        while cand != 0 {
            let lane = cand.trailing_zeros() as usize;
            if e.segs[i + lane].contains_point(p) {
                return PointLocation::OnBoundary;
            }
            cand &= cand - 1;
        }
        // Half-open crossing: (ay > py) != (by > py), toggle on
        // x_at > px.
        let a_above = _mm256_cmp_pd::<_CMP_GT_OQ>(ay, py);
        let b_above = _mm256_cmp_pd::<_CMP_GT_OQ>(by, py);
        let straddle = _mm256_xor_pd(a_above, b_above);
        let t = _mm256_div_pd(_mm256_sub_pd(py, ay), _mm256_sub_pd(by, ay));
        let x_at = _mm256_add_pd(ax, _mm256_mul_pd(t, _mm256_sub_pd(bx, ax)));
        let toggles = _mm256_and_pd(straddle, _mm256_cmp_pd::<_CMP_GT_OQ>(x_at, px));
        crossings += (_mm256_movemask_pd(toggles) as u32).count_ones();
        i += 4;
    }
    for s in &e.segs[i..] {
        if s.contains_point(p) {
            return PointLocation::OnBoundary;
        }
        if (s.a.y > p.y) != (s.b.y > p.y) {
            let x_at = s.a.x + (p.y - s.a.y) / (s.b.y - s.a.y) * (s.b.x - s.a.x);
            if x_at > p.x {
                crossings += 1;
            }
        }
    }
    if crossings & 1 == 1 {
        PointLocation::Inside
    } else {
        PointLocation::Outside
    }
}

/// Indexed `covers_point` for one simple element.
fn elem_covers_point(e: &PrepElem, p: &Point) -> bool {
    match &e.geom {
        Geometry::Point(q) => q.almost_eq(p),
        Geometry::LineString(_) => index_any(e, &point_query(p), |s| s.contains_point(p)),
        Geometry::Polygon(_) => elem_locate_poly(e, p) != PointLocation::Outside,
        _ => unreachable!("elements are simple"),
    }
}

/// Indexed `intersects_simple`.
fn elem_intersects(ea: &PrepElem, eb: &PrepElem, pad: f64) -> bool {
    use Geometry::*;
    match (&ea.geom, &eb.geom) {
        (Point(p), Point(q)) => p.almost_eq(q),
        (Point(p), LineString(_)) => elem_covers_point(eb, p),
        (LineString(_), Point(p)) => elem_covers_point(ea, p),
        (Point(p), Polygon(_)) => elem_covers_point(eb, p),
        (Polygon(_), Point(p)) => elem_covers_point(ea, p),
        // `lines_intersect` has no bbox prefilter — pad the candidate
        // query so tolerance-admitted pairs survive.
        (LineString(_), LineString(_)) => seg_join_intersects(ea, eb, pad),
        (LineString(l), Polygon(_)) => {
            l.points().iter().any(|p| elem_locate_poly(eb, p) != PointLocation::Outside)
                || seg_join_intersects(ea, eb, pad)
        }
        (Polygon(_), LineString(l)) => {
            l.points().iter().any(|p| elem_locate_poly(ea, p) != PointLocation::Outside)
                || seg_join_intersects(eb, ea, pad)
        }
        (Polygon(p1), Polygon(p2)) => {
            // Mirrors `polygons_intersect`: element bbox check, exterior
            // vertices each way, then the bbox-prefiltered boundary
            // join (raw-bbox query — identical pair set).
            if !ea.bbox.intersects(&eb.bbox) {
                return false;
            }
            if p1
                .exterior()
                .points()
                .iter()
                .any(|p| elem_locate_poly(eb, p) != PointLocation::Outside)
                || p2
                    .exterior()
                    .points()
                    .iter()
                    .any(|p| elem_locate_poly(ea, p) != PointLocation::Outside)
            {
                return true;
            }
            seg_join_intersects(ea, eb, 0.0)
        }
        _ => unreachable!("elements are simple"),
    }
}

/// Any segment of `ea` intersecting any segment of `eb`, probing the
/// smaller side against the larger side's index.
fn seg_join_intersects(ea: &PrepElem, eb: &PrepElem, pad: f64) -> bool {
    let (probe, target) = if ea.segs.len() <= eb.segs.len() { (ea, eb) } else { (eb, ea) };
    probe.segs.iter().any(|s| {
        let q = s.bbox().expanded(pad);
        seg_hits_index(s, &q, target, |s, t| s.intersects(t))
    })
}

/// Indexed `covered_by_simple`.
fn elem_covered_by(ea: &PrepElem, eb: &PrepElem) -> bool {
    use Geometry::*;
    match (&ea.geom, &eb.geom) {
        (Point(p), _) => elem_covers_point(eb, p),
        (LineString(_), Point(_)) | (Polygon(_), Point(_)) | (Polygon(_), LineString(_)) => false,
        (LineString(l1), LineString(_)) => {
            l1.points().iter().all(|p| elem_covers_point(eb, p))
                && ea.segs.iter().all(|s| {
                    let mid = (s.a + s.b) * 0.5;
                    elem_covers_point(eb, &mid)
                })
        }
        (LineString(l), Polygon(_)) => {
            l.points().iter().all(|p| elem_locate_poly(eb, p) != PointLocation::Outside)
                && !elem_crosses_out(&ea.segs, eb)
        }
        (Polygon(_), Polygon(_)) => elem_polygon_covered_by(ea, eb),
        _ => unreachable!("elements are simple"),
    }
}

/// Indexed `crosses_out_of_polygon`: a proper boundary crossing
/// (raw-bbox candidates, like the naive prefilter) or a midpoint
/// falling outside.
fn elem_crosses_out(segs: &[Segment], poly_elem: &PrepElem) -> bool {
    for s in segs {
        let q = s.bbox();
        if seg_hits_index(s, &q, poly_elem, |s, t| s.crosses_properly(t)) {
            return true;
        }
        if elem_locate_poly(poly_elem, &((s.a + s.b) * 0.5)) == PointLocation::Outside {
            return true;
        }
    }
    false
}

/// Indexed `polygon_covered_by`.
fn elem_polygon_covered_by(ea: &PrepElem, eb: &PrepElem) -> bool {
    let a = match &ea.geom {
        Geometry::Polygon(p) => p,
        _ => unreachable!(),
    };
    let b = match &eb.geom {
        Geometry::Polygon(p) => p,
        _ => unreachable!(),
    };
    if !a.exterior().points().iter().all(|p| elem_locate_poly(eb, p) != PointLocation::Outside) {
        return false;
    }
    for h in a.holes() {
        if !h.points().iter().all(|p| elem_locate_poly(eb, p) != PointLocation::Outside) {
            return false;
        }
    }
    if elem_crosses_out(&ea.segs, eb) {
        return false;
    }
    // A hole of b strictly inside a would punch uncovered area out of a.
    for h in b.holes() {
        if h.points().iter().any(|p| elem_locate_poly(ea, p) == PointLocation::Inside) {
            return false;
        }
        if h.points().iter().all(|p| elem_locate_poly(ea, p) != PointLocation::Outside) {
            // Rare vertex-coincident case; mirror the naive centroid
            // probe (this branch may allocate — it is off the
            // steady-state ANYINTERACT/distance path).
            let c =
                crate::algorithms::centroid(&Geometry::Polygon(Polygon::from_exterior(h.clone())));
            if elem_locate_poly(ea, &c) == PointLocation::Inside
                && elem_locate_poly(eb, &c) == PointLocation::Outside
            {
                return false;
            }
        }
    }
    true
}

/// Indexed boolean form of `geometry_distance(ea, eb) <= d + EPS`.
///
/// `reach` is the candidate-query expansion: `d + EPS` (distance probes
/// are exactly bounded by bbox mindist) plus the tolerance pad for the
/// `Segment::intersects` zero-distance shortcut.
fn elem_within(ea: &PrepElem, eb: &PrepElem, d: f64, reach: f64) -> bool {
    use Geometry::*;
    let lim = d + EPS;
    match (&ea.geom, &eb.geom) {
        (Point(p), Point(q)) => p.dist(q) <= lim,
        (Point(p), LineString(_)) => point_near_segs(p, eb, lim, reach),
        (LineString(_), Point(p)) => point_near_segs(p, ea, lim, reach),
        (Point(p), Polygon(_)) => point_near_poly(p, eb, lim, reach),
        (Polygon(_), Point(p)) => point_near_poly(p, ea, lim, reach),
        (LineString(_), LineString(_)) => segs_near(ea, eb, lim, reach),
        (LineString(l), Polygon(_)) => {
            l.points().iter().any(|p| elem_locate_poly(eb, p) != PointLocation::Outside)
                || segs_near(ea, eb, lim, reach)
        }
        (Polygon(_), LineString(l)) => {
            l.points().iter().any(|p| elem_locate_poly(ea, p) != PointLocation::Outside)
                || segs_near(ea, eb, lim, reach)
        }
        (Polygon(p1), Polygon(p2)) => {
            p1.exterior().points().iter().any(|p| elem_locate_poly(eb, p) != PointLocation::Outside)
                || p2
                    .exterior()
                    .points()
                    .iter()
                    .any(|p| elem_locate_poly(ea, p) != PointLocation::Outside)
                || segs_near(ea, eb, lim, reach)
        }
        _ => unreachable!("elements are simple"),
    }
}

/// `LineString::dist_point(p) <= lim`, indexed.
fn point_near_segs(p: &Point, e: &PrepElem, lim: f64, reach: f64) -> bool {
    let q = Rect::new(p.x, p.y, p.x, p.y).expanded(reach);
    index_any(e, &q, |s| s.dist_point(p) <= lim)
}

/// `Polygon::dist_point(p) <= lim`, indexed.
fn point_near_poly(p: &Point, e: &PrepElem, lim: f64, reach: f64) -> bool {
    elem_locate_poly(e, p) != PointLocation::Outside || point_near_segs(p, e, lim, reach)
}

/// Any segment pair within `lim`, indexed (`segments_min_dist <= lim`).
fn segs_near(ea: &PrepElem, eb: &PrepElem, lim: f64, reach: f64) -> bool {
    let (probe, target) = if ea.segs.len() <= eb.segs.len() { (ea, eb) } else { (eb, ea) };
    probe.segs.iter().any(|s| {
        let q = s.bbox().expanded(reach);
        seg_hits_index(s, &q, target, |s, t| s.dist_segment(t) <= lim)
    })
}

// ---------------------------------------------------------------------------
// Indexed ring simplicity (validation path)
// ---------------------------------------------------------------------------

/// Index-accelerated form of `Ring::is_simple` for large rings: same
/// pair tests (`collinear_overlaps` for adjacent edges, `intersects`
/// otherwise), candidates from the segment index instead of an
/// `O(n²)` sweep.
pub(crate) fn ring_is_simple_indexed(ring: &Ring) -> bool {
    let edges: Vec<Segment> = ring.segments().collect();
    let n = edges.len();
    let boxes: Vec<Rect> = edges.iter().map(|s| s.bbox()).collect();
    let index = SegIndex::build(&boxes);
    // Pad the candidate query like `join_pad`: the naive check has no
    // bbox prefilter, so tolerance-admitted intersections between
    // bbox-disjoint edges must stay in the candidate set.
    let bb = ring.bbox();
    let extent = (bb.width() + bb.height()).max(1.0);
    let min_len = edges.iter().map(Segment::length).fold(f64::INFINITY, f64::min).max(EPS);
    let pad = (EPS * 8.0 * (1.0 + extent) * (1.0 + 1.0 / min_len)).min(extent);
    for i in 0..n {
        let q = boxes[i].expanded(pad);
        let broke = index.query(&q, |j| {
            let j = j as usize;
            if j <= i {
                return ControlFlow::Continue(());
            }
            let adjacent = j == i + 1 || (i == 0 && j == n - 1);
            let hit = if adjacent {
                edges[i].collinear_overlaps(&edges[j])
            } else {
                edges[i].intersects(&edges[j])
            };
            if hit {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        if broke {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relate::{self, RelateMask};
    use crate::wkt::parse_wkt;

    fn prep(wkt: &str) -> PreparedGeometry {
        PreparedGeometry::new(parse_wkt(wkt).unwrap())
    }

    fn fixtures() -> Vec<Geometry> {
        [
            "POINT(2 2)",
            "POINT(25 25)",
            "POINT(0 0)",
            "LINESTRING(0 0, 4 4, 8 0)",
            "LINESTRING(-2 1, 10 1)",
            "LINESTRING(20 20, 30 30)",
            "LINESTRING(1 1, 3 1, 3 3, 1 3, 1 1)",
            "POLYGON((0 0, 8 0, 8 8, 0 8, 0 0))",
            "POLYGON((0 0, 8 0, 8 8, 0 8, 0 0), (2 2, 6 2, 6 6, 2 6, 2 2))",
            "POLYGON((3 3, 5 3, 5 5, 3 5, 3 3))",
            "POLYGON((10 10, 14 10, 14 14, 10 14, 10 10))",
            "MULTIPOINT((2 2), (9 9))",
            "MULTILINESTRING((0 0, 4 4), (6 0, 6 9))",
            "MULTIPOLYGON(((0 0, 3 0, 3 3, 0 3, 0 0)), ((5 5, 9 5, 9 9, 5 9, 5 5)))",
        ]
        .iter()
        .map(|w| parse_wkt(w).unwrap())
        .collect()
    }

    #[test]
    fn prepared_predicates_match_naive_on_fixtures() {
        let gs = fixtures();
        let masks = [
            RelateMask::AnyInteract,
            RelateMask::Disjoint,
            RelateMask::Inside,
            RelateMask::Contains,
            RelateMask::CoveredBy,
            RelateMask::Covers,
            RelateMask::Touch,
            RelateMask::Overlap,
            RelateMask::Equal,
        ];
        for a in &gs {
            let pa = PreparedGeometry::new(a.clone());
            for b in &gs {
                let pb = PreparedGeometry::new(b.clone());
                assert_eq!(
                    pa.intersects(&pb),
                    relate::intersects(a, b),
                    "intersects {a:?} vs {b:?}"
                );
                assert_eq!(
                    pa.covered_by(&pb),
                    relate::covered_by(a, b),
                    "covered_by {a:?} vs {b:?}"
                );
                assert_eq!(
                    pa.boundaries_interact(&pb),
                    relate::boundaries_interact(a, b),
                    "boundaries {a:?} vs {b:?}"
                );
                for m in masks {
                    assert_eq!(
                        pa.relate(&pb, m),
                        relate::relate(a, b, m),
                        "mask {m:?} {a:?} vs {b:?}"
                    );
                }
                for d in [0.0, 0.5, 2.0, 10.0, 50.0] {
                    assert_eq!(
                        pa.within_distance(&pb, d),
                        relate::within_distance(a, b, d),
                        "within {d} {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn prepared_covers_point_matches_naive() {
        let gs = fixtures();
        let probes: Vec<Point> = (-2..12)
            .flat_map(|x| (-2..12).map(move |y| Point::new(x as f64 * 0.9, y as f64 * 1.1)))
            .collect();
        for g in &gs {
            let pg = PreparedGeometry::new(g.clone());
            for p in &probes {
                assert_eq!(pg.covers_point(p), g.covers_point(p), "{g:?} at {p:?}");
            }
        }
    }

    #[test]
    fn seg_index_query_matches_linear_scan() {
        // Deterministic pseudo-random segments.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let segs: Vec<Segment> = (0..500)
            .map(|_| {
                let x = next() * 100.0;
                let y = next() * 100.0;
                Segment::new(
                    Point::new(x, y),
                    Point::new(x + next() * 10.0 - 5.0, y + next() * 10.0 - 5.0),
                )
            })
            .collect();
        let boxes: Vec<Rect> = segs.iter().map(|s| s.bbox()).collect();
        let index = SegIndex::build(&boxes);
        assert_eq!(index.len(), segs.len());
        for _ in 0..50 {
            let x = next() * 110.0 - 5.0;
            let y = next() * 110.0 - 5.0;
            let q = Rect::new(x, y, x + next() * 30.0, y + next() * 30.0);
            let mut got: Vec<u32> = Vec::new();
            index.query(&q, |i| {
                got.push(i);
                ControlFlow::Continue(())
            });
            got.sort_unstable();
            let want: Vec<u32> = boxes
                .iter()
                .enumerate()
                .filter(|(_, b)| b.intersects(&q))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, want, "query {q}");
        }
    }

    #[test]
    fn indexed_locate_matches_polygon_locate() {
        let g = parse_wkt(
            "POLYGON((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2), \
             (6 6, 8 6, 8 8, 6 8, 6 6))",
        )
        .unwrap();
        let poly = match &g {
            Geometry::Polygon(p) => p.clone(),
            _ => unreachable!(),
        };
        let pg = PreparedGeometry::new(g);
        let shape = pg.shape();
        let e = &shape.elems[0];
        for xi in -10..110 {
            for yi in -10..110 {
                let p = Point::new(xi as f64 * 0.1, yi as f64 * 0.1);
                assert_eq!(elem_locate_poly(e, &p), poly.locate_point(&p), "at {p:?}");
            }
        }
    }

    #[test]
    fn locate_agrees_across_simd_cutoff() {
        // The same star-shaped outline at two resolutions: one under
        // SIMD_LOCATE_CUTOFF (full-scan SIMD path on AVX2 hosts) and
        // one over it (indexed strip-query path). Both must agree with
        // Polygon::locate_point everywhere, including boundary hits.
        for n in [64usize, 2048] {
            let pts: Vec<Point> = (0..n)
                .map(|i| {
                    let t = i as f64 / n as f64 * std::f64::consts::TAU;
                    let r = 50.0 + 10.0 * (5.0 * t).cos();
                    Point::new(r * t.cos(), r * t.sin())
                })
                .collect();
            let first = pts[0];
            let ring = Ring::new(pts).unwrap();
            let poly = Polygon::from_exterior(ring);
            let g = Geometry::Polygon(poly.clone());
            let pg = PreparedGeometry::new(g);
            let shape = pg.shape();
            let e = &shape.elems[0];
            assert_eq!(e.segs.len(), n);
            for xi in -7..7 {
                for yi in -7..7 {
                    let p = Point::new(xi as f64 * 9.7, yi as f64 * 9.3);
                    assert_eq!(elem_locate_poly(e, &p), poly.locate_point(&p), "n={n} at {p:?}");
                }
            }
            // A vertex is on the boundary in both paths.
            assert_eq!(elem_locate_poly(e, &first), PointLocation::OnBoundary, "n={n}");
        }
    }

    #[test]
    fn interior_point_cached_and_inside() {
        let pg = prep("POLYGON((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 8 2, 8 8, 2 8, 2 2))");
        let ip = pg.interior_point().unwrap();
        assert!(pg.covers_point(&ip));
        assert_eq!(pg.interior_point().unwrap(), ip, "second call must hit the cache");
        assert!(prep("LINESTRING(0 0, 1 1)").interior_point().is_none());
    }

    #[test]
    fn big_ring_is_simple_fast() {
        // ~10k-vertex near-circle: simple; the quadratic check would do
        // ~5·10⁷ segment tests here, the indexed one a few per edge.
        let n = 10_000;
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * std::f64::consts::TAU;
                let r = 100.0 + 3.0 * (7.0 * t).sin();
                Point::new(r * t.cos(), r * t.sin())
            })
            .collect();
        let ring = Ring::new(pts.clone()).unwrap();
        assert!(ring.is_simple());

        // Introduce one crossing far from the seam and re-check.
        let mut bad = pts;
        bad.swap(2_500, 2_502);
        let ring = Ring::new(bad).unwrap();
        assert!(!ring.is_simple());
    }

    #[test]
    fn indexed_simplicity_matches_quadratic_on_small_rings() {
        let simple = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ])
        .unwrap();
        let bowtie = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
        ])
        .unwrap();
        let spike = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 0.0), // collinear backtrack over the first edge
            Point::new(2.0, 3.0),
        ])
        .unwrap();
        for r in [&simple, &bowtie, &spike] {
            assert_eq!(ring_is_simple_indexed(r), r.is_simple(), "ring {:?}", r.points());
        }
    }
}
