//! Polylines.

use crate::error::GeomError;
use crate::point::Point;
use crate::rect::Rect;
use crate::segment::Segment;
use serde::{Deserialize, Serialize};

/// An open polyline with at least two vertices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineString {
    points: Vec<Point>,
}

impl LineString {
    /// Build a line string; fails with fewer than two vertices or any
    /// non-finite coordinate.
    pub fn new(points: Vec<Point>) -> Result<Self, GeomError> {
        if points.len() < 2 {
            return Err(GeomError::TooFewPoints { expected: 2, got: points.len() });
        }
        if points.iter().any(|p| !p.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        Ok(LineString { points })
    }

    /// The vertex sequence.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of vertices.
    #[inline]
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Iterate the consecutive segments.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// Total length along the polyline.
    pub fn length(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    /// Bounding rectangle over every vertex.
    pub fn bbox(&self) -> Rect {
        Rect::from_points(self.points.iter())
    }

    /// True when first and last vertices coincide.
    pub fn is_closed(&self) -> bool {
        self.points.first().zip(self.points.last()).is_some_and(|(a, b)| a.almost_eq(b))
    }

    /// True when `p` lies on any segment of the polyline.
    pub fn contains_point(&self, p: &Point) -> bool {
        self.segments().any(|s| s.contains_point(p))
    }

    /// Minimum distance from `p` to the polyline.
    pub fn dist_point(&self, p: &Point) -> f64 {
        self.segments().map(|s| s.dist_point(p)).fold(f64::INFINITY, f64::min)
    }

    /// Consume the polyline, yielding its vertices.
    pub fn into_points(self) -> Vec<Point> {
        self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(pts: &[(f64, f64)]) -> LineString {
        LineString::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn rejects_too_few_points() {
        assert!(matches!(
            LineString::new(vec![Point::new(0.0, 0.0)]),
            Err(GeomError::TooFewPoints { expected: 2, got: 1 })
        ));
    }

    #[test]
    fn rejects_nan() {
        assert_eq!(
            LineString::new(vec![Point::new(0.0, 0.0), Point::new(f64::NAN, 1.0)]),
            Err(GeomError::NonFiniteCoordinate)
        );
    }

    #[test]
    fn length_and_bbox() {
        let l = ls(&[(0.0, 0.0), (3.0, 0.0), (3.0, 4.0)]);
        assert_eq!(l.length(), 7.0);
        assert_eq!(l.bbox(), Rect::new(0.0, 0.0, 3.0, 4.0));
        assert_eq!(l.segments().count(), 2);
    }

    #[test]
    fn closed_detection() {
        let open = ls(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)]);
        assert!(!open.is_closed());
        let closed = ls(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 0.0)]);
        assert!(closed.is_closed());
    }

    #[test]
    fn point_containment_and_distance() {
        let l = ls(&[(0.0, 0.0), (2.0, 0.0)]);
        assert!(l.contains_point(&Point::new(1.0, 0.0)));
        assert!(!l.contains_point(&Point::new(1.0, 0.5)));
        assert_eq!(l.dist_point(&Point::new(1.0, 2.0)), 2.0);
    }
}
