//! Property-based equivalence: [`sdo_geom::PreparedGeometry`] fast
//! paths must return exactly what the naive `relate` family returns on
//! random point/linestring/polygon mixes (including multis and
//! polygons with holes).

use proptest::prelude::*;
use sdo_geom::algorithms::convex_hull;
use sdo_geom::multi::{MultiLineString, MultiPoint, MultiPolygon};
use sdo_geom::relate;
use sdo_geom::{Geometry, LineString, Point, Polygon, PreparedGeometry, RelateMask, Ring};

fn arb_point() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

/// Valid simple polygons via convex hulls of random point sets, with
/// an optional centrally scaled hole (strictly interior for a convex
/// exterior).
fn arb_polygon() -> impl Strategy<Value = Polygon> {
    (proptest::collection::vec(arb_point(), 3..12), any::<bool>()).prop_filter_map(
        "degenerate hull",
        |(pts, with_hole)| {
            let hull = convex_hull(&pts);
            if hull.len() < 3 {
                return None;
            }
            let ring = Ring::new(hull.clone()).ok()?;
            if ring.area() < 1e-3 {
                return None;
            }
            if !with_hole {
                return Some(Polygon::from_exterior(ring));
            }
            let n = hull.len() as f64;
            let cx = hull.iter().map(|p| p.x).sum::<f64>() / n;
            let cy = hull.iter().map(|p| p.y).sum::<f64>() / n;
            let hole_pts: Vec<Point> = hull
                .iter()
                .map(|p| Point::new(cx + (p.x - cx) * 0.4, cy + (p.y - cy) * 0.4))
                .collect();
            let hole = Ring::new(hole_pts).ok()?;
            if hole.area() < 1e-6 {
                return Some(Polygon::from_exterior(ring));
            }
            Some(Polygon::new(ring, vec![hole]))
        },
    )
}

fn arb_line() -> impl Strategy<Value = LineString> {
    proptest::collection::vec(arb_point(), 2..8)
        .prop_filter_map("line", |pts| LineString::new(pts).ok())
}

fn arb_geometry() -> impl Strategy<Value = Geometry> {
    prop_oneof![
        arb_point().prop_map(Geometry::Point),
        arb_line().prop_map(Geometry::LineString),
        arb_polygon().prop_map(Geometry::Polygon),
        proptest::collection::vec(arb_point(), 1..5)
            .prop_map(|ps| Geometry::MultiPoint(MultiPoint::new(ps).unwrap())),
        proptest::collection::vec(arb_line(), 1..4)
            .prop_map(|ls| Geometry::MultiLineString(MultiLineString::new(ls).unwrap())),
        proptest::collection::vec(arb_polygon(), 1..3)
            .prop_map(|ps| Geometry::MultiPolygon(MultiPolygon::new(ps).unwrap())),
    ]
}

const ALL_MASKS: [RelateMask; 9] = [
    RelateMask::AnyInteract,
    RelateMask::Disjoint,
    RelateMask::Inside,
    RelateMask::Contains,
    RelateMask::CoveredBy,
    RelateMask::Covers,
    RelateMask::Touch,
    RelateMask::Overlap,
    RelateMask::Equal,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn prepared_relate_matches_naive(a in arb_geometry(), b in arb_geometry()) {
        let pa = PreparedGeometry::new(a.clone());
        let pb = PreparedGeometry::new(b.clone());
        prop_assert_eq!(pa.intersects(&pb), relate::intersects(&a, &b), "intersects");
        prop_assert_eq!(pa.covered_by(&pb), relate::covered_by(&a, &b), "covered_by");
        prop_assert_eq!(
            pa.boundaries_interact(&pb),
            relate::boundaries_interact(&a, &b),
            "boundaries_interact"
        );
        for m in ALL_MASKS {
            prop_assert_eq!(pa.relate(&pb, m), relate::relate(&a, &b, m), "mask {:?}", m);
        }
    }

    #[test]
    fn prepared_within_distance_matches_naive(
        a in arb_geometry(),
        b in arb_geometry(),
        d in 0.0f64..80.0,
    ) {
        let pa = PreparedGeometry::new(a.clone());
        let pb = PreparedGeometry::new(b.clone());
        for dist in [0.0, d] {
            prop_assert_eq!(
                pa.within_distance(&pb, dist),
                relate::within_distance(&a, &b, dist),
                "d={}", dist
            );
        }
    }

    #[test]
    fn prepared_covers_point_matches_naive(g in arb_geometry(), p in arb_point()) {
        let pg = PreparedGeometry::new(g.clone());
        prop_assert_eq!(pg.covers_point(&p), g.covers_point(&p));
        // Probe the geometry's own vertices too — boundary cases are
        // where the indexed and naive paths could plausibly diverge.
        for v in g.vertices() {
            prop_assert_eq!(pg.covers_point(&v), g.covers_point(&v), "vertex {:?}", v);
        }
    }

    #[test]
    fn big_ring_simplicity_matches_quadratic(
        n in 60usize..400,
        wobble in 0.0f64..0.9,
        swap_at in 10usize..50,
        do_swap in any::<bool>(),
    ) {
        // A star-shaped ring (always simple), optionally corrupted by a
        // vertex swap (usually self-intersecting). Compare the indexed
        // path against the quadratic reference directly.
        let mut pts: Vec<Point> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * std::f64::consts::TAU;
                let r = 50.0 + wobble * 40.0 * (11.0 * t).sin();
                Point::new(r * t.cos(), r * t.sin())
            })
            .collect();
        if do_swap {
            let j = swap_at % (n - 2);
            pts.swap(j, j + 2);
        }
        let ring = Ring::new(pts).unwrap();
        let quadratic = {
            // Reference: the original pair scan, inlined.
            let edges: Vec<sdo_geom::Segment> = ring.segments().collect();
            let m = edges.len();
            let mut simple = true;
            'outer: for i in 0..m {
                for j in (i + 1)..m {
                    let adjacent = j == i + 1 || (i == 0 && j == m - 1);
                    let hit = if adjacent {
                        edges[i].collinear_overlaps(&edges[j])
                    } else {
                        edges[i].intersects(&edges[j])
                    };
                    if hit {
                        simple = false;
                        break 'outer;
                    }
                }
            }
            simple
        };
        prop_assert_eq!(ring.is_simple(), quadratic);
    }
}
