//! Property-based tests for the geometry engine's invariants
//! (DESIGN.md §6).

use proptest::prelude::*;
use sdo_geom::algorithms::convex_hull;
use sdo_geom::{
    intersects, within_distance, Geometry, LineString, Point, Polygon, Rect, RelateMask, Ring,
};

fn arb_point() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), 0.1f64..30.0, 0.1f64..30.0)
        .prop_map(|(p, w, h)| Rect::new(p.x, p.y, p.x + w, p.y + h))
}

/// Valid simple polygons via convex hulls of random point sets.
fn arb_polygon() -> impl Strategy<Value = Polygon> {
    proptest::collection::vec(arb_point(), 3..12).prop_filter_map("degenerate hull", |pts| {
        let hull = convex_hull(&pts);
        if hull.len() < 3 {
            return None;
        }
        let ring = Ring::new(hull).ok()?;
        if ring.area() < 1e-6 {
            return None;
        }
        Some(Polygon::from_exterior(ring))
    })
}

fn arb_geometry() -> impl Strategy<Value = Geometry> {
    prop_oneof![
        arb_point().prop_map(Geometry::Point),
        proptest::collection::vec(arb_point(), 2..8)
            .prop_filter_map("line", |pts| LineString::new(pts).ok().map(Geometry::LineString)),
        arb_polygon().prop_map(Geometry::Polygon),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rect_union_contains_operands(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
    }

    #[test]
    fn rect_intersection_within_operands(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(a.intersects(&b));
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn rect_mindist_zero_iff_intersects(a in arb_rect(), b in arb_rect()) {
        let d = a.mindist(&b);
        prop_assert!(d >= 0.0);
        prop_assert_eq!(d == 0.0, a.intersects(&b));
        // symmetry
        prop_assert!((d - b.mindist(&a)).abs() < 1e-12);
    }

    #[test]
    fn rect_expansion_turns_distance_into_intersection(
        a in arb_rect(),
        b in arb_rect(),
    ) {
        let d = a.mindist(&b);
        // expanding either side by d (plus slack) must make them intersect
        prop_assert!(a.expanded(d + 1e-9).intersects(&b));
        // expanding by less than the axis gap must not (when separated
        // along an axis, mindist <= axis gap, so half of d may fail —
        // only assert the monotone direction)
        if d > 1e-6 {
            prop_assert!(!a.expanded(d * 0.4).intersects(&b) || d <= 1e-6
                || a.expanded(d * 0.4).mindist(&b) <= d);
        }
    }

    #[test]
    fn wkt_roundtrip(g in arb_geometry()) {
        let wkt = sdo_geom::wkt::to_wkt(&g);
        let back = sdo_geom::wkt::parse_wkt(&wkt).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn sdo_roundtrip(g in arb_geometry()) {
        let sdo = sdo_geom::SdoGeometry::from_geometry(&g);
        let back = sdo.to_geometry().unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn intersects_is_symmetric(a in arb_geometry(), b in arb_geometry()) {
        prop_assert_eq!(intersects(&a, &b), intersects(&b, &a));
    }

    #[test]
    fn distance_consistent_with_intersects(a in arb_geometry(), b in arb_geometry()) {
        let d = sdo_geom::distance(&a, &b);
        prop_assert!(d >= 0.0);
        if intersects(&a, &b) {
            prop_assert!(d < 1e-6, "intersecting geometries at distance {d}");
        } else {
            prop_assert!(d > 0.0, "disjoint geometries at distance 0");
        }
        // symmetry
        prop_assert!((d - sdo_geom::distance(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn within_distance_monotone(a in arb_geometry(), b in arb_geometry(), d in 0.0f64..50.0) {
        if within_distance(&a, &b, d) {
            prop_assert!(within_distance(&a, &b, d + 1.0));
            prop_assert!(within_distance(&a, &b, d * 2.0 + 0.1));
        }
    }

    #[test]
    fn mbr_filter_is_sound(a in arb_geometry(), b in arb_geometry()) {
        // the primary filter may only produce false positives, never
        // false negatives
        if intersects(&a, &b) {
            prop_assert!(a.bbox().intersects(&b.bbox()));
        }
    }

    #[test]
    fn polygon_equal_to_itself(p in arb_polygon()) {
        let g = Geometry::Polygon(p);
        prop_assert!(sdo_geom::relate(&g, &g, RelateMask::Equal));
        prop_assert!(sdo_geom::covered_by(&g, &g));
        prop_assert!(intersects(&g, &g));
        prop_assert!(!sdo_geom::relate(&g, &g, RelateMask::Disjoint));
    }

    #[test]
    fn interior_point_lies_inside(p in arb_polygon()) {
        let ip = sdo_geom::relate::interior_point(&p);
        prop_assert!(p.contains_point(&ip));
    }

    #[test]
    fn centroid_of_convex_polygon_inside(p in arb_polygon()) {
        // convex polygons contain their centroid
        let c = sdo_geom::algorithms::polygon_centroid(&p);
        prop_assert!(p.contains_point(&c));
    }

    #[test]
    fn hull_contains_all_points(pts in proptest::collection::vec(arb_point(), 1..20)) {
        let hull = convex_hull(&pts);
        prop_assert!(!hull.is_empty());
        if hull.len() >= 3 {
            let ring = Ring::new(hull).unwrap();
            for p in &pts {
                prop_assert!(ring.contains_point(p), "hull excludes {p}");
            }
        }
    }

    #[test]
    fn touch_and_overlap_disjointness(a in arb_polygon(), b in arb_polygon()) {
        let (ga, gb) = (Geometry::Polygon(a), Geometry::Polygon(b));
        let touch = sdo_geom::relate(&ga, &gb, RelateMask::Touch);
        let overlap = sdo_geom::relate(&ga, &gb, RelateMask::Overlap);
        let disjoint = sdo_geom::relate(&ga, &gb, RelateMask::Disjoint);
        // at most one of touch/overlap/disjoint holds
        prop_assert!(u8::from(touch) + u8::from(overlap) + u8::from(disjoint) <= 1);
        if touch || overlap {
            prop_assert!(intersects(&ga, &gb));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn binary_codec_roundtrip(g in arb_geometry()) {
        let bytes = sdo_geom::codec::encode_geometry(&g);
        let back = sdo_geom::codec::decode_geometry(bytes).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn binary_codec_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        // decoding arbitrary bytes must return an error or a value,
        // never panic
        let _ = sdo_geom::codec::decode_sdo(bytes::Bytes::from(data));
    }
}
