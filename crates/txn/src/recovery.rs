//! Crash recovery: WAL replay over a checkpoint base image.
//!
//! Replay is redo-only and two-pass:
//!
//! 1. scan the durable record prefix and collect the set of
//!    transactions whose `Commit` record made it to disk;
//! 2. walk the prefix in order, applying DDL immediately (DDL is
//!    autocommitted) and DML only for committed transactions.
//!
//! Committed DML replays as *frozen* writes via
//! [`Table::restore_at`](sdo_storage::table::Table::restore_at) /
//! `delete` at the logged rowid, so the recovered heap has the same
//! rowids as the pre-crash heap — spatial joins return rowid pairs, and
//! those must mean the same rows after recovery. Uncommitted
//! transactions contribute nothing: the recovered state is exactly the
//! serial prefix of transactions that reached their commit record.
//!
//! Index DDL is not applied here — domain indexes need the indextype
//! registry, which lives above the storage layer. Replay returns
//! [`IndexDirective`]s; the caller rebuilds each index from the
//! recovered table, which by construction equals a fresh build.

use sdo_storage::snapshot::IndexDirective;
use sdo_storage::wal::WalRecord;
use sdo_storage::{Catalog, StorageError, TxnId};
use std::collections::HashSet;

/// What a WAL replay did, for logging and smoke-test assertions.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Domain indexes to rebuild from the recovered tables, in
    /// creation order.
    pub directives: Vec<IndexDirective>,
    /// Distinct transactions whose commit record was durable.
    pub committed_txns: usize,
    /// Distinct transactions discarded (no durable commit record).
    pub discarded_txns: usize,
    /// DML records applied (insert/update/delete of committed txns).
    pub dml_applied: usize,
}

/// Replay a WAL record prefix over `catalog` (typically freshly loaded
/// from the checkpoint base image, or empty when no checkpoint exists).
pub fn replay(records: &[WalRecord], catalog: &Catalog) -> Result<RecoveryReport, StorageError> {
    // Pass 1: which transactions reached their commit record?
    let mut committed: HashSet<TxnId> = HashSet::new();
    let mut seen: HashSet<TxnId> = HashSet::new();
    for rec in records {
        if let Some(txid) = rec.txid() {
            seen.insert(txid);
        }
        if let WalRecord::Commit { txid } = rec {
            committed.insert(*txid);
        }
    }

    // Pass 2: apply in log order.
    let mut report = RecoveryReport {
        committed_txns: committed.len(),
        discarded_txns: seen.len() - committed.len(),
        ..RecoveryReport::default()
    };
    for rec in records {
        match rec {
            // DDL redo is idempotent: a crash between the checkpoint's
            // base-image rename and its log truncation leaves a log
            // whose effects the base already contains, so "already
            // exists" / "already gone" are not errors here.
            WalRecord::CreateTable { name, schema } => {
                let _ = catalog.create_table(name, schema.clone());
            }
            WalRecord::DropTable { name } => {
                let _ = catalog.drop_table(name);
                report.directives.retain(|d| !d.table_name.eq_ignore_ascii_case(name));
            }
            WalRecord::CreateIndex {
                index_name,
                table_name,
                column_name,
                parameters,
                create_dop,
            } => {
                report.directives.push(IndexDirective {
                    index_name: index_name.clone(),
                    table_name: table_name.clone(),
                    column_name: column_name.clone(),
                    parameters: parameters.clone(),
                    create_dop: *create_dop,
                });
            }
            WalRecord::DropIndex { name } => {
                report.directives.retain(|d| !d.index_name.eq_ignore_ascii_case(name));
            }
            WalRecord::Insert { txid, table, rid, row }
            | WalRecord::Update { txid, table, rid, row } => {
                if committed.contains(txid) {
                    catalog.table(table)?.write().restore_at(*rid, row.clone())?;
                    report.dml_applied += 1;
                }
            }
            WalRecord::Delete { txid, table, rid } => {
                if committed.contains(txid) {
                    // Idempotent physical redo: deleting a row the base
                    // image already lacks is a no-op, not a failure.
                    if catalog.table(table)?.write().delete(*rid).is_ok() {
                        report.dml_applied += 1;
                    }
                }
            }
            WalRecord::Analyze { table, stats } => {
                // Statistics are advisory; skip them if the table is
                // gone (dropped later in the log, or never recovered).
                if catalog.table(table).is_ok() {
                    catalog.set_table_stats(stats.clone());
                }
            }
            WalRecord::Begin { .. } | WalRecord::Commit { .. } | WalRecord::Abort { .. } => {}
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_storage::{DataType, RowId, Schema, Value};

    fn rec_insert(txid: TxnId, rid: u64, id: i64) -> WalRecord {
        WalRecord::Insert {
            txid,
            table: "T".into(),
            rid: RowId::new(rid),
            row: vec![Value::Integer(id)],
        }
    }

    fn schema() -> Schema {
        Schema::of(&[("ID", DataType::Integer)])
    }

    #[test]
    fn committed_prefix_only() {
        let records = vec![
            WalRecord::CreateTable { name: "T".into(), schema: schema() },
            WalRecord::Begin { txid: 1 },
            rec_insert(1, 0, 10),
            rec_insert(1, 1, 11),
            WalRecord::Commit { txid: 1 },
            WalRecord::Begin { txid: 2 },
            rec_insert(2, 2, 20),
            // no commit for txn 2 — crash before its commit record
        ];
        let catalog = Catalog::new();
        let report = replay(&records, &catalog).unwrap();
        assert_eq!(report.committed_txns, 1);
        assert_eq!(report.discarded_txns, 1);
        assert_eq!(report.dml_applied, 2);
        let t = catalog.table("T").unwrap();
        let t = t.read();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(RowId::new(0)).unwrap()[0], Value::Integer(10));
        assert!(t.get(RowId::new(2)).is_err(), "uncommitted insert discarded");
    }

    #[test]
    fn update_delete_and_rowid_stability() {
        let records = vec![
            WalRecord::CreateTable { name: "T".into(), schema: schema() },
            WalRecord::Begin { txid: 1 },
            rec_insert(1, 0, 1),
            rec_insert(1, 1, 2),
            rec_insert(1, 2, 3),
            WalRecord::Commit { txid: 1 },
            WalRecord::Begin { txid: 2 },
            WalRecord::Update {
                txid: 2,
                table: "T".into(),
                rid: RowId::new(1),
                row: vec![Value::Integer(22)],
            },
            WalRecord::Delete { txid: 2, table: "T".into(), rid: RowId::new(0) },
            WalRecord::Commit { txid: 2 },
        ];
        let catalog = Catalog::new();
        replay(&records, &catalog).unwrap();
        let t = catalog.table("T").unwrap();
        let t = t.read();
        assert_eq!(t.len(), 2);
        assert!(t.get(RowId::new(0)).is_err(), "deleted row stays deleted");
        assert_eq!(t.get(RowId::new(1)).unwrap()[0], Value::Integer(22));
        assert_eq!(t.get(RowId::new(2)).unwrap()[0], Value::Integer(3));
    }

    #[test]
    fn ddl_applies_and_directives_survive_drops() {
        let idx = |name: &str, table: &str| WalRecord::CreateIndex {
            index_name: name.into(),
            table_name: table.into(),
            column_name: "GEOM".into(),
            parameters: "tree_fanout=8".into(),
            create_dop: 1,
        };
        let records = vec![
            WalRecord::CreateTable { name: "A".into(), schema: schema() },
            WalRecord::CreateTable { name: "B".into(), schema: schema() },
            idx("A_IDX", "A"),
            idx("B_IDX", "B"),
            WalRecord::DropIndex { name: "a_idx".into() },
            WalRecord::CreateTable { name: "C".into(), schema: schema() },
            idx("C_IDX", "C"),
            WalRecord::DropTable { name: "C".into() },
        ];
        let catalog = Catalog::new();
        let report = replay(&records, &catalog).unwrap();
        assert_eq!(catalog.table_names(), vec!["A".to_string(), "B".to_string()]);
        let names: Vec<&str> = report.directives.iter().map(|d| d.index_name.as_str()).collect();
        assert_eq!(names, vec!["B_IDX"], "dropped index and dropped table's index pruned");
    }

    #[test]
    fn analyze_records_restore_table_stats() {
        use sdo_storage::{ColumnStats, TableStats};
        let stats = TableStats {
            table: "T".into(),
            rows: 5,
            analyzed_mods: 5,
            columns: vec![ColumnStats {
                ndv: 5,
                null_count: 0,
                min: Some(Value::Integer(0)),
                max: Some(Value::Integer(4)),
            }],
            spatial: vec![None],
        };
        let records = vec![
            WalRecord::CreateTable { name: "T".into(), schema: schema() },
            WalRecord::Analyze { table: "T".into(), stats: stats.clone() },
            // Stats for a table the log later drops must not survive.
            WalRecord::CreateTable { name: "GONE".into(), schema: schema() },
            WalRecord::Analyze {
                table: "GONE".into(),
                stats: TableStats { table: "GONE".into(), ..stats.clone() },
            },
            WalRecord::DropTable { name: "GONE".into() },
        ];
        let catalog = Catalog::new();
        replay(&records, &catalog).unwrap();
        assert_eq!(catalog.table_stats("t").as_deref(), Some(&stats));
        assert!(catalog.table_stats("gone").is_none());
    }

    #[test]
    fn aborted_txn_is_discarded_even_with_abort_record() {
        let records = vec![
            WalRecord::CreateTable { name: "T".into(), schema: schema() },
            WalRecord::Begin { txid: 1 },
            rec_insert(1, 0, 1),
            WalRecord::Abort { txid: 1 },
        ];
        let catalog = Catalog::new();
        let report = replay(&records, &catalog).unwrap();
        assert_eq!(report.dml_applied, 0);
        assert_eq!(catalog.table("T").unwrap().read().len(), 0);
    }
}
