#![warn(missing_docs)]
//! # sdo-txn — transactions, commit protocol, crash recovery
//!
//! The transaction subsystem tying together the storage layer's MVCC
//! primitives ([`sdo_storage::mvcc`]) and write-ahead log
//! ([`sdo_storage::wal`]):
//!
//! * [`TxnManager`] — allocates transaction ids and commit sequence
//!   numbers, hands out read snapshots, and runs the commit protocol
//!   (serialize CSN allocation, flip the status table, publish the new
//!   CSN). Rollback is a status flip: aborted versions become
//!   invisible immediately and are pruned lazily by later writers.
//! * [`recovery`] — replays a WAL record prefix over a checkpoint base
//!   image: DDL applies immediately (it is autocommitted), DML applies
//!   only for transactions whose `Commit` record made it into the
//!   durable prefix. Because the log is replayed in order and ends at
//!   the first hole, the recovered state always equals a serial prefix
//!   of the committed transactions — all-or-nothing per transaction.
//!
//! The SQL session layer (`sdo-dbms`) builds `BEGIN`/`COMMIT`/
//! `ROLLBACK`, autocommit, and index-maintenance enlistment on top of
//! these pieces.

use parking_lot::Mutex;
use sdo_storage::{Counters, Csn, Snapshot, TxnId, TxnStatusTable};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub mod recovery;

/// A begun transaction: its id plus the read snapshot it runs under.
///
/// The snapshot's `txid` is the transaction itself, so reads through it
/// see the transaction's own uncommitted writes on top of the world as
/// of its begin CSN (snapshot isolation).
#[derive(Debug, Clone, Copy)]
pub struct TxnToken {
    /// The transaction id.
    pub txid: TxnId,
    /// The transaction's read view (own writes + commits ≤ begin CSN).
    pub snap: Snapshot,
}

/// Allocates transaction ids / commit sequence numbers and runs the
/// commit protocol against a shared [`TxnStatusTable`].
///
/// One manager per database; cheap enough that autocommitted
/// single-statement transactions go through the same path as explicit
/// multi-statement ones.
pub struct TxnManager {
    status: Arc<TxnStatusTable>,
    counters: Arc<Counters>,
    /// Highest published commit sequence number.
    current_csn: AtomicU64,
    /// Serializes CSN allocation + status flip + publication, so a
    /// snapshot taken at CSN `c` sees exactly commits 1..=c.
    commit_lock: Mutex<()>,
    /// In-flight (begun, not yet resolved) transactions.
    active: AtomicU64,
}

impl TxnManager {
    /// A manager over the given shared status table and counters
    /// (typically the catalog's).
    pub fn new(status: Arc<TxnStatusTable>, counters: Arc<Counters>) -> Self {
        TxnManager {
            status,
            counters,
            current_csn: AtomicU64::new(0),
            commit_lock: Mutex::new(()),
            active: AtomicU64::new(0),
        }
    }

    /// The shared status table visibility is decided against.
    pub fn status(&self) -> &Arc<TxnStatusTable> {
        &self.status
    }

    /// Begin a transaction: allocate an id and pin its read snapshot.
    pub fn begin(&self) -> TxnToken {
        let txid = self.status.begin();
        self.active.fetch_add(1, Ordering::Relaxed);
        TxnToken { txid, snap: Snapshot { csn: self.current_csn.load(Ordering::Acquire), txid } }
    }

    /// A plain reader snapshot: the latest published CSN, no
    /// transaction attached.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::at(self.current_csn.load(Ordering::Acquire))
    }

    /// The highest published commit sequence number.
    pub fn current_csn(&self) -> Csn {
        self.current_csn.load(Ordering::Acquire)
    }

    /// Number of in-flight transactions (checkpoints require zero).
    pub fn active_count(&self) -> u64 {
        self.active.load(Ordering::Acquire)
    }

    /// Block commits while the returned guard is held.
    ///
    /// Pipeline factories that capture a snapshot *plus* a structural
    /// clone of an index (e.g. a spatial join cloning both R-trees)
    /// pin the two under this fence: otherwise a transaction could
    /// commit between the snapshot read and the clone, and its
    /// post-commit index maintenance could prune entries for old row
    /// versions the just-pinned snapshot still needs to find.
    pub fn commit_fence(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.commit_lock.lock()
    }

    /// Commit: allocate the next CSN, flip the status table (the
    /// atomic visibility point), then publish the CSN so new snapshots
    /// include this transaction.
    pub fn commit(&self, txid: TxnId) -> Csn {
        let _guard = self.commit_lock.lock();
        let csn = self.current_csn.load(Ordering::Acquire) + 1;
        self.status.commit(txid, csn);
        self.current_csn.store(csn, Ordering::Release);
        self.active.fetch_sub(1, Ordering::Relaxed);
        Counters::bump(&self.counters.txn_commits);
        csn
    }

    /// Abort: flip the status table; every version the transaction
    /// wrote becomes permanently invisible (O(1) heap rollback).
    pub fn abort(&self, txid: TxnId) {
        self.status.abort(txid);
        self.active.fetch_sub(1, Ordering::Relaxed);
        Counters::bump(&self.counters.txn_aborts);
    }
}

impl std::fmt::Debug for TxnManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnManager")
            .field("current_csn", &self.current_csn())
            .field("active", &self.active_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_storage::TxnState;

    fn manager() -> TxnManager {
        TxnManager::new(Arc::new(TxnStatusTable::new()), Arc::new(Counters::new()))
    }

    #[test]
    fn csns_are_dense_and_ordered() {
        let m = manager();
        let a = m.begin();
        let b = m.begin();
        assert_eq!(m.active_count(), 2);
        assert_eq!(a.snap.csn, 0);
        let c1 = m.commit(a.txid);
        let c2 = m.commit(b.txid);
        assert_eq!((c1, c2), (1, 2));
        assert_eq!(m.current_csn(), 2);
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.status().state(a.txid), TxnState::Committed(1));
    }

    #[test]
    fn snapshots_exclude_later_commits() {
        let m = manager();
        let a = m.begin();
        let snap = m.snapshot();
        m.commit(a.txid);
        assert!(!snap.sees(a.txid, m.status()), "pre-commit snapshot stays consistent");
        assert!(m.snapshot().sees(a.txid, m.status()));
    }

    #[test]
    fn abort_counts_and_flips() {
        let counters = Arc::new(Counters::new());
        let m = TxnManager::new(Arc::new(TxnStatusTable::new()), Arc::clone(&counters));
        let t = m.begin();
        m.abort(t.txid);
        assert_eq!(m.status().state(t.txid), TxnState::Aborted);
        assert_eq!(Counters::get(&counters.txn_aborts), 1);
        assert_eq!(Counters::get(&counters.txn_commits), 0);
    }

    #[test]
    fn concurrent_commits_serialize() {
        let m = Arc::new(manager());
        let tokens: Vec<_> = (0..8).map(|_| m.begin()).collect();
        let handles: Vec<_> = tokens
            .into_iter()
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || m.commit(t.txid))
            })
            .collect();
        let mut csns: Vec<Csn> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        csns.sort_unstable();
        assert_eq!(csns, (1..=8).collect::<Vec<_>>(), "dense, unique CSNs");
    }
}
