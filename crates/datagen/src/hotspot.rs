//! Adversarially skewed data: one dense hotspot + uniform background.
//!
//! The star generator spreads its skew over many clusters, which a
//! static round-robin partition of R-tree subtrees can still balance by
//! luck. This generator concentrates a configurable fraction of all
//! geometries into a *single* tight Gaussian hotspot, so every
//! candidate pair of a self- or cross-join lands in the handful of
//! subtrees covering that spot — the worst case for static slave
//! scheduling and the motivating workload for the work-stealing
//! scheduler.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdo_geom::{Geometry, Point, Polygon, Rect, Ring};

/// Generate `n` small rectangles over `extent`, `hot_fraction` of them
/// packed into one Gaussian hotspot (σ ≈ 1% of the extent) centred at
/// 35%/65% of the extent, the rest uniform background.
///
/// Deterministic given `seed`. `hot_fraction` is clamped to `[0, 1]`.
pub fn generate(n: usize, extent: &Rect, hot_fraction: f64, seed: u64) -> Vec<Geometry> {
    let hot_fraction = hot_fraction.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let hot =
        Point::new(extent.min_x + extent.width() * 0.35, extent.min_y + extent.height() * 0.65);
    let sigma_x = extent.width() * 0.01;
    let sigma_y = extent.height() * 0.01;
    // Boxes small relative to the hotspot spread so the dense cell
    // produces many genuine overlaps, not one giant blob.
    let w = (sigma_x + sigma_y) * 0.2;

    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let c = if rng.random_bool(hot_fraction) {
            Point::new(hot.x + gaussian(&mut rng) * sigma_x, hot.y + gaussian(&mut rng) * sigma_y)
        } else {
            Point::new(
                rng.random_range(extent.min_x..extent.max_x),
                rng.random_range(extent.min_y..extent.max_y),
            )
        };
        let c = Point::new(
            c.x.clamp(extent.min_x + w, extent.max_x - w),
            c.y.clamp(extent.min_y + w, extent.max_y - w),
        );
        let ring = Ring::new(vec![
            Point::new(c.x - w, c.y - w),
            Point::new(c.x + w, c.y - w),
            Point::new(c.x + w, c.y + w),
            Point::new(c.x - w, c.y + w),
        ])
        .expect("hotspot box ring");
        out.push(Geometry::Polygon(Polygon::from_exterior(ring)));
    }
    out
}

/// Box–Muller standard normal.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::US_EXTENT;

    #[test]
    fn deterministic_and_sized() {
        let a = generate(800, &US_EXTENT, 0.7, 3);
        let b = generate(800, &US_EXTENT, 0.7, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 800);
    }

    #[test]
    fn geometries_stay_in_extent_and_validate() {
        let boxes = generate(400, &US_EXTENT, 0.7, 11);
        for (i, g) in boxes.iter().enumerate() {
            assert!(US_EXTENT.contains_rect(&g.bbox()), "box {i} out of extent");
            sdo_geom::validate::validate(g).unwrap_or_else(|e| panic!("box {i}: {e}"));
        }
    }

    #[test]
    fn one_cell_dominates() {
        // A single hotspot must put far more mass in its one grid cell
        // than the many-cluster star generator would: the densest cell
        // of a 10x10 grid should hold the hot fraction, give or take.
        let n = 4000;
        let boxes = generate(n, &US_EXTENT, 0.7, 17);
        let mut cells = vec![0usize; 100];
        for g in &boxes {
            let c = g.bbox().center();
            let i = (((c.x - US_EXTENT.min_x) / US_EXTENT.width() * 10.0) as usize).min(9);
            let j = (((c.y - US_EXTENT.min_y) / US_EXTENT.height() * 10.0) as usize).min(9);
            cells[j * 10 + i] += 1;
        }
        let max = *cells.iter().max().unwrap();
        assert!(
            max as f64 > 0.6 * n as f64,
            "densest cell {max}/{n}: hotspot not concentrated enough"
        );
    }

    #[test]
    fn hot_fraction_zero_is_uniform() {
        let boxes = generate(2000, &US_EXTENT, 0.0, 23);
        let mut cells = vec![0usize; 100];
        for g in &boxes {
            let c = g.bbox().center();
            let i = (((c.x - US_EXTENT.min_x) / US_EXTENT.width() * 10.0) as usize).min(9);
            let j = (((c.y - US_EXTENT.min_y) / US_EXTENT.height() * 10.0) as usize).min(9);
            cells[j * 10 + i] += 1;
        }
        let max = *cells.iter().max().unwrap();
        assert!(max < 60, "uniform data should not concentrate ({max} in one cell)");
    }
}
