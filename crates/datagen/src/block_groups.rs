//! Synthetic block-group data: complex, vertex-heavy polygons.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdo_geom::{Geometry, Point, Polygon, Rect, Ring};

/// Generate `n` complex polygons over `extent`.
///
/// Each polygon is star-shaped around its center with a radius function
/// `r(θ)` built from random low-frequency harmonics — guaranteed simple
/// (single-valued radius) yet irregular, with 40–400 vertices like the
/// paper's "arbitrarily-shaped complex polygon geometries". Roughly 10%
/// carry a hole. Centers cluster around population hubs.
pub fn generate(n: usize, extent: &Rect, seed: u64) -> Vec<Geometry> {
    let mut rng = StdRng::seed_from_u64(seed);
    let hubs: Vec<Point> = (0..(n / 2000 + 8).min(64))
        .map(|_| {
            Point::new(
                rng.random_range(extent.min_x..extent.max_x),
                rng.random_range(extent.min_y..extent.max_y),
            )
        })
        .collect();
    let hub_sigma = extent.width().min(extent.height()) * 0.05;
    // Base radius sized so block groups overlap their neighbours a bit.
    let base_r = (extent.width() * extent.height() / n as f64).sqrt() * 0.7;

    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let center = if rng.random_bool(0.7) {
            let h = hubs[rng.random_range(0..hubs.len())];
            Point::new(h.x + gaussian(&mut rng) * hub_sigma, h.y + gaussian(&mut rng) * hub_sigma)
        } else {
            Point::new(
                rng.random_range(extent.min_x..extent.max_x),
                rng.random_range(extent.min_y..extent.max_y),
            )
        };
        // Vertex count: 40 + heavy-ish tail up to 400.
        let vertices = 40 + (rng.random_range(0.0f64..1.0).powi(3) * 360.0) as usize;
        let r = base_r * rng.random_range(0.5..1.5);
        // Inset the center so the ring never needs boundary clamping
        // (clamping would create degenerate collinear runs). At tiny n
        // the radius can rival the extent; cap the inset at just under
        // the half-extent so the clamp below stays well-formed.
        let margin = (r * 1.6).min(extent.width() * 0.49).min(extent.height() * 0.49);
        let center = Point::new(
            center.x.clamp(extent.min_x + margin, extent.max_x - margin),
            center.y.clamp(extent.min_y + margin, extent.max_y - margin),
        );
        let outer = star_ring(&mut rng, center, r, vertices, extent);
        let holes = if rng.random_bool(0.1) {
            // Hole radius below 35% of the outer minimum radius keeps it
            // strictly inside (outer harmonics never dip below 50%).
            vec![star_ring(&mut rng, center, r * 0.25, 16, extent)]
        } else {
            Vec::new()
        };
        out.push(Geometry::Polygon(Polygon::new(outer, holes)));
    }
    out
}

/// A simple star-shaped ring: `r(θ) = r0 * (1 + Σ a_k sin(kθ + φ_k))`
/// with `Σ|a_k| <= 0.5`, clamped into the extent.
fn star_ring(rng: &mut StdRng, center: Point, r0: f64, vertices: usize, extent: &Rect) -> Ring {
    let harmonics: Vec<(f64, f64, f64)> = (2..6)
        .map(|k| {
            (k as f64, rng.random_range(0.0..0.125), rng.random_range(0.0..std::f64::consts::TAU))
        })
        .collect();
    let pts: Vec<Point> = (0..vertices)
        .map(|i| {
            let theta = i as f64 / vertices as f64 * std::f64::consts::TAU;
            let wobble: f64 = harmonics.iter().map(|(k, a, phi)| a * (k * theta + phi).sin()).sum();
            let r = r0 * (1.0 + wobble);
            Point::new(
                (center.x + r * theta.cos()).clamp(extent.min_x, extent.max_x),
                (center.y + r * theta.sin()).clamp(extent.min_y, extent.max_y),
            )
        })
        .collect();
    Ring::new(pts).expect("star ring has >= 3 vertices")
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::US_EXTENT;

    #[test]
    fn deterministic_and_sized() {
        let a = generate(200, &US_EXTENT, 4);
        let b = generate(200, &US_EXTENT, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn vertex_counts_are_heavy() {
        let bgs = generate(300, &US_EXTENT, 17);
        let counts: Vec<usize> = bgs.iter().map(|g| g.num_points()).collect();
        assert!(counts.iter().all(|&c| c >= 40));
        assert!(counts.iter().any(|&c| c > 150), "no complex polygons generated");
        let avg = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(avg > 50.0, "average vertex count {avg} too low");
    }

    #[test]
    fn polygons_validate() {
        for (i, g) in generate(150, &US_EXTENT, 23).iter().enumerate() {
            sdo_geom::validate::validate(g).unwrap_or_else(|e| panic!("block group {i}: {e}"));
            assert!(g.area() > 0.0);
        }
    }

    #[test]
    fn some_have_holes() {
        let bgs = generate(300, &US_EXTENT, 31);
        let holed = bgs
            .iter()
            .filter(|g| matches!(g, Geometry::Polygon(p) if !p.holes().is_empty()))
            .count();
        assert!(holed > 0, "expected some holed polygons");
        assert!(holed < 100, "too many holed polygons");
    }
}
