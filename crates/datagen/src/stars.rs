//! Synthetic star-cluster data: small polygons in Gaussian clusters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdo_geom::{Geometry, Point, Polygon, Rect, Ring};

/// Fraction of stars placed in clusters (the rest are uniform
/// background).
const CLUSTER_FRACTION: f64 = 0.8;

/// Generate `n` star polygons over `extent`.
///
/// 80% of stars fall in `n/1000 + 20` Gaussian clusters (σ ≈ 0.5% of
/// the extent), 20% are uniform background — mimicking the dense
/// cluster cross-sections of the paper's 250K customer dataset. Each
/// star is a small diamond polygon (point-like objects stored as
/// polygons, as the paper's "star locations/clusters" data is).
pub fn generate(n: usize, extent: &Rect, seed: u64) -> Vec<Geometry> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_clusters = (n / 1000 + 20).min(500);
    let sigma_x = extent.width() * 0.005;
    let sigma_y = extent.height() * 0.005;
    let centers: Vec<Point> = (0..n_clusters)
        .map(|_| {
            Point::new(
                rng.random_range(extent.min_x..extent.max_x),
                rng.random_range(extent.min_y..extent.max_y),
            )
        })
        .collect();
    // Star radius: small relative to cluster spread, so clusters create
    // genuine join selectivity skew.
    let r = (sigma_x + sigma_y) * 0.15;

    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let c = if rng.random_bool(CLUSTER_FRACTION) {
            let center = centers[rng.random_range(0..n_clusters)];
            Point::new(
                center.x + gaussian(&mut rng) * sigma_x,
                center.y + gaussian(&mut rng) * sigma_y,
            )
        } else {
            Point::new(
                rng.random_range(extent.min_x..extent.max_x),
                rng.random_range(extent.min_y..extent.max_y),
            )
        };
        let c = Point::new(
            c.x.clamp(extent.min_x + r, extent.max_x - r),
            c.y.clamp(extent.min_y + r, extent.max_y - r),
        );
        let ring = Ring::new(vec![
            Point::new(c.x - r, c.y),
            Point::new(c.x, c.y - r),
            Point::new(c.x + r, c.y),
            Point::new(c.x, c.y + r),
        ])
        .expect("diamond ring");
        out.push(Geometry::Polygon(Polygon::from_exterior(ring)));
    }
    out
}

/// Box–Muller standard normal.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SKY_EXTENT;

    #[test]
    fn deterministic_and_sized() {
        let a = generate(1000, &SKY_EXTENT, 5);
        let b = generate(1000, &SKY_EXTENT, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
    }

    #[test]
    fn stars_stay_in_extent_and_validate() {
        let stars = generate(500, &SKY_EXTENT, 9);
        for (i, s) in stars.iter().enumerate() {
            assert!(SKY_EXTENT.contains_rect(&s.bbox()), "star {i} out of extent");
            sdo_geom::validate::validate(s).unwrap_or_else(|e| panic!("star {i}: {e}"));
        }
    }

    #[test]
    fn clustering_creates_skew() {
        // Compare the densest cell of a coarse grid against the mean:
        // clustered data must be far above uniform.
        let stars = generate(5000, &SKY_EXTENT, 13);
        let mut cells = vec![0usize; 100];
        for s in &stars {
            let c = s.bbox().center();
            let i = (((c.x - SKY_EXTENT.min_x) / SKY_EXTENT.width() * 10.0) as usize).min(9);
            let j = (((c.y - SKY_EXTENT.min_y) / SKY_EXTENT.height() * 10.0) as usize).min(9);
            cells[j * 10 + i] += 1;
        }
        let max = *cells.iter().max().unwrap();
        assert!(max as f64 > 3.0 * 50.0, "densest cell {max} not skewed enough for cluster data");
    }

    #[test]
    fn subsets_are_prefixes() {
        // Table 2 varies dataset size "by choosing subsets of the
        // original 250K data": prefixes of one generation run must be
        // stable.
        let big = generate(2000, &SKY_EXTENT, 21);
        let small = generate(2000, &SKY_EXTENT, 21)[..500].to_vec();
        assert_eq!(&big[..500], &small[..]);
    }
}
