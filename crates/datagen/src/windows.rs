//! Query-window workloads for window-query benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdo_geom::{Geometry, Polygon, Rect};

/// Generate `n` rectangular query windows whose side is `frac` of the
/// extent's side (uniform placement, fully inside the extent).
pub fn rect_windows(n: usize, extent: &Rect, frac: f64, seed: u64) -> Vec<Geometry> {
    assert!(frac > 0.0 && frac <= 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let w = extent.width() * frac;
    let h = extent.height() * frac;
    (0..n)
        .map(|_| {
            let x = rng.random_range(extent.min_x..(extent.max_x - w).max(extent.min_x + 1e-12));
            let y = rng.random_range(extent.min_y..(extent.max_y - h).max(extent.min_y + 1e-12));
            Geometry::Polygon(Polygon::from_rect(&Rect::new(x, y, x + w, y + h)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::US_EXTENT;

    #[test]
    fn windows_sized_and_inside() {
        let ws = rect_windows(50, &US_EXTENT, 0.1, 2);
        assert_eq!(ws.len(), 50);
        for w in &ws {
            let bb = w.bbox();
            assert!(US_EXTENT.contains_rect(&bb));
            assert!((bb.width() - US_EXTENT.width() * 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(rect_windows(5, &US_EXTENT, 0.05, 3), rect_windows(5, &US_EXTENT, 0.05, 3));
    }
}
