//! Synthetic county map: a jittered grid whose cells share boundaries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdo_geom::{Geometry, Point, Polygon, Rect, Ring};

/// Generate `n` county-like polygons covering `extent`.
///
/// The extent is divided into a `cols x rows` grid; every grid corner
/// and edge-midpoint is jittered once and **shared** by the adjacent
/// cells, so neighbouring counties touch exactly along irregular
/// borders — the property that makes a distance-0 self-join behave
/// like the paper's county adjacency join.
pub fn generate(n: usize, extent: &Rect, seed: u64) -> Vec<Geometry> {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    // Pick a grid shape matching the extent's aspect ratio.
    let aspect = extent.width() / extent.height();
    let rows = ((n as f64 / aspect).sqrt().ceil() as usize).max(1);
    let cols = n.div_ceil(rows);

    let cw = extent.width() / cols as f64;
    let ch = extent.height() / rows as f64;
    // Jitter amplitude: 30% of cell size keeps rings simple.
    let jx = cw * 0.3;
    let jy = ch * 0.3;

    // Jittered lattice of corner points (interior corners only; the
    // outer boundary stays straight so every county stays in-extent).
    let corner = |rng: &mut StdRng, i: usize, j: usize| -> Point {
        let x = extent.min_x + i as f64 * cw;
        let y = extent.min_y + j as f64 * ch;
        Point::new(x, y)
            + if i > 0 && i < cols && j > 0 && j < rows {
                Point::new(rng.random_range(-jx..jx), rng.random_range(-jy..jy))
            } else {
                Point::ZERO
            }
    };
    let mut corners = vec![vec![Point::ZERO; rows + 1]; cols + 1];
    for (i, col) in corners.iter_mut().enumerate() {
        for (j, c) in col.iter_mut().enumerate() {
            *c = corner(&mut rng, i, j);
        }
    }
    // Shared jittered midpoints for the vertical and horizontal edges.
    let mid = |rng: &mut StdRng, a: Point, b: Point, interior: bool| -> Point {
        let m = (a + b) * 0.5;
        if interior {
            m + Point::new(rng.random_range(-jx..jx) * 0.5, rng.random_range(-jy..jy) * 0.5)
        } else {
            m
        }
    };
    // vmid[i][j]: midpoint of the vertical edge from corner (i,j) to (i,j+1)
    let mut vmid = vec![vec![Point::ZERO; rows]; cols + 1];
    for i in 0..=cols {
        for j in 0..rows {
            let interior = i > 0 && i < cols;
            vmid[i][j] = mid(&mut rng, corners[i][j], corners[i][j + 1], interior);
        }
    }
    // hmid[i][j]: midpoint of the horizontal edge from corner (i,j) to (i+1,j)
    let mut hmid = vec![vec![Point::ZERO; rows + 1]; cols];
    for i in 0..cols {
        for j in 0..=rows {
            let interior = j > 0 && j < rows;
            hmid[i][j] = mid(&mut rng, corners[i][j], corners[i + 1][j], interior);
        }
    }

    let mut out = Vec::with_capacity(n);
    'outer: for j in 0..rows {
        for i in 0..cols {
            if out.len() == n {
                break 'outer;
            }
            // Counterclockwise ring with shared mid-edge vertices:
            // bottom, right, top, left.
            let ring = Ring::new(vec![
                corners[i][j],
                hmid[i][j],
                corners[i + 1][j],
                vmid[i + 1][j],
                corners[i + 1][j + 1],
                hmid[i][j + 1],
                corners[i][j + 1],
                vmid[i][j],
            ])
            .expect("county ring has 8 vertices");
            out.push(Geometry::Polygon(Polygon::from_exterior(ring)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::US_EXTENT;

    #[test]
    fn deterministic_given_seed() {
        let a = generate(100, &US_EXTENT, 7);
        let b = generate(100, &US_EXTENT, 7);
        let c = generate(100, &US_EXTENT, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn counts_and_validity() {
        let counties = generate(250, &US_EXTENT, 42);
        assert_eq!(counties.len(), 250);
        for (i, g) in counties.iter().enumerate() {
            assert!(g.area() > 0.0, "county {i} degenerate");
            assert!(
                US_EXTENT.expanded(1e-9).contains_rect(&g.bbox()),
                "county {i} escapes the extent"
            );
            sdo_geom::validate::validate(g).unwrap_or_else(|e| panic!("county {i}: {e}"));
        }
    }

    #[test]
    fn neighbours_touch() {
        // With shared borders, a polygon must interact with at least one
        // other polygon (its grid neighbour) at distance 0.
        let counties = generate(60, &US_EXTENT, 3);
        let g0 = &counties[0];
        let touching = counties.iter().skip(1).filter(|g| sdo_geom::intersects(g0, g)).count();
        assert!(touching >= 1, "county 0 has no touching neighbours");
    }

    #[test]
    fn self_join_grows_with_distance() {
        let counties = generate(100, &US_EXTENT, 11);
        let count = |d: f64| {
            let mut c = 0usize;
            for a in &counties {
                for b in &counties {
                    if sdo_geom::within_distance(a, b, d) {
                        c += 1;
                    }
                }
            }
            c
        };
        let c0 = count(0.0);
        let c1 = count(5.0);
        assert!(c0 >= 100, "each county must at least match itself");
        assert!(c1 > c0, "distance must widen the join");
    }
}
