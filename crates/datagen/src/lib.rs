#![warn(missing_docs)]
//! # sdo-datagen — synthetic datasets for the paper's experiments
//!
//! The paper evaluates on three datasets we cannot redistribute:
//!
//! 1. **Counties** — "the geometries for the 3230 counties in the
//!    United States" (Table 1). Reproduced by [`counties::generate`]: a
//!    jittered-grid county map whose polygons share edges with their
//!    neighbours, so a self-join at distance 0 behaves like real county
//!    adjacency and result size grows smoothly with distance.
//! 2. **Star clusters** — "250K data about star locations/clusters in a
//!    cross-section of the sky (customer data)" (Table 2). Reproduced
//!    by [`stars::generate`]: small polygons in Gaussian clusters plus
//!    a uniform background, preserving the skew that makes index joins
//!    shine.
//! 3. **US Block-groups** — "about 230K arbitrarily-shaped complex
//!    polygon geometries" (Table 3). Reproduced by
//!    [`block_groups::generate`]: star-shaped polygons with 40–400
//!    vertices (occasionally holed), making tessellation the dominant
//!    index-creation cost exactly as in the paper.
//!
//! Every generator is deterministic given a seed; experiment binaries
//! default to laptop-scale sizes and accept the paper-scale cardinality
//! through their own `SDO_SCALE` handling.

pub mod block_groups;
pub mod counties;
pub mod hotspot;
pub mod stars;
pub mod windows;

use sdo_geom::Rect;

/// The "United States" extent used by counties/block-groups, in
/// lon/lat-ish units.
pub const US_EXTENT: Rect = Rect::new(-125.0, 24.0, -66.0, 50.0);

/// The sky cross-section extent used by the star data.
pub const SKY_EXTENT: Rect = Rect::new(0.0, 0.0, 360.0, 90.0);

/// Paper cardinality: US counties (Table 1).
pub const PAPER_COUNTIES: usize = 3230;
/// Paper cardinality: star catalog (Table 2).
pub const PAPER_STARS: usize = 250_000;
/// Paper cardinality: US block groups (Table 3).
pub const PAPER_BLOCK_GROUPS: usize = 230_000;
