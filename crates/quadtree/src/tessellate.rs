//! Geometry tessellation: the expensive half of quadtree index creation.
//!
//! "For each data geometry, tessellate the geometry into tiles and
//! store these tiles in an index table" (paper §5). Tessellation walks
//! the fixed-level tiles under the geometry's MBR and keeps those that
//! exactly interact with the geometry, classifying each as *interior*
//! (the tile lies entirely inside an areal geometry — exact hits need
//! no secondary filter) or *boundary*.
//!
//! The per-geometry cost grows with vertex count — which is precisely
//! why the paper parallelizes this step across table-function slaves
//! for the complex US block-group polygons.

use crate::tile::{Tile, TileCode};
use sdo_geom::polygon::PointLocation;
use sdo_geom::{covered_by, intersects, Geometry, Polygon, Rect, TopoDim};

/// One tile of a geometry's approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileApprox {
    /// The tile's Morton code at the tessellation level.
    pub code: TileCode,
    /// True when the tile lies entirely within the geometry.
    pub interior: bool,
}

/// Tessellate `g` into level-`level` tiles over `world`.
///
/// ```
/// use sdo_geom::{Geometry, Polygon, Rect};
/// use sdo_quadtree::tessellate;
///
/// let world = Rect::new(0.0, 0.0, 256.0, 256.0);
/// let g = Geometry::Polygon(Polygon::from_rect(&Rect::new(32.0, 32.0, 96.0, 96.0)));
/// let tiles = tessellate(&g, &world, 4); // 16x16 tiles of size 16
/// assert!(tiles.iter().any(|t| t.interior));
/// assert!(tiles.iter().any(|t| !t.interior));
/// ```
///
/// Every returned tile interacts with `g` exactly (not merely with its
/// MBR), and tiles marked interior are fully covered by `g`. Geometries
/// outside the world produce no tiles — callers index only data inside
/// the declared extent, as Oracle does.
pub fn tessellate(g: &Geometry, world: &Rect, level: u32) -> Vec<TileApprox> {
    let mut out = Vec::new();
    let Some((x0, x1, y0, y1)) = Tile::covering_range(level, world, &g.bbox()) else {
        return out;
    };
    let areal = g.dim() == TopoDim::Two;
    for x in x0..=x1 {
        for y in y0..=y1 {
            let tile = Tile::new(level, x, y);
            let rect = tile.rect(world);
            match classify_tile(g, &rect, areal) {
                TileClass::Outside => {}
                TileClass::Boundary => out.push(TileApprox { code: tile.code(), interior: false }),
                TileClass::Interior => out.push(TileApprox { code: tile.code(), interior: true }),
            }
        }
    }
    out
}

enum TileClass {
    Outside,
    Boundary,
    Interior,
}

fn classify_tile(g: &Geometry, tile_rect: &Rect, areal: bool) -> TileClass {
    let tile_poly = Geometry::Polygon(Polygon::from_rect(tile_rect));
    // Fast paths for the overwhelmingly common cases.
    match g {
        Geometry::Point(p) => {
            return if tile_rect.contains_point(p) {
                TileClass::Boundary
            } else {
                TileClass::Outside
            };
        }
        Geometry::Polygon(poly) if poly.holes().is_empty() => {
            // All four corners strictly inside and no boundary edge
            // crossing the tile => interior.
            let corners = tile_rect.corners();
            let inside =
                corners.iter().all(|c| poly.exterior().locate_point(c) == PointLocation::Inside);
            if inside {
                let crossed = poly
                    .boundary_segments()
                    .any(|s| s.bbox().intersects(tile_rect) && segment_meets_rect(&s, tile_rect));
                if !crossed {
                    return TileClass::Interior;
                }
                return TileClass::Boundary;
            }
        }
        _ => {}
    }
    if !intersects(g, &tile_poly) {
        return TileClass::Outside;
    }
    if areal && covered_by(&tile_poly, g) {
        return TileClass::Interior;
    }
    TileClass::Boundary
}

/// True when segment `s` intersects the (closed) rectangle.
fn segment_meets_rect(s: &sdo_geom::Segment, r: &Rect) -> bool {
    if r.contains_point(&s.a) || r.contains_point(&s.b) {
        return true;
    }
    let c = r.corners();
    (0..4).any(|i| {
        let edge = sdo_geom::Segment::new(c[i], c[(i + 1) % 4]);
        s.intersects(&edge)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_geom::{LineString, Point};

    const WORLD: Rect = Rect::new(0.0, 0.0, 256.0, 256.0);

    fn square(x: f64, y: f64, s: f64) -> Geometry {
        Geometry::Polygon(Polygon::from_rect(&Rect::new(x, y, x + s, y + s)))
    }

    #[test]
    fn point_yields_single_tile() {
        let g = Geometry::Point(Point::new(100.0, 50.0));
        let tiles = tessellate(&g, &WORLD, 4);
        assert_eq!(tiles.len(), 1);
        assert!(!tiles[0].interior);
        let t = Tile::from_code(4, tiles[0].code);
        assert!(t.rect(&WORLD).contains_point(&Point::new(100.0, 50.0)));
    }

    #[test]
    fn aligned_square_classifies_interior_and_boundary() {
        // A 4x4-tile square at level 4 (tile size 16): covers tiles
        // [2..6) x [2..6). With the square exactly on tile boundaries,
        // inner tiles are interior.
        let g = square(32.0, 32.0, 64.0);
        let tiles = tessellate(&g, &WORLD, 4);
        let interior = tiles.iter().filter(|t| t.interior).count();
        // Tiles fully inside: the closed square covers tiles whose rects
        // lie within [32,96]^2: grid 2..=5 in both axes = 16 tiles.
        assert_eq!(interior, 16);
        // Boundary-touching neighbours appear as boundary tiles.
        assert!(tiles.len() >= 16);
        for t in &tiles {
            let rect = Tile::from_code(4, t.code).rect(&WORLD);
            assert!(intersects(&g, &Geometry::Polygon(Polygon::from_rect(&rect))));
        }
    }

    #[test]
    fn unaligned_square_has_boundary_ring() {
        let g = square(30.0, 30.0, 60.0); // tiles 1..=5 at level 4
        let tiles = tessellate(&g, &WORLD, 4);
        assert!(tiles.iter().any(|t| t.interior));
        assert!(tiles.iter().any(|t| !t.interior));
        // tessellation must cover the geometry: every vertex in a tile
        for v in g.vertices() {
            let code = Tile::containing(4, &WORLD, &v).code();
            assert!(tiles.iter().any(|t| t.code == code));
        }
    }

    #[test]
    fn line_tiles_are_never_interior() {
        let g = Geometry::LineString(
            LineString::new(vec![Point::new(10.0, 10.0), Point::new(200.0, 180.0)]).unwrap(),
        );
        let tiles = tessellate(&g, &WORLD, 5);
        assert!(!tiles.is_empty());
        assert!(tiles.iter().all(|t| !t.interior));
        // the MBR of the line covers many more tiles than the line does
        let bbox_tiles = {
            let (x0, x1, y0, y1) = Tile::covering_range(5, &WORLD, &g.bbox()).unwrap();
            (x1 - x0 + 1) as usize * (y1 - y0 + 1) as usize
        };
        assert!(tiles.len() < bbox_tiles, "exact tessellation must beat MBR cover");
    }

    #[test]
    fn geometry_outside_world_produces_nothing() {
        let g = square(500.0, 500.0, 10.0);
        assert!(tessellate(&g, &WORLD, 4).is_empty());
    }

    #[test]
    fn donut_hole_tiles_excluded() {
        use sdo_geom::polygon::Ring;
        let outer = Ring::new(Rect::new(0.0, 0.0, 128.0, 128.0).corners().to_vec()).unwrap();
        let hole = Ring::new(Rect::new(32.0, 32.0, 96.0, 96.0).corners().to_vec()).unwrap();
        let donut = Geometry::Polygon(Polygon::new(outer, vec![hole]));
        let tiles = tessellate(&donut, &WORLD, 4);
        // A tile fully inside the hole must not appear.
        let hole_center = Tile::containing(4, &WORLD, &Point::new(64.0, 64.0));
        assert!(
            tiles.iter().all(|t| t.code != hole_center.code()),
            "tile inside the hole was kept"
        );
        // A tile in the ring is interior.
        let ring_tile = Tile::containing(4, &WORLD, &Point::new(16.0, 16.0));
        assert!(tiles.iter().any(|t| t.code == ring_tile.code() && t.interior));
    }

    #[test]
    fn deeper_levels_refine_the_cover() {
        let g = square(30.0, 30.0, 60.0);
        let area = |level: u32| {
            let tiles = tessellate(&g, &WORLD, level);
            let tile_area = Tile::new(level, 0, 0).rect(&WORLD).area();
            tiles.len() as f64 * tile_area
        };
        // Covered area shrinks toward the true area as tiles refine.
        let a4 = area(4);
        let a6 = area(6);
        assert!(a6 < a4);
        assert!(a6 >= g.area());
    }
}
