//! Fixed-level tiles and their Morton (Z-order) codes.

use sdo_geom::{Point, Rect};

/// A tile's linear code: the Morton interleaving of its grid
/// coordinates. Z-order makes spatially-close tiles numerically close,
/// so B-tree range scans have locality — the property linear quadtrees
/// rely on.
pub type TileCode = u64;

/// A tile in the level-`level` grid over some world extent:
/// `x, y ∈ [0, 2^level)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tile {
    /// Grid level (tiles per axis = `2^level`).
    pub level: u32,
    /// Column in the grid.
    pub x: u32,
    /// Row in the grid.
    pub y: u32,
}

impl Tile {
    /// The tile at grid position `(x, y)` of `level`.
    pub fn new(level: u32, x: u32, y: u32) -> Self {
        debug_assert!(level <= crate::MAX_LEVEL);
        debug_assert!(x < (1u32 << level) && y < (1u32 << level));
        Tile { level, x, y }
    }

    /// Morton code of this tile.
    #[inline]
    pub fn code(&self) -> TileCode {
        interleave(self.x) | (interleave(self.y) << 1)
    }

    /// Rebuild a tile from its code.
    #[inline]
    pub fn from_code(level: u32, code: TileCode) -> Self {
        Tile { level, x: deinterleave(code), y: deinterleave(code >> 1) }
    }

    /// The tile's rectangle within `world`.
    pub fn rect(&self, world: &Rect) -> Rect {
        let n = (1u64 << self.level) as f64;
        let w = world.width() / n;
        let h = world.height() / n;
        Rect::new(
            world.min_x + self.x as f64 * w,
            world.min_y + self.y as f64 * h,
            world.min_x + (self.x + 1) as f64 * w,
            world.min_y + (self.y + 1) as f64 * h,
        )
    }

    /// The tile at `level` containing point `p` (clamped to the grid).
    pub fn containing(level: u32, world: &Rect, p: &Point) -> Tile {
        let n = 1u32 << level;
        let fx = ((p.x - world.min_x) / world.width() * n as f64).floor();
        let fy = ((p.y - world.min_y) / world.height() * n as f64).floor();
        let x = (fx.max(0.0) as u32).min(n - 1);
        let y = (fy.max(0.0) as u32).min(n - 1);
        Tile::new(level, x, y)
    }

    /// Grid index range `[x0..=x1] x [y0..=y1]` of level-`level` tiles
    /// intersecting `r` (clamped to the world). Returns `None` when `r`
    /// is entirely outside the world.
    pub fn covering_range(level: u32, world: &Rect, r: &Rect) -> Option<(u32, u32, u32, u32)> {
        if !world.intersects(r) || r.is_empty() {
            return None;
        }
        let lo = Tile::containing(level, world, &Point::new(r.min_x, r.min_y));
        let hi = Tile::containing(level, world, &Point::new(r.max_x, r.max_y));
        Some((lo.x, hi.x, lo.y, hi.y))
    }

    /// The four child tiles at `level + 1`.
    pub fn children(&self) -> [Tile; 4] {
        let l = self.level + 1;
        let (x, y) = (self.x * 2, self.y * 2);
        [
            Tile::new(l, x, y),
            Tile::new(l, x + 1, y),
            Tile::new(l, x, y + 1),
            Tile::new(l, x + 1, y + 1),
        ]
    }

    /// The parent tile at `level - 1` (None at level 0).
    pub fn parent(&self) -> Option<Tile> {
        if self.level == 0 {
            None
        } else {
            Some(Tile::new(self.level - 1, self.x / 2, self.y / 2))
        }
    }
}

/// Spread the 32 bits of `v` into the even bit positions of a u64.
#[inline]
fn interleave(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`interleave`]: collect the even bit positions.
#[inline]
fn deinterleave(v: u64) -> u32 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORLD: Rect = Rect::new(0.0, 0.0, 256.0, 256.0);

    #[test]
    fn morton_roundtrip() {
        for level in [1u32, 4, 8, 16, 31] {
            let n = 1u64 << level;
            for &(x, y) in &[(0u64, 0u64), (1, 0), (0, 1), (n - 1, n - 1), (n / 2, n / 3)] {
                let t = Tile::new(level, x as u32, y as u32);
                let back = Tile::from_code(t.level, t.code());
                assert_eq!(t, back);
            }
        }
    }

    #[test]
    fn morton_is_z_order() {
        // quadrant order at level 1: (0,0) < (1,0) < (0,1) < (1,1)
        assert_eq!(Tile::new(1, 0, 0).code(), 0);
        assert_eq!(Tile::new(1, 1, 0).code(), 1);
        assert_eq!(Tile::new(1, 0, 1).code(), 2);
        assert_eq!(Tile::new(1, 1, 1).code(), 3);
    }

    #[test]
    fn tile_rects_tile_the_world() {
        let level = 3;
        let n = 1u32 << level;
        let mut total = 0.0;
        for x in 0..n {
            for y in 0..n {
                total += Tile::new(level, x, y).rect(&WORLD).area();
            }
        }
        assert!((total - WORLD.area()).abs() < 1e-6);
        // corner tile geometry
        let t = Tile::new(3, 0, 0).rect(&WORLD);
        assert_eq!(t, Rect::new(0.0, 0.0, 32.0, 32.0));
    }

    #[test]
    fn containing_point_and_clamping() {
        let t = Tile::containing(4, &WORLD, &Point::new(100.0, 200.0));
        assert!(t.rect(&WORLD).contains_point(&Point::new(100.0, 200.0)));
        // points outside clamp to edge tiles
        let t = Tile::containing(4, &WORLD, &Point::new(-50.0, 300.0));
        assert_eq!((t.x, t.y), (0, 15));
        // the world's max corner belongs to the last tile
        let t = Tile::containing(4, &WORLD, &Point::new(256.0, 256.0));
        assert_eq!((t.x, t.y), (15, 15));
    }

    #[test]
    fn covering_range_clips() {
        let r = Rect::new(-10.0, 100.0, 40.0, 140.0);
        let (x0, x1, y0, y1) = Tile::covering_range(3, &WORLD, &r).unwrap();
        assert_eq!((x0, x1), (0, 1)); // 40/32 = 1.25 -> tile 1
        assert_eq!((y0, y1), (3, 4));
        assert!(Tile::covering_range(3, &WORLD, &Rect::new(300.0, 0.0, 310.0, 5.0)).is_none());
    }

    #[test]
    fn children_and_parent() {
        let t = Tile::new(2, 1, 3);
        let kids = t.children();
        assert_eq!(kids.len(), 4);
        for k in kids {
            assert_eq!(k.parent(), Some(t));
            // children tile the parent's rect
            assert!(t.rect(&WORLD).contains_rect(&k.rect(&WORLD)));
        }
        assert_eq!(Tile::new(0, 0, 0).parent(), None);
    }
}
