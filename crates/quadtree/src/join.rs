//! Quadtree spatial join: sorted merge over tile codes.
//!
//! Because both indexes store `(tile_code, rowid)` in B-tree order, a
//! join is a single merge pass: rows of the two tables sharing a tile
//! are candidate pairs, and a pair sharing a tile that is interior to
//! either geometry is a definite hit (no secondary filter needed).

use crate::index::QuadtreeIndex;
use crate::tile::TileCode;
use sdo_storage::RowId;
use std::collections::HashMap;

/// A join candidate pair with its filter evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinCandidate {
    /// Row of the left index's table.
    pub left: RowId,
    /// Row of the right index's table.
    pub right: RowId,
    /// Tile evidence alone proves the geometries interact.
    pub definite: bool,
}

/// Merge-join two quadtree indexes on tile code. Pairs are deduplicated
/// (two geometries typically share many tiles); `definite` is true when
/// *any* shared tile proves the interaction.
pub fn merge_join(left: &QuadtreeIndex, right: &QuadtreeIndex) -> Vec<JoinCandidate> {
    assert_eq!(left.level(), right.level(), "quadtree join requires equal tiling levels");
    let mut li = left.iter_entries().peekable();
    let mut ri = right.iter_entries().peekable();
    let mut best: HashMap<(RowId, RowId), bool> = HashMap::new();

    let mut lgroup: Vec<(RowId, bool)> = Vec::new();
    let mut rgroup: Vec<(RowId, bool)> = Vec::new();
    while let (Some(&(lc, _, _)), Some(&(rc, _, _))) = (li.peek(), ri.peek()) {
        if lc < rc {
            advance_past(&mut li, lc);
        } else if rc < lc {
            advance_past(&mut ri, rc);
        } else {
            // Shared tile: gather both groups and cross them.
            lgroup.clear();
            rgroup.clear();
            collect_group(&mut li, lc, &mut lgroup);
            collect_group(&mut ri, rc, &mut rgroup);
            for &(lr, linterior) in &lgroup {
                for &(rr, rinterior) in &rgroup {
                    let definite = linterior || rinterior;
                    best.entry((lr, rr)).and_modify(|d| *d = *d || definite).or_insert(definite);
                }
            }
        }
    }
    let mut out: Vec<JoinCandidate> = best
        .into_iter()
        .map(|((left, right), definite)| JoinCandidate { left, right, definite })
        .collect();
    out.sort_by_key(|c| (c.left, c.right));
    out
}

fn advance_past<I: Iterator<Item = (TileCode, RowId, bool)>>(
    it: &mut std::iter::Peekable<I>,
    code: TileCode,
) {
    while matches!(it.peek(), Some(&(c, _, _)) if c == code) {
        it.next();
    }
}

fn collect_group<I: Iterator<Item = (TileCode, RowId, bool)>>(
    it: &mut std::iter::Peekable<I>,
    code: TileCode,
    out: &mut Vec<(RowId, bool)>,
) {
    while matches!(it.peek(), Some(&(c, _, _)) if c == code) {
        let (_, r, i) = it.next().unwrap();
        out.push((r, i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_geom::{Geometry, Polygon, Rect};

    const WORLD: Rect = Rect::new(0.0, 0.0, 256.0, 256.0);

    fn square(x: f64, y: f64, s: f64) -> Geometry {
        Geometry::Polygon(Polygon::from_rect(&Rect::new(x, y, x + s, y + s)))
    }

    fn dataset(offset: f64, n: usize) -> Vec<Geometry> {
        (0..n)
            .map(|i| {
                let x = offset + ((i * 53) % 200) as f64;
                let y = ((i * 101) % 200) as f64;
                square(x, y, 14.0)
            })
            .collect()
    }

    fn index(geoms: &[Geometry]) -> QuadtreeIndex {
        let mut idx = QuadtreeIndex::new(WORLD, 5);
        for (i, g) in geoms.iter().enumerate() {
            idx.insert(RowId::new(i as u64), g);
        }
        idx
    }

    #[test]
    fn join_candidates_cover_all_true_pairs() {
        let a = dataset(0.0, 30);
        let b = dataset(7.0, 25);
        let ia = index(&a);
        let ib = index(&b);
        let candidates = merge_join(&ia, &ib);
        // ground truth via exact predicate
        for (i, ga) in a.iter().enumerate() {
            for (j, gb) in b.iter().enumerate() {
                if sdo_geom::intersects(ga, gb) {
                    assert!(
                        candidates.iter().any(|c| c.left.slot() == i && c.right.slot() == j),
                        "missing true pair ({i},{j})"
                    );
                }
            }
        }
        // definite pairs must be truly interacting
        for c in &candidates {
            if c.definite {
                assert!(
                    sdo_geom::intersects(&a[c.left.slot()], &b[c.right.slot()]),
                    "false definite pair {c:?}"
                );
            }
        }
        assert!(candidates.iter().any(|c| c.definite));
    }

    #[test]
    fn self_join_contains_diagonal() {
        let a = dataset(0.0, 20);
        let ia = index(&a);
        let candidates = merge_join(&ia, &ia);
        for i in 0..20u64 {
            assert!(
                candidates.iter().any(|c| c.left == RowId::new(i) && c.right == RowId::new(i)),
                "diagonal pair missing for row {i}"
            );
        }
        // 14x14 squares on an 8-unit tile grid contain an interior tile
        // whenever they straddle a full tile; at least some self pairs
        // must be proven definite by those tiles.
        assert!(candidates.iter().any(|c| c.left == c.right && c.definite));
    }

    #[test]
    fn disjoint_datasets_have_no_candidates_when_tiles_differ() {
        let a = vec![square(0.0, 0.0, 10.0)];
        let b = vec![square(200.0, 200.0, 10.0)];
        let candidates = merge_join(&index(&a), &index(&b));
        assert!(candidates.is_empty());
    }

    #[test]
    #[should_panic(expected = "equal tiling levels")]
    fn mismatched_levels_rejected() {
        let a = index(&dataset(0.0, 3));
        let mut b = QuadtreeIndex::new(WORLD, 7);
        b.insert(RowId::new(0), &square(0.0, 0.0, 5.0));
        let _ = merge_join(&a, &b);
    }
}
