//! The linear quadtree index: tile entries in a B+tree.

use crate::tessellate::{tessellate, TileApprox};
use crate::tile::TileCode;
use sdo_geom::{Geometry, Rect};
use sdo_storage::{BTree, Counters, RowId};
use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;

/// Cached handle for the global `quadtree.tile_probes` metric, bumped
/// only while a profile session is active.
fn obs_tile_probes() -> &'static Arc<sdo_obs::Counter> {
    static HANDLE: std::sync::OnceLock<Arc<sdo_obs::Counter>> = std::sync::OnceLock::new();
    HANDLE.get_or_init(|| sdo_obs::global().counter("quadtree.tile_probes"))
}

/// A window-query candidate: the row plus whether the tile-level
/// evidence already proves the interaction (interior tiles), letting
/// the caller skip the exact secondary filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The candidate row.
    pub rowid: RowId,
    /// True when tile evidence alone proves the geometry interacts with
    /// the query window.
    pub definite: bool,
}

/// A linear quadtree over `(tile_code, rowid)` pairs.
///
/// The paper's structure exactly: tessellation produces tile rows, a
/// B-tree indexes the codes. Interior/boundary flags ride in a side map
/// (in Oracle they are a column of the index table).
#[derive(Clone)]
pub struct QuadtreeIndex {
    world: Rect,
    level: u32,
    btree: BTree<(TileCode, RowId)>,
    interior: HashMap<(TileCode, RowId), bool>,
    len_geometries: usize,
}

impl QuadtreeIndex {
    /// Empty index over `world` with tiling level `level`
    /// (`sdo_level` in Oracle parameter strings).
    pub fn new(world: Rect, level: u32) -> Self {
        assert!(level <= crate::MAX_LEVEL, "tiling level too deep");
        assert!(!world.is_empty(), "world extent must be non-empty");
        QuadtreeIndex {
            world,
            level,
            btree: BTree::new(),
            interior: HashMap::new(),
            len_geometries: 0,
        }
    }

    /// Attach shared work counters to the underlying B-tree.
    pub fn with_counters(mut self, counters: Arc<Counters>) -> Self {
        self.btree = std::mem::take(&mut self.btree).with_counters(counters);
        self
    }

    /// The indexed world extent.
    #[inline]
    pub fn world(&self) -> &Rect {
        &self.world
    }

    /// The fixed tiling level (`sdo_level`).
    #[inline]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Number of indexed geometries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len_geometries
    }

    /// True when no geometries are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len_geometries == 0
    }

    /// Number of tile entries (the index table's row count).
    #[inline]
    pub fn tile_entries(&self) -> usize {
        self.btree.len()
    }

    /// Index one geometry: tessellate and insert its tile rows.
    pub fn insert(&mut self, rowid: RowId, g: &Geometry) {
        let tiles = tessellate(g, &self.world, self.level);
        self.insert_tiles(rowid, &tiles);
    }

    /// Insert pre-computed tile approximations for a row — the bulk
    /// path used by parallel index creation, where tessellation already
    /// happened inside table-function slaves.
    pub fn insert_tiles(&mut self, rowid: RowId, tiles: &[TileApprox]) {
        for t in tiles {
            if self.btree.insert((t.code, rowid)) {
                self.interior.insert((t.code, rowid), t.interior);
            }
        }
        self.len_geometries += 1;
    }

    /// Remove a geometry's tile rows (re-tessellates to find them, as
    /// Oracle's index-maintenance trigger effectively does).
    pub fn delete(&mut self, rowid: RowId, g: &Geometry) -> bool {
        let tiles = tessellate(g, &self.world, self.level);
        let mut removed_any = false;
        for t in &tiles {
            if self.btree.remove(&(t.code, rowid)) {
                self.interior.remove(&(t.code, rowid));
                removed_any = true;
            }
        }
        if removed_any {
            self.len_geometries -= 1;
        }
        removed_any
    }

    /// All rows sharing tile `code`, with interior flags.
    pub fn rows_in_tile(&self, code: TileCode) -> Vec<(RowId, bool)> {
        if sdo_obs::profiling() {
            obs_tile_probes().add(1);
        }
        self.btree
            .range(
                Bound::Included(&(code, RowId::new(0))),
                Bound::Excluded(&(code + 1, RowId::new(0))),
            )
            .map(|&(c, r)| (r, *self.interior.get(&(c, r)).unwrap_or(&false)))
            .collect()
    }

    /// Window query: tessellate the query window, probe the B-tree per
    /// window tile, and merge per-row evidence.
    ///
    /// A candidate is **definite** when some shared tile is interior to
    /// either the window or the data geometry — tile geometry alone
    /// proves interaction, no exact test needed. Otherwise the caller
    /// must run the secondary filter.
    pub fn query_window(&self, window: &Geometry) -> Vec<Candidate> {
        let wtiles = tessellate(window, &self.world, self.level);
        let mut best: HashMap<RowId, bool> = HashMap::new();
        for wt in &wtiles {
            for (rowid, data_interior) in self.rows_in_tile(wt.code) {
                let definite = wt.interior || data_interior;
                best.entry(rowid).and_modify(|d| *d = *d || definite).or_insert(definite);
            }
        }
        let mut out: Vec<Candidate> =
            best.into_iter().map(|(rowid, definite)| Candidate { rowid, definite }).collect();
        out.sort_by_key(|c| c.rowid);
        out
    }

    /// Iterate every `(code, rowid, interior)` entry in tile order —
    /// the input to the quadtree merge join.
    pub fn iter_entries(&self) -> impl Iterator<Item = (TileCode, RowId, bool)> + '_ {
        self.btree.iter().map(|&(c, r)| (c, r, *self.interior.get(&(c, r)).unwrap_or(&false)))
    }

    /// Bulk-build from tessellated rows (sorted or not). Used by the
    /// parallel creation path: slaves emit `(code, rowid, interior)`
    /// triples, the coordinator sorts once and packs the B-tree
    /// bottom-up.
    pub fn bulk_build(
        world: Rect,
        level: u32,
        mut entries: Vec<(TileCode, RowId, bool)>,
        geometry_count: usize,
    ) -> Self {
        entries.sort_unstable_by_key(|&(c, r, _)| (c, r));
        entries.dedup_by_key(|&mut (c, r, _)| (c, r));
        let mut interior = HashMap::with_capacity(entries.len());
        let keys: Vec<(TileCode, RowId)> = entries
            .iter()
            .map(|&(c, r, i)| {
                interior.insert((c, r), i);
                (c, r)
            })
            .collect();
        let btree = BTree::bulk_build(keys, sdo_storage::btree::DEFAULT_ORDER);
        QuadtreeIndex { world, level, btree, interior, len_geometries: geometry_count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_geom::{Point, Polygon};

    const WORLD: Rect = Rect::new(0.0, 0.0, 256.0, 256.0);

    fn square(x: f64, y: f64, s: f64) -> Geometry {
        Geometry::Polygon(Polygon::from_rect(&Rect::new(x, y, x + s, y + s)))
    }

    fn build(geoms: &[Geometry]) -> QuadtreeIndex {
        let mut idx = QuadtreeIndex::new(WORLD, 5);
        for (i, g) in geoms.iter().enumerate() {
            idx.insert(RowId::new(i as u64), g);
        }
        idx
    }

    fn sample() -> Vec<Geometry> {
        (0..40)
            .map(|i| {
                let x = ((i * 37) % 220) as f64;
                let y = ((i * 91) % 220) as f64;
                square(x, y, 12.0)
            })
            .collect()
    }

    #[test]
    fn window_query_superset_of_truth_and_definites_sound() {
        let geoms = sample();
        let idx = build(&geoms);
        let window = square(50.0, 50.0, 60.0);
        let candidates = idx.query_window(&window);
        // exact answers
        let truth: Vec<usize> = geoms
            .iter()
            .enumerate()
            .filter(|(_, g)| sdo_geom::intersects(g, &window))
            .map(|(i, _)| i)
            .collect();
        let cand_ids: Vec<usize> = candidates.iter().map(|c| c.rowid.slot()).collect();
        // candidates ⊇ truth
        for t in &truth {
            assert!(cand_ids.contains(t), "missing true hit {t}");
        }
        // definite candidates ⊆ truth (no false definite)
        for c in &candidates {
            if c.definite {
                assert!(truth.contains(&c.rowid.slot()), "false definite candidate {:?}", c.rowid);
            }
        }
        // a window this large must prove some hits definitively
        assert!(candidates.iter().any(|c| c.definite));
    }

    #[test]
    fn delete_removes_tile_rows() {
        let geoms = sample();
        let mut idx = build(&geoms);
        let before = idx.tile_entries();
        assert!(idx.delete(RowId::new(0), &geoms[0]));
        assert!(!idx.delete(RowId::new(0), &geoms[0]));
        assert!(idx.tile_entries() < before);
        assert_eq!(idx.len(), 39);
        let window = geoms[0].clone();
        let candidates = idx.query_window(&window);
        assert!(candidates.iter().all(|c| c.rowid != RowId::new(0)));
    }

    #[test]
    fn bulk_build_equals_incremental() {
        let geoms = sample();
        let incremental = build(&geoms);
        let mut rows = Vec::new();
        for (i, g) in geoms.iter().enumerate() {
            for t in tessellate(g, &WORLD, 5) {
                rows.push((t.code, RowId::new(i as u64), t.interior));
            }
        }
        let bulk = QuadtreeIndex::bulk_build(WORLD, 5, rows, geoms.len());
        assert_eq!(bulk.tile_entries(), incremental.tile_entries());
        assert_eq!(bulk.len(), incremental.len());
        let w = square(30.0, 80.0, 70.0);
        assert_eq!(bulk.query_window(&w), incremental.query_window(&w));
        // entries iterate identically
        let a: Vec<_> = bulk.iter_entries().collect();
        let b: Vec<_> = incremental.iter_entries().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn point_queries() {
        let geoms = sample();
        let idx = build(&geoms);
        let probe = Geometry::Point(Point::new(5.0, 5.0));
        let candidates = idx.query_window(&probe);
        let truth: Vec<usize> = geoms
            .iter()
            .enumerate()
            .filter(|(_, g)| sdo_geom::intersects(g, &probe))
            .map(|(i, _)| i)
            .collect();
        for t in truth {
            assert!(candidates.iter().any(|c| c.rowid.slot() == t));
        }
    }

    #[test]
    fn empty_index_queries_cleanly() {
        let idx = QuadtreeIndex::new(WORLD, 5);
        assert!(idx.is_empty());
        assert!(idx.query_window(&square(0.0, 0.0, 100.0)).is_empty());
    }
}
