#![warn(missing_docs)]
//! # sdo-quadtree — the linear quadtree index
//!
//! Oracle Spatial's first spatial index type, rebuilt: "The Linear
//! Quadtree ... computes tile approximations for data geometries at
//! index creation time and creates B-tree indexes on the encoded tile
//! approximations" (paper §1).
//!
//! * [`tile`] — fixed-level tiles over a world extent, encoded as
//!   Morton (Z-order) codes so tile order is B-tree order,
//! * [`tessellate`] — cover a geometry with the level-`L` tiles it
//!   interacts with, classifying each tile as *interior* (fully inside
//!   an areal geometry) or *boundary*; tessellation is the expensive
//!   step the paper parallelizes with table functions (§5, Figure 2),
//! * [`index::QuadtreeIndex`] — `(tile_code, rowid)` entries in a
//!   from-scratch B+tree ([`sdo_storage::BTree`]) with interior flags;
//!   window queries decompose the window into tiles and probe the
//!   B-tree; interior tiles yield *definite* hits that skip the
//!   secondary filter (the interior-approximation optimization of the
//!   authors' companion paper),
//! * [`join`] — a sorted merge join over two tile B-trees, the
//!   quadtree counterpart of the R-tree spatial join.

pub mod index;
pub mod join;
pub mod tessellate;
pub mod tile;

pub use index::{Candidate, QuadtreeIndex};
pub use join::{merge_join, JoinCandidate};
pub use tessellate::{tessellate, TileApprox};
pub use tile::{Tile, TileCode};

/// Default tiling level (Oracle's `sdo_level`); 2^8 = 256 tiles per
/// axis is a reasonable default for country-scale data.
pub const DEFAULT_LEVEL: u32 = 8;

/// Maximum supported tiling level (Morton codes fit u64: 2 bits/level).
pub const MAX_LEVEL: u32 = 31;
