//! Property-based quadtree testing: tessellation soundness, window
//! query soundness/completeness, merge-join completeness.

use proptest::prelude::*;
use sdo_geom::algorithms::convex_hull;
use sdo_geom::{Geometry, Point, Polygon, Rect, Ring};
use sdo_quadtree::{merge_join, tessellate, QuadtreeIndex, Tile};
use sdo_storage::RowId;

const WORLD: Rect = Rect::new(0.0, 0.0, 256.0, 256.0);

fn arb_point() -> impl Strategy<Value = Point> {
    (5.0f64..250.0, 5.0f64..250.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_polygon() -> impl Strategy<Value = Geometry> {
    proptest::collection::vec(arb_point(), 3..10).prop_filter_map("degenerate", |pts| {
        let hull = convex_hull(&pts);
        if hull.len() < 3 {
            return None;
        }
        let ring = Ring::new(hull).ok()?;
        if ring.area() < 1.0 {
            return None;
        }
        Some(Geometry::Polygon(Polygon::from_exterior(ring)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tessellation_tiles_interact_exactly(g in arb_polygon(), level in 3u32..7) {
        let tiles = tessellate(&g, &WORLD, level);
        prop_assert!(!tiles.is_empty());
        for t in &tiles {
            let rect = Tile::from_code(level, t.code).rect(&WORLD);
            let tile_poly = Geometry::Polygon(Polygon::from_rect(&rect));
            prop_assert!(
                sdo_geom::intersects(&g, &tile_poly),
                "kept tile does not interact"
            );
            if t.interior {
                prop_assert!(
                    sdo_geom::covered_by(&tile_poly, &g),
                    "interior tile not covered by geometry"
                );
            }
        }
    }

    #[test]
    fn tessellation_covers_every_vertex(g in arb_polygon(), level in 3u32..7) {
        let tiles = tessellate(&g, &WORLD, level);
        for v in g.vertices() {
            let code = Tile::containing(level, &WORLD, &v).code();
            // The vertex tile, or one adjacent (vertices exactly on tile
            // borders may belong to either side), must be present.
            prop_assert!(
                tiles.iter().any(|t| {
                    let tile = Tile::from_code(level, t.code);
                    tile.rect(&WORLD).expanded(1e-9).contains_point(&v)
                }),
                "vertex {v} not covered (nominal tile {code})"
            );
        }
    }

    #[test]
    fn window_query_sound_and_complete(
        geoms in proptest::collection::vec(arb_polygon(), 1..40),
        window in arb_polygon(),
        level in 4u32..7,
    ) {
        let mut idx = QuadtreeIndex::new(WORLD, level);
        for (i, g) in geoms.iter().enumerate() {
            idx.insert(RowId::new(i as u64), g);
        }
        let candidates = idx.query_window(&window);
        let truth: Vec<usize> = geoms
            .iter()
            .enumerate()
            .filter(|(_, g)| sdo_geom::intersects(g, &window))
            .map(|(i, _)| i)
            .collect();
        // completeness: every true hit is a candidate
        for t in &truth {
            prop_assert!(
                candidates.iter().any(|c| c.rowid.slot() == *t),
                "missing true hit {t}"
            );
        }
        // soundness of definites
        for c in &candidates {
            if c.definite {
                prop_assert!(truth.contains(&c.rowid.slot()), "false definite {c:?}");
            }
        }
    }

    #[test]
    fn insert_delete_roundtrip(
        geoms in proptest::collection::vec(arb_polygon(), 1..30),
        level in 4u32..7,
    ) {
        let mut idx = QuadtreeIndex::new(WORLD, level);
        for (i, g) in geoms.iter().enumerate() {
            idx.insert(RowId::new(i as u64), g);
        }
        let entries_full = idx.tile_entries();
        for (i, g) in geoms.iter().enumerate() {
            prop_assert!(idx.delete(RowId::new(i as u64), g));
        }
        prop_assert_eq!(idx.tile_entries(), 0);
        prop_assert!(idx.is_empty());
        prop_assert!(entries_full >= geoms.len());
    }

    #[test]
    fn merge_join_complete(
        a in proptest::collection::vec(arb_polygon(), 1..25),
        b in proptest::collection::vec(arb_polygon(), 1..25),
        level in 4u32..7,
    ) {
        let mut ia = QuadtreeIndex::new(WORLD, level);
        for (i, g) in a.iter().enumerate() {
            ia.insert(RowId::new(i as u64), g);
        }
        let mut ib = QuadtreeIndex::new(WORLD, level);
        for (i, g) in b.iter().enumerate() {
            ib.insert(RowId::new(i as u64), g);
        }
        let candidates = merge_join(&ia, &ib);
        for (i, ga) in a.iter().enumerate() {
            for (j, gb) in b.iter().enumerate() {
                if sdo_geom::intersects(ga, gb) {
                    prop_assert!(
                        candidates
                            .iter()
                            .any(|c| c.left.slot() == i && c.right.slot() == j),
                        "missing true pair ({i},{j})"
                    );
                }
            }
        }
        for c in &candidates {
            if c.definite {
                prop_assert!(
                    sdo_geom::intersects(&a[c.left.slot()], &b[c.right.slot()]),
                    "false definite pair {c:?}"
                );
            }
        }
    }

    #[test]
    fn bulk_build_equals_incremental(
        geoms in proptest::collection::vec(arb_polygon(), 0..30),
        level in 4u32..7,
    ) {
        let mut incr = QuadtreeIndex::new(WORLD, level);
        let mut rows = Vec::new();
        for (i, g) in geoms.iter().enumerate() {
            incr.insert(RowId::new(i as u64), g);
            for t in tessellate(g, &WORLD, level) {
                rows.push((t.code, RowId::new(i as u64), t.interior));
            }
        }
        let bulk = QuadtreeIndex::bulk_build(WORLD, level, rows, geoms.len());
        let a: Vec<_> = bulk.iter_entries().collect();
        let b: Vec<_> = incr.iter_entries().collect();
        prop_assert_eq!(a, b);
    }
}
