//! Property-based table-function testing: partitioners cover the input
//! exactly once, and parallel execution returns the serial multiset at
//! any DOP and fetch size.

use proptest::prelude::*;
use sdo_storage::Value;
use sdo_tablefunc::parallel::execute_parallel;
use sdo_tablefunc::partition::{partition_rows, partition_sources, PartitionMethod};
use sdo_tablefunc::pipeline::CursorFn;
use sdo_tablefunc::source::VecSource;
use sdo_tablefunc::table_function::collect_all;
use sdo_tablefunc::{Row, TableFunction};

fn arb_rows() -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec((0i64..50, any::<i64>()), 0..300).prop_map(|pairs| {
        pairs.into_iter().map(|(k, v)| vec![Value::Integer(k), Value::Integer(v)]).collect()
    })
}

fn arb_method() -> impl Strategy<Value = PartitionMethod> {
    prop_oneof![
        Just(PartitionMethod::Any),
        Just(PartitionMethod::Hash(0)),
        Just(PartitionMethod::Range),
    ]
}

fn multiset(rows: &[Row]) -> Vec<(i64, i64)> {
    let mut v: Vec<(i64, i64)> =
        rows.iter().map(|r| (r[0].as_integer().unwrap(), r[1].as_integer().unwrap())).collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn partitions_cover_exactly_once(
        rows in arb_rows(),
        method in arb_method(),
        dop in 1usize..9,
    ) {
        let want = multiset(&rows);
        let parts = partition_rows(rows, method, dop);
        prop_assert_eq!(parts.len(), dop);
        let got = multiset(&parts.into_iter().flatten().collect::<Vec<_>>());
        prop_assert_eq!(got, want);
    }

    #[test]
    fn hash_partitioning_groups_keys(rows in arb_rows(), dop in 1usize..9) {
        let parts = partition_rows(rows, PartitionMethod::Hash(0), dop);
        for key in 0i64..50 {
            let holders = parts
                .iter()
                .filter(|p| p.iter().any(|r| r[0].as_integer() == Some(key)))
                .count();
            prop_assert!(holders <= 1, "key {key} split across {holders} partitions");
        }
    }

    #[test]
    fn parallel_cursor_fn_equals_serial(
        rows in arb_rows(),
        method in arb_method(),
        dop in 1usize..6,
        fetch in 1usize..64,
    ) {
        // the function: emit (k, v+1) for even k, drop odd k
        let body = |r: Row| {
            let k = r[0].as_integer().unwrap();
            let v = r[1].as_integer().unwrap();
            Ok(if k % 2 == 0 {
                vec![vec![Value::Integer(k), Value::Integer(v.wrapping_add(1))]]
            } else {
                vec![]
            })
        };
        let mut serial = CursorFn::new(VecSource::new(rows.clone()), body);
        let want = multiset(&collect_all(&mut serial, 128).unwrap());

        let parts = partition_sources(rows, method, dop);
        let instances: Vec<Box<dyn TableFunction>> = parts
            .into_iter()
            .map(|p| Box::new(CursorFn::new(p, body)) as Box<dyn TableFunction>)
            .collect();
        let got = multiset(&execute_parallel(instances, fetch).unwrap());
        prop_assert_eq!(got, want);
    }

    #[test]
    fn fetch_size_never_exceeded(rows in arb_rows(), fetch in 1usize..32) {
        let mut f = CursorFn::new(VecSource::new(rows), |r: Row| Ok(vec![r]));
        f.start().unwrap();
        loop {
            let batch = f.fetch(fetch).unwrap();
            prop_assert!(batch.len() <= fetch);
            if batch.is_empty() {
                break;
            }
        }
        f.close();
    }
}
