//! Rows flowing through table functions.

use sdo_storage::Value;

/// A row produced or consumed by a table function.
///
/// Table functions are untyped at this layer — like Oracle's
/// `ANYDATASET` plumbing, the row shape is a contract between producer
/// and consumer. Geometry values are `Arc`-shared (see
/// [`sdo_storage::Value`]), so rows are cheap to move across the
/// parallel executor's channels.
pub type Row = Vec<Value>;

/// Build a row from anything convertible to [`Value`].
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        vec![$(sdo_storage::Value::from($v)),*]
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn row_macro_builds_values() {
        let r: super::Row = row![1i64, 2.5f64, "x"];
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].as_integer(), Some(1));
        assert_eq!(r[1].as_double(), Some(2.5));
        assert_eq!(r[2].as_text(), Some("x"));
    }
}
