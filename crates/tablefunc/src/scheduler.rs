//! Dynamic work-stealing task scheduling for parallel table functions.
//!
//! Oracle distributes a parallel table function's input statically: the
//! cursor is partitioned once and each slave owns its slice (see
//! [`crate::partition`]). That reproduces the paper's setup but
//! inherits its weakness — on skewed data one slave drains a dense
//! partition while the rest idle. [`TaskQueue`] is the dynamic
//! alternative: all slaves share one queue, each pulls its next task on
//! demand, and a slave that runs dry *steals* from a busy sibling, so
//! no slave idles while tasks remain anywhere.
//!
//! Structure: one small deque shard per worker. A worker pushes and
//! pops its own shard LIFO (cache-warm, no contention in the common
//! case) and steals FIFO from siblings (oldest — and for a splitting
//! producer, largest — tasks move, minimizing steal traffic). Shards
//! are individually locked; with one `VecDeque` per worker the lock is
//! cheap and held for a pop only.
//!
//! The queue is purely a *repartitioning* of the same task multiset:
//! every seeded or pushed task is handed out exactly once, so parallel
//! results remain the multiset of the serial ones regardless of which
//! worker executes what.

use crate::row::Row;
use crate::table_function::TableFunction;
use crate::TfError;
use parking_lot::Mutex;
use sdo_obs::ProfileNode;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A task handed out by [`TaskQueue::pop`], tagged with whether it was
/// taken from the worker's own shard or stolen from a sibling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pulled<T> {
    /// The task itself.
    pub task: T,
    /// True when the task came from another worker's shard.
    pub stolen: bool,
}

/// A shared work-stealing task queue for `dop` workers.
///
/// Seed it once (round-robin or from pre-built partitions), hand an
/// `Arc` to every slave, and let each slave `pop(worker_id)` until the
/// queue is dry. Workers may `push` follow-up tasks (e.g. after
/// splitting an oversized task) onto their own shard mid-run.
pub struct TaskQueue<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    /// Per-worker count of tasks handed out via `pop(worker)`.
    executed: Vec<AtomicU64>,
    /// Per-worker count of those that were stolen from a sibling.
    stolen: Vec<AtomicU64>,
}

impl<T> TaskQueue<T> {
    /// An empty queue for `dop` workers.
    pub fn new(dop: usize) -> Self {
        let dop = dop.max(1);
        TaskQueue {
            shards: (0..dop).map(|_| Mutex::new(VecDeque::new())).collect(),
            executed: (0..dop).map(|_| AtomicU64::new(0)).collect(),
            stolen: (0..dop).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Seed a queue by dealing `tasks` round-robin across the worker
    /// shards (each worker starts with a fair share; stealing evens out
    /// whatever imbalance execution cost introduces).
    pub fn seed_round_robin(tasks: Vec<T>, dop: usize) -> Arc<Self> {
        let q = Self::new(dop);
        for (i, t) in tasks.into_iter().enumerate() {
            q.shards[i % q.shards.len()].lock().push_back(t);
        }
        Arc::new(q)
    }

    /// Number of workers this queue serves.
    pub fn dop(&self) -> usize {
        self.shards.len()
    }

    /// Tasks currently queued across all shards (racy snapshot; exact
    /// only once all workers have stopped).
    pub fn remaining(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Push a task onto `worker`'s own shard (LIFO end, so the worker
    /// keeps working depth-first on what it just split).
    pub fn push(&self, worker: usize, task: T) {
        self.shards[worker % self.shards.len()].lock().push_back(task);
    }

    /// Pull the next task for `worker`: its own shard first (LIFO),
    /// then steal FIFO from siblings, scanning from the next worker
    /// up. Returns `None` only when every shard is empty — at which
    /// point this worker is done (a sibling may still push split
    /// children afterwards, but exactly-once execution is preserved:
    /// whoever holds a task runs it).
    pub fn pop(&self, worker: usize) -> Option<Pulled<T>> {
        let n = self.shards.len();
        let me = worker % n;
        if let Some(task) = self.shards[me].lock().pop_back() {
            self.executed[me].fetch_add(1, Ordering::Relaxed);
            return Some(Pulled { task, stolen: false });
        }
        for i in 1..n {
            let victim = (me + i) % n;
            if let Some(task) = self.shards[victim].lock().pop_front() {
                self.executed[me].fetch_add(1, Ordering::Relaxed);
                self.stolen[me].fetch_add(1, Ordering::Relaxed);
                return Some(Pulled { task, stolen: true });
            }
        }
        None
    }

    /// Tasks executed by `worker` so far.
    pub fn executed(&self, worker: usize) -> u64 {
        self.executed[worker % self.executed.len()].load(Ordering::Relaxed)
    }

    /// Tasks `worker` stole from siblings so far.
    pub fn stolen(&self, worker: usize) -> u64 {
        self.stolen[worker % self.stolen.len()].load(Ordering::Relaxed)
    }

    /// Total tasks handed out across all workers.
    pub fn total_executed(&self) -> u64 {
        self.executed.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Total steals across all workers.
    pub fn total_stolen(&self) -> u64 {
        self.stolen.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// A table function that pulls tasks from a shared [`TaskQueue`] and
/// maps each through a body closure — the work-stealing counterpart of
/// running [`crate::pipeline::CursorFn`] over a static partition.
///
/// Build one instance per slave (same queue, distinct `worker` ids) and
/// run them under [`crate::parallel::ParallelTableFunction`]. Each
/// instance reports `tasks_executed` / `tasks_stolen` on its profile
/// node, so `EXPLAIN ANALYZE` shows how the load actually spread.
pub struct WorkStealingFn<T, F> {
    queue: Arc<TaskQueue<T>>,
    worker: usize,
    body: F,
    pending: VecDeque<Row>,
    started: bool,
    executed: u64,
    stolen: u64,
    profile: Option<ProfileNode>,
}

impl<T, F> WorkStealingFn<T, F>
where
    T: Send,
    F: FnMut(T) -> Result<Vec<Row>, TfError> + Send,
{
    /// A slave instance pulling from `queue` as worker `worker`.
    pub fn new(queue: Arc<TaskQueue<T>>, worker: usize, body: F) -> Self {
        WorkStealingFn {
            queue,
            worker,
            body,
            pending: VecDeque::new(),
            started: false,
            executed: 0,
            stolen: 0,
            profile: None,
        }
    }
}

impl<T, F> TableFunction for WorkStealingFn<T, F>
where
    T: Send,
    F: FnMut(T) -> Result<Vec<Row>, TfError> + Send,
{
    fn start(&mut self) -> Result<(), TfError> {
        if self.started {
            return Err(TfError::Protocol("start called twice"));
        }
        self.started = true;
        Ok(())
    }

    fn fetch(&mut self, max_rows: usize) -> Result<Vec<Row>, TfError> {
        if !self.started {
            return Err(TfError::Protocol("fetch before start"));
        }
        while self.pending.len() < max_rows {
            let Some(pulled) = self.queue.pop(self.worker) else { break };
            self.executed += 1;
            self.stolen += u64::from(pulled.stolen);
            self.pending.extend((self.body)(pulled.task)?);
        }
        let n = self.pending.len().min(max_rows);
        Ok(self.pending.drain(..n).collect())
    }

    fn close(&mut self) {
        self.pending.clear();
        if let Some(node) = self.profile.take() {
            // set_metric: a zero must render — a slave that executed
            // nothing is the load-imbalance signal EXPLAIN ANALYZE
            // exists to show.
            node.set_metric("tasks_executed", self.executed);
            node.set_metric("tasks_stolen", self.stolen);
        }
    }

    fn attach_profile(&mut self, node: &ProfileNode) {
        self.profile = Some(node.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::execute_parallel;
    use sdo_storage::Value;

    #[test]
    fn every_task_handed_out_exactly_once() {
        let q = TaskQueue::seed_round_robin((0..100i64).collect(), 4);
        let mut got = Vec::new();
        // Single worker drains everything: its own shard, then steals.
        while let Some(p) = q.pop(2) {
            got.push(p.task);
        }
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(q.total_executed(), 100);
        assert_eq!(q.executed(2), 100);
        assert_eq!(q.stolen(2), 75, "three sibling shards fully stolen");
        assert_eq!(q.remaining(), 0);
    }

    #[test]
    fn own_shard_pops_lifo_steals_fifo() {
        let q = TaskQueue::new(2);
        q.push(0, 1i64);
        q.push(0, 2);
        q.push(0, 3);
        assert_eq!(q.pop(0), Some(Pulled { task: 3, stolen: false }), "own shard is LIFO");
        assert_eq!(q.pop(1), Some(Pulled { task: 1, stolen: true }), "steals take the oldest");
        assert_eq!(q.pop(1), Some(Pulled { task: 2, stolen: true }));
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn mid_run_pushes_are_executed() {
        let q = TaskQueue::seed_round_robin(vec![10i64], 3);
        let p = q.pop(0).unwrap();
        // Split the pulled task into two children on the own shard.
        q.push(0, p.task + 1);
        q.push(0, p.task + 2);
        let mut rest: Vec<i64> = std::iter::from_fn(|| q.pop(1).map(|p| p.task)).collect();
        rest.sort_unstable();
        assert_eq!(rest, vec![11, 12]);
    }

    #[test]
    fn parallel_workers_cover_queue_exactly() {
        for dop in [1usize, 2, 4] {
            let q = TaskQueue::seed_round_robin((0..200i64).collect(), dop);
            let instances: Vec<Box<dyn TableFunction>> = (0..dop)
                .map(|w| {
                    let q = Arc::clone(&q);
                    Box::new(WorkStealingFn::new(Arc::clone(&q), w, move |t: i64| {
                        Ok(vec![vec![Value::Integer(t)]])
                    })) as Box<dyn TableFunction>
                })
                .collect();
            let rows = execute_parallel(instances, 16).unwrap();
            let mut got: Vec<i64> = rows.iter().map(|r| r[0].as_integer().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, (0..200).collect::<Vec<_>>(), "dop={dop}");
            assert_eq!(q.total_executed(), 200, "dop={dop}");
        }
    }

    #[test]
    fn skewed_shards_get_rebalanced_by_stealing() {
        // All work lands on worker 0's shard; the other workers must
        // still execute via steals when worker 0 is slow.
        let q: Arc<TaskQueue<i64>> = Arc::new(TaskQueue::new(4));
        for t in 0..400 {
            q.push(0, t);
        }
        let instances: Vec<Box<dyn TableFunction>> = (0..4)
            .map(|w| {
                let q = Arc::clone(&q);
                Box::new(WorkStealingFn::new(Arc::clone(&q), w, move |t: i64| {
                    if w == 0 {
                        // The shard owner is the slowest worker.
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    Ok(vec![vec![Value::Integer(t)]])
                })) as Box<dyn TableFunction>
            })
            .collect();
        let rows = execute_parallel(instances, 32).unwrap();
        assert_eq!(rows.len(), 400);
        assert_eq!(q.total_executed(), 400);
        assert!(q.total_stolen() > 0, "siblings must have stolen from the loaded shard");
    }

    #[test]
    fn profile_reports_task_metrics() {
        let session = sdo_obs::ProfileSession::begin("steal");
        let node = session.root().child("WORKER");
        let q = TaskQueue::seed_round_robin((0..7i64).collect(), 1);
        let mut f = WorkStealingFn::new(q, 0, move |t: i64| Ok(vec![vec![Value::Integer(t)]]));
        f.attach_profile(&node);
        let rows = crate::table_function::collect_all(&mut f, 4).unwrap();
        assert_eq!(rows.len(), 7);
        let profile = session.finish();
        let op = profile.root.find("WORKER").unwrap();
        assert_eq!(op.metric("tasks_executed"), Some(7));
        assert_eq!(op.metric("tasks_stolen"), Some(0));
    }

    #[test]
    fn body_error_propagates() {
        let q = TaskQueue::seed_round_robin(vec![1i64], 1);
        let mut f = WorkStealingFn::new(q, 0, |_t: i64| {
            Err::<Vec<Row>, _>(TfError::Execution("boom".into()))
        });
        f.start().unwrap();
        assert!(f.fetch(8).is_err());
    }
}
