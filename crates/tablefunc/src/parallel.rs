//! The parallel table-function executor.
//!
//! Reproduces Oracle9i's parallel execution of a table function: the
//! caller partitions the input cursor (see [`crate::partition`]),
//! builds one function *instance per slave*, and this executor runs the
//! instances on worker threads. Each slave drives its instance through
//! the pipelined `start`/`fetch`/`close` protocol and funnels result
//! batches into a bounded channel, so production and consumption
//! overlap (pipelining survives parallelism) and a slow consumer
//! back-pressures the slaves instead of buffering unboundedly.

use crate::pool::{self, PoolJoinHandle};
use crate::row::Row;
use crate::table_function::TableFunction;
use crate::TfError;
use crossbeam::channel::{bounded, Receiver, Sender};
use sdo_obs::ProfileNode;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// How many in-flight batches each executor buffers before slaves
/// block. Small by design: the paper's pipelining argument is that the
/// full result set never materializes.
const CHANNEL_DEPTH: usize = 8;

/// A table function that executes `instances` in parallel and merges
/// their output streams.
///
/// Itself a [`TableFunction`], so parallel execution composes with the
/// rest of the pipeline: `start` launches the slaves, `fetch` pulls
/// merged batches, `close` tears the slaves down (early close is safe —
/// slaves notice the closed channel and exit).
///
/// Row order across slaves is nondeterministic; SQL multiset semantics
/// apply, exactly as with Oracle parallel query.
pub struct ParallelTableFunction {
    instances: Vec<Box<dyn TableFunction>>,
    dop: usize,
    slave_fetch_size: usize,
    rx: Option<Receiver<Result<Vec<Row>, TfError>>>,
    handles: Vec<PoolJoinHandle>,
    pending: VecDeque<Row>,
    failed: Option<TfError>,
    profile: Option<ProfileNode>,
}

impl ParallelTableFunction {
    /// Wrap pre-built per-slave instances. The degree of parallelism is
    /// `instances.len()`.
    pub fn new(instances: Vec<Box<dyn TableFunction>>) -> Self {
        assert!(!instances.is_empty(), "need at least one instance");
        ParallelTableFunction {
            dop: instances.len(),
            instances,
            slave_fetch_size: 256,
            rx: None,
            handles: Vec::new(),
            pending: VecDeque::new(),
            failed: None,
            profile: None,
        }
    }

    /// Batch size each slave uses when fetching from its instance.
    pub fn with_slave_fetch_size(mut self, n: usize) -> Self {
        self.slave_fetch_size = n.max(1);
        self
    }

    /// Degree of parallelism. Recorded at construction, so it stays
    /// valid across the whole lifecycle (`start` drains `instances`
    /// into slave threads and `close` drains `handles`).
    pub fn dop(&self) -> usize {
        self.dop
    }

    fn spawn_slave(
        id: usize,
        mut f: Box<dyn TableFunction>,
        tx: Sender<Result<Vec<Row>, TfError>>,
        fetch_size: usize,
        profile: Option<ProfileNode>,
    ) -> PoolJoinHandle {
        // Slaves run on the process-wide cached pool rather than a
        // freshly spawned thread per slave per query, so concurrent
        // statements in a multi-session server share a stable worker
        // set (see [`crate::pool`]).
        pool::global().submit(move || {
            // Profiling: this slave's node becomes the thread's
            // current profile, so operators running inside the
            // instance hang their detail under "slave N". The guard
            // drops before the worker re-parks, leaving no ambient
            // profile behind on the reused thread.
            let _profile_scope = profile.clone().map(sdo_obs::enter);
            if let Some(node) = &profile {
                f.attach_profile(node);
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                f.start()?;
                loop {
                    let fetch_started = profile.as_ref().map(|_| Instant::now());
                    let batch = f.fetch(fetch_size)?;
                    if let (Some(node), Some(t0)) = (&profile, fetch_started) {
                        node.add_wall(t0.elapsed());
                        if !batch.is_empty() {
                            node.add_batches(1);
                            node.add_rows(batch.len() as u64);
                        }
                    }
                    if batch.is_empty() {
                        break;
                    }
                    if tx.send(Ok(batch)).is_err() {
                        // Consumer went away (early close): stop
                        // producing and release resources.
                        break;
                    }
                }
                f.close();
                Ok::<(), TfError>(())
            }));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    let _ = tx.send(Err(e));
                }
                Err(_) => {
                    let _ = tx.send(Err(TfError::SlavePanic(id)));
                }
            }
        })
    }
}

impl TableFunction for ParallelTableFunction {
    fn start(&mut self) -> Result<(), TfError> {
        if self.rx.is_some() {
            return Err(TfError::Protocol("start called twice"));
        }
        // If no node was attached explicitly, pick up the ambient
        // profile of the calling thread (if a session is active).
        let parent = self.profile.clone().or_else(sdo_obs::current);
        if let Some(p) = &parent {
            p.set_attr("dop", self.dop.to_string());
        }
        let (tx, rx) = bounded(CHANNEL_DEPTH.max(self.instances.len()));
        for (id, inst) in self.instances.drain(..).enumerate() {
            let slave_node = parent.as_ref().map(|p| p.child(format!("slave {id}")));
            self.handles.push(Self::spawn_slave(
                id,
                inst,
                tx.clone(),
                self.slave_fetch_size,
                slave_node,
            ));
        }
        drop(tx); // receiver disconnects once every slave finishes
        self.rx = Some(rx);
        Ok(())
    }

    fn fetch(&mut self, max_rows: usize) -> Result<Vec<Row>, TfError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        let rx = self.rx.as_ref().ok_or(TfError::Protocol("fetch before start"))?;
        while self.pending.len() < max_rows {
            match rx.recv() {
                Ok(Ok(batch)) => self.pending.extend(batch),
                Ok(Err(e)) => {
                    self.failed = Some(e.clone());
                    self.close();
                    return Err(e);
                }
                Err(_) => break, // all slaves done
            }
        }
        let n = self.pending.len().min(max_rows);
        Ok(self.pending.drain(..n).collect())
    }

    fn close(&mut self) {
        self.rx = None; // unblocks slaves waiting on a full channel
        for h in self.handles.drain(..) {
            h.join();
        }
        self.pending.clear();
    }

    fn attach_profile(&mut self, node: &ProfileNode) {
        self.profile = Some(node.clone());
    }
}

impl Drop for ParallelTableFunction {
    fn drop(&mut self) {
        self.close();
    }
}

/// Run per-slave instances to completion and collect every row.
///
/// Convenience wrapper over [`ParallelTableFunction`] +
/// [`crate::table_function::collect_all`].
pub fn execute_parallel(
    instances: Vec<Box<dyn TableFunction>>,
    fetch_size: usize,
) -> Result<Vec<Row>, TfError> {
    if instances.is_empty() {
        // An empty input sliced dop ways yields no slave instances —
        // e.g. building an index over a table with no rows yet.
        return Ok(Vec::new());
    }
    let mut p = ParallelTableFunction::new(instances).with_slave_fetch_size(fetch_size);
    crate::table_function::collect_all(&mut p, fetch_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table_function::BufferedFn;
    use sdo_storage::Value;

    fn instance(lo: i64, hi: i64) -> Box<dyn TableFunction> {
        Box::new(BufferedFn::new(move || Ok((lo..hi).map(|i| vec![Value::Integer(i)]).collect())))
    }

    fn sorted_ints(rows: Vec<Row>) -> Vec<i64> {
        let mut v: Vec<i64> = rows.iter().map(|r| r[0].as_integer().unwrap()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn merges_all_slave_output() {
        for dop in [1usize, 2, 4, 7] {
            let per = 100i64;
            let instances: Vec<_> =
                (0..dop as i64).map(|i| instance(i * per, (i + 1) * per)).collect();
            let rows = execute_parallel(instances, 16).unwrap();
            assert_eq!(sorted_ints(rows), (0..dop as i64 * per).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fetch_respects_max_rows() {
        let mut p = ParallelTableFunction::new(vec![instance(0, 50), instance(50, 100)]);
        p.start().unwrap();
        let batch = p.fetch(7).unwrap();
        assert_eq!(batch.len(), 7);
        let mut rest = batch;
        loop {
            let b = p.fetch(7).unwrap();
            if b.is_empty() {
                break;
            }
            assert!(b.len() <= 7);
            rest.extend(b);
        }
        p.close();
        assert_eq!(sorted_ints(rest), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn slave_error_propagates() {
        struct Failing;
        impl TableFunction for Failing {
            fn start(&mut self) -> Result<(), TfError> {
                Ok(())
            }
            fn fetch(&mut self, _: usize) -> Result<Vec<Row>, TfError> {
                Err(TfError::Execution("bad slave".into()))
            }
            fn close(&mut self) {}
        }
        let mut p = ParallelTableFunction::new(vec![instance(0, 1000), Box::new(Failing)]);
        p.start().unwrap();
        let mut saw_error = false;
        for _ in 0..2000 {
            match p.fetch(8) {
                Ok(b) if b.is_empty() => break,
                Ok(_) => {}
                Err(TfError::Execution(m)) => {
                    assert_eq!(m, "bad slave");
                    saw_error = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert!(saw_error);
        // subsequent fetches keep failing
        assert!(p.fetch(1).is_err());
    }

    #[test]
    fn slave_panic_reported() {
        struct Panicking;
        impl TableFunction for Panicking {
            fn start(&mut self) -> Result<(), TfError> {
                panic!("kaboom")
            }
            fn fetch(&mut self, _: usize) -> Result<Vec<Row>, TfError> {
                unreachable!()
            }
            fn close(&mut self) {}
        }
        let err = execute_parallel(vec![Box::new(Panicking)], 4).unwrap_err();
        assert_eq!(err, TfError::SlavePanic(0));
    }

    #[test]
    fn dop_survives_the_full_lifecycle() {
        let mut p = ParallelTableFunction::new(vec![instance(0, 10), instance(10, 20)]);
        assert_eq!(p.dop(), 2);
        p.start().unwrap();
        assert_eq!(p.dop(), 2, "start() drains instances into slaves");
        while !p.fetch(8).unwrap().is_empty() {}
        p.close();
        assert_eq!(p.dop(), 2, "close() drains the slave handles");
    }

    #[test]
    fn early_close_unblocks_producers() {
        // Slaves produce far more than the channel holds; closing early
        // must not deadlock and must join every slave.
        let instances: Vec<_> = (0..4).map(|i| instance(0, (i + 1) * 100_000)).collect();
        let mut p = ParallelTableFunction::new(instances);
        p.start().unwrap();
        let _ = p.fetch(10).unwrap();
        p.close(); // returns promptly; test would hang otherwise
    }

    #[test]
    fn per_slave_profiles_report_rows() {
        let session = sdo_obs::ProfileSession::begin("parallel scan");
        let node = session.root().child("PARALLEL TF");
        let mut p = ParallelTableFunction::new(vec![instance(0, 60), instance(60, 100)]);
        p.attach_profile(&node);
        let rows = crate::table_function::collect_all(&mut p, 16).unwrap();
        assert_eq!(rows.len(), 100);
        let profile = session.finish();
        let op = profile.root.find("PARALLEL TF").expect("operator node");
        assert!(op.attrs.iter().any(|(k, v)| k == "dop" && v == "2"));
        assert_eq!(op.children.len(), 2, "one child per slave");
        let per_slave: u64 = op.children.iter().map(|c| c.rows).sum();
        assert_eq!(per_slave, 100, "slave rows sum to result cardinality");
        assert!(op.children.iter().all(|c| c.batches > 0));
    }

    #[test]
    fn pipelining_overlaps_with_consumption() {
        // A slave that produces in many small batches; the consumer sees
        // rows before the slave finishes (bounded channel guarantees the
        // slave cannot have finished when the first fetch returns).
        let instances: Vec<_> = vec![instance(0, 1_000_000)];
        let mut p = ParallelTableFunction::new(instances).with_slave_fetch_size(16);
        p.start().unwrap();
        let first = p.fetch(1).unwrap();
        assert_eq!(first.len(), 1);
        p.close();
    }
}
