//! The pipelined `start` / `fetch` / `close` interface.

use crate::row::Row;
use crate::TfError;

/// A pipelined table function.
///
/// Mirrors the paper's §2 interface: "perform the function (or part of
/// it) in the start routine, iteratively return the result rows in the
/// fetch routine and release memory resources in the close routine."
///
/// Contract:
/// * `start` runs once before the first `fetch`,
/// * `fetch(max)` returns between 1 and `max` rows while results
///   remain; an **empty** batch signals exhaustion,
/// * `close` runs once after the last `fetch` (or on early abandonment)
///   and must be idempotent.
pub trait TableFunction: Send {
    /// Run setup once before the first fetch.
    fn start(&mut self) -> Result<(), TfError>;
    /// Produce up to `max_rows` more rows; empty means exhausted.
    fn fetch(&mut self, max_rows: usize) -> Result<Vec<Row>, TfError>;
    /// Release resources; idempotent, also called on early abandonment.
    fn close(&mut self);
    /// Attach a profile node for `EXPLAIN ANALYZE`-style instrumentation.
    ///
    /// Called before `start` when a [`sdo_obs::ProfileSession`] is
    /// active. Implementations that want to report per-operator detail
    /// (e.g. per-slave rows for a parallel executor) keep the node and
    /// record into it or its children; the default ignores it, which is
    /// always safe — callers still time the fetches from outside.
    fn attach_profile(&mut self, _node: &sdo_obs::ProfileNode) {}
}

/// Drive a table function to completion, collecting every row.
///
/// `fetch_size` bounds each fetch call, exactly like the array-fetch
/// size of a SQL cursor.
///
/// ```
/// use sdo_tablefunc::table_function::{collect_all, BufferedFn};
/// use sdo_storage::Value;
///
/// let mut f = BufferedFn::new(|| {
///     Ok((0..10).map(|i| vec![Value::Integer(i)]).collect())
/// });
/// let rows = collect_all(&mut f, 3).unwrap(); // fetched in batches of 3
/// assert_eq!(rows.len(), 10);
/// ```
pub fn collect_all(f: &mut dyn TableFunction, fetch_size: usize) -> Result<Vec<Row>, TfError> {
    f.start()?;
    let mut out = Vec::new();
    loop {
        let batch = match f.fetch(fetch_size) {
            Ok(b) => b,
            Err(e) => {
                f.close();
                return Err(e);
            }
        };
        if batch.is_empty() {
            break;
        }
        out.extend(batch);
    }
    f.close();
    Ok(out)
}

/// Iterator adapter over a started table function.
///
/// Calls `start` lazily on first pull and `close` on drop, so a
/// partially consumed pipeline still releases its resources — the
/// behaviour Oracle guarantees when a cursor over a pipelined function
/// is closed early.
pub struct FetchIter<F: TableFunction> {
    f: F,
    buf: std::vec::IntoIter<Row>,
    fetch_size: usize,
    state: IterState,
}

#[derive(PartialEq)]
enum IterState {
    Fresh,
    Running,
    Finished,
}

impl<F: TableFunction> FetchIter<F> {
    /// Iterate `f`, fetching `fetch_size` rows at a time.
    pub fn new(f: F, fetch_size: usize) -> Self {
        FetchIter { f, buf: Vec::new().into_iter(), fetch_size, state: IterState::Fresh }
    }
}

impl<F: TableFunction> Iterator for FetchIter<F> {
    type Item = Result<Row, TfError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.state == IterState::Fresh {
            self.state = IterState::Running;
            if let Err(e) = self.f.start() {
                self.state = IterState::Finished;
                self.f.close();
                return Some(Err(e));
            }
        }
        if self.state == IterState::Finished {
            return None;
        }
        if let Some(row) = self.buf.next() {
            return Some(Ok(row));
        }
        match self.f.fetch(self.fetch_size) {
            Ok(batch) if batch.is_empty() => {
                self.state = IterState::Finished;
                self.f.close();
                None
            }
            Ok(batch) => {
                self.buf = batch.into_iter();
                self.buf.next().map(Ok)
            }
            Err(e) => {
                self.state = IterState::Finished;
                self.f.close();
                Some(Err(e))
            }
        }
    }
}

impl<F: TableFunction> Drop for FetchIter<F> {
    fn drop(&mut self) {
        if self.state == IterState::Running {
            self.f.close();
        }
    }
}

/// A table function defined by a closure producing all rows at `start`
/// and pipelining them out of an internal buffer. Useful for tests and
/// for small metadata-producing functions (e.g. `subtree_root`).
pub struct BufferedFn<G> {
    generate: Option<G>,
    buf: Vec<Row>,
    pos: usize,
    started: bool,
}

impl<G: FnOnce() -> Result<Vec<Row>, TfError> + Send> BufferedFn<G> {
    /// A function whose rows come from running `generate` at `start`.
    pub fn new(generate: G) -> Self {
        BufferedFn { generate: Some(generate), buf: Vec::new(), pos: 0, started: false }
    }
}

impl<G: FnOnce() -> Result<Vec<Row>, TfError> + Send> TableFunction for BufferedFn<G> {
    fn start(&mut self) -> Result<(), TfError> {
        let generate = self.generate.take().ok_or(TfError::Protocol("start called twice"))?;
        self.buf = generate()?;
        self.pos = 0;
        self.started = true;
        Ok(())
    }

    fn fetch(&mut self, max_rows: usize) -> Result<Vec<Row>, TfError> {
        if !self.started {
            return Err(TfError::Protocol("fetch before start"));
        }
        let end = (self.pos + max_rows).min(self.buf.len());
        let batch = self.buf[self.pos..end].to_vec();
        self.pos = end;
        Ok(batch)
    }

    fn close(&mut self) {
        self.buf = Vec::new();
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_storage::Value;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn ints(n: i64) -> BufferedFn<impl FnOnce() -> Result<Vec<Row>, TfError> + Send> {
        BufferedFn::new(move || Ok((0..n).map(|i| vec![Value::Integer(i)]).collect()))
    }

    #[test]
    fn collect_all_respects_fetch_size() {
        let mut f = ints(10);
        let rows = collect_all(&mut f, 3).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[9][0].as_integer(), Some(9));
    }

    #[test]
    fn fetch_before_start_is_protocol_error() {
        let mut f = ints(1);
        assert!(matches!(f.fetch(10), Err(TfError::Protocol(_))));
    }

    #[test]
    fn iterator_streams_rows() {
        let it = FetchIter::new(ints(25), 4);
        let vals: Vec<i64> = it.map(|r| r.unwrap()[0].as_integer().unwrap()).collect();
        assert_eq!(vals, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn iterator_closes_on_early_drop() {
        struct Tracked {
            closed: Arc<AtomicUsize>,
        }
        impl TableFunction for Tracked {
            fn start(&mut self) -> Result<(), TfError> {
                Ok(())
            }
            fn fetch(&mut self, _max: usize) -> Result<Vec<Row>, TfError> {
                Ok(vec![vec![Value::Integer(1)]]) // never exhausts
            }
            fn close(&mut self) {
                self.closed.fetch_add(1, Ordering::SeqCst);
            }
        }
        let closed = Arc::new(AtomicUsize::new(0));
        {
            let mut it = FetchIter::new(Tracked { closed: Arc::clone(&closed) }, 2);
            assert!(it.next().is_some());
            // dropped early here
        }
        assert_eq!(closed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn error_from_start_is_surfaced_once() {
        struct Failing;
        impl TableFunction for Failing {
            fn start(&mut self) -> Result<(), TfError> {
                Err(TfError::Execution("boom".into()))
            }
            fn fetch(&mut self, _max: usize) -> Result<Vec<Row>, TfError> {
                unreachable!()
            }
            fn close(&mut self) {}
        }
        let mut it = FetchIter::new(Failing, 2);
        assert!(matches!(it.next(), Some(Err(TfError::Execution(_)))));
        assert!(it.next().is_none());
    }

    #[test]
    fn empty_function_yields_nothing() {
        let rows = collect_all(&mut ints(0), 8).unwrap();
        assert!(rows.is_empty());
    }
}
