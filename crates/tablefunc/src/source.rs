//! Input cursors for table functions.

use crate::row::Row;
use parking_lot::RwLock;
use sdo_storage::{RowId, Snapshot, Table, Value};
use std::sync::Arc;

/// A cursor handing rows to a table function, batch at a time.
///
/// This is the "set of input rows" of the paper's §2: a sub-query
/// operand materialized lazily. `next_batch` returns at most `max`
/// rows; an empty batch means the cursor is exhausted.
pub trait RowSource: Send {
    /// Up to `max` more rows; empty means exhausted.
    fn next_batch(&mut self, max: usize) -> Vec<Row>;

    /// Drain the remaining rows (testing/utility).
    fn drain(&mut self) -> Vec<Row>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        loop {
            let batch = self.next_batch(1024);
            if batch.is_empty() {
                return out;
            }
            out.extend(batch);
        }
    }
}

impl RowSource for Box<dyn RowSource> {
    fn next_batch(&mut self, max: usize) -> Vec<Row> {
        (**self).next_batch(max)
    }
}

/// A cursor over a pre-materialized vector of rows.
pub struct VecSource {
    rows: std::vec::IntoIter<Row>,
}

impl VecSource {
    /// A cursor over `rows`.
    pub fn new(rows: Vec<Row>) -> Self {
        VecSource { rows: rows.into_iter() }
    }
}

impl RowSource for VecSource {
    fn next_batch(&mut self, max: usize) -> Vec<Row> {
        self.rows.by_ref().take(max).collect()
    }
}

/// A cursor scanning a slot range of a shared heap table, prepending
/// the rowid as the first output column.
///
/// Locks the table per batch, so concurrent readers and the scan
/// interleave. The cursor carries an MVCC [`Snapshot`]
/// ([`Snapshot::LATEST`] unless pinned via [`TableCursor::at_snapshot`]),
/// so a pinned scan is Oracle's consistent-read cursor: writers may
/// commit mid-scan without the cursor observing them.
pub struct TableCursor {
    table: Arc<RwLock<Table>>,
    next_slot: usize,
    end_slot: usize,
    /// Column projection applied after the rowid column; `None` keeps
    /// every column.
    projection: Option<Vec<usize>>,
    /// Read view for visibility decisions.
    snap: Snapshot,
}

impl TableCursor {
    /// Cursor over the whole table.
    pub fn full(table: Arc<RwLock<Table>>) -> Self {
        let end = table.read().high_water_mark();
        TableCursor { table, next_slot: 0, end_slot: end, projection: None, snap: Snapshot::LATEST }
    }

    /// Cursor over slots `[from, to)`.
    pub fn slice(table: Arc<RwLock<Table>>, from: usize, to: usize) -> Self {
        TableCursor {
            table,
            next_slot: from,
            end_slot: to,
            projection: None,
            snap: Snapshot::LATEST,
        }
    }

    /// Project specific columns (after the leading rowid column).
    pub fn with_projection(mut self, cols: Vec<usize>) -> Self {
        self.projection = Some(cols);
        self
    }

    /// Pin the cursor to an MVCC read snapshot.
    pub fn at_snapshot(mut self, snap: Snapshot) -> Self {
        self.snap = snap;
        self
    }
}

impl RowSource for TableCursor {
    fn next_batch(&mut self, max: usize) -> Vec<Row> {
        if self.next_slot >= self.end_slot {
            return Vec::new();
        }
        let table = self.table.read();
        let end = self.end_slot.min(table.high_water_mark());
        let mut out = Vec::with_capacity(max.min(64));
        while self.next_slot < end && out.len() < max {
            let slot = self.next_slot;
            self.next_slot += 1;
            let rid = RowId::new(slot as u64);
            if let Ok(row) = table.get_at(rid, &self.snap) {
                let mut r: Row = Vec::with_capacity(1 + row.len());
                r.push(Value::RowId(rid));
                match &self.projection {
                    None => r.extend(row.iter().cloned()),
                    Some(cols) => r.extend(cols.iter().map(|&c| row[c].clone())),
                }
                out.push(r);
            }
        }
        if self.next_slot >= end && end == self.end_slot {
            // exhausted
        }
        out
    }
}

/// Chain several sources end to end.
pub struct ChainSource {
    sources: Vec<Box<dyn RowSource>>,
    current: usize,
}

impl ChainSource {
    /// Concatenate `sources`, drained left to right.
    pub fn new(sources: Vec<Box<dyn RowSource>>) -> Self {
        ChainSource { sources, current: 0 }
    }
}

impl RowSource for ChainSource {
    fn next_batch(&mut self, max: usize) -> Vec<Row> {
        while self.current < self.sources.len() {
            let batch = self.sources[self.current].next_batch(max);
            if !batch.is_empty() {
                return batch;
            }
            self.current += 1;
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_storage::{DataType, Schema};

    fn sample_table() -> Arc<RwLock<Table>> {
        let mut t = Table::new("t", Schema::of(&[("ID", DataType::Integer)]));
        for i in 0..10 {
            t.insert(vec![Value::Integer(i)]).unwrap();
        }
        Arc::new(RwLock::new(t))
    }

    #[test]
    fn vec_source_batches() {
        let mut s = VecSource::new((0..5).map(|i| vec![Value::Integer(i)]).collect());
        assert_eq!(s.next_batch(2).len(), 2);
        assert_eq!(s.next_batch(2).len(), 2);
        assert_eq!(s.next_batch(2).len(), 1);
        assert!(s.next_batch(2).is_empty());
        assert!(s.next_batch(2).is_empty());
    }

    #[test]
    fn table_cursor_prepends_rowid() {
        let t = sample_table();
        let mut c = TableCursor::full(Arc::clone(&t));
        let rows = c.drain();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[3][0].as_rowid(), Some(RowId::new(3)));
        assert_eq!(rows[3][1].as_integer(), Some(3));
    }

    #[test]
    fn table_cursor_slice_and_tombstones() {
        let t = sample_table();
        t.write().delete(RowId::new(4)).unwrap();
        let mut c = TableCursor::slice(Arc::clone(&t), 2, 7);
        let ids: Vec<i64> = c.drain().iter().map(|r| r[1].as_integer().unwrap()).collect();
        assert_eq!(ids, vec![2, 3, 5, 6]);
    }

    #[test]
    fn table_cursor_projection() {
        let t = Arc::new(RwLock::new({
            let mut t =
                Table::new("t", Schema::of(&[("A", DataType::Integer), ("B", DataType::Text)]));
            t.insert(vec![Value::Integer(7), Value::from("x")]).unwrap();
            t
        }));
        let mut c = TableCursor::full(t).with_projection(vec![1]);
        let rows = c.drain();
        assert_eq!(rows[0].len(), 2); // rowid + projected column
        assert_eq!(rows[0][1].as_text(), Some("x"));
    }

    #[test]
    fn pinned_cursor_ignores_later_commits() {
        let t = sample_table();
        let pinned = Snapshot::at(0);
        // A transaction inserts and commits after the snapshot is taken.
        let status = Arc::clone(t.read().status());
        let txid = status.begin();
        t.write().insert_txn(txid, vec![Value::Integer(99)]).unwrap();
        status.commit(txid, 1);
        t.write().apply_live_delta(1);

        let mut c = TableCursor::full(Arc::clone(&t)).at_snapshot(pinned);
        assert_eq!(c.drain().len(), 10, "pinned cursor keeps its read view");
        let mut latest = TableCursor::full(Arc::clone(&t));
        assert_eq!(latest.drain().len(), 11, "unpinned cursor sees the commit");
    }

    #[test]
    fn chain_source_concatenates() {
        let a = VecSource::new(vec![vec![Value::Integer(1)]]);
        let b = VecSource::new(vec![]);
        let c = VecSource::new(vec![vec![Value::Integer(2)], vec![Value::Integer(3)]]);
        let mut chain = ChainSource::new(vec![Box::new(a), Box::new(b), Box::new(c)]);
        let all: Vec<i64> = chain.drain().iter().map(|r| r[0].as_integer().unwrap()).collect();
        assert_eq!(all, vec![1, 2, 3]);
    }
}
