#![warn(missing_docs)]
//! # sdo-tablefunc — parallel and pipelined table functions
//!
//! A from-scratch reproduction of the Oracle9i mechanism the ICDE 2003
//! paper builds on (its §2):
//!
//! * **Pipelined table functions** — functions that produce a set of
//!   rows through a `start` / `fetch` / `close` interface
//!   ([`TableFunction`]). Each `fetch` call returns up to a requested
//!   number of rows; an empty batch signals exhaustion and `close`
//!   releases resources. Pipelining is what lets a spatial join return
//!   result sets "that cannot fit in memory".
//! * **Parallel table functions** — a function "directly accept[s] a
//!   set of rows (a cursor)" and the runtime *partitions the input
//!   cursor across multiple instances* of the function
//!   ([`parallel::ParallelTableFunction`]). The degree of parallelism
//!   (DOP) picks the slave count; each slave runs its own instance over
//!   its partition and result rows funnel through a bounded channel to
//!   the consumer, preserving pipelining end to end.
//!
//! Input cursors are modeled by [`RowSource`]; partitioning strategies
//! (`ANY`, `HASH(col)`, `RANGE`) live in [`partition`].

pub mod parallel;
pub mod partition;
pub mod pipeline;
pub mod pool;
pub mod row;
pub mod scheduler;
pub mod source;
pub mod table_function;

pub use parallel::{execute_parallel, ParallelTableFunction};
pub use partition::PartitionMethod;
pub use pool::{PoolStats, SlavePool};
pub use row::Row;
pub use scheduler::{TaskQueue, WorkStealingFn};
pub use source::{RowSource, VecSource};
pub use table_function::{collect_all, FetchIter, TableFunction};

/// Errors surfaced by table function execution.
#[derive(Debug, Clone, PartialEq)]
pub enum TfError {
    /// The function body failed.
    Execution(String),
    /// `fetch` called before `start` or after `close`.
    Protocol(&'static str),
    /// A parallel slave panicked.
    SlavePanic(usize),
}

impl std::fmt::Display for TfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TfError::Execution(m) => write!(f, "table function failed: {m}"),
            TfError::Protocol(m) => write!(f, "table function protocol violation: {m}"),
            TfError::SlavePanic(i) => write!(f, "parallel slave {i} panicked"),
        }
    }
}

impl std::error::Error for TfError {}

impl From<sdo_storage::StorageError> for TfError {
    fn from(e: sdo_storage::StorageError) -> Self {
        TfError::Execution(e.to_string())
    }
}
