//! Input-cursor partitioning for parallel table functions.
//!
//! Oracle lets a parallel table function declare how its input cursor
//! may be split across slave instances: `PARTITION BY ANY` (any
//! round-robin/demand split), `PARTITION BY HASH(col)` (rows with equal
//! column values go to the same instance) or `PARTITION BY RANGE(col)`
//! (contiguous value ranges). Quadtree tessellation uses `ANY`; joins
//! that group by subtree pair use `HASH`.

use crate::row::Row;
use crate::source::{RowSource, VecSource};
use sdo_storage::Value;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// How an input cursor is split across parallel instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMethod {
    /// The runtime may split rows arbitrarily (round-robin here).
    Any,
    /// Rows hashing equal on the given column index land on the same
    /// instance.
    Hash(usize),
    /// Rows are split into contiguous runs in cursor order, preserving
    /// ordering within each partition.
    Range,
}

/// Split a materialized set of rows into `dop` partitions.
///
/// Every input row appears in exactly one partition (exactness is what
/// makes parallel execution return the same multiset as serial).
pub fn partition_rows(rows: Vec<Row>, method: PartitionMethod, dop: usize) -> Vec<Vec<Row>> {
    assert!(dop >= 1, "degree of parallelism must be >= 1");
    let mut parts: Vec<Vec<Row>> = (0..dop).map(|_| Vec::new()).collect();
    match method {
        PartitionMethod::Any => {
            for (i, row) in rows.into_iter().enumerate() {
                parts[i % dop].push(row);
            }
        }
        PartitionMethod::Hash(col) => {
            for row in rows {
                let h = hash_value(row.get(col).unwrap_or(&Value::Null));
                parts[(h % dop as u64) as usize].push(row);
            }
        }
        PartitionMethod::Range => {
            let n = rows.len();
            let base = n / dop;
            let extra = n % dop;
            let mut it = rows.into_iter();
            for (i, part) in parts.iter_mut().enumerate() {
                let take = base + usize::from(i < extra);
                part.extend(it.by_ref().take(take));
            }
        }
    }
    parts
}

/// Split a materialized set of rows into `dop` independent cursors.
pub fn partition_sources(
    rows: Vec<Row>,
    method: PartitionMethod,
    dop: usize,
) -> Vec<Box<dyn RowSource>> {
    partition_rows(rows, method, dop)
        .into_iter()
        .map(|p| Box::new(VecSource::new(p)) as Box<dyn RowSource>)
        .collect()
}

/// Stable hash of a value for `PARTITION BY HASH`.
fn hash_value(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    match v {
        Value::Null => 0u8.hash(&mut h),
        Value::Integer(i) => i.hash(&mut h),
        Value::Double(d) => d.to_bits().hash(&mut h),
        Value::Text(s) => s.hash(&mut h),
        Value::RowId(r) => r.hash(&mut h),
        Value::Geometry(g) => {
            // Geometries hash by MBR — partitioning only needs a
            // deterministic spread, not full structural hashing.
            let bb = g.bbox();
            bb.min_x.to_bits().hash(&mut h);
            bb.min_y.to_bits().hash(&mut h);
            bb.max_x.to_bits().hash(&mut h);
            bb.max_y.to_bits().hash(&mut h);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: i64) -> Vec<Row> {
        (0..n).map(|i| vec![Value::Integer(i % 7), Value::Integer(i)]).collect()
    }

    fn flatten_sorted(parts: Vec<Vec<Row>>) -> Vec<i64> {
        let mut all: Vec<i64> =
            parts.into_iter().flatten().map(|r| r[1].as_integer().unwrap()).collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn every_method_covers_input_exactly_once() {
        for method in [PartitionMethod::Any, PartitionMethod::Hash(0), PartitionMethod::Range] {
            for dop in [1, 2, 3, 8] {
                let parts = partition_rows(rows(100), method, dop);
                assert_eq!(parts.len(), dop);
                assert_eq!(flatten_sorted(parts), (0..100).collect::<Vec<_>>(), "{method:?}/{dop}");
            }
        }
    }

    #[test]
    fn hash_groups_equal_keys_together() {
        let parts = partition_rows(rows(700), PartitionMethod::Hash(0), 4);
        // For each key value 0..7, all rows must be in one partition.
        for key in 0..7i64 {
            let holders: Vec<usize> = parts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.iter().any(|r| r[0].as_integer() == Some(key)))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(holders.len(), 1, "key {key} spread over {holders:?}");
        }
    }

    #[test]
    fn range_preserves_order_within_partition() {
        let parts = partition_rows(rows(10), PartitionMethod::Range, 3);
        assert_eq!(parts[0].len(), 4); // 10 = 4 + 3 + 3
        assert_eq!(parts[1].len(), 3);
        assert_eq!(parts[2].len(), 3);
        for p in &parts {
            let ids: Vec<i64> = p.iter().map(|r| r[1].as_integer().unwrap()).collect();
            assert!(ids.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn dop_larger_than_input() {
        let parts = partition_rows(rows(2), PartitionMethod::Any, 8);
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 2);
        let parts = partition_rows(rows(2), PartitionMethod::Range, 8);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 2);
    }

    #[test]
    fn partition_sources_drain_to_same_multiset() {
        let mut sources = partition_sources(rows(50), PartitionMethod::Any, 4);
        let mut all: Vec<i64> = sources
            .iter_mut()
            .flat_map(|s| {
                let mut rows = Vec::new();
                loop {
                    let b = s.next_batch(7);
                    if b.is_empty() {
                        break;
                    }
                    rows.extend(b);
                }
                rows.into_iter().map(|r| r[1].as_integer().unwrap())
            })
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }
}
