//! A process-wide cached pool of slave worker threads.
//!
//! Before the pool, every parallel table-function execution spawned
//! `dop` fresh OS threads and joined them at close — fine for one
//! query at a time, wasteful once a multi-session server runs many
//! concurrent statements, each with its own slave set. The pool keeps
//! finished workers parked on their job channel and hands them the
//! next query's slaves, so steady-state concurrent execution reuses a
//! stable set of threads instead of churning thread create/destroy.
//!
//! The pool is *elastic*, not fixed-size: a submission with no idle
//! worker spawns a new thread immediately. That keeps the old
//! semantics (a query's slaves never wait for another query's slaves
//! to finish — no cross-query deadlock by pool starvation); the cap
//! applies only to how many *idle* workers stick around afterwards.
//! Excess workers exit once their job completes.
//!
//! Jobs run under `catch_unwind`, so a panicking slave body cannot
//! take its (reusable) worker thread down with it.

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Point-in-time pool statistics, for tests and the `/metrics`
/// exporter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads created since the pool was built.
    pub workers_spawned: u64,
    /// Worker threads currently alive (idle + busy).
    pub workers_alive: usize,
    /// Worker threads parked waiting for a job.
    pub workers_idle: usize,
    /// Jobs handed to a worker since the pool was built.
    pub jobs_submitted: u64,
}

struct PoolInner {
    /// Parked workers' job channels, LIFO so the most recently used
    /// (cache-warm) worker goes out first.
    idle: Vec<Sender<Job>>,
    workers_spawned: u64,
    workers_alive: usize,
    jobs_submitted: u64,
}

/// A cached, elastic worker pool for table-function slaves.
///
/// Most callers want [`global`]; private pools exist for tests and
/// for embedders that need isolated thread accounting.
pub struct SlavePool {
    inner: Mutex<PoolInner>,
    max_idle: usize,
}

/// Completion handle for one submitted job. [`join`](Self::join)
/// blocks until the job has finished (normally or by panic).
pub struct PoolJoinHandle {
    done: Receiver<()>,
}

impl PoolJoinHandle {
    /// Wait for the job to finish. A panicking job still completes
    /// its handle (the panic is contained inside the worker).
    pub fn join(self) {
        let _ = self.done.recv();
    }
}

impl SlavePool {
    /// Pool keeping at most `max_idle` parked workers.
    pub fn with_max_idle(max_idle: usize) -> Arc<Self> {
        Arc::new(SlavePool {
            inner: Mutex::new(PoolInner {
                idle: Vec::new(),
                workers_spawned: 0,
                workers_alive: 0,
                jobs_submitted: 0,
            }),
            max_idle,
        })
    }

    /// Pool with the default idle cap (2× available parallelism).
    pub fn new() -> Arc<Self> {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self::with_max_idle(cores * 2)
    }

    /// Run `job` on a pooled worker thread, reusing an idle worker if
    /// one is parked and spawning a fresh one otherwise. Never blocks
    /// waiting for a worker, so jobs from concurrent queries cannot
    /// deadlock each other.
    pub fn submit(self: &Arc<Self>, job: impl FnOnce() + Send + 'static) -> PoolJoinHandle {
        let (done_tx, done_rx) = bounded(1);
        let wrapped: Job = Box::new(move || {
            let _ = catch_unwind(AssertUnwindSafe(job));
            let _ = done_tx.send(());
        });
        let mut wrapped = wrapped;
        let mut inner = self.inner.lock();
        inner.jobs_submitted += 1;
        // A parked worker's sender can only disconnect if the worker
        // died abnormally; skip such corpses and keep looking for a
        // live one, spawning fresh only when the idle list runs dry.
        while let Some(tx) = inner.idle.pop() {
            match tx.send(wrapped) {
                Ok(()) => return PoolJoinHandle { done: done_rx },
                Err(e) => {
                    inner.workers_alive = inner.workers_alive.saturating_sub(1);
                    wrapped = e.0;
                }
            }
        }
        self.spawn_worker(inner, wrapped, done_rx)
    }

    fn spawn_worker(
        self: &Arc<Self>,
        mut inner: parking_lot::MutexGuard<'_, PoolInner>,
        first_job: Job,
        done_rx: Receiver<()>,
    ) -> PoolJoinHandle {
        inner.workers_spawned += 1;
        inner.workers_alive += 1;
        let worker_id = inner.workers_spawned;
        drop(inner);
        let pool = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("tf-pool-{worker_id}"))
            .spawn(move || {
                first_job();
                loop {
                    // Park on a fresh depth-1 channel each cycle. The
                    // idle list holds the only sender, so whoever pops
                    // it either hands over a job or — by dropping it —
                    // retires this worker.
                    let (tx, rx) = bounded::<Job>(1);
                    {
                        let mut inner = pool.inner.lock();
                        if inner.idle.len() >= pool.max_idle {
                            // Enough workers parked already; retire.
                            inner.workers_alive -= 1;
                            return;
                        }
                        inner.idle.push(tx);
                    }
                    // The crossbeam shim has no recv_timeout, so idle
                    // workers park indefinitely; the idle cap (not a
                    // keep-alive clock) bounds the resident set.
                    match rx.recv() {
                        Ok(job) => job(),
                        Err(_) => {
                            // Sender dropped without a job: retire.
                            pool.inner.lock().workers_alive -= 1;
                            return;
                        }
                    }
                }
            })
            .expect("spawn pooled table-function worker");
        PoolJoinHandle { done: done_rx }
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock();
        PoolStats {
            workers_spawned: inner.workers_spawned,
            workers_alive: inner.workers_alive,
            workers_idle: inner.idle.len(),
            jobs_submitted: inner.jobs_submitted,
        }
    }

    /// The idle-worker cap this pool was built with.
    pub fn max_idle(&self) -> usize {
        self.max_idle
    }
}

/// The process-wide pool shared by every parallel table function (and
/// thus by every concurrent query in a multi-session server).
pub fn global() -> &'static Arc<SlavePool> {
    static GLOBAL: OnceLock<Arc<SlavePool>> = OnceLock::new();
    GLOBAL.get_or_init(SlavePool::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    fn wait_until(pool: &SlavePool, pred: impl Fn(PoolStats) -> bool) -> PoolStats {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let s = pool.stats();
            if pred(s) || Instant::now() > deadline {
                return s;
            }
            std::thread::yield_now();
        }
    }

    #[test]
    fn sequential_jobs_reuse_one_worker() {
        let pool = SlavePool::with_max_idle(4);
        for i in 0..5 {
            let hits = Arc::new(AtomicUsize::new(0));
            let h = {
                let hits = Arc::clone(&hits);
                pool.submit(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                })
            };
            h.join();
            assert_eq!(hits.load(Ordering::SeqCst), 1);
            // join() returns when the job body finishes; the worker
            // re-parks just after. Wait for the park so the next
            // submit reuses it instead of racing to a fresh spawn.
            let s = wait_until(&pool, |s| s.workers_idle == 1);
            assert_eq!(s.workers_idle, 1, "worker should re-park after job {i}");
        }
        let s = pool.stats();
        assert_eq!(s.workers_spawned, 1, "five sequential jobs, one thread");
        assert_eq!(s.jobs_submitted, 5);
    }

    #[test]
    fn concurrent_jobs_get_concurrent_workers() {
        let pool = SlavePool::with_max_idle(8);
        let running = Arc::new(AtomicUsize::new(0));
        let release = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let running = Arc::clone(&running);
                let release = Arc::clone(&release);
                pool.submit(move || {
                    running.fetch_add(1, Ordering::SeqCst);
                    while release.load(Ordering::SeqCst) == 0 {
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        // All four must run simultaneously — an elastic pool never
        // queues one query's slave behind another's.
        let deadline = Instant::now() + Duration::from_secs(5);
        while running.load(Ordering::SeqCst) < 4 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(running.load(Ordering::SeqCst), 4);
        release.store(1, Ordering::SeqCst);
        for h in handles {
            h.join();
        }
        assert!(pool.stats().workers_spawned >= 4);
    }

    #[test]
    fn idle_cap_retires_excess_workers() {
        let pool = SlavePool::with_max_idle(2);
        let release = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let release = Arc::clone(&release);
                pool.submit(move || {
                    while release.load(Ordering::SeqCst) == 0 {
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        release.store(1, Ordering::SeqCst);
        for h in handles {
            h.join();
        }
        let s = wait_until(&pool, |s| s.workers_alive <= 2);
        assert!(s.workers_alive <= 2, "alive={} exceeds idle cap", s.workers_alive);
        assert!(s.workers_idle <= 2);
    }

    #[test]
    fn panicking_job_completes_handle_and_keeps_pool_usable() {
        let pool = SlavePool::with_max_idle(2);
        pool.submit(|| panic!("slave body exploded")).join();
        let ok = Arc::new(AtomicUsize::new(0));
        let h = {
            let ok = Arc::clone(&ok);
            pool.submit(move || {
                ok.fetch_add(1, Ordering::SeqCst);
            })
        };
        h.join();
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }
}
