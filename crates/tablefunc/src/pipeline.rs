//! Composition helpers: table functions over input cursors.

use crate::row::Row;
use crate::source::RowSource;
use crate::table_function::TableFunction;
use crate::TfError;

/// A table function that consumes an input cursor and emits zero or
/// more rows per input row.
///
/// This is the shape of the paper's tessellation function (§5, Fig. 2):
/// "a table function that takes as input a cursor for fetching the
/// geometries and tessellates these geometries". Build one instance per
/// partition of the input cursor and hand them to
/// [`crate::parallel::ParallelTableFunction`] for the parallel path.
pub struct CursorFn<S, F> {
    input: S,
    f: F,
    out: std::collections::VecDeque<Row>,
    started: bool,
    input_done: bool,
    profile: Option<sdo_obs::ProfileNode>,
}

impl<S, F> CursorFn<S, F>
where
    S: RowSource,
    F: FnMut(Row) -> Result<Vec<Row>, TfError> + Send,
{
    /// Wrap an input cursor with a per-row body.
    pub fn new(input: S, f: F) -> Self {
        CursorFn {
            input,
            f,
            out: std::collections::VecDeque::new(),
            started: false,
            input_done: false,
            profile: None,
        }
    }
}

impl<S, F> TableFunction for CursorFn<S, F>
where
    S: RowSource,
    F: FnMut(Row) -> Result<Vec<Row>, TfError> + Send,
{
    fn start(&mut self) -> Result<(), TfError> {
        if self.started {
            return Err(TfError::Protocol("start called twice"));
        }
        self.started = true;
        Ok(())
    }

    fn fetch(&mut self, max_rows: usize) -> Result<Vec<Row>, TfError> {
        if !self.started {
            return Err(TfError::Protocol("fetch before start"));
        }
        let fetch_started = self.profile.as_ref().map(|_| std::time::Instant::now());
        while self.out.len() < max_rows && !self.input_done {
            let batch = self.input.next_batch(max_rows.max(16));
            if batch.is_empty() {
                self.input_done = true;
                break;
            }
            for row in batch {
                self.out.extend((self.f)(row)?);
            }
        }
        let n = self.out.len().min(max_rows);
        if let (Some(node), Some(t0)) = (&self.profile, fetch_started) {
            node.add_wall(t0.elapsed());
            if n > 0 {
                node.add_batches(1);
                node.add_rows(n as u64);
            }
        }
        Ok(self.out.drain(..n).collect())
    }

    fn close(&mut self) {
        self.out.clear();
        self.input_done = true;
    }

    fn attach_profile(&mut self, node: &sdo_obs::ProfileNode) {
        // Record into a child so the attached node's own rows/batches
        // stay whatever the *caller* accounts there (executor scans,
        // parallel slave loops) — attaching must never double-count.
        self.profile = Some(node.child("cursor pipeline"));
    }
}

/// Boxed per-row body used by [`FilterFn`].
type BoxedRowFn = Box<dyn FnMut(Row) -> Result<Vec<Row>, TfError> + Send>;

/// A filtering table function: keeps input rows satisfying a predicate.
pub struct FilterFn<S, P> {
    inner: CursorFn<S, BoxedRowFn>,
    _marker: std::marker::PhantomData<P>,
}

impl<S, P> FilterFn<S, P>
where
    S: RowSource,
    P: FnMut(&Row) -> bool + Send + 'static,
{
    /// Wrap an input cursor with a keep-predicate.
    pub fn new(input: S, mut pred: P) -> Self {
        let f: BoxedRowFn = Box::new(move |row| Ok(if pred(&row) { vec![row] } else { vec![] }));
        FilterFn { inner: CursorFn::new(input, f), _marker: std::marker::PhantomData }
    }
}

impl<S, P> TableFunction for FilterFn<S, P>
where
    S: RowSource,
    P: FnMut(&Row) -> bool + Send,
{
    fn start(&mut self) -> Result<(), TfError> {
        self.inner.start()
    }

    fn fetch(&mut self, max_rows: usize) -> Result<Vec<Row>, TfError> {
        self.inner.fetch(max_rows)
    }

    fn close(&mut self) {
        self.inner.close()
    }

    fn attach_profile(&mut self, node: &sdo_obs::ProfileNode) {
        self.inner.attach_profile(node)
    }
}

/// Adapt a running table function into a [`RowSource`], so pipelined
/// stages chain: `cursor -> function -> cursor -> function`.
pub struct FnSource<F: TableFunction> {
    f: F,
    started: bool,
    done: bool,
}

impl<F: TableFunction> FnSource<F> {
    /// Adapt a (not yet started) table function into a cursor.
    pub fn new(f: F) -> Self {
        FnSource { f, started: false, done: false }
    }
}

impl<F: TableFunction> RowSource for FnSource<F> {
    fn next_batch(&mut self, max: usize) -> Vec<Row> {
        if self.done {
            return Vec::new();
        }
        if !self.started {
            self.started = true;
            if self.f.start().is_err() {
                self.done = true;
                return Vec::new();
            }
        }
        match self.f.fetch(max) {
            Ok(batch) if batch.is_empty() => {
                self.done = true;
                self.f.close();
                Vec::new()
            }
            Ok(batch) => batch,
            Err(_) => {
                self.done = true;
                self.f.close();
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use crate::table_function::collect_all;
    use sdo_storage::Value;

    fn ints(n: i64) -> VecSource {
        VecSource::new((0..n).map(|i| vec![Value::Integer(i)]).collect())
    }

    #[test]
    fn cursor_fn_flat_maps() {
        // each input i emits i copies of itself (0 emits nothing)
        let mut f = CursorFn::new(ints(4), |row| {
            let v = row[0].as_integer().unwrap();
            Ok((0..v).map(|_| row.clone()).collect())
        });
        let rows = collect_all(&mut f, 3).unwrap();
        let vals: Vec<i64> = rows.iter().map(|r| r[0].as_integer().unwrap()).collect();
        assert_eq!(vals, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn cursor_fn_propagates_errors() {
        let mut f = CursorFn::new(ints(10), |row| {
            if row[0].as_integer() == Some(5) {
                Err(TfError::Execution("bad row".into()))
            } else {
                Ok(vec![row])
            }
        });
        f.start().unwrap();
        let mut err = None;
        loop {
            match f.fetch(3) {
                Ok(b) if b.is_empty() => break,
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(err, Some(TfError::Execution("bad row".into())));
    }

    #[test]
    fn filter_fn_keeps_matches() {
        let mut f = FilterFn::new(ints(10), |r: &Row| r[0].as_integer().unwrap() % 2 == 0);
        let rows = collect_all(&mut f, 4).unwrap();
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn fn_source_chains_stages() {
        // stage 1: double each value; stage 2: keep values > 5
        let stage1 = CursorFn::new(ints(6), |row| {
            let v = row[0].as_integer().unwrap();
            Ok(vec![vec![Value::Integer(v * 2)]])
        });
        let chained = FnSource::new(stage1);
        let mut stage2 = FilterFn::new(chained, |r: &Row| r[0].as_integer().unwrap() > 5);
        let rows = collect_all(&mut stage2, 2).unwrap();
        let vals: Vec<i64> = rows.iter().map(|r| r[0].as_integer().unwrap()).collect();
        assert_eq!(vals, vec![6, 8, 10]);
    }

    #[test]
    fn parallel_cursor_fn_equals_serial() {
        use crate::parallel::execute_parallel;
        use crate::partition::{partition_sources, PartitionMethod};

        let rows: Vec<Row> = (0..200).map(|i| vec![Value::Integer(i)]).collect();
        // serial
        let mut serial = CursorFn::new(VecSource::new(rows.clone()), |r| {
            let v = r[0].as_integer().unwrap();
            Ok(vec![vec![Value::Integer(v * v)]])
        });
        let mut expect: Vec<i64> = collect_all(&mut serial, 64)
            .unwrap()
            .iter()
            .map(|r| r[0].as_integer().unwrap())
            .collect();
        expect.sort_unstable();

        // parallel over 4 partitions
        let parts = partition_sources(rows, PartitionMethod::Any, 4);
        let instances: Vec<Box<dyn TableFunction>> = parts
            .into_iter()
            .map(|p| {
                Box::new(CursorFn::new(p, |r: Row| {
                    let v = r[0].as_integer().unwrap();
                    Ok(vec![vec![Value::Integer(v * v)]])
                })) as Box<dyn TableFunction>
            })
            .collect();
        let mut got: Vec<i64> = execute_parallel(instances, 32)
            .unwrap()
            .iter()
            .map(|r| r[0].as_integer().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, expect);
    }
}
