//! Property-based B+tree testing against the standard library's
//! `BTreeSet` as the reference model.

use proptest::prelude::*;
use sdo_storage::BTree;
use std::collections::BTreeSet;
use std::ops::Bound;

#[derive(Debug, Clone)]
enum Op {
    Insert(i32),
    Remove(i32),
    Contains(i32),
    Range(i32, i32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-500i32..500).prop_map(Op::Insert),
        (-500i32..500).prop_map(Op::Remove),
        (-500i32..500).prop_map(Op::Contains),
        ((-500i32..500), (0i32..100)).prop_map(|(lo, w)| Op::Range(lo, lo + w)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matches_btreeset_model(
        ops in proptest::collection::vec(arb_op(), 1..400),
        order in 3usize..32,
    ) {
        let mut tree = BTree::with_order(order);
        let mut model = BTreeSet::new();
        for op in &ops {
            match *op {
                Op::Insert(k) => prop_assert_eq!(tree.insert(k), model.insert(k)),
                Op::Remove(k) => prop_assert_eq!(tree.remove(&k), model.remove(&k)),
                Op::Contains(k) => prop_assert_eq!(tree.contains(&k), model.contains(&k)),
                Op::Range(lo, hi) => {
                    let got: Vec<i32> = tree
                        .range(Bound::Included(&lo), Bound::Excluded(&hi))
                        .cloned()
                        .collect();
                    let want: Vec<i32> = model.range(lo..hi).cloned().collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        tree.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(tree.len(), model.len());
        let got: Vec<i32> = tree.iter().cloned().collect();
        let want: Vec<i32> = model.iter().cloned().collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(tree.first(), model.first());
        prop_assert_eq!(tree.last(), model.last());
    }

    #[test]
    fn bulk_build_equals_insertion(
        mut keys in proptest::collection::btree_set(-10_000i64..10_000, 0..600),
        order in 3usize..64,
    ) {
        let sorted: Vec<i64> = keys.iter().cloned().collect();
        let bulk = BTree::bulk_build(sorted.clone(), order.max(3));
        bulk.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(bulk.len(), sorted.len());
        let got: Vec<i64> = bulk.iter().cloned().collect();
        prop_assert_eq!(&got, &sorted);
        // bulk-built trees accept subsequent mutation
        let mut bulk = bulk;
        if let Some(&k) = sorted.first() {
            prop_assert!(bulk.remove(&k));
            keys.remove(&k);
            bulk.check_invariants().map_err(TestCaseError::fail)?;
        }
        prop_assert!(bulk.insert(i64::MAX));
        bulk.check_invariants().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn range_bounds_combinations(
        keys in proptest::collection::btree_set(0i32..1000, 1..200),
        lo in 0i32..1000,
        hi in 0i32..1000,
    ) {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let tree = BTree::bulk_build(keys.iter().cloned().collect(), 8);
        for (lob, hib, want) in [
            (
                Bound::Included(&lo),
                Bound::Included(&hi),
                keys.range(lo..=hi).cloned().collect::<Vec<_>>(),
            ),
            (
                Bound::Excluded(&lo),
                Bound::Unbounded,
                keys.range((Bound::Excluded(lo), Bound::Unbounded)).cloned().collect(),
            ),
        ] {
            let got: Vec<i32> = tree.range(lob, hib).cloned().collect();
            prop_assert_eq!(got, want);
        }
    }
}
