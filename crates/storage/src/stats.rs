//! Logical I/O and work counters.
//!
//! The paper reports wall-clock times on a specific 2003-era machine;
//! absolute seconds are not reproducible, but machine-independent work
//! counters (rows fetched, MBR tests, exact predicate evaluations) track
//! the same costs and are what the ablation experiments report.

use crate::table::Table;
use sdo_geom::Rect;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe work counters.
///
/// Counters are monotone and relaxed — they are observability, not
/// synchronization. Clone-by-`Arc` so parallel table-function slaves
/// charge work to the same account.
#[derive(Debug, Default)]
pub struct Counters {
    /// Rows fetched from heap tables by rowid.
    pub row_fetches: AtomicU64,
    /// Rows produced by full-table scans.
    pub rows_scanned: AtomicU64,
    /// B+tree node visits.
    pub btree_node_visits: AtomicU64,
    /// R-tree node reads.
    pub rtree_node_reads: AtomicU64,
    /// MBR-vs-MBR tests performed by primary filters.
    pub mbr_tests: AtomicU64,
    /// Exact geometry predicate evaluations (secondary filter).
    pub exact_tests: AtomicU64,
    /// Geometries tessellated into tiles.
    pub tessellations: AtomicU64,
    /// Transactions committed (explicit and autocommit).
    pub txn_commits: AtomicU64,
    /// Transactions rolled back.
    pub txn_aborts: AtomicU64,
    /// Bytes appended to the write-ahead log.
    pub wal_bytes_written: AtomicU64,
    /// Physical `fsync` calls issued by the WAL (group commit makes
    /// this ≤ the number of durable commits).
    pub wal_fsyncs: AtomicU64,
}

impl Counters {
    /// All-zero counters.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Increment a counter by one.
    #[inline]
    pub fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// Read a counter.
    #[inline]
    pub fn get(field: &AtomicU64) -> u64 {
        field.load(Ordering::Relaxed)
    }

    /// Zero every counter.
    pub fn reset(&self) {
        for f in [
            &self.row_fetches,
            &self.rows_scanned,
            &self.btree_node_visits,
            &self.rtree_node_reads,
            &self.mbr_tests,
            &self.exact_tests,
            &self.tessellations,
            &self.txn_commits,
            &self.txn_aborts,
            &self.wal_bytes_written,
            &self.wal_fsyncs,
        ] {
            f.store(0, Ordering::Relaxed);
        }
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            values: [
                Counters::get(&self.row_fetches),
                Counters::get(&self.rows_scanned),
                Counters::get(&self.btree_node_visits),
                Counters::get(&self.rtree_node_reads),
                Counters::get(&self.mbr_tests),
                Counters::get(&self.exact_tests),
                Counters::get(&self.tessellations),
                Counters::get(&self.txn_commits),
                Counters::get(&self.txn_aborts),
                Counters::get(&self.wal_bytes_written),
                Counters::get(&self.wal_fsyncs),
            ],
        }
    }

    /// Work done since `earlier` was snapshotted. Saturating, so a
    /// concurrent `reset` yields zeros rather than wrapping.
    pub fn diff(&self, earlier: &CountersSnapshot) -> CountersSnapshot {
        self.snapshot().diff(earlier)
    }
}

/// Names of the [`Counters`] fields, in snapshot order.
pub const COUNTER_NAMES: [&str; 11] = [
    "row_fetches",
    "rows_scanned",
    "btree_node_visits",
    "rtree_node_reads",
    "mbr_tests",
    "exact_tests",
    "tessellations",
    "txn_commits",
    "txn_aborts",
    "wal_bytes_written",
    "wal_fsyncs",
];

/// Immutable copy of all [`Counters`] values, used to report
/// per-operation deltas (`after.diff(&before)`) instead of absolute
/// process-lifetime totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CountersSnapshot {
    /// Values in [`COUNTER_NAMES`] order.
    pub values: [u64; 11],
}

impl CountersSnapshot {
    /// Element-wise saturating subtraction: the work between `earlier`
    /// and `self`.
    pub fn diff(&self, earlier: &CountersSnapshot) -> CountersSnapshot {
        let mut values = [0u64; 11];
        for (i, v) in values.iter_mut().enumerate() {
            *v = self.values[i].saturating_sub(earlier.values[i]);
        }
        CountersSnapshot { values }
    }

    /// `(name, value)` pairs in declaration order.
    pub fn pairs(&self) -> Vec<(&'static str, u64)> {
        COUNTER_NAMES.iter().copied().zip(self.values).collect()
    }

    /// Look up one counter by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        COUNTER_NAMES.iter().position(|n| *n == name).map(|i| self.values[i])
    }

    /// Sum of all counters — a single scalar "work" figure.
    pub fn total(&self) -> u64 {
        self.values.iter().sum()
    }

    /// `true` if every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|v| *v == 0)
    }
}

/// Table-level spatial statistics estimated from a strided sample of a
/// geometry column — the optimizer-side input a partitioned spatial
/// join needs to size its grid (data extent, cardinality, typical
/// object footprint) without a full pre-pass over both inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialSample {
    /// Exact live-row count of the table (cheap: slot accounting).
    pub rows: usize,
    /// Sampled rows that held a non-empty geometry.
    pub sampled: usize,
    /// Union of the sampled MBRs ([`Rect::EMPTY`] when nothing matched).
    /// An *estimate*: outliers between sample strides may fall outside.
    pub extent: Rect,
    /// Mean MBR width over the sample.
    pub avg_width: f64,
    /// Mean MBR height over the sample.
    pub avg_height: f64,
}

impl SpatialSample {
    /// Sample up to `max_sample` live rows of `table` at a uniform slot
    /// stride and summarize the geometry MBRs found in column `column`.
    /// Rows whose column is not a geometry, or whose bounding box is
    /// empty/NaN, are skipped (they can never join). Sampled rows are
    /// charged to the table's `rows_scanned` counter like any scan.
    pub fn collect(table: &Table, column: usize, max_sample: usize) -> SpatialSample {
        let rows = table.len();
        let hwm = table.high_water_mark();
        let stride = if max_sample == 0 { hwm } else { (hwm / max_sample.max(1)).max(1) };
        let mut sampled = 0usize;
        let mut extent = Rect::EMPTY;
        let (mut sum_w, mut sum_h) = (0.0f64, 0.0f64);
        let mut slot = 0usize;
        while slot < hwm {
            // One live row (if any) per stride window.
            if let Some((_, row)) = table.scan_slots(slot, slot + stride).next() {
                if let Some(b) = row.get(column).and_then(|v| v.as_geometry()).map(|g| g.bbox()) {
                    if !b.is_empty() {
                        extent = if sampled == 0 { b } else { extent.union(&b) };
                        sum_w += b.width();
                        sum_h += b.height();
                        sampled += 1;
                    }
                }
            }
            slot += stride;
        }
        let denom = sampled.max(1) as f64;
        SpatialSample { rows, sampled, extent, avg_width: sum_w / denom, avg_height: sum_h / denom }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bump_and_reset() {
        let c = Counters::new();
        Counters::bump(&c.mbr_tests);
        Counters::add(&c.mbr_tests, 4);
        assert_eq!(Counters::get(&c.mbr_tests), 5);
        c.reset();
        assert_eq!(Counters::get(&c.mbr_tests), 0);
    }

    #[test]
    fn shared_across_threads() {
        let c = Arc::new(Counters::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        Counters::bump(&c.row_fetches);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(Counters::get(&c.row_fetches), 4000);
    }

    #[test]
    fn snapshot_names_every_counter() {
        let c = Counters::new();
        Counters::bump(&c.exact_tests);
        let snap = c.snapshot().pairs();
        assert_eq!(snap.len(), 11);
        assert_eq!(snap.len(), COUNTER_NAMES.len());
        assert!(snap.contains(&("exact_tests", 1)));
    }

    #[test]
    fn spatial_sample_estimates_extent_and_footprint() {
        use crate::schema::{DataType, Schema};
        use crate::value::Value;
        use sdo_geom::{Geometry, Polygon};

        let mut t =
            Table::new("s", Schema::of(&[("ID", DataType::Integer), ("GEOM", DataType::Geometry)]));
        for i in 0..200 {
            let x = (i % 20) as f64 * 10.0;
            let y = (i / 20) as f64 * 10.0;
            let poly = Polygon::from_rect(&Rect::new(x, y, x + 2.0, y + 4.0));
            t.insert(vec![Value::Integer(i as i64), Value::geometry(Geometry::Polygon(poly))])
                .unwrap();
        }
        // Full sample: exact extent and exact mean footprint.
        let full = SpatialSample::collect(&t, 1, usize::MAX);
        assert_eq!(full.rows, 200);
        assert_eq!(full.sampled, 200);
        assert_eq!(full.extent, Rect::new(0.0, 0.0, 192.0, 94.0));
        assert!((full.avg_width - 2.0).abs() < 1e-9);
        assert!((full.avg_height - 4.0).abs() < 1e-9);

        // Strided sample: bounded size, extent within the true extent.
        let s = SpatialSample::collect(&t, 1, 16);
        assert!(s.sampled <= 17 && s.sampled >= 8, "sampled {}", s.sampled);
        assert!(full.extent.contains_rect(&s.extent));
        assert!(s.avg_width > 0.0 && s.avg_height > 0.0);

        // Non-geometry column: nothing sampled, empty extent.
        let none = SpatialSample::collect(&t, 0, 64);
        assert_eq!(none.sampled, 0);
        assert!(none.extent.is_empty());
    }

    #[test]
    fn diff_reports_deltas() {
        let c = Counters::new();
        Counters::add(&c.mbr_tests, 10);
        let before = c.snapshot();
        Counters::add(&c.mbr_tests, 7);
        Counters::bump(&c.row_fetches);
        let delta = c.diff(&before);
        assert_eq!(delta.get("mbr_tests"), Some(7));
        assert_eq!(delta.get("row_fetches"), Some(1));
        assert_eq!(delta.total(), 8);
        assert!(!delta.is_zero());
        // Saturating: a reset between snapshots cannot underflow.
        c.reset();
        assert!(c.diff(&before).is_zero() || c.diff(&before).get("mbr_tests") == Some(0));
    }
}
