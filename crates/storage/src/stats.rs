//! Logical I/O and work counters.
//!
//! The paper reports wall-clock times on a specific 2003-era machine;
//! absolute seconds are not reproducible, but machine-independent work
//! counters (rows fetched, MBR tests, exact predicate evaluations) track
//! the same costs and are what the ablation experiments report.

use crate::snapshot::{get_str, get_value, put_str, put_value};
use crate::table::Table;
use crate::value::Value;
use crate::StorageError;
use bytes::{Buf, BufMut, BytesMut};
use sdo_geom::Rect;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe work counters.
///
/// Counters are monotone and relaxed — they are observability, not
/// synchronization. Clone-by-`Arc` so parallel table-function slaves
/// charge work to the same account.
#[derive(Debug, Default)]
pub struct Counters {
    /// Rows fetched from heap tables by rowid.
    pub row_fetches: AtomicU64,
    /// Rows produced by full-table scans.
    pub rows_scanned: AtomicU64,
    /// B+tree node visits.
    pub btree_node_visits: AtomicU64,
    /// R-tree node reads.
    pub rtree_node_reads: AtomicU64,
    /// MBR-vs-MBR tests performed by primary filters.
    pub mbr_tests: AtomicU64,
    /// Exact geometry predicate evaluations (secondary filter).
    pub exact_tests: AtomicU64,
    /// Geometries tessellated into tiles.
    pub tessellations: AtomicU64,
    /// Transactions committed (explicit and autocommit).
    pub txn_commits: AtomicU64,
    /// Transactions rolled back.
    pub txn_aborts: AtomicU64,
    /// Bytes appended to the write-ahead log.
    pub wal_bytes_written: AtomicU64,
    /// Physical `fsync` calls issued by the WAL (group commit makes
    /// this ≤ the number of durable commits).
    pub wal_fsyncs: AtomicU64,
}

impl Counters {
    /// All-zero counters.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Increment a counter by one.
    #[inline]
    pub fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// Read a counter.
    #[inline]
    pub fn get(field: &AtomicU64) -> u64 {
        field.load(Ordering::Relaxed)
    }

    /// Zero every counter.
    pub fn reset(&self) {
        for f in [
            &self.row_fetches,
            &self.rows_scanned,
            &self.btree_node_visits,
            &self.rtree_node_reads,
            &self.mbr_tests,
            &self.exact_tests,
            &self.tessellations,
            &self.txn_commits,
            &self.txn_aborts,
            &self.wal_bytes_written,
            &self.wal_fsyncs,
        ] {
            f.store(0, Ordering::Relaxed);
        }
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            values: [
                Counters::get(&self.row_fetches),
                Counters::get(&self.rows_scanned),
                Counters::get(&self.btree_node_visits),
                Counters::get(&self.rtree_node_reads),
                Counters::get(&self.mbr_tests),
                Counters::get(&self.exact_tests),
                Counters::get(&self.tessellations),
                Counters::get(&self.txn_commits),
                Counters::get(&self.txn_aborts),
                Counters::get(&self.wal_bytes_written),
                Counters::get(&self.wal_fsyncs),
            ],
        }
    }

    /// Work done since `earlier` was snapshotted. Saturating, so a
    /// concurrent `reset` yields zeros rather than wrapping.
    pub fn diff(&self, earlier: &CountersSnapshot) -> CountersSnapshot {
        self.snapshot().diff(earlier)
    }
}

/// Names of the [`Counters`] fields, in snapshot order.
pub const COUNTER_NAMES: [&str; 11] = [
    "row_fetches",
    "rows_scanned",
    "btree_node_visits",
    "rtree_node_reads",
    "mbr_tests",
    "exact_tests",
    "tessellations",
    "txn_commits",
    "txn_aborts",
    "wal_bytes_written",
    "wal_fsyncs",
];

/// Immutable copy of all [`Counters`] values, used to report
/// per-operation deltas (`after.diff(&before)`) instead of absolute
/// process-lifetime totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CountersSnapshot {
    /// Values in [`COUNTER_NAMES`] order.
    pub values: [u64; 11],
}

impl CountersSnapshot {
    /// Element-wise saturating subtraction: the work between `earlier`
    /// and `self`.
    pub fn diff(&self, earlier: &CountersSnapshot) -> CountersSnapshot {
        let mut values = [0u64; 11];
        for (i, v) in values.iter_mut().enumerate() {
            *v = self.values[i].saturating_sub(earlier.values[i]);
        }
        CountersSnapshot { values }
    }

    /// `(name, value)` pairs in declaration order.
    pub fn pairs(&self) -> Vec<(&'static str, u64)> {
        COUNTER_NAMES.iter().copied().zip(self.values).collect()
    }

    /// Look up one counter by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        COUNTER_NAMES.iter().position(|n| *n == name).map(|i| self.values[i])
    }

    /// Sum of all counters — a single scalar "work" figure.
    pub fn total(&self) -> u64 {
        self.values.iter().sum()
    }

    /// `true` if every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|v| *v == 0)
    }
}

/// Table-level spatial statistics estimated from a strided sample of a
/// geometry column — the optimizer-side input a partitioned spatial
/// join needs to size its grid (data extent, cardinality, typical
/// object footprint) without a full pre-pass over both inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialSample {
    /// Exact live-row count of the table (cheap: slot accounting).
    pub rows: usize,
    /// Sampled rows that held a non-empty geometry.
    pub sampled: usize,
    /// Union of the sampled MBRs ([`Rect::EMPTY`] when nothing matched).
    /// An *estimate*: outliers between sample strides may fall outside.
    pub extent: Rect,
    /// Mean MBR width over the sample.
    pub avg_width: f64,
    /// Mean MBR height over the sample.
    pub avg_height: f64,
}

impl SpatialSample {
    /// Sample up to `max_sample` live rows of `table` at a uniform slot
    /// stride and summarize the geometry MBRs found in column `column`.
    /// Rows whose column is not a geometry, or whose bounding box is
    /// empty/NaN, are skipped (they can never join). Sampled rows are
    /// charged to the table's `rows_scanned` counter like any scan.
    pub fn collect(table: &Table, column: usize, max_sample: usize) -> SpatialSample {
        let rows = table.len();
        let hwm = table.high_water_mark();
        let stride = if max_sample == 0 { hwm } else { (hwm / max_sample.max(1)).max(1) };
        let mut sampled = 0usize;
        let mut extent = Rect::EMPTY;
        let (mut sum_w, mut sum_h) = (0.0f64, 0.0f64);
        let mut slot = 0usize;
        while slot < hwm {
            // One live row (if any) per stride window.
            if let Some((_, row)) = table.scan_slots(slot, slot + stride).next() {
                if let Some(b) = row.get(column).and_then(|v| v.as_geometry()).map(|g| g.bbox()) {
                    if !b.is_empty() {
                        extent = if sampled == 0 { b } else { extent.union(&b) };
                        sum_w += b.width();
                        sum_h += b.height();
                        sampled += 1;
                    }
                }
            }
            slot += stride;
        }
        let denom = sampled.max(1) as f64;
        SpatialSample { rows, sampled, extent, avg_width: sum_w / denom, avg_height: sum_h / denom }
    }
}

// ---------------------------------------------------------------------------
// Persisted optimizer statistics
// ---------------------------------------------------------------------------

/// Grid resolution of a [`SpatialHistogram`] built by `ANALYZE`.
pub const HISTOGRAM_DIM: u32 = 32;

/// Default sample ceiling for `ANALYZE` (strided, so cost is bounded
/// regardless of table size).
pub const ANALYZE_SAMPLE: usize = 10_000;

/// Per-column scalar statistics from an `ANALYZE` sample.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Estimated distinct non-null values, scaled linearly from the
    /// sample and capped at the row count.
    pub ndv: u64,
    /// Estimated null count, scaled from the sample.
    pub null_count: u64,
    /// Smallest non-null sampled value (SQL ordering).
    pub min: Option<Value>,
    /// Largest non-null sampled value.
    pub max: Option<Value>,
}

/// A fixed-resolution MBR-occupancy grid over one geometry column —
/// [`SpatialSample`]'s extent/footprint summary extended with a
/// `dim × dim` count of sampled MBR *centers* per cell, which is what
/// selectivity estimation needs.
///
/// Estimators use the Minkowski trick: two rectangles intersect exactly
/// when one's center lies inside the other expanded by half the first's
/// width/height on every side. With per-cell center counts and the
/// average object extent, "how many objects intersect window W" becomes
/// "how many centers fall in W expanded by the half-extents" — a
/// partial-cell-weighted sum over the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialHistogram {
    /// Union of the sampled MBRs (the histogram's domain).
    pub extent: Rect,
    /// Grid resolution per axis.
    pub dim: u32,
    /// Row-major `dim × dim` center-point occupancy counts.
    pub counts: Vec<u32>,
    /// Mean sampled MBR width.
    pub avg_width: f64,
    /// Mean sampled MBR height.
    pub avg_height: f64,
    /// Sampled geometries contributing to `counts`.
    pub sampled: u64,
}

impl SpatialHistogram {
    /// Build a histogram from up to `max_sample` strided rows of
    /// `table`, or `None` when the column yields no usable geometry.
    pub fn collect(table: &Table, column: usize, max_sample: usize) -> Option<SpatialHistogram> {
        let hwm = table.high_water_mark();
        let stride = if max_sample == 0 { hwm } else { (hwm / max_sample.max(1)).max(1) };
        let mut boxes: Vec<Rect> = Vec::new();
        let mut slot = 0usize;
        while slot < hwm {
            if let Some((_, row)) = table.scan_slots(slot, slot + stride).next() {
                if let Some(b) = row.get(column).and_then(|v| v.as_geometry()).map(|g| g.bbox()) {
                    if !b.is_empty() {
                        boxes.push(b);
                    }
                }
            }
            slot += stride;
        }
        if boxes.is_empty() {
            return None;
        }
        let mut extent = boxes[0];
        let (mut sum_w, mut sum_h) = (0.0f64, 0.0f64);
        for b in &boxes {
            extent = extent.union(b);
            sum_w += b.width();
            sum_h += b.height();
        }
        let dim = HISTOGRAM_DIM;
        let mut counts = vec![0u32; (dim * dim) as usize];
        let cw = (extent.width() / dim as f64).max(f64::MIN_POSITIVE);
        let ch = (extent.height() / dim as f64).max(f64::MIN_POSITIVE);
        for b in &boxes {
            let c = b.center();
            let ix = (((c.x - extent.min_x) / cw) as u32).min(dim - 1);
            let iy = (((c.y - extent.min_y) / ch) as u32).min(dim - 1);
            counts[(iy * dim + ix) as usize] += 1;
        }
        let n = boxes.len() as f64;
        Some(SpatialHistogram {
            extent,
            dim,
            counts,
            avg_width: sum_w / n,
            avg_height: sum_h / n,
            sampled: boxes.len() as u64,
        })
    }

    /// Estimated number of object *centers* inside `window`, scaled to
    /// `rows` live rows. Partial cell overlaps contribute fractionally
    /// (uniformity assumption within a cell).
    pub fn centers_in(&self, window: &Rect, rows: u64) -> f64 {
        if self.sampled == 0 || rows == 0 || window.is_empty() || self.extent.is_empty() {
            return 0.0;
        }
        let dim = self.dim as usize;
        let cw = (self.extent.width() / self.dim as f64).max(f64::MIN_POSITIVE);
        let ch = (self.extent.height() / self.dim as f64).max(f64::MIN_POSITIVE);
        let scale = rows as f64 / self.sampled as f64;
        let mut sum = 0.0f64;
        for iy in 0..dim {
            let cell_min_y = self.extent.min_y + iy as f64 * ch;
            let oy = overlap_1d(cell_min_y, cell_min_y + ch, window.min_y, window.max_y);
            if oy <= 0.0 {
                continue;
            }
            for ix in 0..dim {
                let count = self.counts[iy * dim + ix];
                if count == 0 {
                    continue;
                }
                let cell_min_x = self.extent.min_x + ix as f64 * cw;
                let ox = overlap_1d(cell_min_x, cell_min_x + cw, window.min_x, window.max_x);
                if ox <= 0.0 {
                    continue;
                }
                sum += count as f64 * (ox / cw) * (oy / ch);
            }
        }
        (sum * scale).min(rows as f64)
    }

    /// Estimated rows whose MBR intersects `window` (window-query /
    /// `SDO_FILTER` selectivity): Minkowski-expand the window by the
    /// average half-extents, then count centers.
    pub fn estimate_window(&self, window: &Rect, rows: u64) -> f64 {
        if window.is_empty() {
            return 0.0;
        }
        let grown = Rect::new(
            window.min_x - self.avg_width / 2.0,
            window.min_y - self.avg_height / 2.0,
            window.max_x + self.avg_width / 2.0,
            window.max_y + self.avg_height / 2.0,
        );
        self.centers_in(&grown, rows)
    }

    /// Estimated rows within `distance` of `window`'s boundary or
    /// interior (`SDO_WITHIN_DISTANCE` selectivity).
    pub fn estimate_within_distance(&self, window: &Rect, distance: f64, rows: u64) -> f64 {
        if window.is_empty() {
            return 0.0;
        }
        let d = distance.max(0.0);
        let grown =
            Rect::new(window.min_x - d, window.min_y - d, window.max_x + d, window.max_y + d);
        self.estimate_window(&grown, rows)
    }

    /// Estimated MBR-intersecting pairs between this histogram (scaled
    /// to `rows`) and `other` (scaled to `other_rows`) — the primary
    /// filter output cardinality of a spatial join.
    ///
    /// For each occupied cell, objects are assumed at the cell center
    /// with the average extent; partners are the other side's centers
    /// inside the combined Minkowski box `(w₁+w₂) × (h₁+h₂)` around
    /// that center.
    pub fn estimate_join_pairs(&self, rows: u64, other: &SpatialHistogram, other_rows: u64) -> f64 {
        if self.sampled == 0 || other.sampled == 0 || rows == 0 || other_rows == 0 {
            return 0.0;
        }
        let dim = self.dim as usize;
        let cw = (self.extent.width() / self.dim as f64).max(f64::MIN_POSITIVE);
        let ch = (self.extent.height() / self.dim as f64).max(f64::MIN_POSITIVE);
        let scale = rows as f64 / self.sampled as f64;
        let half_w = (self.avg_width + other.avg_width) / 2.0;
        let half_h = (self.avg_height + other.avg_height) / 2.0;
        let mut pairs = 0.0f64;
        for iy in 0..dim {
            for ix in 0..dim {
                let count = self.counts[iy * dim + ix];
                if count == 0 {
                    continue;
                }
                let cx = self.extent.min_x + (ix as f64 + 0.5) * cw;
                let cy = self.extent.min_y + (iy as f64 + 0.5) * ch;
                // Partner-center window: the cell itself dilated by the
                // combined half-extents (objects sit anywhere in the
                // cell, so the window covers the cell, not just its
                // center point).
                let win = Rect::new(
                    cx - cw / 2.0 - half_w,
                    cy - ch / 2.0 - half_h,
                    cx + cw / 2.0 + half_w,
                    cy + ch / 2.0 + half_h,
                );
                // Correct for the window being a whole cell wide: the
                // per-object window is (cw-shrunk) — approximate by the
                // ratio of the object window to the dilated cell window.
                let obj_area =
                    (2.0 * half_w).max(f64::MIN_POSITIVE) * (2.0 * half_h).max(f64::MIN_POSITIVE);
                let win_area = (cw + 2.0 * half_w) * (ch + 2.0 * half_h);
                let partners = other.centers_in(&win, other_rows) * (obj_area / win_area).min(1.0);
                pairs += count as f64 * scale * partners;
            }
        }
        pairs.max(0.0)
    }
}

/// `[a0,a1] ∩ [b0,b1]` length (0 when disjoint).
fn overlap_1d(a0: f64, a1: f64, b0: f64, b1: f64) -> f64 {
    (a1.min(b1) - a0.max(b0)).max(0.0)
}

/// Everything `ANALYZE <table>` learns, persisted through the snapshot
/// and WAL so estimates survive restart.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Table name (uppercase).
    pub table: String,
    /// Live-row count at analysis time.
    pub rows: u64,
    /// The table's modification counter at analysis time; the gap to
    /// the current counter measures staleness.
    pub analyzed_mods: u64,
    /// Scalar stats per column (schema order).
    pub columns: Vec<ColumnStats>,
    /// Spatial histogram per column (`Some` only for geometry columns
    /// with at least one sampled geometry).
    pub spatial: Vec<Option<SpatialHistogram>>,
}

impl TableStats {
    /// Build statistics from up to `max_sample` strided rows.
    pub fn analyze(table: &Table, max_sample: usize) -> TableStats {
        let rows = table.len() as u64;
        let arity = table.schema().arity();
        let hwm = table.high_water_mark();
        let stride = if max_sample == 0 { hwm } else { (hwm / max_sample.max(1)).max(1) };
        let mut sample: Vec<std::sync::Arc<[Value]>> = Vec::new();
        let mut slot = 0usize;
        while slot < hwm {
            if let Some((_, row)) = table.scan_slots(slot, slot + stride).next() {
                sample.push(row);
            }
            slot += stride;
        }
        let sampled = sample.len().max(1) as f64;
        let scale = rows as f64 / sampled;
        let mut columns = Vec::with_capacity(arity);
        let mut spatial = Vec::with_capacity(arity);
        for col in 0..arity {
            let mut distinct: HashSet<Vec<u8>> = HashSet::new();
            let mut nulls = 0u64;
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            for row in &sample {
                let v = match row.get(col) {
                    Some(v) => v,
                    None => continue,
                };
                if v.is_null() {
                    nulls += 1;
                    continue;
                }
                let mut key = BytesMut::new();
                put_value(&mut key, v);
                distinct.insert(key.to_vec());
                // Geometries have no SQL ordering; skip min/max.
                if v.as_geometry().is_some() {
                    continue;
                }
                if min.as_ref().is_none_or(|m| v.sql_cmp(m) == std::cmp::Ordering::Less) {
                    min = Some(v.clone());
                }
                if max.as_ref().is_none_or(|m| v.sql_cmp(m) == std::cmp::Ordering::Greater) {
                    max = Some(v.clone());
                }
            }
            let ndv = if distinct.len() == sample.len() {
                // Every sampled value distinct: assume a unique column.
                rows
            } else {
                ((distinct.len() as f64 * scale) as u64).min(rows)
            };
            columns.push(ColumnStats {
                ndv,
                null_count: ((nulls as f64 * scale) as u64).min(rows),
                min,
                max,
            });
            spatial.push(SpatialHistogram::collect(table, col, max_sample));
        }
        TableStats {
            table: table.name().to_string(),
            rows,
            analyzed_mods: table.mod_count(),
            columns,
            spatial,
        }
    }

    /// The spatial histogram for a column, if one was built.
    pub fn spatial_histogram(&self, col: usize) -> Option<&SpatialHistogram> {
        self.spatial.get(col).and_then(|h| h.as_ref())
    }

    /// Staleness rule: the stats are stale once DML since `ANALYZE`
    /// exceeds `max(64, rows/5)` modifications — 20% churn, with a
    /// floor so small tables aren't flagged by a handful of inserts.
    pub fn is_stale(&self, current_mods: u64) -> bool {
        let budget = (self.rows / 5).max(64);
        current_mods.saturating_sub(self.analyzed_mods) > budget
    }

    /// Serialize into `buf` (snapshot stats section, WAL `Analyze`).
    pub fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, &self.table);
        buf.put_u64_le(self.rows);
        buf.put_u64_le(self.analyzed_mods);
        buf.put_u32_le(self.columns.len() as u32);
        for c in &self.columns {
            buf.put_u64_le(c.ndv);
            buf.put_u64_le(c.null_count);
            for bound in [&c.min, &c.max] {
                match bound {
                    Some(v) => {
                        buf.put_u8(1);
                        put_value(buf, v);
                    }
                    None => buf.put_u8(0),
                }
            }
        }
        buf.put_u32_le(self.spatial.len() as u32);
        for h in &self.spatial {
            match h {
                Some(h) => {
                    buf.put_u8(1);
                    for f in [h.extent.min_x, h.extent.min_y, h.extent.max_x, h.extent.max_y] {
                        buf.put_f64_le(f);
                    }
                    buf.put_u32_le(h.dim);
                    buf.put_f64_le(h.avg_width);
                    buf.put_f64_le(h.avg_height);
                    buf.put_u64_le(h.sampled);
                    buf.put_u32_le(h.counts.len() as u32);
                    for c in &h.counts {
                        buf.put_u32_le(*c);
                    }
                }
                None => buf.put_u8(0),
            }
        }
    }

    /// Decode one record produced by [`TableStats::encode`].
    pub fn decode(buf: &mut impl Buf) -> Result<TableStats, StorageError> {
        let trunc = || StorageError::TypeError("stats: truncated record".into());
        let table = get_str(buf)?;
        if buf.remaining() < 20 {
            return Err(trunc());
        }
        let rows = buf.get_u64_le();
        let analyzed_mods = buf.get_u64_le();
        let n_cols = buf.get_u32_le() as usize;
        let mut columns = Vec::with_capacity(n_cols.min(1024));
        for _ in 0..n_cols {
            if buf.remaining() < 16 {
                return Err(trunc());
            }
            let ndv = buf.get_u64_le();
            let null_count = buf.get_u64_le();
            let mut bounds = [None, None];
            for b in &mut bounds {
                if !buf.has_remaining() {
                    return Err(trunc());
                }
                if buf.get_u8() == 1 {
                    *b = Some(get_value(buf)?);
                }
            }
            let [min, max] = bounds;
            columns.push(ColumnStats { ndv, null_count, min, max });
        }
        if buf.remaining() < 4 {
            return Err(trunc());
        }
        let n_spatial = buf.get_u32_le() as usize;
        let mut spatial = Vec::with_capacity(n_spatial.min(1024));
        for _ in 0..n_spatial {
            if !buf.has_remaining() {
                return Err(trunc());
            }
            if buf.get_u8() == 0 {
                spatial.push(None);
                continue;
            }
            if buf.remaining() < 4 * 8 + 4 + 2 * 8 + 8 + 4 {
                return Err(trunc());
            }
            let extent =
                Rect::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le());
            let dim = buf.get_u32_le();
            let avg_width = buf.get_f64_le();
            let avg_height = buf.get_f64_le();
            let sampled = buf.get_u64_le();
            let n_counts = buf.get_u32_le() as usize;
            if buf.remaining() < n_counts * 4 {
                return Err(trunc());
            }
            let mut counts = Vec::with_capacity(n_counts);
            for _ in 0..n_counts {
                counts.push(buf.get_u32_le());
            }
            spatial.push(Some(SpatialHistogram {
                extent,
                dim,
                counts,
                avg_width,
                avg_height,
                sampled,
            }));
        }
        Ok(TableStats { table, rows, analyzed_mods, columns, spatial })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bump_and_reset() {
        let c = Counters::new();
        Counters::bump(&c.mbr_tests);
        Counters::add(&c.mbr_tests, 4);
        assert_eq!(Counters::get(&c.mbr_tests), 5);
        c.reset();
        assert_eq!(Counters::get(&c.mbr_tests), 0);
    }

    #[test]
    fn shared_across_threads() {
        let c = Arc::new(Counters::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        Counters::bump(&c.row_fetches);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(Counters::get(&c.row_fetches), 4000);
    }

    #[test]
    fn snapshot_names_every_counter() {
        let c = Counters::new();
        Counters::bump(&c.exact_tests);
        let snap = c.snapshot().pairs();
        assert_eq!(snap.len(), 11);
        assert_eq!(snap.len(), COUNTER_NAMES.len());
        assert!(snap.contains(&("exact_tests", 1)));
    }

    #[test]
    fn spatial_sample_estimates_extent_and_footprint() {
        use crate::schema::{DataType, Schema};
        use crate::value::Value;
        use sdo_geom::{Geometry, Polygon};

        let mut t =
            Table::new("s", Schema::of(&[("ID", DataType::Integer), ("GEOM", DataType::Geometry)]));
        for i in 0..200 {
            let x = (i % 20) as f64 * 10.0;
            let y = (i / 20) as f64 * 10.0;
            let poly = Polygon::from_rect(&Rect::new(x, y, x + 2.0, y + 4.0));
            t.insert(vec![Value::Integer(i as i64), Value::geometry(Geometry::Polygon(poly))])
                .unwrap();
        }
        // Full sample: exact extent and exact mean footprint.
        let full = SpatialSample::collect(&t, 1, usize::MAX);
        assert_eq!(full.rows, 200);
        assert_eq!(full.sampled, 200);
        assert_eq!(full.extent, Rect::new(0.0, 0.0, 192.0, 94.0));
        assert!((full.avg_width - 2.0).abs() < 1e-9);
        assert!((full.avg_height - 4.0).abs() < 1e-9);

        // Strided sample: bounded size, extent within the true extent.
        let s = SpatialSample::collect(&t, 1, 16);
        assert!(s.sampled <= 17 && s.sampled >= 8, "sampled {}", s.sampled);
        assert!(full.extent.contains_rect(&s.extent));
        assert!(s.avg_width > 0.0 && s.avg_height > 0.0);

        // Non-geometry column: nothing sampled, empty extent.
        let none = SpatialSample::collect(&t, 0, 64);
        assert_eq!(none.sampled, 0);
        assert!(none.extent.is_empty());
    }

    fn geometry_table(n: i64) -> Table {
        use crate::schema::{DataType, Schema};
        use sdo_geom::{Geometry, Polygon};
        let mut t =
            Table::new("g", Schema::of(&[("ID", DataType::Integer), ("GEOM", DataType::Geometry)]));
        for i in 0..n {
            let x = (i % 20) as f64 * 10.0;
            let y = (i / 20) as f64 * 10.0;
            let poly = Polygon::from_rect(&Rect::new(x, y, x + 2.0, y + 4.0));
            t.insert(vec![Value::Integer(i), Value::geometry(Geometry::Polygon(poly))]).unwrap();
        }
        t
    }

    #[test]
    fn analyze_builds_column_and_spatial_stats() {
        let t = geometry_table(200);
        let stats = TableStats::analyze(&t, usize::MAX);
        assert_eq!(stats.rows, 200);
        assert_eq!(stats.analyzed_mods, 200);
        assert_eq!(stats.columns.len(), 2);
        // ID: unique integers 0..200.
        assert_eq!(stats.columns[0].ndv, 200);
        assert_eq!(stats.columns[0].min, Some(Value::Integer(0)));
        assert_eq!(stats.columns[0].max, Some(Value::Integer(199)));
        // GEOM: histogram present, with the full extent and exact mean
        // footprint at full sampling.
        let h = stats.spatial_histogram(1).expect("geometry histogram");
        assert_eq!(h.sampled, 200);
        assert_eq!(h.extent, Rect::new(0.0, 0.0, 192.0, 94.0));
        assert!((h.avg_width - 2.0).abs() < 1e-9);
        assert!((h.avg_height - 4.0).abs() < 1e-9);
        assert!(stats.spatial_histogram(0).is_none());
        // Whole-extent window ≈ every row.
        let all = h.estimate_window(&h.extent, stats.rows);
        assert!(all > 150.0 && all <= 200.0, "whole-extent estimate {all}");
        // A window covering ~1/4 of the extent sees roughly 1/4 of rows.
        let quarter = h.estimate_window(&Rect::new(0.0, 0.0, 96.0, 47.0), stats.rows);
        assert!(quarter > 25.0 && quarter < 90.0, "quarter estimate {quarter}");
        // Empty window sees nothing.
        assert_eq!(h.estimate_window(&Rect::EMPTY, stats.rows), 0.0);
        // Within-distance grows the estimate.
        let w = Rect::new(50.0, 30.0, 60.0, 40.0);
        assert!(
            h.estimate_within_distance(&w, 30.0, stats.rows) > h.estimate_window(&w, stats.rows)
        );
    }

    #[test]
    fn join_pair_estimate_tracks_truth_on_a_grid() {
        let t = geometry_table(400);
        let stats = TableStats::analyze(&t, usize::MAX);
        let h = stats.spatial_histogram(1).unwrap();
        // Self-join truth: count intersecting bbox pairs by brute force.
        let boxes: Vec<Rect> =
            t.scan().map(|(_, row)| row[1].as_geometry().map(|g| g.bbox()).unwrap()).collect();
        let mut truth = 0u64;
        for a in &boxes {
            for b in &boxes {
                if a.intersects(b) {
                    truth += 1;
                }
            }
        }
        let est = h.estimate_join_pairs(stats.rows, h, stats.rows);
        // Within 4x either way is plenty for a planner cost input.
        assert!(est > truth as f64 / 4.0 && est < truth as f64 * 4.0, "est {est} vs truth {truth}");
    }

    #[test]
    fn stats_encode_decode_roundtrip() {
        let t = geometry_table(120);
        let stats = TableStats::analyze(&t, 64);
        let mut buf = BytesMut::new();
        stats.encode(&mut buf);
        let bytes = buf.freeze();
        let decoded = TableStats::decode(&mut &bytes[..]).unwrap();
        assert_eq!(decoded, stats);
        // Every truncation errors rather than panics.
        for cut in 0..bytes.len() {
            assert!(TableStats::decode(&mut &bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn staleness_follows_modification_budget() {
        let mut t = geometry_table(1000);
        let stats = TableStats::analyze(&t, usize::MAX);
        assert!(!stats.is_stale(t.mod_count()));
        // 20% churn budget: 200 mods for 1000 rows.
        for i in 0..200 {
            t.delete(crate::RowId::new(i)).unwrap();
        }
        assert!(!stats.is_stale(t.mod_count()), "at the budget, not past it");
        t.delete(crate::RowId::new(300)).unwrap();
        assert!(stats.is_stale(t.mod_count()));
    }

    #[test]
    fn diff_reports_deltas() {
        let c = Counters::new();
        Counters::add(&c.mbr_tests, 10);
        let before = c.snapshot();
        Counters::add(&c.mbr_tests, 7);
        Counters::bump(&c.row_fetches);
        let delta = c.diff(&before);
        assert_eq!(delta.get("mbr_tests"), Some(7));
        assert_eq!(delta.get("row_fetches"), Some(1));
        assert_eq!(delta.total(), 8);
        assert!(!delta.is_zero());
        // Saturating: a reset between snapshots cannot underflow.
        c.reset();
        assert!(c.diff(&before).is_zero() || c.diff(&before).get("mbr_tests") == Some(0));
    }
}
