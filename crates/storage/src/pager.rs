//! Paged checkpoint base files.
//!
//! A checkpoint writes the catalog's snapshot image (see
//! [`crate::snapshot`]) into a page-structured file: a header page
//! carrying magic/geometry, then fixed-size data pages each guarded by
//! its own CRC-32. The page structure buys two things over a flat blob:
//! corruption is localized (recovery reports *which* page is bad), and
//! the on-disk format has room to grow toward incremental page flushes
//! without changing readers.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header page (PAGE_SIZE bytes):
//!   [8]  magic  "SDOPAGE\x01"
//!   [4]  page size
//!   [8]  payload length in bytes
//!   [4]  CRC-32 of the 20 bytes above
//!   ...  zero padding to PAGE_SIZE
//! data page (PAGE_SIZE bytes):
//!   [4]  CRC-32 of the chunk
//!   [..] payload chunk (PAGE_SIZE - 4 bytes, zero-padded on the last)
//! ```
//!
//! Writes go through a temp file + atomic rename, so a crash during a
//! checkpoint leaves the previous base image intact.

use crate::wal::crc32;
use crate::StorageError;
use std::fs;
use std::io::Write;
use std::path::Path;

const MAGIC: &[u8; 8] = b"SDOPAGE\x01";

/// Page size of checkpoint base files.
pub const PAGE_SIZE: usize = 4096;

const HEADER_LEN: usize = 8 + 4 + 8 + 4;
const DATA_PER_PAGE: usize = PAGE_SIZE - 4;

fn err(m: impl Into<String>) -> StorageError {
    StorageError::Io(format!("pager: {}", m.into()))
}

/// Write `payload` as a paged base file at `path` (atomic via a
/// sibling temp file and rename).
pub fn write_base(path: impl AsRef<Path>, payload: &[u8]) -> Result<(), StorageError> {
    let path = path.as_ref();
    let mut out = Vec::with_capacity(PAGE_SIZE * (2 + payload.len() / DATA_PER_PAGE));

    let mut header = Vec::with_capacity(PAGE_SIZE);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
    header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let hcrc = crc32(&header[..HEADER_LEN - 4]);
    header.extend_from_slice(&hcrc.to_le_bytes());
    header.resize(PAGE_SIZE, 0);
    out.extend_from_slice(&header);

    for chunk in payload.chunks(DATA_PER_PAGE) {
        let mut page = Vec::with_capacity(PAGE_SIZE);
        page.extend_from_slice(&crc32(chunk).to_le_bytes());
        page.extend_from_slice(chunk);
        page.resize(PAGE_SIZE, 0);
        out.extend_from_slice(&page);
    }

    let tmp = path.with_extension("tmp");
    let mut f = fs::File::create(&tmp).map_err(|e| err(e.to_string()))?;
    f.write_all(&out).map_err(|e| err(e.to_string()))?;
    f.sync_all().map_err(|e| err(e.to_string()))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| err(e.to_string()))?;
    Ok(())
}

/// Read and verify a paged base file, returning the payload bytes.
pub fn read_base(path: impl AsRef<Path>) -> Result<Vec<u8>, StorageError> {
    let bytes = fs::read(path.as_ref()).map_err(|e| err(e.to_string()))?;
    if bytes.len() < PAGE_SIZE {
        return Err(err("truncated header page"));
    }
    if &bytes[..8] != MAGIC {
        return Err(err("bad magic / unsupported version"));
    }
    let page_size = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let hcrc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    if crc32(&bytes[..HEADER_LEN - 4]) != hcrc {
        return Err(err("header CRC mismatch"));
    }
    if page_size != PAGE_SIZE {
        return Err(err(format!("unsupported page size {page_size}")));
    }
    let n_pages = payload_len.div_ceil(DATA_PER_PAGE);
    if bytes.len() < PAGE_SIZE * (1 + n_pages) {
        return Err(err("truncated data pages"));
    }
    let mut payload = Vec::with_capacity(payload_len);
    for p in 0..n_pages {
        let page = &bytes[PAGE_SIZE * (1 + p)..PAGE_SIZE * (2 + p)];
        let crc = u32::from_le_bytes(page[..4].try_into().unwrap());
        let take = DATA_PER_PAGE.min(payload_len - payload.len());
        let chunk = &page[4..4 + take];
        if crc32(chunk) != crc {
            return Err(err(format!("data page {p} CRC mismatch")));
        }
        payload.extend_from_slice(chunk);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sdo-pager-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("base.sdb")
    }

    #[test]
    fn roundtrip_various_sizes() {
        for n in
            [0usize, 1, DATA_PER_PAGE - 1, DATA_PER_PAGE, DATA_PER_PAGE + 1, 3 * DATA_PER_PAGE + 17]
        {
            let payload: Vec<u8> = (0..n).map(|i| (i * 31 % 251) as u8).collect();
            let path = tmp(&format!("rt{n}"));
            write_base(&path, &payload).unwrap();
            assert_eq!(read_base(&path).unwrap(), payload, "size {n}");
            // File is a whole number of pages.
            let len = std::fs::metadata(&path).unwrap().len() as usize;
            assert_eq!(len % PAGE_SIZE, 0);
        }
    }

    #[test]
    fn corruption_is_detected_per_page() {
        let payload: Vec<u8> = (0..2 * DATA_PER_PAGE).map(|i| i as u8).collect();
        let path = tmp("corrupt");
        write_base(&path, &payload).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flip one payload byte in the second data page.
        let mut bad = good.clone();
        bad[PAGE_SIZE * 2 + 100] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        let e = read_base(&path).unwrap_err();
        assert!(e.to_string().contains("page 1"), "{e}");

        // Header corruption.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(read_base(&path).is_err());

        // Truncation.
        std::fs::write(&path, &good[..PAGE_SIZE + 10]).unwrap();
        assert!(read_base(&path).is_err());
    }
}
