//! Table catalog and index metadata.
//!
//! The paper stores "the metadata for the entire index ... as a row in a
//! separate metadata table", recording the index table name,
//! dimensionality, root pointer/fanout for R-trees and the tiling level
//! for quadtrees. [`IndexMetadata`] reproduces exactly that record;
//! [`Catalog`] owns the named tables and their index metadata rows.

use crate::mvcc::TxnStatusTable;
use crate::stats::{Counters, TableStats};
use crate::table::Table;
use crate::StorageError;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// The kind of spatial index an index metadata row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// An R-tree spatial index.
    RTree,
    /// A linear quadtree spatial index.
    Quadtree,
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexKind::RTree => write!(f, "RTREE"),
            IndexKind::Quadtree => write!(f, "QUADTREE"),
        }
    }
}

/// One row of the spatial index metadata table.
#[derive(Debug, Clone)]
pub struct IndexMetadata {
    /// Index name (unique per catalog).
    pub index_name: String,
    /// Base table the index covers.
    pub table_name: String,
    /// Indexed geometry column.
    pub column_name: String,
    /// Quadtree or R-tree.
    pub kind: IndexKind,
    /// Dimensionality (always 2 in this reproduction).
    pub dimensions: u32,
    /// R-tree fanout, if an R-tree.
    pub fanout: Option<usize>,
    /// Quadtree tiling level, if a quadtree.
    pub tiling_level: Option<u32>,
    /// Degree of parallelism the index was created with.
    pub create_dop: usize,
    /// The raw `PARAMETERS ('...')` string the index was created with,
    /// kept so snapshots can rebuild the index identically.
    pub parameters: String,
}

/// A named collection of tables plus index metadata.
///
/// Tables are wrapped in `Arc<RwLock<_>>`: parallel table-function
/// slaves take read locks to fetch geometries concurrently, DML takes
/// the write lock — a coarse version of Oracle's statement-level
/// concurrency.
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<RwLock<Table>>>>,
    index_metadata: RwLock<HashMap<String, IndexMetadata>>,
    /// Persisted `ANALYZE` statistics keyed by uppercase table name.
    table_stats: RwLock<HashMap<String, Arc<TableStats>>>,
    counters: Arc<Counters>,
    status: Arc<TxnStatusTable>,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// An empty catalog with fresh counters.
    pub fn new() -> Self {
        Catalog {
            tables: RwLock::new(HashMap::new()),
            index_metadata: RwLock::new(HashMap::new()),
            table_stats: RwLock::new(HashMap::new()),
            counters: Arc::new(Counters::new()),
            status: Arc::new(TxnStatusTable::new()),
        }
    }

    /// The catalog-wide work counters; tables created here share them.
    pub fn counters(&self) -> &Arc<Counters> {
        &self.counters
    }

    /// The catalog-wide transaction status table; tables created here
    /// share it, so one commit flip makes a multi-table transaction
    /// visible atomically.
    pub fn status(&self) -> &Arc<TxnStatusTable> {
        &self.status
    }

    /// Create and register a table.
    pub fn create_table(
        &self,
        name: &str,
        schema: crate::schema::Schema,
    ) -> Result<Arc<RwLock<Table>>, StorageError> {
        let key = name.to_ascii_uppercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(StorageError::AlreadyExists(key));
        }
        let table = Arc::new(RwLock::new(
            Table::new(&key, schema)
                .with_counters(Arc::clone(&self.counters))
                .with_status(Arc::clone(&self.status)),
        ));
        tables.insert(key, Arc::clone(&table));
        Ok(table)
    }

    /// Look up a table by name (case-insensitive).
    pub fn table(&self, name: &str) -> Result<Arc<RwLock<Table>>, StorageError> {
        let key = name.to_ascii_uppercase();
        self.tables.read().get(&key).cloned().ok_or(StorageError::NotFound(key))
    }

    /// Drop a table and any index metadata that references it.
    pub fn drop_table(&self, name: &str) -> Result<(), StorageError> {
        let key = name.to_ascii_uppercase();
        let removed = self.tables.write().remove(&key);
        if removed.is_none() {
            return Err(StorageError::NotFound(key));
        }
        self.index_metadata.write().retain(|_, meta| !meta.table_name.eq_ignore_ascii_case(&key));
        self.table_stats.write().remove(&key);
        Ok(())
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Record an index metadata row.
    pub fn register_index(&self, meta: IndexMetadata) -> Result<(), StorageError> {
        let key = meta.index_name.to_ascii_uppercase();
        let mut metas = self.index_metadata.write();
        if metas.contains_key(&key) {
            return Err(StorageError::AlreadyExists(key));
        }
        metas.insert(key, meta);
        Ok(())
    }

    /// Fetch index metadata by index name.
    pub fn index_metadata(&self, index_name: &str) -> Result<IndexMetadata, StorageError> {
        let key = index_name.to_ascii_uppercase();
        self.index_metadata.read().get(&key).cloned().ok_or(StorageError::NotFound(key))
    }

    /// Find the index on `(table, column)`, if one exists.
    pub fn index_on(&self, table: &str, column: &str) -> Option<IndexMetadata> {
        self.index_metadata
            .read()
            .values()
            .find(|m| {
                m.table_name.eq_ignore_ascii_case(table)
                    && m.column_name.eq_ignore_ascii_case(column)
            })
            .cloned()
    }

    /// Remove an index metadata row.
    pub fn drop_index(&self, index_name: &str) -> Result<IndexMetadata, StorageError> {
        let key = index_name.to_ascii_uppercase();
        self.index_metadata.write().remove(&key).ok_or(StorageError::NotFound(key))
    }

    /// Install (or replace) the `ANALYZE` statistics for a table.
    pub fn set_table_stats(&self, stats: TableStats) {
        self.table_stats.write().insert(stats.table.to_ascii_uppercase(), Arc::new(stats));
    }

    /// The persisted statistics for a table, if it has been analyzed.
    pub fn table_stats(&self, table: &str) -> Option<Arc<TableStats>> {
        self.table_stats.read().get(&table.to_ascii_uppercase()).cloned()
    }

    /// Every table's statistics, sorted by table name (snapshot order).
    pub fn all_table_stats(&self) -> Vec<Arc<TableStats>> {
        let mut out: Vec<Arc<TableStats>> = self.table_stats.read().values().cloned().collect();
        out.sort_by(|a, b| a.table.cmp(&b.table));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};

    fn meta(index: &str, table: &str) -> IndexMetadata {
        IndexMetadata {
            index_name: index.to_string(),
            table_name: table.to_string(),
            column_name: "GEOM".to_string(),
            kind: IndexKind::RTree,
            dimensions: 2,
            fanout: Some(32),
            tiling_level: None,
            create_dop: 1,
            parameters: String::new(),
        }
    }

    #[test]
    fn table_lifecycle() {
        let cat = Catalog::new();
        let t = cat.create_table("cities", Schema::of(&[("ID", DataType::Integer)])).unwrap();
        t.write().insert(vec![crate::value::Value::Integer(1)]).unwrap();
        // case-insensitive lookup
        assert_eq!(cat.table("CITIES").unwrap().read().len(), 1);
        assert!(matches!(
            cat.create_table("Cities", Schema::of(&[])),
            Err(StorageError::AlreadyExists(_))
        ));
        assert_eq!(cat.table_names(), vec!["CITIES".to_string()]);
        cat.drop_table("cities").unwrap();
        assert!(cat.table("cities").is_err());
        assert!(cat.drop_table("cities").is_err());
    }

    #[test]
    fn index_metadata_lifecycle() {
        let cat = Catalog::new();
        cat.create_table("cities", Schema::of(&[("GEOM", DataType::Geometry)])).unwrap();
        cat.register_index(meta("cities_sidx", "cities")).unwrap();
        assert!(cat.register_index(meta("CITIES_SIDX", "cities")).is_err());
        let m = cat.index_metadata("cities_sidx").unwrap();
        assert_eq!(m.kind, IndexKind::RTree);
        assert_eq!(m.fanout, Some(32));
        let found = cat.index_on("CITIES", "geom").unwrap();
        assert_eq!(found.index_name, "cities_sidx");
        assert!(cat.index_on("cities", "other").is_none());
        cat.drop_index("cities_sidx").unwrap();
        assert!(cat.index_metadata("cities_sidx").is_err());
    }

    #[test]
    fn dropping_table_drops_its_index_metadata() {
        let cat = Catalog::new();
        cat.create_table("t1", Schema::of(&[("GEOM", DataType::Geometry)])).unwrap();
        cat.register_index(meta("t1_idx", "t1")).unwrap();
        cat.drop_table("t1").unwrap();
        assert!(cat.index_metadata("t1_idx").is_err());
    }

    #[test]
    fn tables_share_catalog_counters() {
        let cat = Catalog::new();
        let t = cat.create_table("t", Schema::of(&[("ID", DataType::Integer)])).unwrap();
        let rid = t.write().insert(vec![crate::value::Value::Integer(1)]).unwrap();
        t.read().get(rid).unwrap();
        assert!(Counters::get(&cat.counters().row_fetches) >= 1);
    }
}
