//! Table schemas.

use crate::value::Value;
use crate::StorageError;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`NUMBER`).
    Integer,
    /// 64-bit float (`DOUBLE`).
    Double,
    /// UTF-8 string (`VARCHAR2`).
    Text,
    /// Row address.
    RowId,
    /// `SDO_GEOMETRY` object column.
    Geometry,
}

impl DataType {
    /// SQL type-name spelling used by the mini SQL dialect.
    pub fn parse(s: &str) -> Option<DataType> {
        match s.to_ascii_uppercase().as_str() {
            "INTEGER" | "INT" | "NUMBER" => Some(DataType::Integer),
            "DOUBLE" | "FLOAT" | "REAL" => Some(DataType::Double),
            "TEXT" | "VARCHAR" | "VARCHAR2" => Some(DataType::Text),
            "ROWID" => Some(DataType::RowId),
            "GEOMETRY" | "SDO_GEOMETRY" => Some(DataType::Geometry),
            _ => None,
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DataType::Integer => "INTEGER",
            DataType::Double => "DOUBLE",
            DataType::Text => "TEXT",
            DataType::RowId => "ROWID",
            DataType::Geometry => "SDO_GEOMETRY",
        };
        f.write_str(s)
    }
}

/// One column: name plus type. Column names are case-insensitive and
/// stored uppercased, following the Oracle convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name, stored uppercased.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl ColumnDef {
    /// A column definition (name is uppercased).
    pub fn new(name: &str, data_type: DataType) -> Self {
        ColumnDef { name: name.to_ascii_uppercase(), data_type }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// A schema from ordered column definitions.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(cols: &[(&str, DataType)]) -> Self {
        Schema::new(cols.iter().map(|(n, t)| ColumnDef::new(n, *t)).collect())
    }

    /// The ordered column definitions.
    #[inline]
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Case-insensitive column lookup.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// The column definition at `idx`.
    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// Check a row against the schema: arity and per-column types
    /// (NULL inhabits every type).
    pub fn check_row(&self, row: &[Value]) -> Result<(), StorageError> {
        if row.len() != self.arity() {
            return Err(StorageError::SchemaMismatch(format!(
                "expected {} columns, got {}",
                self.arity(),
                row.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.columns) {
            if let Some(dt) = v.data_type() {
                let compatible = dt == c.data_type
                    || (dt == DataType::Integer && c.data_type == DataType::Double);
                if !compatible {
                    return Err(StorageError::SchemaMismatch(format!(
                        "column {} expects {}, got {:?}",
                        c.name, c.data_type, dt
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::of(&[
            ("ID", DataType::Integer),
            ("NAME", DataType::Text),
            ("GEOM", DataType::Geometry),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.column_index("id"), Some(0));
        assert_eq!(s.column_index("Geom"), Some(2));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column(1).name, "NAME");
    }

    #[test]
    fn row_checking() {
        let s = schema();
        let g = sdo_geom::Geometry::Point(sdo_geom::Point::new(0.0, 0.0));
        assert!(s.check_row(&[Value::Integer(1), Value::from("x"), Value::geometry(g)]).is_ok());
        // NULL fits anywhere
        assert!(s.check_row(&[Value::Null, Value::Null, Value::Null]).is_ok());
        // wrong arity
        assert!(s.check_row(&[Value::Integer(1)]).is_err());
        // wrong type
        assert!(s.check_row(&[Value::from("oops"), Value::from("x"), Value::Null]).is_err());
    }

    #[test]
    fn integer_widens_to_double() {
        let s = Schema::of(&[("V", DataType::Double)]);
        assert!(s.check_row(&[Value::Integer(3)]).is_ok());
    }

    #[test]
    fn type_parsing() {
        assert_eq!(DataType::parse("number"), Some(DataType::Integer));
        assert_eq!(DataType::parse("SDO_GEOMETRY"), Some(DataType::Geometry));
        assert_eq!(DataType::parse("blob"), None);
    }
}
