//! Typed column values.

use crate::rowid::RowId;
use sdo_geom::{Geometry, SdoGeometry};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single column value.
///
/// Geometries are reference counted: the same geometry value flows from
/// the heap table through candidate arrays, secondary filters and result
/// rows without deep copies, which matters for the complex block-group
/// polygons (hundreds of vertices each).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Integer(i64),
    /// 64-bit float.
    Double(f64),
    /// UTF-8 string (shared).
    Text(Arc<str>),
    /// Row address.
    RowId(RowId),
    /// Geometry object (shared).
    Geometry(Arc<Geometry>),
}

impl Value {
    /// A text value.
    pub fn text(s: impl Into<Arc<str>>) -> Value {
        Value::Text(s.into())
    }

    /// A geometry value (wraps in `Arc` for cheap sharing).
    pub fn geometry(g: Geometry) -> Value {
        Value::Geometry(Arc::new(g))
    }

    /// Encode a geometry value from the Oracle-style SDO representation.
    pub fn from_sdo(sdo: &SdoGeometry) -> Result<Value, sdo_geom::GeomError> {
        Ok(Value::geometry(sdo.to_geometry()?))
    }

    /// True for SQL NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer payload, if any.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Value::Integer(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a double (integers widen).
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            Value::Integer(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The rowid payload, if any.
    pub fn as_rowid(&self) -> Option<RowId> {
        match self {
            Value::RowId(r) => Some(*r),
            _ => None,
        }
    }

    /// The geometry payload, if any.
    pub fn as_geometry(&self) -> Option<&Arc<Geometry>> {
        match self {
            Value::Geometry(g) => Some(g),
            _ => None,
        }
    }

    /// The [`crate::schema::DataType`] this value inhabits, or `None`
    /// for NULL (which inhabits every type).
    pub fn data_type(&self) -> Option<crate::schema::DataType> {
        use crate::schema::DataType::*;
        match self {
            Value::Null => None,
            Value::Integer(_) => Some(Integer),
            Value::Double(_) => Some(Double),
            Value::Text(_) => Some(Text),
            Value::RowId(_) => Some(RowId),
            Value::Geometry(_) => Some(Geometry),
        }
    }

    /// SQL comparison: NULL compares less than everything (for sort
    /// stability), numbers compare numerically across Integer/Double,
    /// geometries are incomparable and collate by type only.
    pub fn sql_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Integer(a), Integer(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Integer(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Integer(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (RowId(a), RowId(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// SQL equality (three-valued logic collapsed: NULL != NULL here,
    /// matching WHERE-clause semantics).
    pub fn sql_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => false,
            (Geometry(a), Geometry(b)) => a == b,
            (a, b) => {
                rank(a) == rank(b) && a.sql_cmp(b) == Ordering::Equal
                    || matches!((a, b), (Integer(_), Double(_)) | (Double(_), Integer(_)))
                        && a.sql_cmp(b) == Ordering::Equal
            }
        }
    }
}

fn rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Integer(_) | Value::Double(_) => 1,
        Value::Text(_) => 2,
        Value::RowId(_) => 3,
        Value::Geometry(_) => 4,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Integer(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::RowId(r) => write!(f, "{r}"),
            Value::Geometry(g) => write!(f, "{}", sdo_geom::wkt::to_wkt(g)),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Geometry(a), Geometry(b)) => a == b,
            (Integer(a), Integer(b)) => a == b,
            (Double(a), Double(b)) => a.total_cmp(b) == Ordering::Equal,
            (Text(a), Text(b)) => a == b,
            (RowId(a), RowId(b)) => a == b,
            _ => false,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v.to_string())
    }
}

impl From<RowId> for Value {
    fn from(v: RowId) -> Self {
        Value::RowId(v)
    }
}

impl From<Geometry> for Value {
    fn from(v: Geometry) -> Self {
        Value::geometry(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_geom::Point;

    #[test]
    fn accessors() {
        assert_eq!(Value::Integer(4).as_integer(), Some(4));
        assert_eq!(Value::Integer(4).as_double(), Some(4.0));
        assert_eq!(Value::Double(2.5).as_double(), Some(2.5));
        assert_eq!(Value::from("hi").as_text(), Some("hi"));
        assert_eq!(Value::from(RowId::new(9)).as_rowid(), Some(RowId::new(9)));
        assert!(Value::Null.is_null());
        assert!(Value::Double(1.0).as_integer().is_none());
    }

    #[test]
    fn cross_type_numeric_compare() {
        assert_eq!(Value::Integer(2).sql_cmp(&Value::Double(2.0)), Ordering::Equal);
        assert_eq!(Value::Integer(2).sql_cmp(&Value::Double(2.5)), Ordering::Less);
        assert!(Value::Integer(2).sql_eq(&Value::Double(2.0)));
    }

    #[test]
    fn null_semantics() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert_eq!(Value::Null.sql_cmp(&Value::Integer(-100)), Ordering::Less);
        assert_eq!(Value::Null, Value::Null); // structural eq for tests
    }

    #[test]
    fn geometry_values_share_storage() {
        let g = Geometry::Point(Point::new(1.0, 2.0));
        let v = Value::geometry(g.clone());
        let v2 = v.clone();
        match (&v, &v2) {
            (Value::Geometry(a), Value::Geometry(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
        assert!(v.sql_eq(&v2));
        assert_eq!(v.data_type(), Some(crate::schema::DataType::Geometry));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Integer(42).to_string(), "42");
        let g = Geometry::Point(Point::new(1.0, 2.0));
        assert_eq!(Value::geometry(g).to_string(), "POINT (1 2)");
    }
}
