#![warn(missing_docs)]
//! # sdo-storage — mini storage engine
//!
//! The relational substrate underneath the table-function spatial stack.
//! It supplies the pieces of the Oracle kernel the ICDE 2003 paper's
//! techniques actually touch:
//!
//! * **heap tables** ([`table::Table`]) holding typed rows addressed by
//!   stable [`rowid::RowId`]s — spatial joins return *pairs of rowids*,
//!   and the secondary filter fetches geometries by rowid,
//! * a typed [`value::Value`] model including geometries
//!   (`SDO_GEOMETRY` columns are just object-typed columns in Oracle),
//! * a from-scratch **B+tree** ([`btree::BTree`]) — the linear quadtree
//!   stores its tessellated tile codes in a B-tree, and index creation
//!   parallelism hinges on separating tessellation from B-tree build,
//! * a [`catalog::Catalog`] of tables plus index metadata (the paper's
//!   "metadata table" storing index table name, dimensionality, fanout,
//!   tiling level),
//! * [`stats::Counters`] — logical I/O and comparison counters that the
//!   experiment harness reports alongside wall-clock time.
//!
//! Everything is in-memory and single-node; concurrency follows Oracle's
//! statement-level model loosely with `parking_lot` read/write locks at
//! table granularity.

pub mod btree;
pub mod catalog;
pub mod mvcc;
pub mod pager;
pub mod rowid;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod table;
pub mod value;
pub mod wal;

pub use btree::BTree;
pub use catalog::{Catalog, IndexKind, IndexMetadata};
pub use mvcc::{Csn, Snapshot, TxnId, TxnState, TxnStatusTable, FROZEN_TXN};
pub use rowid::RowId;
pub use schema::{ColumnDef, DataType, Schema};
pub use stats::{
    ColumnStats, Counters, CountersSnapshot, SpatialHistogram, SpatialSample, TableStats,
    ANALYZE_SAMPLE, COUNTER_NAMES, HISTOGRAM_DIM,
};
pub use table::{Table, TableScan};
pub use value::Value;
pub use wal::{Wal, WalRecord};

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Row does not exist (deleted or never allocated).
    NoSuchRow(RowId),
    /// Schema mismatch on insert/update.
    SchemaMismatch(String),
    /// Named object (table/index) not found.
    NotFound(String),
    /// Named object already exists.
    AlreadyExists(String),
    /// Value had an unexpected type.
    TypeError(String),
    /// First-updater-wins: another transaction wrote this row (still
    /// in progress, or committed after the loser's snapshot).
    WriteConflict(RowId),
    /// Filesystem failure in the WAL or pager.
    Io(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::NoSuchRow(rid) => write!(f, "no such row: {rid}"),
            StorageError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            StorageError::NotFound(n) => write!(f, "not found: {n}"),
            StorageError::AlreadyExists(n) => write!(f, "already exists: {n}"),
            StorageError::TypeError(m) => write!(f, "type error: {m}"),
            StorageError::WriteConflict(rid) => {
                write!(f, "write-write conflict on row {rid}: concurrent transaction wrote it")
            }
            StorageError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}
