//! Multi-version concurrency control primitives.
//!
//! Oracle gives every query a *consistent read* view: readers never
//! block writers and never see half a transaction. This module supplies
//! the minimal machinery for that model over the in-memory heap tables:
//!
//! * [`TxnId`] — transaction identifiers, allocated by the central
//!   [`TxnStatusTable`]. Id `0` ([`FROZEN_TXN`]) is reserved for
//!   *frozen* rows: non-transactional writes and recovered rows that
//!   are visible to every snapshot.
//! * [`TxnStatusTable`] — the single source of truth for transaction
//!   outcomes. Commit is one status flip under a write lock, which is
//!   what makes a whole transaction's rows become visible atomically:
//!   a version is visible only *through* its creator's status, so no
//!   reader can observe half a commit (no torn reads).
//! * [`Snapshot`] — a read view: "everything committed with a commit
//!   sequence number ≤ `csn`, plus my own uncommitted writes".
//!
//! Version chains themselves live in [`crate::table::Table`]; rollback
//! is O(1) in heap terms — aborting flips the status and the aborted
//! versions are skipped by every reader and pruned lazily by later
//! writers.

use parking_lot::RwLock;

/// A transaction identifier (1-based; 0 is [`FROZEN_TXN`]).
pub type TxnId = u64;

/// A commit sequence number. Commits are totally ordered by CSN; a
/// [`Snapshot`] with `csn = c` sees exactly the transactions that
/// committed with CSN ≤ `c`.
pub type Csn = u64;

/// The pseudo transaction id of frozen (always-visible) row versions.
pub const FROZEN_TXN: TxnId = 0;

/// Outcome of a transaction, tracked by [`TxnStatusTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Started, neither committed nor aborted.
    InProgress,
    /// Committed with this commit sequence number.
    Committed(Csn),
    /// Rolled back; its row versions are invisible to everyone.
    Aborted,
}

/// A consistent read view.
///
/// `csn` bounds the committed world this snapshot sees; `txid` is the
/// owning transaction (its own uncommitted writes are visible to it),
/// or [`FROZEN_TXN`] for plain readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Highest commit sequence number visible to this snapshot.
    pub csn: Csn,
    /// Transaction whose uncommitted writes are visible (0 = none).
    pub txid: TxnId,
}

impl Snapshot {
    /// The "latest committed" view: every committed transaction is
    /// visible, no uncommitted ones. This is the default view of all
    /// non-transactional reads, so dirty reads are impossible even for
    /// legacy callers.
    pub const LATEST: Snapshot = Snapshot { csn: Csn::MAX, txid: FROZEN_TXN };

    /// A read view pinned at `csn` with no transaction attached.
    pub fn at(csn: Csn) -> Snapshot {
        Snapshot { csn, txid: FROZEN_TXN }
    }

    /// True when this snapshot sees the effects of writer `txid`:
    /// frozen writes, its own writes, and commits with CSN ≤ `csn`.
    #[inline]
    pub fn sees(&self, txid: TxnId, status: &TxnStatusTable) -> bool {
        txid == FROZEN_TXN
            || txid == self.txid
            || matches!(status.state(txid), TxnState::Committed(c) if c <= self.csn)
    }
}

/// Central transaction status table shared by every table of a catalog.
///
/// Status flips (commit/abort) are atomic with respect to visibility
/// checks, which makes multi-row transactions appear and disappear
/// all-or-nothing.
#[derive(Debug, Default)]
pub struct TxnStatusTable {
    // Indexed by txid - 1; txids are allocated densely by `begin`.
    states: RwLock<Vec<TxnState>>,
}

impl TxnStatusTable {
    /// An empty status table.
    pub fn new() -> Self {
        TxnStatusTable::default()
    }

    /// Allocate and register a new in-progress transaction.
    pub fn begin(&self) -> TxnId {
        let mut states = self.states.write();
        states.push(TxnState::InProgress);
        states.len() as TxnId
    }

    /// The current state of `txid`. Unknown ids (never allocated here,
    /// e.g. replayed from a foreign log) read as `Aborted`: their
    /// versions must stay invisible.
    #[inline]
    pub fn state(&self, txid: TxnId) -> TxnState {
        if txid == FROZEN_TXN {
            return TxnState::Committed(0);
        }
        self.states.read().get(txid as usize - 1).copied().unwrap_or(TxnState::Aborted)
    }

    /// Flip `txid` to committed at `csn`. This is *the* commit point:
    /// after the flip every reader whose snapshot covers `csn` sees all
    /// of the transaction's rows, and nobody saw any of them before.
    pub fn commit(&self, txid: TxnId, csn: Csn) {
        self.set(txid, TxnState::Committed(csn));
    }

    /// Flip `txid` to aborted; its versions become permanently
    /// invisible (O(1) heap rollback).
    pub fn abort(&self, txid: TxnId) {
        self.set(txid, TxnState::Aborted);
    }

    /// Number of transactions ever begun (capacity bookkeeping).
    pub fn allocated(&self) -> usize {
        self.states.read().len()
    }

    fn set(&self, txid: TxnId, state: TxnState) {
        assert_ne!(txid, FROZEN_TXN, "frozen pseudo-txn has no state");
        let mut states = self.states.write();
        let slot = states.get_mut(txid as usize - 1).expect("txid was allocated by begin()");
        debug_assert_eq!(*slot, TxnState::InProgress, "double commit/abort of {txid}");
        *slot = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_commit_abort_lifecycle() {
        let st = TxnStatusTable::new();
        let a = st.begin();
        let b = st.begin();
        assert_eq!((a, b), (1, 2));
        assert_eq!(st.state(a), TxnState::InProgress);
        st.commit(a, 7);
        st.abort(b);
        assert_eq!(st.state(a), TxnState::Committed(7));
        assert_eq!(st.state(b), TxnState::Aborted);
        assert_eq!(st.allocated(), 2);
    }

    #[test]
    fn frozen_and_unknown_txids() {
        let st = TxnStatusTable::new();
        assert_eq!(st.state(FROZEN_TXN), TxnState::Committed(0));
        assert_eq!(st.state(99), TxnState::Aborted);
    }

    #[test]
    fn snapshot_visibility_rules() {
        let st = TxnStatusTable::new();
        let t1 = st.begin();
        let t2 = st.begin();
        st.commit(t1, 5);

        let early = Snapshot::at(4);
        let late = Snapshot::at(5);
        assert!(!early.sees(t1, &st), "commit csn 5 is invisible at csn 4");
        assert!(late.sees(t1, &st));
        assert!(!late.sees(t2, &st), "in-progress txns are invisible");
        assert!(Snapshot { csn: 0, txid: t2 }.sees(t2, &st), "own writes are visible");
        assert!(late.sees(FROZEN_TXN, &st), "frozen rows visible everywhere");
        assert!(Snapshot::LATEST.sees(t1, &st));
        assert!(!Snapshot::LATEST.sees(t2, &st), "LATEST still excludes uncommitted");
    }
}
