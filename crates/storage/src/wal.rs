//! Write-ahead log: append-only redo records with group commit.
//!
//! Durability follows the classic redo-only protocol: every change is
//! appended to the log *before* the transaction's commit is
//! acknowledged, and recovery replays the log over the last checkpoint
//! base image. Records are framed as
//!
//! ```text
//! [u32 payload length][u32 CRC-32 of payload][payload]
//! ```
//!
//! so a crash mid-append leaves a torn tail that [`read_wal`] detects
//! (short frame or CRC mismatch) and treats as the end of the log —
//! exactly the "log ends at the first hole" rule of ARIES-style
//! recovery. Transactions whose `Commit` record did not make it into
//! the durable prefix are discarded wholesale by replay, which is what
//! makes crash recovery all-or-nothing per transaction.
//!
//! Group commit: appends are buffered writes under a mutex; an fsync
//! covers everything appended so far, so a committer whose commit LSN
//! is already covered by a concurrent fsync skips its own
//! ([`Wal::sync_to`]). The `wal_fsyncs` counter therefore counts
//! *physical* syncs, not commits.

use crate::mvcc::TxnId;
use crate::schema::{ColumnDef, Schema};
use crate::snapshot::{datatype_from, datatype_tag, get_str, get_value, put_str, put_value};
use crate::stats::Counters;
use crate::value::Value;
use crate::{RowId, StorageError};
use bytes::{Buf, BufMut, BytesMut};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the checksum guarding
/// WAL frames and checkpoint pages. Table-driven, no external deps.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// One redo record. DML records carry the *rowid* their change landed
/// on, so replay reproduces identical rowids (spatial joins return
/// rowid pairs — they must survive recovery).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Transaction started.
    Begin {
        /// The starting transaction.
        txid: TxnId,
    },
    /// Row inserted at `rid`.
    Insert {
        /// Writing transaction.
        txid: TxnId,
        /// Target table (uppercase).
        table: String,
        /// Slot the row landed on.
        rid: RowId,
        /// The inserted row.
        row: Vec<Value>,
    },
    /// Row at `rid` replaced.
    Update {
        /// Writing transaction.
        txid: TxnId,
        /// Target table (uppercase).
        table: String,
        /// Updated slot.
        rid: RowId,
        /// The new row image (redo-only log: no before image).
        row: Vec<Value>,
    },
    /// Row at `rid` deleted.
    Delete {
        /// Writing transaction.
        txid: TxnId,
        /// Target table (uppercase).
        table: String,
        /// Deleted slot.
        rid: RowId,
    },
    /// Transaction committed — the durability point.
    Commit {
        /// The committing transaction.
        txid: TxnId,
    },
    /// Transaction rolled back (informational; replay discards the
    /// transaction's records either way).
    Abort {
        /// The aborted transaction.
        txid: TxnId,
    },
    /// `CREATE TABLE` (DDL is autocommitted; replay applies it
    /// immediately).
    CreateTable {
        /// New table name.
        name: String,
        /// Column definitions.
        schema: Schema,
    },
    /// `DROP TABLE`.
    DropTable {
        /// Dropped table name.
        name: String,
    },
    /// `CREATE INDEX ... INDEXTYPE IS ...` — recorded as a rebuild
    /// directive; recovery recreates the index from the recovered
    /// table, which by construction matches a fresh build.
    CreateIndex {
        /// Index name.
        index_name: String,
        /// Indexed table.
        table_name: String,
        /// Indexed column.
        column_name: String,
        /// Raw `PARAMETERS` string.
        parameters: String,
        /// Creation degree of parallelism.
        create_dop: usize,
    },
    /// `DROP INDEX`.
    DropIndex {
        /// Dropped index name.
        name: String,
    },
    /// `ANALYZE <table>` — the computed statistics, logged whole so
    /// estimates survive a crash without resampling (autocommitted like
    /// the other DDL records).
    Analyze {
        /// Analyzed table (uppercase).
        table: String,
        /// The statistics as computed.
        stats: crate::stats::TableStats,
    },
}

fn err(m: impl Into<String>) -> StorageError {
    StorageError::Io(format!("wal: {}", m.into()))
}

fn io(e: std::io::Error) -> StorageError {
    StorageError::Io(format!("wal: {e}"))
}

fn put_row(buf: &mut BytesMut, row: &[Value]) {
    buf.put_u32_le(row.len() as u32);
    for v in row {
        put_value(buf, v);
    }
}

fn get_row(buf: &mut impl Buf) -> Result<Vec<Value>, StorageError> {
    if buf.remaining() < 4 {
        return Err(err("truncated row arity"));
    }
    let n = buf.get_u32_le() as usize;
    let mut row = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        row.push(get_value(buf)?);
    }
    Ok(row)
}

impl WalRecord {
    /// Serialize the record payload (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        match self {
            WalRecord::Begin { txid } => {
                buf.put_u8(1);
                buf.put_u64_le(*txid);
            }
            WalRecord::Insert { txid, table, rid, row } => {
                buf.put_u8(2);
                buf.put_u64_le(*txid);
                put_str(&mut buf, table);
                buf.put_u64_le(rid.as_u64());
                put_row(&mut buf, row);
            }
            WalRecord::Update { txid, table, rid, row } => {
                buf.put_u8(3);
                buf.put_u64_le(*txid);
                put_str(&mut buf, table);
                buf.put_u64_le(rid.as_u64());
                put_row(&mut buf, row);
            }
            WalRecord::Delete { txid, table, rid } => {
                buf.put_u8(4);
                buf.put_u64_le(*txid);
                put_str(&mut buf, table);
                buf.put_u64_le(rid.as_u64());
            }
            WalRecord::Commit { txid } => {
                buf.put_u8(5);
                buf.put_u64_le(*txid);
            }
            WalRecord::Abort { txid } => {
                buf.put_u8(6);
                buf.put_u64_le(*txid);
            }
            WalRecord::CreateTable { name, schema } => {
                buf.put_u8(7);
                put_str(&mut buf, name);
                let cols = schema.columns();
                buf.put_u32_le(cols.len() as u32);
                for c in cols {
                    put_str(&mut buf, &c.name);
                    buf.put_u8(datatype_tag(c.data_type));
                }
            }
            WalRecord::DropTable { name } => {
                buf.put_u8(8);
                put_str(&mut buf, name);
            }
            WalRecord::CreateIndex {
                index_name,
                table_name,
                column_name,
                parameters,
                create_dop,
            } => {
                buf.put_u8(9);
                put_str(&mut buf, index_name);
                put_str(&mut buf, table_name);
                put_str(&mut buf, column_name);
                put_str(&mut buf, parameters);
                buf.put_u32_le(*create_dop as u32);
            }
            WalRecord::DropIndex { name } => {
                buf.put_u8(10);
                put_str(&mut buf, name);
            }
            WalRecord::Analyze { table, stats } => {
                buf.put_u8(11);
                put_str(&mut buf, table);
                stats.encode(&mut buf);
            }
        }
        buf.to_vec()
    }

    /// Decode one record payload.
    pub fn decode(mut buf: &[u8]) -> Result<WalRecord, StorageError> {
        let b = &mut buf;
        if !b.has_remaining() {
            return Err(err("empty record"));
        }
        let need_u64 = |b: &mut &[u8]| -> Result<u64, StorageError> {
            if b.remaining() < 8 {
                return Err(err("truncated u64"));
            }
            Ok(b.get_u64_le())
        };
        let tag = b.get_u8();
        let rec = match tag {
            1 => WalRecord::Begin { txid: need_u64(b)? },
            2 | 3 => {
                let txid = need_u64(b)?;
                let table = get_str(b)?;
                let rid = RowId::new(need_u64(b)?);
                let row = get_row(b)?;
                if tag == 2 {
                    WalRecord::Insert { txid, table, rid, row }
                } else {
                    WalRecord::Update { txid, table, rid, row }
                }
            }
            4 => {
                let txid = need_u64(b)?;
                let table = get_str(b)?;
                let rid = RowId::new(need_u64(b)?);
                WalRecord::Delete { txid, table, rid }
            }
            5 => WalRecord::Commit { txid: need_u64(b)? },
            6 => WalRecord::Abort { txid: need_u64(b)? },
            7 => {
                let name = get_str(b)?;
                if b.remaining() < 4 {
                    return Err(err("truncated column count"));
                }
                let n = b.get_u32_le() as usize;
                let mut cols = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    let cname = get_str(b)?;
                    if !b.has_remaining() {
                        return Err(err("truncated column type"));
                    }
                    cols.push(ColumnDef::new(&cname, datatype_from(b.get_u8())?));
                }
                WalRecord::CreateTable { name, schema: Schema::new(cols) }
            }
            8 => WalRecord::DropTable { name: get_str(b)? },
            9 => {
                let index_name = get_str(b)?;
                let table_name = get_str(b)?;
                let column_name = get_str(b)?;
                let parameters = get_str(b)?;
                if b.remaining() < 4 {
                    return Err(err("truncated dop"));
                }
                let create_dop = b.get_u32_le() as usize;
                WalRecord::CreateIndex {
                    index_name,
                    table_name,
                    column_name,
                    parameters,
                    create_dop,
                }
            }
            10 => WalRecord::DropIndex { name: get_str(b)? },
            11 => {
                let table = get_str(b)?;
                let stats = crate::stats::TableStats::decode(b)?;
                WalRecord::Analyze { table, stats }
            }
            t => return Err(err(format!("bad record tag {t}"))),
        };
        if b.has_remaining() {
            return Err(err("trailing bytes in record"));
        }
        Ok(rec)
    }

    /// The transaction a DML/commit record belongs to, if any.
    pub fn txid(&self) -> Option<TxnId> {
        match self {
            WalRecord::Begin { txid }
            | WalRecord::Insert { txid, .. }
            | WalRecord::Update { txid, .. }
            | WalRecord::Delete { txid, .. }
            | WalRecord::Commit { txid }
            | WalRecord::Abort { txid } => Some(*txid),
            _ => None,
        }
    }
}

struct WalFile {
    file: File,
    /// Bytes durably *written* (not necessarily synced).
    len: u64,
}

/// An append-only write-ahead log over one file.
pub struct Wal {
    path: PathBuf,
    inner: Mutex<WalFile>,
    /// Byte offset up to which the file is known fsync'd.
    synced: AtomicU64,
    counters: Arc<Counters>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("path", &self.path).finish()
    }
}

impl Wal {
    /// Open (creating if absent) the log at `path`, appending at the
    /// end of the valid prefix.
    pub fn open(path: impl AsRef<Path>, counters: Arc<Counters>) -> Result<Wal, StorageError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(io)?;
        // Append after the last whole record: a torn tail from a crash
        // is overwritten by the next append.
        let valid = valid_prefix_len(&path)?;
        file.set_len(valid).map_err(io)?;
        file.seek(SeekFrom::Start(valid)).map_err(io)?;
        Ok(Wal {
            path,
            inner: Mutex::new(WalFile { file, len: valid }),
            synced: AtomicU64::new(valid),
            counters,
        })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record; returns the LSN (end offset) of the record.
    /// The append is buffered — call [`Wal::sync_to`] to make it
    /// durable.
    pub fn append(&self, rec: &WalRecord) -> Result<u64, StorageError> {
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut inner = self.inner.lock();
        inner.file.write_all(&frame).map_err(io)?;
        inner.len += frame.len() as u64;
        Counters::add(&self.counters.wal_bytes_written, frame.len() as u64);
        Ok(inner.len)
    }

    /// Ensure everything up to `lsn` is on stable storage. Group
    /// commit: if a concurrent committer's fsync already covered this
    /// LSN, return without a physical sync.
    pub fn sync_to(&self, lsn: u64) -> Result<(), StorageError> {
        if self.synced.load(Ordering::Acquire) >= lsn {
            return Ok(());
        }
        let inner = self.inner.lock();
        if self.synced.load(Ordering::Acquire) >= lsn {
            return Ok(()); // someone synced while we waited for the lock
        }
        inner.file.sync_data().map_err(io)?;
        Counters::bump(&self.counters.wal_fsyncs);
        self.synced.store(inner.len, Ordering::Release);
        Ok(())
    }

    /// Current end-of-log offset.
    pub fn len(&self) -> u64 {
        self.inner.lock().len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard every record — called after a checkpoint has persisted
    /// the state the log describes.
    pub fn truncate(&self) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        inner.file.set_len(0).map_err(io)?;
        inner.file.seek(SeekFrom::Start(0)).map_err(io)?;
        inner.file.sync_data().map_err(io)?;
        Counters::bump(&self.counters.wal_fsyncs);
        inner.len = 0;
        self.synced.store(0, Ordering::Release);
        Ok(())
    }
}

/// Decode the valid record prefix of a WAL byte buffer. A torn or
/// corrupt tail ends the log silently — that is the crash-recovery
/// contract, not an error.
pub fn decode_wal(bytes: &[u8]) -> Vec<WalRecord> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let start = pos + 8;
        let Some(end) = start.checked_add(len).filter(|e| *e <= bytes.len()) else {
            break; // torn frame
        };
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            break; // corrupt frame
        }
        match WalRecord::decode(payload) {
            Ok(rec) => out.push(rec),
            Err(_) => break,
        }
        pos = end;
    }
    out
}

/// Read the valid record prefix of the log at `path` (empty if the
/// file does not exist).
pub fn read_wal(path: impl AsRef<Path>) -> Result<Vec<WalRecord>, StorageError> {
    let path = path.as_ref();
    if !path.exists() {
        return Ok(Vec::new());
    }
    let mut bytes = Vec::new();
    File::open(path).map_err(io)?.read_to_end(&mut bytes).map_err(io)?;
    Ok(decode_wal(&bytes))
}

/// Byte length of the valid record prefix at `path`.
fn valid_prefix_len(path: &Path) -> Result<u64, StorageError> {
    if !path.exists() {
        return Ok(0);
    }
    let mut bytes = Vec::new();
    File::open(path).map_err(io)?.read_to_end(&mut bytes).map_err(io)?;
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let start = pos + 8;
        let Some(end) = start.checked_add(len).filter(|e| *e <= bytes.len()) else { break };
        if crc32(&bytes[start..end]) != crc || WalRecord::decode(&bytes[start..end]).is_err() {
            break;
        }
        pos = end;
    }
    Ok(pos as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sdo-wal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                name: "T".into(),
                schema: Schema::of(&[("ID", DataType::Integer), ("NAME", DataType::Text)]),
            },
            WalRecord::Begin { txid: 1 },
            WalRecord::Insert {
                txid: 1,
                table: "T".into(),
                rid: RowId::new(0),
                row: vec![Value::Integer(1), Value::from("a")],
            },
            WalRecord::Update {
                txid: 1,
                table: "T".into(),
                rid: RowId::new(0),
                row: vec![Value::Integer(2), Value::from("b")],
            },
            WalRecord::Delete { txid: 1, table: "T".into(), rid: RowId::new(0) },
            WalRecord::Commit { txid: 1 },
            WalRecord::Abort { txid: 2 },
            WalRecord::CreateIndex {
                index_name: "T_SIDX".into(),
                table_name: "T".into(),
                column_name: "GEOM".into(),
                parameters: "tree_fanout=8".into(),
                create_dop: 2,
            },
            WalRecord::DropIndex { name: "T_SIDX".into() },
            WalRecord::Analyze {
                table: "T".into(),
                stats: crate::stats::TableStats {
                    table: "T".into(),
                    rows: 2,
                    analyzed_mods: 3,
                    columns: vec![crate::stats::ColumnStats {
                        ndv: 2,
                        null_count: 0,
                        min: Some(Value::Integer(1)),
                        max: Some(Value::Integer(2)),
                    }],
                    spatial: vec![
                        None,
                        Some(crate::stats::SpatialHistogram {
                            extent: sdo_geom::Rect::new(0.0, 0.0, 4.0, 4.0),
                            dim: 2,
                            counts: vec![1, 0, 0, 1],
                            avg_width: 0.5,
                            avg_height: 0.25,
                            sampled: 2,
                        }),
                    ],
                },
            },
            WalRecord::DropTable { name: "T".into() },
        ]
    }

    #[test]
    fn records_roundtrip() {
        for rec in sample_records() {
            assert_eq!(WalRecord::decode(&rec.encode()).unwrap(), rec);
        }
    }

    #[test]
    fn append_sync_read_roundtrip() {
        let path = tmp("roundtrip");
        let counters = Arc::new(Counters::new());
        let wal = Wal::open(&path, Arc::clone(&counters)).unwrap();
        let mut last = 0;
        for rec in sample_records() {
            last = wal.append(&rec).unwrap();
        }
        wal.sync_to(last).unwrap();
        assert_eq!(Counters::get(&counters.wal_fsyncs), 1, "group-commit: one sync");
        assert!(Counters::get(&counters.wal_bytes_written) >= last);
        // A second sync below the watermark is free.
        wal.sync_to(last).unwrap();
        assert_eq!(Counters::get(&counters.wal_fsyncs), 1);
        drop(wal);
        assert_eq!(read_wal(&path).unwrap(), sample_records());
    }

    #[test]
    fn torn_tail_ends_the_log_at_every_cut() {
        let path = tmp("torn");
        let wal = Wal::open(&path, Arc::new(Counters::new())).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.sync_to(wal.len()).unwrap();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        let full = decode_wal(&bytes);
        assert_eq!(full.len(), sample_records().len());
        for cut in 0..bytes.len() {
            let prefix = decode_wal(&bytes[..cut]);
            assert!(prefix.len() <= full.len());
            assert_eq!(prefix[..], full[..prefix.len()], "prefix property at cut {cut}");
        }
        // Corrupting a byte of a payload ends the log before it.
        let mut corrupt = bytes.clone();
        corrupt[10] ^= 0xFF;
        assert!(decode_wal(&corrupt).len() < full.len());
    }

    #[test]
    fn reopen_truncates_torn_tail_and_appends() {
        let path = tmp("reopen");
        let counters = Arc::new(Counters::new());
        let wal = Wal::open(&path, Arc::clone(&counters)).unwrap();
        wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        let lsn = wal.append(&WalRecord::Commit { txid: 1 }).unwrap();
        wal.sync_to(lsn).unwrap();
        drop(wal);
        // Simulate a torn append.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        drop(f);
        let wal = Wal::open(&path, counters).unwrap();
        assert_eq!(wal.len(), lsn, "torn tail discarded on open");
        wal.append(&WalRecord::Begin { txid: 2 }).unwrap();
        let end = wal.append(&WalRecord::Commit { txid: 2 }).unwrap();
        wal.sync_to(end).unwrap();
        drop(wal);
        let recs = read_wal(&path).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[3], WalRecord::Commit { txid: 2 });
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = tmp("truncate");
        let wal = Wal::open(&path, Arc::new(Counters::new())).unwrap();
        wal.append(&WalRecord::Begin { txid: 1 }).unwrap();
        wal.truncate().unwrap();
        assert!(wal.is_empty());
        drop(wal);
        assert!(read_wal(&path).unwrap().is_empty());
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
