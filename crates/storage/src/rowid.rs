//! Stable row identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A stable row address within one table: slot index into the heap.
///
/// Mirrors Oracle's physical ROWID in the ways the paper cares about:
/// it is stable for the life of the row, orderable (the join sorts
/// candidate pairs "based on the first rowid" to get fetch locality),
/// and cheap to pass around in rowid-pair result sets.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RowId(pub u64);

impl RowId {
    /// A rowid for heap slot `v`.
    #[inline]
    pub const fn new(v: u64) -> Self {
        RowId(v)
    }

    /// The raw slot number.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Slot index in the owning table's heap.
    #[inline]
    pub const fn slot(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AAA{:08X}", self.0)
    }
}

impl From<u64> for RowId {
    fn from(v: u64) -> Self {
        RowId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_slots() {
        assert!(RowId::new(1) < RowId::new(2));
        assert_eq!(RowId::new(7).slot(), 7);
        assert_eq!(RowId::from(3u64).as_u64(), 3);
    }

    #[test]
    fn display_is_oracle_ish() {
        assert_eq!(RowId::new(255).to_string(), "AAA000000FF");
    }
}
