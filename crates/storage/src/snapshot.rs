//! Binary snapshots of tables and catalogs.
//!
//! Oracle persists everything, of course; this in-memory engine offers
//! the equivalent through explicit snapshots: a versioned, deterministic
//! binary image of every table (schema + rows, tombstones included so
//! rowids survive) plus the index metadata rows. Domain indexes are not
//! serialized — they are rebuilt from their recorded parameters on
//! load, the same way `ALTER INDEX REBUILD` would.

use crate::catalog::{Catalog, IndexKind, IndexMetadata};
use crate::schema::{ColumnDef, DataType, Schema};
use crate::stats::TableStats;
use crate::table::Table;
use crate::value::Value;
use crate::{RowId, StorageError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Current snapshot version (the trailing magic byte). Version 2 added
/// per-table modification counters and the persisted `ANALYZE`
/// statistics section; version-1 images still load (no mods, no stats).
const MAGIC: &[u8; 6] = b"SDODB\x02";
const MAGIC_V1: &[u8; 6] = b"SDODB\x01";

fn err(m: impl Into<String>) -> StorageError {
    StorageError::TypeError(format!("snapshot: {}", m.into()))
}

// ---------------------------------------------------------------------------
// primitives
// ---------------------------------------------------------------------------

pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

pub(crate) fn get_str(buf: &mut impl Buf) -> Result<String, StorageError> {
    if buf.remaining() < 4 {
        return Err(err("truncated string length"));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(err("truncated string body"));
    }
    let mut bytes = vec![0u8; n];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| err("invalid utf8"))
}

pub(crate) fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Integer(i) => {
            buf.put_u8(1);
            buf.put_i64_le(*i);
        }
        Value::Double(d) => {
            buf.put_u8(2);
            buf.put_f64_le(*d);
        }
        Value::Text(s) => {
            buf.put_u8(3);
            put_str(buf, s);
        }
        Value::RowId(r) => {
            buf.put_u8(4);
            buf.put_u64_le(r.as_u64());
        }
        Value::Geometry(g) => {
            buf.put_u8(5);
            let enc = sdo_geom::codec::encode_geometry(g);
            buf.put_u32_le(enc.len() as u32);
            buf.put_slice(&enc);
        }
    }
}

pub(crate) fn get_value(buf: &mut impl Buf) -> Result<Value, StorageError> {
    if !buf.has_remaining() {
        return Err(err("truncated value tag"));
    }
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 if buf.remaining() >= 8 => Ok(Value::Integer(buf.get_i64_le())),
        2 if buf.remaining() >= 8 => Ok(Value::Double(buf.get_f64_le())),
        3 => Ok(Value::text(get_str(buf)?)),
        4 if buf.remaining() >= 8 => Ok(Value::RowId(RowId::new(buf.get_u64_le()))),
        5 => {
            if buf.remaining() < 4 {
                return Err(err("truncated geometry length"));
            }
            let n = buf.get_u32_le() as usize;
            if buf.remaining() < n {
                return Err(err("truncated geometry body"));
            }
            let mut bytes = vec![0u8; n];
            buf.copy_to_slice(&mut bytes);
            let g = sdo_geom::codec::decode_geometry(Bytes::from(bytes))
                .map_err(|e| err(e.to_string()))?;
            Ok(Value::geometry(g))
        }
        t => Err(err(format!("bad value tag {t}"))),
    }
}

pub(crate) fn datatype_tag(t: DataType) -> u8 {
    match t {
        DataType::Integer => 1,
        DataType::Double => 2,
        DataType::Text => 3,
        DataType::RowId => 4,
        DataType::Geometry => 5,
    }
}

pub(crate) fn datatype_from(tag: u8) -> Result<DataType, StorageError> {
    Ok(match tag {
        1 => DataType::Integer,
        2 => DataType::Double,
        3 => DataType::Text,
        4 => DataType::RowId,
        5 => DataType::Geometry,
        t => return Err(err(format!("bad datatype tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// tables and catalogs
// ---------------------------------------------------------------------------

fn put_table(buf: &mut BytesMut, t: &Table) {
    put_str(buf, t.name());
    let cols = t.schema().columns();
    buf.put_u32_le(cols.len() as u32);
    for c in cols {
        put_str(buf, &c.name);
        buf.put_u8(datatype_tag(c.data_type));
    }
    // Slots, tombstones included, so rowids survive the round trip.
    buf.put_u64_le(t.high_water_mark() as u64);
    for slot in 0..t.high_water_mark() {
        match t.get(RowId::new(slot as u64)) {
            Ok(row) => {
                buf.put_u8(1);
                buf.put_u32_le(row.len() as u32);
                for v in row.iter() {
                    put_value(buf, v);
                }
            }
            Err(_) => buf.put_u8(0), // tombstone
        }
    }
    buf.put_u64_le(t.mod_count());
}

fn get_table(buf: &mut impl Buf, version: u8) -> Result<Table, StorageError> {
    let name = get_str(buf)?;
    if buf.remaining() < 4 {
        return Err(err("truncated column count"));
    }
    let n_cols = buf.get_u32_le() as usize;
    let mut cols = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let cname = get_str(buf)?;
        if !buf.has_remaining() {
            return Err(err("truncated column type"));
        }
        cols.push(ColumnDef::new(&cname, datatype_from(buf.get_u8())?));
    }
    let mut table = Table::new(&name, Schema::new(cols));
    if buf.remaining() < 8 {
        return Err(err("truncated slot count"));
    }
    let hwm = buf.get_u64_le() as usize;
    for _ in 0..hwm {
        if !buf.has_remaining() {
            return Err(err("truncated slot flag"));
        }
        if buf.get_u8() == 1 {
            if buf.remaining() < 4 {
                return Err(err("truncated row arity"));
            }
            let arity = buf.get_u32_le() as usize;
            let mut row = Vec::with_capacity(arity);
            for _ in 0..arity {
                row.push(get_value(buf)?);
            }
            table.insert(row)?;
        } else {
            // Reconstruct the tombstone: insert a placeholder and
            // delete it so rowids keep their positions.
            let arity = table.schema().arity();
            let rid = table.insert(vec![Value::Null; arity])?;
            table.delete(rid)?;
        }
    }
    if version >= 2 {
        if buf.remaining() < 8 {
            return Err(err("truncated modification counter"));
        }
        // The rebuild above inflated `mods`; restore the stored value
        // so staleness is measured against the original history.
        let mods = buf.get_u64_le();
        table.set_mod_count(mods);
    }
    Ok(table)
}

/// Serialize a catalog (tables + index metadata) into snapshot bytes.
pub fn save_catalog(catalog: &Catalog, metas: &[IndexMetadata]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    let names = catalog.table_names();
    buf.put_u32_le(names.len() as u32);
    for name in &names {
        let t = catalog.table(name).expect("listed table exists");
        put_table(&mut buf, &t.read());
    }
    buf.put_u32_le(metas.len() as u32);
    for m in metas {
        put_str(&mut buf, &m.index_name);
        put_str(&mut buf, &m.table_name);
        put_str(&mut buf, &m.column_name);
        buf.put_u8(match m.kind {
            IndexKind::RTree => 1,
            IndexKind::Quadtree => 2,
        });
        buf.put_u32_le(m.create_dop as u32);
        put_str(&mut buf, &m.parameters);
    }
    let stats = catalog.all_table_stats();
    buf.put_u32_le(stats.len() as u32);
    for s in &stats {
        s.encode(&mut buf);
    }
    buf.freeze()
}

/// The index-rebuild directives recovered from a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDirective {
    /// Index to recreate.
    pub index_name: String,
    /// Table it covers.
    pub table_name: String,
    /// Indexed column.
    pub column_name: String,
    /// `PARAMETERS` string recorded at creation.
    pub parameters: String,
    /// Degree of parallelism recorded at creation.
    pub create_dop: usize,
}

/// Restore tables into `catalog` and return the index-rebuild
/// directives (the caller recreates domain indexes through its
/// indextype registry).
pub fn load_catalog(
    catalog: &Catalog,
    mut buf: impl Buf,
) -> Result<Vec<IndexDirective>, StorageError> {
    if buf.remaining() < MAGIC.len() {
        return Err(err("truncated header"));
    }
    let mut magic = [0u8; 6];
    buf.copy_to_slice(&mut magic);
    let version = if &magic == MAGIC {
        2
    } else if &magic == MAGIC_V1 {
        1
    } else {
        return Err(err("bad magic / unsupported version"));
    };
    if buf.remaining() < 4 {
        return Err(err("truncated table count"));
    }
    let n_tables = buf.get_u32_le() as usize;
    for _ in 0..n_tables {
        let table = get_table(&mut buf, version)?;
        let handle = catalog.create_table(table.name(), table.schema().clone())?;
        *handle.write() = table
            .with_counters(std::sync::Arc::clone(catalog.counters()))
            .with_status(std::sync::Arc::clone(catalog.status()));
    }
    if buf.remaining() < 4 {
        return Err(err("truncated index count"));
    }
    let n_idx = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n_idx);
    for _ in 0..n_idx {
        let index_name = get_str(&mut buf)?;
        let table_name = get_str(&mut buf)?;
        let column_name = get_str(&mut buf)?;
        if buf.remaining() < 5 {
            return Err(err("truncated index record"));
        }
        let _kind = buf.get_u8();
        let create_dop = buf.get_u32_le() as usize;
        let parameters = get_str(&mut buf)?;
        out.push(IndexDirective { index_name, table_name, column_name, parameters, create_dop });
    }
    if version >= 2 {
        if buf.remaining() < 4 {
            return Err(err("truncated stats count"));
        }
        let n_stats = buf.get_u32_le() as usize;
        for _ in 0..n_stats {
            let stats = TableStats::decode(&mut buf)?;
            if catalog.table(&stats.table).is_ok() {
                catalog.set_table_stats(stats);
            }
        }
    }
    if buf.has_remaining() {
        return Err(err("trailing bytes"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_geom::{Geometry, Point};

    fn sample_catalog() -> Catalog {
        let cat = Catalog::new();
        let t = cat
            .create_table(
                "t",
                Schema::of(&[
                    ("ID", DataType::Integer),
                    ("NAME", DataType::Text),
                    ("GEOM", DataType::Geometry),
                ]),
            )
            .unwrap();
        let mut guard = t.write();
        for i in 0..10 {
            guard
                .insert(vec![
                    Value::Integer(i),
                    Value::text(format!("row{i}")),
                    Value::geometry(Geometry::Point(Point::new(i as f64, -i as f64))),
                ])
                .unwrap();
        }
        guard.delete(RowId::new(3)).unwrap();
        guard.delete(RowId::new(7)).unwrap();
        drop(guard);
        cat.create_table("empty", Schema::of(&[("V", DataType::Double)])).unwrap();
        cat
    }

    #[test]
    fn catalog_roundtrip_preserves_rowids_and_tombstones() {
        let cat = sample_catalog();
        let bytes = save_catalog(&cat, &[]);
        let restored = Catalog::new();
        let directives = load_catalog(&restored, bytes).unwrap();
        assert!(directives.is_empty());
        assert_eq!(restored.table_names(), vec!["EMPTY".to_string(), "T".to_string()]);
        let t = restored.table("t").unwrap();
        let t = t.read();
        assert_eq!(t.len(), 8);
        assert_eq!(t.high_water_mark(), 10);
        assert!(!t.exists(RowId::new(3)));
        assert!(!t.exists(RowId::new(7)));
        let row = t.get(RowId::new(5)).unwrap();
        assert_eq!(row[0].as_integer(), Some(5));
        assert_eq!(row[1].as_text(), Some("row5"));
        assert_eq!(row[2].as_geometry().map(|g| g.bbox().center()), Some(Point::new(5.0, -5.0)));
    }

    #[test]
    fn index_directives_roundtrip() {
        let cat = sample_catalog();
        let meta = IndexMetadata {
            index_name: "T_X".into(),
            table_name: "T".into(),
            column_name: "GEOM".into(),
            kind: IndexKind::Quadtree,
            dimensions: 2,
            fanout: None,
            tiling_level: Some(7),
            create_dop: 4,
            parameters: "sdo_level=7".into(),
        };
        let bytes = save_catalog(&cat, &[meta]);
        let restored = Catalog::new();
        let directives = load_catalog(&restored, bytes).unwrap();
        assert_eq!(
            directives,
            vec![IndexDirective {
                index_name: "T_X".into(),
                table_name: "T".into(),
                column_name: "GEOM".into(),
                parameters: "sdo_level=7".into(),
                create_dop: 4,
            }]
        );
    }

    #[test]
    fn corruption_is_an_error_not_a_panic() {
        let cat = sample_catalog();
        let good = save_catalog(&cat, &[]);
        for cut in 0..good.len().min(200) {
            let restored = Catalog::new();
            assert!(load_catalog(&restored, good.slice(..cut)).is_err());
        }
        let mut bad = BytesMut::from(&good[..]);
        bad[0] ^= 0xFF;
        let restored = Catalog::new();
        assert!(load_catalog(&restored, bad.freeze()).is_err());
    }
}
