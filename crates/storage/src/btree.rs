//! A from-scratch in-memory B+tree.
//!
//! The linear quadtree stores one `(tile_code, rowid)` entry per tile
//! covering a geometry and builds a B-tree over the codes ("Construct
//! B-tree indexes on the codes for the tiles" — paper §5). This module
//! supplies that B-tree: an ordered set keyed by any `Ord` type, with
//! iterative inserts, rebalancing deletes, leaf-linked range scans, and
//! a bottom-up bulk build used by the parallel index-creation path.
//!
//! Keys are unique; index layers that need multimap behaviour (several
//! rows per tile code) key the tree by the composite
//! `(tile_code, rowid)` and range-scan by tile prefix.

use crate::stats::Counters;
use std::ops::Bound;
use std::sync::Arc;

/// Default maximum number of keys per node.
pub const DEFAULT_ORDER: usize = 64;

#[derive(Debug, Clone)]
enum Node<K> {
    Internal {
        /// Separator keys; `keys[i]` is the smallest key reachable
        /// through `children[i + 1]`.
        keys: Vec<K>,
        children: Vec<u32>,
    },
    Leaf {
        keys: Vec<K>,
        /// Right sibling for range scans.
        next: Option<u32>,
    },
}

impl<K> Node<K> {
    fn len(&self) -> usize {
        match self {
            Node::Internal { keys, .. } | Node::Leaf { keys, .. } => keys.len(),
        }
    }
}

/// An ordered set stored as a B+tree.
///
/// ```
/// use sdo_storage::BTree;
/// use std::ops::Bound;
///
/// let mut t = BTree::with_order(8);
/// for k in [5, 1, 9, 3] {
///     assert!(t.insert(k));
/// }
/// assert!(t.contains(&3));
/// assert!(t.remove(&1));
/// let in_range: Vec<i32> =
///     t.range(Bound::Included(&3), Bound::Excluded(&9)).cloned().collect();
/// assert_eq!(in_range, vec![3, 5]);
/// ```
#[derive(Debug, Clone)]
pub struct BTree<K> {
    nodes: Vec<Node<K>>,
    free: Vec<u32>,
    root: u32,
    len: usize,
    /// Maximum keys per node (`>= 3`); minimum is `order / 2` except at
    /// the root.
    order: usize,
    counters: Option<Arc<Counters>>,
}

impl<K: Ord + Clone> Default for BTree<K> {
    fn default() -> Self {
        BTree::new()
    }
}

impl<K: Ord + Clone> BTree<K> {
    /// Empty tree with the default node order.
    pub fn new() -> Self {
        BTree::with_order(DEFAULT_ORDER)
    }

    /// Empty tree with an explicit node order (max keys per node).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 3, "B+tree order must be at least 3");
        BTree {
            nodes: vec![Node::Leaf { keys: Vec::new(), next: None }],
            free: Vec::new(),
            root: 0,
            len: 0,
            order,
            counters: None,
        }
    }

    /// Attach shared work counters; node visits are charged to
    /// `btree_node_visits`.
    pub fn with_counters(mut self, counters: Arc<Counters>) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Number of stored keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum keys per node.
    #[inline]
    pub fn order(&self) -> usize {
        self.order
    }

    /// Tree height in levels (1 = a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf { .. } => return h,
                Node::Internal { children, .. } => {
                    node = children[0];
                    h += 1;
                }
            }
        }
    }

    #[inline]
    fn visit(&self) {
        if let Some(c) = &self.counters {
            Counters::bump(&c.btree_node_visits);
        }
    }

    fn alloc(&mut self, node: Node<K>) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn dealloc(&mut self, idx: u32) {
        self.free.push(idx);
    }

    #[inline]
    fn min_keys(&self) -> usize {
        self.order / 2
    }

    // -- lookup ------------------------------------------------------------

    /// True when `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        let mut node = self.root;
        loop {
            self.visit();
            match &self.nodes[node as usize] {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    node = children[idx];
                }
                Node::Leaf { keys, .. } => return keys.binary_search(key).is_ok(),
            }
        }
    }

    /// Smallest key, if any.
    pub fn first(&self) -> Option<&K> {
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Internal { children, .. } => node = children[0],
                Node::Leaf { keys, .. } => return keys.first(),
            }
        }
    }

    /// Largest key, if any.
    pub fn last(&self) -> Option<&K> {
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Internal { children, .. } => node = *children.last().unwrap(),
                Node::Leaf { keys, .. } => return keys.last(),
            }
        }
    }

    // -- insert ------------------------------------------------------------

    /// Insert `key`; returns false when it was already present.
    pub fn insert(&mut self, key: K) -> bool {
        match self.insert_rec(self.root, key) {
            InsertOutcome::Duplicate => false,
            InsertOutcome::Done => {
                self.len += 1;
                true
            }
            InsertOutcome::Split(sep, right) => {
                let old_root = self.root;
                let new_root =
                    self.alloc(Node::Internal { keys: vec![sep], children: vec![old_root, right] });
                self.root = new_root;
                self.len += 1;
                true
            }
        }
    }

    fn insert_rec(&mut self, node: u32, key: K) -> InsertOutcome<K> {
        self.visit();
        let is_leaf = matches!(self.nodes[node as usize], Node::Leaf { .. });
        if is_leaf {
            // Mutate the leaf in a scoped borrow; collect split spoils.
            let split = {
                let Node::Leaf { keys, next } = &mut self.nodes[node as usize] else {
                    unreachable!()
                };
                match keys.binary_search(&key) {
                    Ok(_) => return InsertOutcome::Duplicate,
                    Err(pos) => keys.insert(pos, key),
                }
                if keys.len() <= self.order {
                    return InsertOutcome::Done;
                }
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                (right_keys, *next)
            };
            let (right_keys, old_next) = split;
            let sep = right_keys[0].clone();
            let right = self.alloc(Node::Leaf { keys: right_keys, next: old_next });
            if let Node::Leaf { next, .. } = &mut self.nodes[node as usize] {
                *next = Some(right);
            }
            InsertOutcome::Split(sep, right)
        } else {
            let (idx, child) = {
                let Node::Internal { keys, children } = &self.nodes[node as usize] else {
                    unreachable!()
                };
                let idx = keys.partition_point(|k| k <= &key);
                (idx, children[idx])
            };
            match self.insert_rec(child, key) {
                InsertOutcome::Split(sep, new_child) => {
                    let split = {
                        let Node::Internal { keys, children } = &mut self.nodes[node as usize]
                        else {
                            unreachable!()
                        };
                        keys.insert(idx, sep);
                        children.insert(idx + 1, new_child);
                        if keys.len() <= self.order {
                            return InsertOutcome::Done;
                        }
                        // Split internal node: middle key promotes.
                        let mid = keys.len() / 2;
                        let promoted = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // drop the promoted key from the left
                        let right_children = children.split_off(mid + 1);
                        (promoted, right_keys, right_children)
                    };
                    let (promoted, right_keys, right_children) = split;
                    let right =
                        self.alloc(Node::Internal { keys: right_keys, children: right_children });
                    InsertOutcome::Split(promoted, right)
                }
                other => other,
            }
        }
    }

    // -- remove ------------------------------------------------------------

    /// Remove `key`; returns false when it was not present.
    pub fn remove(&mut self, key: &K) -> bool {
        let removed = self.remove_rec(self.root, key);
        if removed {
            self.len -= 1;
            // Collapse a root that shrank to a single child.
            if let Node::Internal { keys, children } = &self.nodes[self.root as usize] {
                if keys.is_empty() {
                    let only = children[0];
                    let old_root = self.root;
                    self.root = only;
                    self.dealloc(old_root);
                }
            }
        }
        removed
    }

    fn remove_rec(&mut self, node: u32, key: &K) -> bool {
        self.visit();
        let is_leaf = matches!(self.nodes[node as usize], Node::Leaf { .. });
        if is_leaf {
            let Node::Leaf { keys, .. } = &mut self.nodes[node as usize] else { unreachable!() };
            match keys.binary_search(key) {
                Ok(pos) => {
                    keys.remove(pos);
                    true
                }
                Err(_) => false,
            }
        } else {
            let (idx, child) = {
                let Node::Internal { keys, children } = &self.nodes[node as usize] else {
                    unreachable!()
                };
                let idx = keys.partition_point(|k| k <= key);
                (idx, children[idx])
            };
            let removed = self.remove_rec(child, key);
            if removed && self.nodes[child as usize].len() < self.min_keys() {
                self.rebalance_child(node, idx);
            }
            removed
        }
    }

    /// Fix an underfull `children[idx]` of internal node `node` by
    /// borrowing from a sibling or merging with one.
    fn rebalance_child(&mut self, node: u32, idx: usize) {
        let (left_sib, right_sib, child) = {
            let Node::Internal { children, .. } = &self.nodes[node as usize] else {
                unreachable!()
            };
            (idx.checked_sub(1).map(|i| children[i]), children.get(idx + 1).copied(), children[idx])
        };
        let min = self.min_keys();

        // Try borrowing from the left sibling.
        if let Some(left) = left_sib {
            if self.nodes[left as usize].len() > min {
                self.borrow_from_left(node, idx, left, child);
                return;
            }
        }
        // Try borrowing from the right sibling.
        if let Some(right) = right_sib {
            if self.nodes[right as usize].len() > min {
                self.borrow_from_right(node, idx, child, right);
                return;
            }
        }
        // Merge with a sibling (prefer left).
        if let Some(left) = left_sib {
            self.merge_children(node, idx - 1, left, child);
        } else if let Some(right) = right_sib {
            self.merge_children(node, idx, child, right);
        }
    }

    fn borrow_from_left(&mut self, parent: u32, idx: usize, left: u32, child: u32) {
        // Move the largest entry of `left` into `child`.
        let sep_pos = idx - 1;
        match (left, child) {
            _ if matches!(self.nodes[left as usize], Node::Leaf { .. }) => {
                let Node::Leaf { keys: lk, .. } = &mut self.nodes[left as usize] else {
                    unreachable!()
                };
                let moved = lk.pop().unwrap();
                let new_sep = moved.clone();
                let Node::Leaf { keys: ck, .. } = &mut self.nodes[child as usize] else {
                    unreachable!()
                };
                ck.insert(0, moved);
                let Node::Internal { keys, .. } = &mut self.nodes[parent as usize] else {
                    unreachable!()
                };
                keys[sep_pos] = new_sep;
            }
            _ => {
                // Internal: rotate through the parent separator.
                let Node::Internal { keys: lk, children: lc } = &mut self.nodes[left as usize]
                else {
                    unreachable!()
                };
                let moved_key = lk.pop().unwrap();
                let moved_child = lc.pop().unwrap();
                let Node::Internal { keys, .. } = &mut self.nodes[parent as usize] else {
                    unreachable!()
                };
                let sep = std::mem::replace(&mut keys[sep_pos], moved_key);
                let Node::Internal { keys: ck, children: cc } = &mut self.nodes[child as usize]
                else {
                    unreachable!()
                };
                ck.insert(0, sep);
                cc.insert(0, moved_child);
            }
        }
    }

    fn borrow_from_right(&mut self, parent: u32, idx: usize, child: u32, right: u32) {
        let sep_pos = idx;
        match () {
            _ if matches!(self.nodes[right as usize], Node::Leaf { .. }) => {
                let Node::Leaf { keys: rk, .. } = &mut self.nodes[right as usize] else {
                    unreachable!()
                };
                let moved = rk.remove(0);
                let new_sep = rk[0].clone();
                let Node::Leaf { keys: ck, .. } = &mut self.nodes[child as usize] else {
                    unreachable!()
                };
                ck.push(moved);
                let Node::Internal { keys, .. } = &mut self.nodes[parent as usize] else {
                    unreachable!()
                };
                keys[sep_pos] = new_sep;
            }
            _ => {
                let Node::Internal { keys: rk, children: rc } = &mut self.nodes[right as usize]
                else {
                    unreachable!()
                };
                let moved_key = rk.remove(0);
                let moved_child = rc.remove(0);
                let Node::Internal { keys, .. } = &mut self.nodes[parent as usize] else {
                    unreachable!()
                };
                let sep = std::mem::replace(&mut keys[sep_pos], moved_key);
                let Node::Internal { keys: ck, children: cc } = &mut self.nodes[child as usize]
                else {
                    unreachable!()
                };
                ck.push(sep);
                cc.push(moved_child);
            }
        }
    }

    /// Merge `right` into `left`; the separator at `sep_pos` disappears.
    fn merge_children(&mut self, parent: u32, sep_pos: usize, left: u32, right: u32) {
        let right_node = std::mem::replace(
            &mut self.nodes[right as usize],
            Node::Leaf { keys: Vec::new(), next: None },
        );
        match right_node {
            Node::Leaf { keys: rk, next: rnext } => {
                let Node::Leaf { keys: lk, next } = &mut self.nodes[left as usize] else {
                    unreachable!()
                };
                lk.extend(rk);
                *next = rnext;
                let Node::Internal { keys, children } = &mut self.nodes[parent as usize] else {
                    unreachable!()
                };
                keys.remove(sep_pos);
                children.remove(sep_pos + 1);
            }
            Node::Internal { keys: rk, children: rc } => {
                let Node::Internal { keys: pkeys, children: pchildren } =
                    &mut self.nodes[parent as usize]
                else {
                    unreachable!()
                };
                let sep = pkeys.remove(sep_pos);
                pchildren.remove(sep_pos + 1);
                let Node::Internal { keys: lk, children: lc } = &mut self.nodes[left as usize]
                else {
                    unreachable!()
                };
                lk.push(sep);
                lk.extend(rk);
                lc.extend(rc);
            }
        }
        self.dealloc(right);
    }

    // -- range scans ---------------------------------------------------------

    /// Iterate keys in `[lo, hi)` order. `Bound::Unbounded` on either
    /// side scans to the end.
    pub fn range<'a>(&'a self, lo: Bound<&K>, hi: Bound<&'a K>) -> RangeIter<'a, K> {
        // Find the leaf and position of the first in-range key.
        let (leaf, pos) = match lo {
            Bound::Unbounded => (self.leftmost_leaf(), 0),
            Bound::Included(k) => self.seek(k, false),
            Bound::Excluded(k) => self.seek(k, true),
        };
        RangeIter { tree: self, leaf, pos, hi }
    }

    /// Iterate every key in order.
    pub fn iter(&self) -> RangeIter<'_, K> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    fn leftmost_leaf(&self) -> u32 {
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Internal { children, .. } => node = children[0],
                Node::Leaf { .. } => return node,
            }
        }
    }

    /// Locate the leaf/position of the first key `>= k` (or `> k` when
    /// `exclusive`).
    fn seek(&self, k: &K, exclusive: bool) -> (u32, usize) {
        let mut node = self.root;
        loop {
            self.visit();
            match &self.nodes[node as usize] {
                Node::Internal { keys, children } => {
                    let idx = if exclusive {
                        keys.partition_point(|s| s <= k)
                    } else {
                        // Separator equal to k means k lives right.
                        keys.partition_point(|s| s <= k)
                    };
                    node = children[idx];
                }
                Node::Leaf { keys, .. } => {
                    let pos = if exclusive {
                        keys.partition_point(|key| key <= k)
                    } else {
                        keys.partition_point(|key| key < k)
                    };
                    return (node, pos);
                }
            }
        }
    }

    // -- bulk build ----------------------------------------------------------

    /// Build a packed tree from sorted, deduplicated keys — the fast
    /// path used after parallel tessellation: slaves emit sorted runs,
    /// the runs are merged, and the B-tree is built bottom-up in one
    /// pass (Oracle's `CREATE INDEX ... PARALLEL` equivalent).
    ///
    /// Panics in debug builds if the input is not strictly ascending.
    pub fn bulk_build(keys: Vec<K>, order: usize) -> Self {
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "bulk_build requires strictly ascending keys"
        );
        let mut tree = BTree::with_order(order);
        if keys.is_empty() {
            return tree;
        }
        let len = keys.len();
        tree.nodes.clear();

        // Pack leaves at ~full fill, keeping the tail >= min_keys by
        // splitting the final two groups evenly when needed.
        let cap = order;
        let mut leaf_ids: Vec<u32> = Vec::new();
        let mut leaf_first_keys: Vec<K> = Vec::new();
        let mut chunks: Vec<Vec<K>> = Vec::new();
        let mut it = keys.into_iter().peekable();
        let mut remaining = len;
        while remaining > 0 {
            let take = if remaining > cap && remaining < 2 * cap {
                // Balance the last two leaves.
                remaining / 2
            } else {
                cap.min(remaining)
            };
            let chunk: Vec<K> = (&mut it).take(take).collect();
            remaining -= take;
            chunks.push(chunk);
        }
        for chunk in chunks {
            leaf_first_keys.push(chunk[0].clone());
            let id = tree.nodes.len() as u32;
            tree.nodes.push(Node::Leaf { keys: chunk, next: None });
            leaf_ids.push(id);
        }
        // Link leaves.
        for w in leaf_ids.windows(2) {
            let (a, b) = (w[0], w[1]);
            if let Node::Leaf { next, .. } = &mut tree.nodes[a as usize] {
                *next = Some(b);
            }
        }

        // Build internal levels until a single root remains. Nodes are
        // packed to full fanout except that the final two nodes of a
        // level are balanced so no non-root node drops below min fill.
        let mut level_ids = leaf_ids;
        let mut level_keys = leaf_first_keys;
        while level_ids.len() > 1 {
            let cap = order + 1; // children per internal node
            let min = order / 2 + 1;
            let mut next_ids = Vec::new();
            let mut next_keys = Vec::new();
            let mut i = 0;
            while i < level_ids.len() {
                let remaining = level_ids.len() - i;
                let take = if remaining <= cap {
                    remaining
                } else if remaining < cap + min {
                    // Splitting evenly keeps both nodes >= min children.
                    remaining / 2
                } else {
                    cap
                };
                let children: Vec<u32> = level_ids[i..i + take].to_vec();
                let seps: Vec<K> = level_keys[i + 1..i + take].to_vec();
                next_keys.push(level_keys[i].clone());
                let id = tree.nodes.len() as u32;
                tree.nodes.push(Node::Internal { keys: seps, children });
                next_ids.push(id);
                i += take;
            }
            level_ids = next_ids;
            level_keys = next_keys;
        }
        tree.root = level_ids[0];
        tree.len = len;
        tree
    }

    // -- validation ----------------------------------------------------------

    /// Check every structural invariant; returns a description of the
    /// first violation. Used by tests and by property-based fuzzing.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut leaf_depth = None;
        self.check_node(self.root, 0, None, None, &mut leaf_depth, true)?;
        // Leaf chain must visit exactly `len` keys in ascending order.
        let mut count = 0;
        let mut prev: Option<&K> = None;
        for k in self.iter() {
            if let Some(p) = prev {
                if p >= k {
                    return Err("leaf chain out of order".into());
                }
            }
            prev = Some(k);
            count += 1;
        }
        if count != self.len {
            return Err(format!("len says {} but leaf chain has {count}", self.len));
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn check_node(
        &self,
        node: u32,
        depth: usize,
        lo: Option<&K>,
        hi: Option<&K>,
        leaf_depth: &mut Option<usize>,
        is_root: bool,
    ) -> Result<(), String> {
        let n = &self.nodes[node as usize];
        if !is_root && n.len() < self.min_keys() {
            return Err(format!("node {node} underfull: {} < {}", n.len(), self.min_keys()));
        }
        if n.len() > self.order {
            return Err(format!("node {node} overfull: {} > {}", n.len(), self.order));
        }
        match n {
            Node::Leaf { keys, .. } => {
                if let Some(d) = leaf_depth {
                    if *d != depth {
                        return Err("leaves at differing depths".into());
                    }
                } else {
                    *leaf_depth = Some(depth);
                }
                for w in keys.windows(2) {
                    if w[0] >= w[1] {
                        return Err("leaf keys out of order".into());
                    }
                }
                if let (Some(lo), Some(k)) = (lo, keys.first()) {
                    if k < lo {
                        return Err("leaf key below lower bound".into());
                    }
                }
                if let (Some(hi), Some(k)) = (hi, keys.last()) {
                    if k >= hi {
                        return Err("leaf key at/above upper bound".into());
                    }
                }
                Ok(())
            }
            Node::Internal { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return Err("internal child count != keys + 1".into());
                }
                for w in keys.windows(2) {
                    if w[0] >= w[1] {
                        return Err("internal keys out of order".into());
                    }
                }
                for (i, &c) in children.iter().enumerate() {
                    let child_lo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                    let child_hi = if i == keys.len() { hi } else { Some(&keys[i]) };
                    self.check_node(c, depth + 1, child_lo, child_hi, leaf_depth, false)?;
                }
                Ok(())
            }
        }
    }
}

enum InsertOutcome<K> {
    Done,
    Duplicate,
    Split(K, u32),
}

/// In-order iterator over a key range.
pub struct RangeIter<'a, K> {
    tree: &'a BTree<K>,
    leaf: u32,
    pos: usize,
    hi: Bound<&'a K>,
}

impl<'a, K: Ord + Clone> Iterator for RangeIter<'a, K> {
    type Item = &'a K;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match &self.tree.nodes[self.leaf as usize] {
                Node::Leaf { keys, next } => {
                    if self.pos < keys.len() {
                        let k = &keys[self.pos];
                        let in_range = match self.hi {
                            Bound::Unbounded => true,
                            Bound::Included(hi) => k <= hi,
                            Bound::Excluded(hi) => k < hi,
                        };
                        if !in_range {
                            return None;
                        }
                        self.pos += 1;
                        return Some(k);
                    }
                    match next {
                        Some(n) => {
                            self.leaf = *n;
                            self.pos = 0;
                        }
                        None => return None,
                    }
                }
                Node::Internal { .. } => unreachable!("range iterator positioned on internal node"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn collect<K: Ord + Clone>(t: &BTree<K>) -> Vec<K> {
        t.iter().cloned().collect()
    }

    #[test]
    fn insert_lookup_small_order() {
        let mut t = BTree::with_order(3);
        for k in [5, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            assert!(t.insert(k));
        }
        assert!(!t.insert(5)); // duplicate
        assert_eq!(t.len(), 10);
        for k in 0..10 {
            assert!(t.contains(&k), "missing {k}");
        }
        assert!(!t.contains(&42));
        assert_eq!(collect(&t), (0..10).collect::<Vec<_>>());
        assert_eq!(t.first(), Some(&0));
        assert_eq!(t.last(), Some(&9));
        t.check_invariants().unwrap();
        assert!(t.height() > 1);
    }

    #[test]
    fn sequential_and_reverse_inserts() {
        for order in [3, 4, 8] {
            let mut asc = BTree::with_order(order);
            let mut desc = BTree::with_order(order);
            for k in 0..500 {
                asc.insert(k);
                desc.insert(499 - k);
            }
            assert_eq!(collect(&asc), (0..500).collect::<Vec<_>>());
            assert_eq!(collect(&desc), (0..500).collect::<Vec<_>>());
            asc.check_invariants().unwrap();
            desc.check_invariants().unwrap();
        }
    }

    #[test]
    fn range_scans() {
        let mut t = BTree::with_order(4);
        for k in (0..100).map(|i| i * 2) {
            t.insert(k);
        }
        let got: Vec<i32> = t.range(Bound::Included(&10), Bound::Excluded(&20)).cloned().collect();
        assert_eq!(got, vec![10, 12, 14, 16, 18]);
        // odd bounds (keys absent)
        let got: Vec<i32> = t.range(Bound::Included(&11), Bound::Included(&15)).cloned().collect();
        assert_eq!(got, vec![12, 14]);
        // exclusive lower
        let got: Vec<i32> = t.range(Bound::Excluded(&10), Bound::Excluded(&16)).cloned().collect();
        assert_eq!(got, vec![12, 14]);
        // unbounded tail
        let got: Vec<i32> = t.range(Bound::Included(&190), Bound::Unbounded).cloned().collect();
        assert_eq!(got, vec![190, 192, 194, 196, 198]);
        // empty range
        assert_eq!(t.range(Bound::Included(&500), Bound::Unbounded).count(), 0);
    }

    #[test]
    fn remove_with_rebalancing() {
        let mut t = BTree::with_order(3);
        let keys: Vec<i32> = (0..200).collect();
        for &k in &keys {
            t.insert(k);
        }
        // Remove evens, verify odds survive at every step.
        for k in (0..200).step_by(2) {
            assert!(t.remove(&k), "failed to remove {k}");
            assert!(!t.remove(&k), "double remove {k}");
            t.check_invariants().unwrap_or_else(|e| panic!("after removing {k}: {e}"));
        }
        assert_eq!(t.len(), 100);
        assert_eq!(collect(&t), (1..200).step_by(2).collect::<Vec<_>>());
        // Drain completely.
        for k in (1..200).step_by(2) {
            assert!(t.remove(&k));
            t.check_invariants().unwrap();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn matches_btreeset_reference_under_random_ops() {
        // Deterministic pseudo-random op sequence (LCG) — no rand dep here.
        let mut state: u64 = 0x2545F4914F6CDD1D;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut t = BTree::with_order(4);
        let mut reference = BTreeSet::new();
        for _ in 0..5000 {
            let k = (next() % 300) as i32;
            if next() % 3 == 0 {
                assert_eq!(t.remove(&k), reference.remove(&k));
            } else {
                assert_eq!(t.insert(k), reference.insert(k));
            }
        }
        t.check_invariants().unwrap();
        assert_eq!(collect(&t), reference.iter().cloned().collect::<Vec<_>>());
        // spot-check ranges against the reference
        for lo in [0, 57, 150, 299] {
            let got: Vec<i32> =
                t.range(Bound::Included(&lo), Bound::Excluded(&(lo + 40))).cloned().collect();
            let want: Vec<i32> = reference.range(lo..lo + 40).cloned().collect();
            assert_eq!(got, want, "range [{lo}, {})", lo + 40);
        }
    }

    #[test]
    fn bulk_build_matches_incremental() {
        for n in [0usize, 1, 5, 64, 65, 1000, 4097] {
            let keys: Vec<u64> = (0..n as u64).map(|i| i * 3).collect();
            let bulk = BTree::bulk_build(keys.clone(), 64);
            assert_eq!(bulk.len(), n);
            bulk.check_invariants().unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(collect(&bulk), keys);
            for k in &keys {
                assert!(bulk.contains(k));
            }
            assert!(!bulk.contains(&1));
        }
    }

    #[test]
    fn bulk_built_tree_supports_updates() {
        let keys: Vec<i64> = (0..1000).map(|i| i * 2).collect();
        let mut t = BTree::bulk_build(keys, 16);
        assert!(t.insert(33));
        assert!(t.remove(&0));
        assert!(t.contains(&33));
        assert!(!t.contains(&0));
        t.check_invariants().unwrap();
    }

    #[test]
    fn composite_keys_prefix_scan() {
        // The quadtree's usage pattern: (tile_code, rowid) pairs,
        // scanned by tile prefix.
        let mut t: BTree<(u64, u64)> = BTree::with_order(8);
        for tile in 0..20u64 {
            for rid in 0..5u64 {
                t.insert((tile, rid));
            }
        }
        let got: Vec<(u64, u64)> =
            t.range(Bound::Included(&(7, 0)), Bound::Excluded(&(8, 0))).cloned().collect();
        assert_eq!(got, (0..5).map(|r| (7, r)).collect::<Vec<_>>());
    }

    #[test]
    fn counters_record_visits() {
        let c = Arc::new(Counters::new());
        let mut t = BTree::with_order(4).with_counters(Arc::clone(&c));
        for k in 0..100 {
            t.insert(k);
        }
        let before = Counters::get(&c.btree_node_visits);
        t.contains(&50);
        assert!(Counters::get(&c.btree_node_visits) > before);
    }

    #[test]
    #[should_panic(expected = "order must be at least 3")]
    fn rejects_tiny_order() {
        let _ = BTree::<i32>::with_order(2);
    }
}
