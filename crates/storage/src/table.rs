//! Heap tables with per-row version chains.

use crate::mvcc::{Csn, Snapshot, TxnId, TxnState, TxnStatusTable, FROZEN_TXN};
use crate::rowid::RowId;
use crate::schema::Schema;
use crate::stats::Counters;
use crate::value::Value;
use crate::StorageError;
use std::sync::Arc;

/// One version of a row: who created it, who (if anyone) deleted it,
/// and the payload. `xmax == 0` means "not deleted" — the frozen
/// pseudo-txn never appears as a deleter (non-transactional deletes
/// clear the chain instead).
#[derive(Debug, Clone)]
struct Version {
    xmin: TxnId,
    xmax: TxnId,
    row: Arc<[Value]>,
}

impl Version {
    fn frozen(row: Arc<[Value]>) -> Self {
        Version { xmin: FROZEN_TXN, xmax: 0, row }
    }

    fn visible(&self, snap: &Snapshot, status: &TxnStatusTable) -> bool {
        if !snap.sees(self.xmin, status) {
            return false;
        }
        self.xmax == 0 || !snap.sees(self.xmax, status)
    }
}

/// A heap-organized table: a slot array of row *version chains*
/// addressed by [`RowId`].
///
/// Deleted slots keep their position (an empty chain is a tombstone) so
/// rowids stay stable, like Oracle heap blocks between reorganizations.
/// Rows are `Arc`-shared so fetching a row is a refcount bump, not a
/// copy — important because the spatial join fetches geometry rows
/// repeatedly across candidate pairs.
///
/// ## Versioning model
///
/// Each slot holds its versions oldest-first. A version's visibility is
/// decided through the shared [`TxnStatusTable`]: a reader with a
/// [`Snapshot`] sees the newest version created by a transaction it
/// sees and not deleted by one it sees. The legacy non-transactional
/// API (`insert`/`update`/`delete`/`get`/`scan`) is preserved exactly:
/// it writes *frozen* versions (immediately visible everywhere) and
/// reads at [`Snapshot::LATEST`] — which still never observes another
/// transaction's uncommitted rows.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    slots: Vec<Vec<Version>>,
    /// Live rows at latest-committed visibility. Transactional writes
    /// adjust this at commit via [`Table::apply_live_delta`].
    live: usize,
    /// Monotone modification counter (every insert/update/delete bumps
    /// it); `ANALYZE` records it so the planner can measure how much
    /// DML its statistics have missed.
    mods: u64,
    counters: Arc<Counters>,
    status: Arc<TxnStatusTable>,
}

impl Table {
    /// An empty heap table (name is uppercased).
    pub fn new(name: &str, schema: Schema) -> Self {
        Table {
            name: name.to_ascii_uppercase(),
            schema,
            slots: Vec::new(),
            live: 0,
            mods: 0,
            counters: Arc::new(Counters::new()),
            status: Arc::new(TxnStatusTable::new()),
        }
    }

    /// Attach shared work counters (tables created through a
    /// [`crate::catalog::Catalog`] share the catalog's counters).
    pub fn with_counters(mut self, counters: Arc<Counters>) -> Self {
        self.counters = counters;
        self
    }

    /// Attach a shared transaction status table (tables created through
    /// a [`crate::catalog::Catalog`] share the catalog's, so one commit
    /// flip covers every table the transaction touched).
    pub fn with_status(mut self, status: Arc<TxnStatusTable>) -> Self {
        self.status = status;
        self
    }

    /// Table name (uppercase).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The work counters this table charges reads to.
    #[inline]
    pub fn counters(&self) -> &Arc<Counters> {
        &self.counters
    }

    /// The transaction status table visibility is decided against.
    #[inline]
    pub fn status(&self) -> &Arc<TxnStatusTable> {
        &self.status
    }

    /// Number of live rows (latest-committed view; in-flight
    /// transactions are not counted until they commit).
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live rows remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Highest slot ever allocated (scan upper bound).
    #[inline]
    pub fn high_water_mark(&self) -> usize {
        self.slots.len()
    }

    /// Total modifications (inserts + updates + deletes) ever applied.
    #[inline]
    pub fn mod_count(&self) -> u64 {
        self.mods
    }

    /// Restore the modification counter (snapshot load).
    #[inline]
    pub fn set_mod_count(&mut self, mods: u64) {
        self.mods = mods;
    }

    // -- non-transactional (frozen) writes --------------------------------

    /// Insert a row, returning its new rowid. The row is *frozen*:
    /// immediately visible to every snapshot (bulk loads, tests).
    pub fn insert(&mut self, row: Vec<Value>) -> Result<RowId, StorageError> {
        self.schema.check_row(&row)?;
        let rid = RowId::new(self.slots.len() as u64);
        self.slots.push(vec![Version::frozen(row.into())]);
        self.live += 1;
        self.mods += 1;
        Ok(rid)
    }

    /// Bulk insert; rowids are assigned in order.
    pub fn insert_many(
        &mut self,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<Vec<RowId>, StorageError> {
        let mut rids = Vec::new();
        for row in rows {
            rids.push(self.insert(row)?);
        }
        Ok(rids)
    }

    /// Replace a row in place (frozen: visible immediately, old version
    /// not retained — non-transactional writes are not snapshot
    /// protected).
    pub fn update(&mut self, rid: RowId, row: Vec<Value>) -> Result<(), StorageError> {
        self.schema.check_row(&row)?;
        self.check_write(rid, FROZEN_TXN, Csn::MAX)?;
        self.slots[rid.slot()] = vec![Version::frozen(row.into())];
        self.mods += 1;
        Ok(())
    }

    /// Delete a row, tombstoning its slot (frozen: immediate).
    pub fn delete(&mut self, rid: RowId) -> Result<(), StorageError> {
        self.check_write(rid, FROZEN_TXN, Csn::MAX)?;
        self.slots[rid.slot()].clear();
        self.live -= 1;
        self.mods += 1;
        Ok(())
    }

    // -- transactional writes ----------------------------------------------

    /// Insert a row on behalf of transaction `txid`. Invisible to other
    /// snapshots until the transaction commits.
    pub fn insert_txn(&mut self, txid: TxnId, row: Vec<Value>) -> Result<RowId, StorageError> {
        self.schema.check_row(&row)?;
        let rid = RowId::new(self.slots.len() as u64);
        self.slots.push(vec![Version { xmin: txid, xmax: 0, row: row.into() }]);
        self.mods += 1;
        Ok(rid)
    }

    /// Update a row on behalf of transaction `txid` whose snapshot is
    /// bounded by `snap_csn`. First-updater-wins: fails with
    /// [`StorageError::WriteConflict`] if another in-progress
    /// transaction wrote the row, or if a transaction committed a newer
    /// version after this transaction's snapshot (lost update).
    pub fn update_txn(
        &mut self,
        txid: TxnId,
        snap_csn: Csn,
        rid: RowId,
        row: Vec<Value>,
    ) -> Result<(), StorageError> {
        self.schema.check_row(&row)?;
        self.check_write(rid, txid, snap_csn)?;
        let chain = &mut self.slots[rid.slot()];
        if let Some(newest) = chain.last_mut() {
            if newest.xmin == txid && newest.xmax == 0 {
                // Second write by the same transaction: replace in
                // place, no intermediate version to retain.
                newest.row = row.into();
                return Ok(());
            }
            newest.xmax = txid;
        }
        chain.push(Version { xmin: txid, xmax: 0, row: row.into() });
        self.mods += 1;
        Ok(())
    }

    /// Delete a row on behalf of transaction `txid` (snapshot bound
    /// `snap_csn`). Same conflict rules as [`Table::update_txn`].
    pub fn delete_txn(
        &mut self,
        txid: TxnId,
        snap_csn: Csn,
        rid: RowId,
    ) -> Result<(), StorageError> {
        self.check_write(rid, txid, snap_csn)?;
        let newest = self.slots[rid.slot()].last_mut().expect("check_write saw a version");
        newest.xmax = txid;
        self.mods += 1;
        Ok(())
    }

    /// Write-write conflict detection on the newest version of `rid`,
    /// pruning aborted versions as a side effect. `FROZEN_TXN` with
    /// `Csn::MAX` is the non-transactional caller: it conflicts with
    /// any in-progress writer but never on committed history.
    fn check_write(&mut self, rid: RowId, txid: TxnId, snap_csn: Csn) -> Result<(), StorageError> {
        let status = Arc::clone(&self.status);
        let chain = self.slots.get_mut(rid.slot()).ok_or(StorageError::NoSuchRow(rid))?;
        // Lazy rollback cleanup: drop versions created by aborted
        // transactions, forget deletes by aborted transactions.
        chain.retain(|v| !matches!(status.state(v.xmin), TxnState::Aborted));
        for v in chain.iter_mut() {
            if v.xmax != 0 && matches!(status.state(v.xmax), TxnState::Aborted) {
                v.xmax = 0;
            }
        }
        let newest = chain.last().ok_or(StorageError::NoSuchRow(rid))?;
        if newest.xmax != 0 {
            return match status.state(newest.xmax) {
                // Deleted by us or by a committed transaction: the row
                // no longer exists for this writer.
                _ if newest.xmax == txid => Err(StorageError::NoSuchRow(rid)),
                TxnState::Committed(c) if c <= snap_csn => Err(StorageError::NoSuchRow(rid)),
                // Deleted after our snapshot, or delete still in
                // flight: first-updater-wins.
                _ => Err(StorageError::WriteConflict(rid)),
            };
        }
        if newest.xmin == FROZEN_TXN || newest.xmin == txid {
            return Ok(());
        }
        match status.state(newest.xmin) {
            TxnState::InProgress => Err(StorageError::WriteConflict(rid)),
            TxnState::Committed(c) if c > snap_csn => Err(StorageError::WriteConflict(rid)),
            _ => Ok(()),
        }
    }

    /// Apply a committed transaction's net live-row delta (inserts
    /// minus deletes against previously committed rows).
    pub fn apply_live_delta(&mut self, delta: i64) {
        self.live = (self.live as i64 + delta).max(0) as usize;
    }

    /// Materialize a frozen row at a specific slot, extending the slot
    /// array with tombstones as needed — WAL recovery replays inserts
    /// at their original rowids with this.
    pub fn restore_at(&mut self, rid: RowId, row: Vec<Value>) -> Result<(), StorageError> {
        self.schema.check_row(&row)?;
        while self.slots.len() <= rid.slot() {
            self.slots.push(Vec::new());
        }
        if self.slots[rid.slot()].is_empty() {
            self.live += 1;
        }
        self.slots[rid.slot()] = vec![Version::frozen(row.into())];
        self.mods += 1;
        Ok(())
    }

    // -- reads -------------------------------------------------------------

    /// Fetch the row version visible to `snap` (a logical read).
    pub fn get_at(&self, rid: RowId, snap: &Snapshot) -> Result<Arc<[Value]>, StorageError> {
        Counters::bump(&self.counters.row_fetches);
        let chain = self.slots.get(rid.slot()).ok_or(StorageError::NoSuchRow(rid))?;
        chain
            .iter()
            .rev()
            .find(|v| v.visible(snap, &self.status))
            .map(|v| Arc::clone(&v.row))
            .ok_or(StorageError::NoSuchRow(rid))
    }

    /// Fetch a row by rowid at latest-committed visibility.
    pub fn get(&self, rid: RowId) -> Result<Arc<[Value]>, StorageError> {
        self.get_at(rid, &Snapshot::LATEST)
    }

    /// Fetch a single column of a row.
    pub fn get_column(&self, rid: RowId, col: usize) -> Result<Value, StorageError> {
        let row = self.get(rid)?;
        row.get(col)
            .cloned()
            .ok_or_else(|| StorageError::SchemaMismatch(format!("no column {col}")))
    }

    /// True when the rowid addresses a row visible to `snap`.
    pub fn exists_at(&self, rid: RowId, snap: &Snapshot) -> bool {
        self.slots
            .get(rid.slot())
            .is_some_and(|chain| chain.iter().rev().any(|v| v.visible(snap, &self.status)))
    }

    /// True when the rowid addresses a live row (latest-committed).
    pub fn exists(&self, rid: RowId) -> bool {
        self.exists_at(rid, &Snapshot::LATEST)
    }

    /// Full scan over rows visible to `snap`, in rowid order.
    pub fn scan_at(&self, snap: Snapshot) -> TableScan<'_> {
        TableScan { table: self, next: 0, snap }
    }

    /// Full scan over live rows (latest-committed) in rowid order.
    pub fn scan(&self) -> TableScan<'_> {
        self.scan_at(Snapshot::LATEST)
    }
}

/// Iterator over `(RowId, row)` pairs of rows visible to a snapshot.
pub struct TableScan<'a> {
    table: &'a Table,
    next: usize,
    snap: Snapshot,
}

impl<'a> TableScan<'a> {
    fn bounded(self, end: usize) -> BoundedScan<'a> {
        BoundedScan { inner: self, end }
    }

    fn visible_at(&self, slot: usize) -> Option<Arc<[Value]>> {
        self.table.slots[slot]
            .iter()
            .rev()
            .find(|v| v.visible(&self.snap, &self.table.status))
            .map(|v| Arc::clone(&v.row))
    }
}

impl<'a> Iterator for TableScan<'a> {
    type Item = (RowId, Arc<[Value]>);

    fn next(&mut self) -> Option<Self::Item> {
        while self.next < self.table.slots.len() {
            let slot = self.next;
            self.next += 1;
            if let Some(row) = self.visible_at(slot) {
                Counters::bump(&self.table.counters.rows_scanned);
                return Some((RowId::new(slot as u64), row));
            }
        }
        None
    }
}

/// A [`TableScan`] with an exclusive upper slot bound.
pub struct BoundedScan<'a> {
    inner: TableScan<'a>,
    end: usize,
}

impl<'a> Iterator for BoundedScan<'a> {
    type Item = (RowId, Arc<[Value]>);

    fn next(&mut self) -> Option<Self::Item> {
        while self.inner.next < self.end {
            let slot = self.inner.next;
            self.inner.next += 1;
            if let Some(row) = self.inner.visible_at(slot) {
                Counters::bump(&self.inner.table.counters.rows_scanned);
                return Some((RowId::new(slot as u64), row));
            }
        }
        None
    }
}

impl Table {
    /// Scan restricted to a contiguous slot range `[from, to)` — the
    /// primitive that RANGE-partitioned parallel table functions use to
    /// split an input cursor.
    pub fn scan_slots(&self, from: usize, to: usize) -> BoundedScan<'_> {
        self.scan_slots_at(from, to, Snapshot::LATEST)
    }

    /// [`Table::scan_slots`] at an explicit snapshot.
    pub fn scan_slots_at(&self, from: usize, to: usize, snap: Snapshot) -> BoundedScan<'_> {
        TableScan { table: self, next: from.min(self.slots.len()), snap }
            .bounded(to.min(self.slots.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};

    fn table() -> Table {
        Table::new("t", Schema::of(&[("ID", DataType::Integer), ("NAME", DataType::Text)]))
    }

    fn row(id: i64, name: &str) -> Vec<Value> {
        vec![Value::Integer(id), Value::from(name)]
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = table();
        let r1 = t.insert(row(1, "a")).unwrap();
        let r2 = t.insert(row(2, "b")).unwrap();
        assert_eq!(r1, RowId::new(0));
        assert_eq!(r2, RowId::new(1));
        assert_eq!(t.len(), 2);
        let fetched = t.get(r2).unwrap();
        assert_eq!(fetched[1].as_text(), Some("b"));
        assert_eq!(t.get_column(r1, 0).unwrap().as_integer(), Some(1));
    }

    #[test]
    fn schema_enforced_on_insert_and_update() {
        let mut t = table();
        assert!(t.insert(vec![Value::from("wrong")]).is_err());
        let rid = t.insert(row(1, "a")).unwrap();
        assert!(t.update(rid, vec![Value::Integer(1)]).is_err());
        assert!(t.update(rid, row(9, "z")).is_ok());
        assert_eq!(t.get(rid).unwrap()[0].as_integer(), Some(9));
    }

    #[test]
    fn delete_tombstones_and_rowids_stay_stable() {
        let mut t = table();
        let r0 = t.insert(row(0, "a")).unwrap();
        let r1 = t.insert(row(1, "b")).unwrap();
        let r2 = t.insert(row(2, "c")).unwrap();
        t.delete(r1).unwrap();
        assert_eq!(t.len(), 2);
        assert!(!t.exists(r1));
        assert!(t.exists(r0));
        assert_eq!(t.get(r2).unwrap()[0].as_integer(), Some(2));
        assert_eq!(t.get(r1), Err(StorageError::NoSuchRow(r1)));
        assert_eq!(t.delete(r1), Err(StorageError::NoSuchRow(r1)));
        // scan skips the tombstone
        let ids: Vec<i64> = t.scan().map(|(_, r)| r[0].as_integer().unwrap()).collect();
        assert_eq!(ids, vec![0, 2]);
        // new insert does not reuse the tombstoned slot
        let r3 = t.insert(row(3, "d")).unwrap();
        assert_eq!(r3, RowId::new(3));
    }

    #[test]
    fn range_scans_respect_bounds() {
        let mut t = table();
        for i in 0..10 {
            t.insert(row(i, "x")).unwrap();
        }
        let ids: Vec<i64> = t.scan_slots(3, 6).map(|(_, r)| r[0].as_integer().unwrap()).collect();
        assert_eq!(ids, vec![3, 4, 5]);
        // bounds clamp to table size
        let ids: Vec<i64> = t.scan_slots(8, 100).map(|(_, r)| r[0].as_integer().unwrap()).collect();
        assert_eq!(ids, vec![8, 9]);
        assert_eq!(t.scan_slots(5, 5).count(), 0);
    }

    #[test]
    fn counters_track_io() {
        let mut t = table();
        let rid = t.insert(row(1, "a")).unwrap();
        let before = Counters::get(&t.counters().row_fetches);
        t.get(rid).unwrap();
        t.get(rid).unwrap();
        assert_eq!(Counters::get(&t.counters().row_fetches), before + 2);
        t.scan().count();
        assert!(Counters::get(&t.counters().rows_scanned) >= 1);
    }

    #[test]
    fn bulk_insert_assigns_sequential_rowids() {
        let mut t = table();
        let rids = t.insert_many((0..5).map(|i| row(i, "r"))).unwrap();
        assert_eq!(rids.len(), 5);
        assert!(rids.windows(2).all(|w| w[0] < w[1]));
    }

    // -- MVCC behaviour ----------------------------------------------------

    #[test]
    fn uncommitted_rows_invisible_until_commit() {
        let mut t = table();
        t.insert(row(0, "base")).unwrap();
        let status = Arc::clone(t.status());
        let txid = status.begin();
        let rid = t.insert_txn(txid, row(1, "pending")).unwrap();

        // Invisible to latest-committed readers, visible to the owner.
        assert_eq!(t.get(rid), Err(StorageError::NoSuchRow(rid)));
        assert_eq!(t.len(), 1);
        let own = Snapshot { csn: 0, txid };
        assert_eq!(t.get_at(rid, &own).unwrap()[0].as_integer(), Some(1));

        status.commit(txid, 1);
        t.apply_live_delta(1);
        assert_eq!(t.get(rid).unwrap()[0].as_integer(), Some(1));
        assert_eq!(t.len(), 2);
        // A snapshot taken before the commit still excludes it.
        assert!(!t.exists_at(rid, &Snapshot::at(0)));
        assert!(t.exists_at(rid, &Snapshot::at(1)));
    }

    #[test]
    fn aborted_versions_vanish_and_are_pruned() {
        let mut t = table();
        let r0 = t.insert(row(0, "keep")).unwrap();
        let status = Arc::clone(t.status());
        let txid = status.begin();
        let r1 = t.insert_txn(txid, row(1, "doomed")).unwrap();
        t.update_txn(txid, 0, r0, row(7, "doomed-update")).unwrap();
        status.abort(txid);

        // Rollback is a status flip: old state is back immediately.
        assert_eq!(t.get(r0).unwrap()[0].as_integer(), Some(0));
        assert!(!t.exists(r1));
        assert_eq!(t.len(), 1);
        // A later frozen write prunes the aborted chain lazily.
        t.update(r0, row(2, "after")).unwrap();
        assert_eq!(t.get(r0).unwrap()[0].as_integer(), Some(2));
    }

    #[test]
    fn snapshot_readers_see_pre_update_versions() {
        let mut t = table();
        let rid = t.insert(row(1, "v1")).unwrap();
        let status = Arc::clone(t.status());
        let txid = status.begin();
        t.update_txn(txid, 0, rid, row(2, "v2")).unwrap();
        status.commit(txid, 1);

        assert_eq!(t.get_at(rid, &Snapshot::at(0)).unwrap()[1].as_text(), Some("v1"));
        assert_eq!(t.get_at(rid, &Snapshot::at(1)).unwrap()[1].as_text(), Some("v2"));
        let ids: Vec<i64> =
            t.scan_at(Snapshot::at(0)).map(|(_, r)| r[0].as_integer().unwrap()).collect();
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn snapshot_delete_preserves_old_view() {
        let mut t = table();
        let rid = t.insert(row(1, "a")).unwrap();
        let status = Arc::clone(t.status());
        let txid = status.begin();
        t.delete_txn(txid, 0, rid).unwrap();
        // Deleter no longer sees it; others still do.
        assert!(!t.exists_at(rid, &Snapshot { csn: 0, txid }));
        assert!(t.exists(rid));
        status.commit(txid, 1);
        t.apply_live_delta(-1);
        assert!(!t.exists(rid));
        assert!(t.exists_at(rid, &Snapshot::at(0)), "pre-delete snapshot still sees the row");
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn write_write_conflicts_first_updater_wins() {
        let mut t = table();
        let rid = t.insert(row(1, "a")).unwrap();
        let status = Arc::clone(t.status());
        let t1 = status.begin();
        let t2 = status.begin();
        t.update_txn(t1, 0, rid, row(2, "t1")).unwrap();
        // Concurrent writer loses immediately (no waiting).
        assert_eq!(t.update_txn(t2, 0, rid, row(3, "t2")), Err(StorageError::WriteConflict(rid)));
        assert_eq!(t.delete_txn(t2, 0, rid), Err(StorageError::WriteConflict(rid)));
        // Frozen writers conflict with in-progress transactions too.
        assert_eq!(t.update(rid, row(4, "frozen")), Err(StorageError::WriteConflict(rid)));

        // First-committer-wins across snapshots: t1 commits at csn 1,
        // t2's snapshot (csn 0) is now stale for this row.
        status.commit(t1, 1);
        assert_eq!(t.update_txn(t2, 0, rid, row(3, "t2")), Err(StorageError::WriteConflict(rid)));
        // A transaction whose snapshot covers the commit may proceed.
        let t3 = status.begin();
        assert!(t.update_txn(t3, 1, rid, row(5, "t3")).is_ok());
    }

    #[test]
    fn own_transaction_multi_write_collapses() {
        let mut t = table();
        let status = Arc::clone(t.status());
        let txid = status.begin();
        let rid = t.insert_txn(txid, row(1, "a")).unwrap();
        t.update_txn(txid, 0, rid, row(2, "b")).unwrap();
        t.update_txn(txid, 0, rid, row(3, "c")).unwrap();
        let own = Snapshot { csn: 0, txid };
        assert_eq!(t.get_at(rid, &own).unwrap()[0].as_integer(), Some(3));
        t.delete_txn(txid, 0, rid).unwrap();
        assert!(!t.exists_at(rid, &own));
        // Delete-then-touch errors like a missing row.
        assert_eq!(t.update_txn(txid, 0, rid, row(4, "d")), Err(StorageError::NoSuchRow(rid)));
        status.commit(txid, 1);
        assert!(!t.exists(rid));
    }

    #[test]
    fn restore_at_fills_gaps_with_tombstones() {
        let mut t = table();
        t.restore_at(RowId::new(2), row(2, "c")).unwrap();
        assert_eq!(t.high_water_mark(), 3);
        assert_eq!(t.len(), 1);
        assert!(!t.exists(RowId::new(0)));
        assert_eq!(t.get(RowId::new(2)).unwrap()[0].as_integer(), Some(2));
        // Restoring over an existing row replaces it without double
        // counting.
        t.restore_at(RowId::new(2), row(9, "z")).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(RowId::new(2)).unwrap()[0].as_integer(), Some(9));
    }
}
