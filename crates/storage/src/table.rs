//! Heap tables.

use crate::rowid::RowId;
use crate::schema::Schema;
use crate::stats::Counters;
use crate::value::Value;
use crate::StorageError;
use std::sync::Arc;

/// A heap-organized table: a slot array of rows addressed by [`RowId`].
///
/// Deleted slots are tombstoned (`None`) so rowids stay stable, like
/// Oracle heap blocks between reorganizations. Rows are `Arc`-shared so
/// fetching a row is a refcount bump, not a copy — important because the
/// spatial join fetches geometry rows repeatedly across candidate pairs.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    slots: Vec<Option<Arc<[Value]>>>,
    live: usize,
    counters: Arc<Counters>,
}

impl Table {
    /// An empty heap table (name is uppercased).
    pub fn new(name: &str, schema: Schema) -> Self {
        Table {
            name: name.to_ascii_uppercase(),
            schema,
            slots: Vec::new(),
            live: 0,
            counters: Arc::new(Counters::new()),
        }
    }

    /// Attach shared work counters (tables created through a
    /// [`crate::catalog::Catalog`] share the catalog's counters).
    pub fn with_counters(mut self, counters: Arc<Counters>) -> Self {
        self.counters = counters;
        self
    }

    /// Table name (uppercase).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The work counters this table charges reads to.
    #[inline]
    pub fn counters(&self) -> &Arc<Counters> {
        &self.counters
    }

    /// Number of live rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live rows remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Highest slot ever allocated (scan upper bound).
    #[inline]
    pub fn high_water_mark(&self) -> usize {
        self.slots.len()
    }

    /// Insert a row, returning its new rowid.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<RowId, StorageError> {
        self.schema.check_row(&row)?;
        let rid = RowId::new(self.slots.len() as u64);
        self.slots.push(Some(row.into()));
        self.live += 1;
        Ok(rid)
    }

    /// Bulk insert; rowids are assigned in order.
    pub fn insert_many(
        &mut self,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<Vec<RowId>, StorageError> {
        let mut rids = Vec::new();
        for row in rows {
            rids.push(self.insert(row)?);
        }
        Ok(rids)
    }

    /// Fetch a row by rowid (a logical read).
    pub fn get(&self, rid: RowId) -> Result<Arc<[Value]>, StorageError> {
        Counters::bump(&self.counters.row_fetches);
        self.slots.get(rid.slot()).and_then(|s| s.clone()).ok_or(StorageError::NoSuchRow(rid))
    }

    /// Fetch a single column of a row.
    pub fn get_column(&self, rid: RowId, col: usize) -> Result<Value, StorageError> {
        let row = self.get(rid)?;
        row.get(col)
            .cloned()
            .ok_or_else(|| StorageError::SchemaMismatch(format!("no column {col}")))
    }

    /// Replace a row in place.
    pub fn update(&mut self, rid: RowId, row: Vec<Value>) -> Result<(), StorageError> {
        self.schema.check_row(&row)?;
        match self.slots.get_mut(rid.slot()) {
            Some(slot @ Some(_)) => {
                *slot = Some(row.into());
                Ok(())
            }
            _ => Err(StorageError::NoSuchRow(rid)),
        }
    }

    /// Delete a row, tombstoning its slot.
    pub fn delete(&mut self, rid: RowId) -> Result<(), StorageError> {
        match self.slots.get_mut(rid.slot()) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.live -= 1;
                Ok(())
            }
            _ => Err(StorageError::NoSuchRow(rid)),
        }
    }

    /// True when the rowid addresses a live row.
    pub fn exists(&self, rid: RowId) -> bool {
        matches!(self.slots.get(rid.slot()), Some(Some(_)))
    }

    /// Full scan over live rows in rowid order.
    pub fn scan(&self) -> TableScan<'_> {
        TableScan { table: self, next: 0 }
    }
}

/// Iterator over `(RowId, row)` pairs of live rows.
pub struct TableScan<'a> {
    table: &'a Table,
    next: usize,
}

impl<'a> TableScan<'a> {
    fn bounded(self, end: usize) -> BoundedScan<'a> {
        BoundedScan { inner: self, end }
    }
}

impl<'a> Iterator for TableScan<'a> {
    type Item = (RowId, Arc<[Value]>);

    fn next(&mut self) -> Option<Self::Item> {
        while self.next < self.table.slots.len() {
            let slot = self.next;
            self.next += 1;
            if let Some(row) = &self.table.slots[slot] {
                Counters::bump(&self.table.counters.rows_scanned);
                return Some((RowId::new(slot as u64), Arc::clone(row)));
            }
        }
        None
    }
}

/// A [`TableScan`] with an exclusive upper slot bound.
pub struct BoundedScan<'a> {
    inner: TableScan<'a>,
    end: usize,
}

impl<'a> Iterator for BoundedScan<'a> {
    type Item = (RowId, Arc<[Value]>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.inner.next >= self.end {
            return None;
        }
        // Stop early if the underlying scan would run past the bound.
        while self.inner.next < self.end {
            let slot = self.inner.next;
            self.inner.next += 1;
            if let Some(row) = &self.inner.table.slots[slot] {
                Counters::bump(&self.inner.table.counters.rows_scanned);
                return Some((RowId::new(slot as u64), Arc::clone(row)));
            }
        }
        None
    }
}

impl Table {
    /// Scan restricted to a contiguous slot range `[from, to)` — the
    /// primitive that RANGE-partitioned parallel table functions use to
    /// split an input cursor.
    pub fn scan_slots(&self, from: usize, to: usize) -> BoundedScan<'_> {
        TableScan { table: self, next: from.min(self.slots.len()) }
            .bounded(to.min(self.slots.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};

    fn table() -> Table {
        Table::new("t", Schema::of(&[("ID", DataType::Integer), ("NAME", DataType::Text)]))
    }

    fn row(id: i64, name: &str) -> Vec<Value> {
        vec![Value::Integer(id), Value::from(name)]
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = table();
        let r1 = t.insert(row(1, "a")).unwrap();
        let r2 = t.insert(row(2, "b")).unwrap();
        assert_eq!(r1, RowId::new(0));
        assert_eq!(r2, RowId::new(1));
        assert_eq!(t.len(), 2);
        let fetched = t.get(r2).unwrap();
        assert_eq!(fetched[1].as_text(), Some("b"));
        assert_eq!(t.get_column(r1, 0).unwrap().as_integer(), Some(1));
    }

    #[test]
    fn schema_enforced_on_insert_and_update() {
        let mut t = table();
        assert!(t.insert(vec![Value::from("wrong")]).is_err());
        let rid = t.insert(row(1, "a")).unwrap();
        assert!(t.update(rid, vec![Value::Integer(1)]).is_err());
        assert!(t.update(rid, row(9, "z")).is_ok());
        assert_eq!(t.get(rid).unwrap()[0].as_integer(), Some(9));
    }

    #[test]
    fn delete_tombstones_and_rowids_stay_stable() {
        let mut t = table();
        let r0 = t.insert(row(0, "a")).unwrap();
        let r1 = t.insert(row(1, "b")).unwrap();
        let r2 = t.insert(row(2, "c")).unwrap();
        t.delete(r1).unwrap();
        assert_eq!(t.len(), 2);
        assert!(!t.exists(r1));
        assert!(t.exists(r0));
        assert_eq!(t.get(r2).unwrap()[0].as_integer(), Some(2));
        assert_eq!(t.get(r1), Err(StorageError::NoSuchRow(r1)));
        assert_eq!(t.delete(r1), Err(StorageError::NoSuchRow(r1)));
        // scan skips the tombstone
        let ids: Vec<i64> = t.scan().map(|(_, r)| r[0].as_integer().unwrap()).collect();
        assert_eq!(ids, vec![0, 2]);
        // new insert does not reuse the tombstoned slot
        let r3 = t.insert(row(3, "d")).unwrap();
        assert_eq!(r3, RowId::new(3));
    }

    #[test]
    fn range_scans_respect_bounds() {
        let mut t = table();
        for i in 0..10 {
            t.insert(row(i, "x")).unwrap();
        }
        let ids: Vec<i64> = t.scan_slots(3, 6).map(|(_, r)| r[0].as_integer().unwrap()).collect();
        assert_eq!(ids, vec![3, 4, 5]);
        // bounds clamp to table size
        let ids: Vec<i64> = t.scan_slots(8, 100).map(|(_, r)| r[0].as_integer().unwrap()).collect();
        assert_eq!(ids, vec![8, 9]);
        assert_eq!(t.scan_slots(5, 5).count(), 0);
    }

    #[test]
    fn counters_track_io() {
        let mut t = table();
        let rid = t.insert(row(1, "a")).unwrap();
        let before = Counters::get(&t.counters().row_fetches);
        t.get(rid).unwrap();
        t.get(rid).unwrap();
        assert_eq!(Counters::get(&t.counters().row_fetches), before + 2);
        t.scan().count();
        assert!(Counters::get(&t.counters().rows_scanned) >= 1);
    }

    #[test]
    fn bulk_insert_assigns_sequential_rowids() {
        let mut t = table();
        let rids = t.insert_many((0..5).map(|i| row(i, "r"))).unwrap();
        assert_eq!(rids.len(), 5);
        assert!(rids.windows(2).all(|w| w[0] < w[1]));
    }
}
