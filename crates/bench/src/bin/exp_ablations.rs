//! Ablations for the design choices DESIGN.md §5 calls out.
//!
//! ```sh
//! cargo run --release -p sdo-bench --bin exp_ablations -- all
//! cargo run --release -p sdo-bench --bin exp_ablations -- fetch-order
//! cargo run --release -p sdo-bench --bin exp_ablations -- pipeline-memory
//! cargo run --release -p sdo-bench --bin exp_ablations -- bulk-vs-insert
//! cargo run --release -p sdo-bench --bin exp_ablations -- sdo-level
//! cargo run --release -p sdo-bench --bin exp_ablations -- dop-sweep
//! ```

use parking_lot::RwLock;
use sdo_bench::*;
use sdo_core::join::{ExactPredicate, JoinSide, SpatialJoin, SpatialJoinConfig};
use sdo_core::FetchOrder;
use sdo_datagen::{block_groups, counties, stars, SKY_EXTENT, US_EXTENT};
use sdo_geom::RelateMask;
use sdo_rtree::{RTree, RTreeParams};
use sdo_storage::{Counters, DataType, RowId, Schema, Table, Value};
use sdo_tablefunc::collect_all;
use std::sync::Arc;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "fetch-order" => fetch_order(),
        "pipeline-memory" => pipeline_memory(),
        "bulk-vs-insert" => bulk_vs_insert(),
        "sdo-level" => sdo_level(),
        "dop-sweep" => dop_sweep(),
        "all" => {
            fetch_order();
            pipeline_memory();
            bulk_vs_insert();
            sdo_level();
            dop_sweep();
        }
        other => {
            eprintln!("unknown ablation '{other}'");
            std::process::exit(2);
        }
    }
}

/// Build one join side over county data.
fn county_side(n: usize, seed: u64) -> JoinSide {
    let geoms = counties::generate(n, &US_EXTENT, seed);
    let mut t =
        Table::new("T", Schema::of(&[("ID", DataType::Integer), ("GEOM", DataType::Geometry)]));
    let mut items = Vec::new();
    for (i, g) in geoms.into_iter().enumerate() {
        let bb = g.bbox();
        let rid = t.insert(vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
        items.push((bb, rid));
    }
    JoinSide {
        table: Arc::new(RwLock::new(t)),
        column: 1,
        tree: Arc::new(RTree::bulk_load(items, RTreeParams::with_fanout(32))),
    }
}

fn clone_side(s: &JoinSide) -> JoinSide {
    JoinSide { table: Arc::clone(&s.table), column: s.column, tree: Arc::clone(&s.tree) }
}

/// §4.2 claim: sorting candidates by first rowid gives fetch locality.
/// Measured as geometry buffer-cache hit rate under a small cache.
fn fetch_order() {
    println!("== ablation: candidate fetch order (paper §4.2) ==");
    let n = scaled(3230, 400);
    let side = county_side(n, 11);
    println!("{:>14} {:>10} {:>10} {:>10} {:>12}", "order", "cache", "hits", "misses", "hit rate");
    for cache in [32usize, 128, 512] {
        for order in [FetchOrder::RowidSorted, FetchOrder::Arrival, FetchOrder::Random] {
            let mut join = SpatialJoin::new(
                clone_side(&side),
                clone_side(&side),
                ExactPredicate::Masks(vec![RelateMask::AnyInteract]),
                SpatialJoinConfig {
                    candidate_array: 4096,
                    fetch_order: order,
                    cache_size: cache,
                    ..Default::default()
                },
                Arc::new(Counters::new()),
            );
            let _ = collect_all(&mut join, 1024).unwrap();
            let (hits, misses) = join.cache_stats();
            println!(
                "{:>14} {:>10} {:>10} {:>10} {:>11.1}%",
                format!("{order:?}"),
                cache,
                hits,
                misses,
                100.0 * hits as f64 / (hits + misses).max(1) as f64
            );
        }
    }
    println!();
}

/// §2 claim: pipelining bounds memory — peak live candidates stay at
/// the configured array size regardless of total result size.
fn pipeline_memory() {
    println!("== ablation: pipelined memory bound (paper §2) ==");
    let n = scaled(3230, 400);
    let side = county_side(n, 13);
    println!("{:>12} {:>12} {:>14}", "cand. array", "result rows", "peak live cands");
    for cap in [64usize, 512, 4096, 1 << 20] {
        let mut join = SpatialJoin::new(
            clone_side(&side),
            clone_side(&side),
            ExactPredicate::Masks(vec![RelateMask::AnyInteract]),
            SpatialJoinConfig {
                candidate_array: cap,
                fetch_order: FetchOrder::RowidSorted,
                cache_size: 512,
                ..Default::default()
            },
            Arc::new(Counters::new()),
        );
        let rows = collect_all(&mut join, 256).unwrap();
        println!("{:>12} {:>12} {:>14}", cap, rows.len(), join.peak_candidates());
        assert!(join.peak_candidates() <= cap);
    }
    println!();
}

/// STR bulk load vs one-at-a-time insertion: creation time and query
/// work of the resulting trees.
fn bulk_vs_insert() {
    println!("== ablation: STR bulk load vs dynamic insertion ==");
    let n = scaled(230_000, 4_000);
    let geoms = stars::generate(n, &SKY_EXTENT, 3);
    let items: Vec<(sdo_geom::Rect, RowId)> =
        geoms.iter().enumerate().map(|(i, g)| (g.bbox(), RowId::new(i as u64))).collect();
    let params = RTreeParams::with_fanout(32);

    let (bulk, t_bulk) = timed(|| RTree::bulk_load(items.clone(), params));
    let (incr, t_incr) = timed(|| {
        let mut t = RTree::new(params);
        for (bb, rid) in &items {
            t.insert(*bb, *rid);
        }
        t
    });
    let (rstar, t_rstar) = timed(|| {
        let mut t = RTree::new(params.with_forced_reinsert(true));
        for (bb, rid) in &items {
            t.insert(*bb, *rid);
        }
        t
    });

    let probe_work = |tree: &RTree<RowId>| {
        let counters = Arc::new(Counters::new());
        let tree = tree.clone().with_counters(Arc::clone(&counters));
        for w in sdo_datagen::windows::rect_windows(200, &SKY_EXTENT, 0.05, 9) {
            let _ = tree.query_window(&w.bbox());
        }
        Counters::get(&counters.rtree_node_reads)
    };
    println!(
        "{:>10} {:>12} {:>8} {:>8} {:>18}",
        "build", "time", "height", "nodes", "probe node reads"
    );
    println!(
        "{:>10} {:>12} {:>8} {:>8} {:>18}",
        "STR",
        secs(t_bulk),
        bulk.height(),
        bulk.node_count(),
        probe_work(&bulk)
    );
    println!(
        "{:>10} {:>12} {:>8} {:>8} {:>18}",
        "insert",
        secs(t_incr),
        incr.height(),
        incr.node_count(),
        probe_work(&incr)
    );
    println!(
        "{:>10} {:>12} {:>8} {:>8} {:>18}",
        "reinsert",
        secs(t_rstar),
        rstar.height(),
        rstar.node_count(),
        probe_work(&rstar)
    );
    println!();
}

/// Quadtree tiling level: tile rows vs candidate precision.
fn sdo_level() {
    println!("== ablation: quadtree sdo_level ==");
    let n = scaled(230_000, 800);
    let geoms = block_groups::generate(n, &US_EXTENT, 5);
    let window = sdo_datagen::windows::rect_windows(1, &US_EXTENT, 0.08, 1).pop().unwrap();
    let truth = geoms.iter().filter(|g| sdo_geom::intersects(g, &window)).count();
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "level", "tile rows", "build time", "candidates", "exact hits"
    );
    for level in [5u32, 6, 7, 8, 9] {
        let (idx, t) = timed(|| {
            let mut idx = sdo_quadtree::QuadtreeIndex::new(US_EXTENT, level);
            for (i, g) in geoms.iter().enumerate() {
                idx.insert(RowId::new(i as u64), g);
            }
            idx
        });
        let candidates = idx.query_window(&window);
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12}",
            level,
            idx.tile_entries(),
            secs(t),
            candidates.len(),
            truth
        );
    }
    println!("(deeper levels: more tile rows + build time, fewer false candidates)\n");
}

/// DOP beyond the paper's 4 processors.
fn dop_sweep() {
    println!("== ablation: join DOP sweep ==");
    let n = scaled(250_000, 4_000);
    let db = session();
    let geoms = stars::generate(n, &SKY_EXTENT, 8);
    load_table(&db, "s", &geoms);
    db.execute(
        "CREATE INDEX s_x ON s(geom) INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('tree_fanout=32')",
    )
    .unwrap();
    let mut base = None;
    println!("{:>6} {:>12} {:>10} {:>10}", "dop", "join time", "wallclock", "work model");
    for dop in [1usize, 2, 4, 8] {
        let (c, t) = timed(|| {
            count(
                &db,
                &format!(
                    "SELECT COUNT(*) FROM TABLE( \
                     SPATIAL_JOIN('s','geom','s','geom','intersect', {dop}))"
                ),
            )
        });
        let b = base.get_or_insert((c, t));
        assert_eq!(b.0, c);
        let model = modeled_join_speedup(&geoms, dop);
        println!("{:>6} {:>12} {:>10} {:>9.2}x", dop, secs(t), speedup(b.1, t), model);
    }
    println!("(wall-clock is bounded by host cores; the work model is the partition quality)");
    println!();
}
