//! Partitioned join vs the index-based tree join on unindexed inputs.
//!
//! The paper's SPATIAL_JOIN presumes both sides carry an R-tree; when
//! they don't (staged loads, intermediate results), the honest cost of
//! the tree join is CREATE INDEX on both sides **plus** the query. The
//! two-layer grid partition join needs no index: it samples, tiles,
//! and joins directly, so its time-to-first-result wins whenever index
//! builds can't be amortized. `method=auto` should track the better
//! choice on both indexed and unindexed inputs.
//!
//! ```sh
//! cargo run --release -p sdo-bench --bin exp_partition
//! SDO_SCALE=0.0001 cargo run -p sdo-bench --bin exp_partition   # smoke test
//! ```

use sdo_bench::*;
use sdo_datagen::{counties, hotspot, US_EXTENT};
use std::time::Duration;

fn main() {
    let n = scaled(150_000, 400);
    // The hotspot workload is output-bound — ~half of all hot-cluster
    // pairs genuinely overlap, so the result grows with the square of
    // the cluster size and the shared secondary filter dominates both
    // engines. Keep it small enough that the engine difference, not
    // the output, is what's measured.
    let n_hot = scaled(20_000, 300);
    println!("== partitioned join vs tree join, unindexed inputs ==");

    for (label, n, geoms) in [
        ("uniform counties", n, counties::generate(n, &US_EXTENT, 11)),
        ("hotspot 70%", n_hot, hotspot::generate(n_hot, &US_EXTENT, 0.7, 12)),
    ] {
        println!();
        println!("-- {label}: {n} x {n} self-join, no indexes --");
        let db = session();
        load_table(&db, "a", &geoms);
        load_table(&db, "b", &geoms);

        println!(
            "{:>4} {:>14} {:>20} {:>14} {:>10}",
            "dop", "partition", "rtree (build+join)", "auto", "speedup"
        );
        let mut expect: Option<i64> = None;
        let mut check = |method: &str, c: i64| {
            let e = *expect.get_or_insert(c);
            assert_eq!(e, c, "{method} changed the result cardinality");
        };
        for dop in [1usize, 2, 4, 8] {
            let (cp, tp) = timed(|| count(&db, &join_sql("partition", dop)));
            check("partition", cp);

            // Tree join from cold: index both sides, query, drop.
            let (cr, tr) = timed(|| {
                for t in ["a", "b"] {
                    db.execute(&format!(
                        "CREATE INDEX {t}_x ON {t}(geom) INDEXTYPE IS SPATIAL_INDEX \
                         PARAMETERS ('tree_fanout=32')"
                    ))
                    .unwrap();
                }
                count(&db, &join_sql("rtree", dop))
            });
            check("rtree", cr);
            for t in ["a", "b"] {
                db.execute(&format!("DROP INDEX {t}_x")).unwrap();
            }

            let (ca, ta) = timed(|| count(&db, &join_sql("auto", dop)));
            check("auto", ca);
            // Auto picks one of the two fixed methods, so its time
            // should track that method's — but leave 2x headroom, as
            // wall-clock throughput on a shared host swings that much
            // between back-to-back runs of identical work.
            let worse = tr.max(tp);
            assert!(
                ta <= worse * 2 + Duration::from_millis(100),
                "auto ({ta:?}) must not lose badly to the worse fixed method ({worse:?})"
            );

            println!(
                "{:>4} {:>14} {:>20} {:>14} {:>10}",
                dop,
                secs(tp),
                secs(tr),
                secs(ta),
                speedup(tr, tp)
            );
        }
    }

    // Primary-filter-only join ('FILTER' skips the exact geometry
    // refinement): end-to-end times above are dominated by the
    // secondary filter, which both engines share, so this is the
    // engine difference itself — grid build + per-tile kernels vs
    // index build + synchronized traversal.
    println!();
    println!("-- uniform counties: {n} x {n}, primary filter only ('FILTER') --");
    let geoms = counties::generate(n, &US_EXTENT, 11);
    let db = session();
    load_table(&db, "a", &geoms);
    load_table(&db, "b", &geoms);
    println!("{:>4} {:>14} {:>20} {:>10}", "dop", "partition", "rtree (build+join)", "speedup");
    let sql = |method: &str, dop: usize| {
        format!(
            "SELECT COUNT(*) FROM TABLE( \
             SPATIAL_JOIN('a','geom','b','geom','FILTER', {dop}, -1, 'method={method}'))"
        )
    };
    for dop in [1usize, 4, 8] {
        let (cp, tp) = timed(|| count(&db, &sql("partition", dop)));
        let (cr, tr) = timed(|| {
            for t in ["a", "b"] {
                db.execute(&format!(
                    "CREATE INDEX {t}_x ON {t}(geom) INDEXTYPE IS SPATIAL_INDEX \
                     PARAMETERS ('tree_fanout=32')"
                ))
                .unwrap();
            }
            count(&db, &sql("rtree", dop))
        });
        assert_eq!(cp, cr, "primary-only cardinality must match");
        for t in ["a", "b"] {
            db.execute(&format!("DROP INDEX {t}_x")).unwrap();
        }
        println!("{:>4} {:>14} {:>20} {:>10}", dop, secs(tp), secs(tr), speedup(tr, tp));
    }

    println!();
    println!("-- EXPLAIN ANALYZE (partition, dop=4) --");
    let db = session();
    let geoms = counties::generate(scaled(20_000, 300), &US_EXTENT, 13);
    load_table(&db, "a", &geoms);
    load_table(&db, "b", &geoms);
    count(&db, &join_sql("partition", 4));
    report_last_profile(&db);
}

fn join_sql(method: &str, dop: usize) -> String {
    format!(
        "SELECT COUNT(*) FROM TABLE( \
         SPATIAL_JOIN('a','geom','b','geom','intersect', {dop}, -1, 'method={method}'))"
    )
}
