//! Cost-based planner: does `auto` track the best static plan?
//!
//! ```sh
//! cargo run --release -p sdo-bench --bin exp_planner
//! cargo run --release -p sdo-bench --bin exp_planner -- --quick   # CI smoke
//! SDO_SCALE=0.002 cargo run -p sdo-bench --bin exp_planner        # tiny
//! ```
//!
//! Four workloads, each with every static alternative timed next to
//! the planner's pick (DESIGN.md "Cost-based planning"):
//!
//! * **uniform join, indexed** — both sides carry R-trees and, at
//!   dop=1, a serial partition build can never pay off: `method=auto`
//!   must keep the tree join.
//! * **unindexed primary-filter join** — no indexes exist, so the
//!   honest tree-join cost is CREATE INDEX on both sides plus the
//!   query; `auto` must go straight to the grid partition (the
//!   `'FILTER'` interaction isolates the engines — no shared exact
//!   secondary filter to dilute the gap).
//! * **hotspot-skew join, indexed** — 70% of the rows in one Gaussian
//!   cluster make the pair count quadratic; the engines land near
//!   parity here (both are output-bound), so the planner's job is to
//!   stay within noise of the best static pick.
//! * **window filter, selective** — a small window on an analyzed,
//!   indexed table: the planner routes through the domain-index
//!   prefilter; the static alternative (functional scan, timed on an
//!   index-less twin of the same data) pays an exact test per row.
//! * **top-k by distance** — `ORDER BY SDO_DISTANCE(...) LIMIT k`
//!   pushes into the R-tree best-first search; the static sort plan
//!   (forced with a second order key) ranks the whole table. Also
//!   reports `peak_resident_rows` for both.
//!
//! Every comparison first asserts the plans return identical results.

use sdo_bench::*;
use sdo_datagen::{counties, hotspot, US_EXTENT};
use sdo_dbms::Database;
use std::time::Duration;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "quick");
    if quick {
        // CI smoke: fixed tiny sizes regardless of SDO_SCALE.
        run(2_000, 1_500, 2_000, true);
    } else {
        run(scaled(60_000, 2_000), scaled(15_000, 1_500), scaled(60_000, 2_000), false);
    }
}

/// Best-of-3 wall time; the closure must be deterministic.
fn best3<T: Eq + std::fmt::Debug>(mut f: impl FnMut() -> T) -> (T, Duration) {
    let (mut out, mut best) = timed(&mut f);
    for _ in 1..3 {
        let (o, t) = timed(&mut f);
        assert_eq!(o, out, "non-deterministic benchmark result");
        out = o;
        best = best.min(t);
    }
    (out, best)
}

fn join_sql(method: &str, interaction: &str, dop: usize) -> String {
    format!(
        "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
         'a', 'geom', 'b', 'geom', '{interaction}', {dop}, -1, 'method={method}'))"
    )
}

/// `method_chosen` attribute of the last profiled statement.
fn chosen(db: &Database) -> String {
    db.last_profile()
        .and_then(|p| {
            p.root.find("PIPELINED COUNT").and_then(|op| {
                op.attrs.iter().find(|(k, _)| k == "method_chosen").map(|(_, v)| v.clone())
            })
        })
        .unwrap_or_default()
}

fn peak_resident(db: &Database) -> u64 {
    db.last_profile().and_then(|p| p.root.metric("peak_resident_rows")).unwrap_or(0)
}

fn report(label: &str, auto_t: Duration, statics: &[(&str, Duration)], quick: bool) {
    let best = statics.iter().map(|(_, t)| *t).min().unwrap();
    let worst = statics.iter().map(|(_, t)| *t).max().unwrap();
    let vs_best = auto_t.as_secs_f64() / best.as_secs_f64().max(1e-12);
    let vs_worst = worst.as_secs_f64() / auto_t.as_secs_f64().max(1e-12);
    println!(
        "   auto {} | vs best static {:.2}x | {:.2}x faster than worst",
        secs(auto_t),
        vs_best,
        vs_worst
    );
    if !quick {
        assert!(
            vs_best <= 1.15,
            "{label}: auto ({auto_t:?}) must stay within 15% of the best static ({best:?})"
        );
    }
}

fn run(n_uniform: usize, n_hot: usize, n_topk: usize, quick: bool) {
    println!("== exp_planner: cost-picked plans vs static alternatives ==");

    // -- workload 1: uniform self-join, both sides indexed ------------------
    println!();
    println!("-- uniform join, indexed ({n_uniform} x {n_uniform}, dop=1) --");
    let geoms = counties::generate(n_uniform, &US_EXTENT, 31);
    let db = session();
    load_table(&db, "a", &geoms);
    load_table(&db, "b", &geoms);
    for t in ["a", "b"] {
        db.execute(&format!("CREATE INDEX {t}_x ON {t}(geom) INDEXTYPE IS SPATIAL_INDEX")).unwrap();
        db.execute(&format!("ANALYZE TABLE {t}")).unwrap();
    }
    let (c_rt, t_rt) = best3(|| count(&db, &join_sql("rtree", "intersect", 1)));
    let (c_pt, t_pt) = best3(|| count(&db, &join_sql("partition", "intersect", 1)));
    let (c_auto, t_auto) = best3(|| count(&db, &join_sql("auto", "intersect", 1)));
    assert_eq!(c_rt, c_pt, "engines disagree");
    assert_eq!(c_rt, c_auto, "auto changed the result");
    let pick = chosen(&db);
    println!("   rtree {}  partition {}  auto picked '{pick}'", secs(t_rt), secs(t_pt));
    report("uniform-indexed", t_auto, &[("rtree", t_rt), ("partition", t_pt)], quick);
    assert_eq!(pick, "rtree", "few predicted pairs on built trees must keep the tree join");

    // -- workload 2: unindexed primary-filter join --------------------------
    println!();
    println!("-- unindexed primary-filter join ({n_uniform} x {n_uniform}, 'FILTER', dop=4) --");
    let geoms = counties::generate(n_uniform, &US_EXTENT, 32);
    let db = session();
    load_table(&db, "a", &geoms);
    load_table(&db, "b", &geoms);
    let (c_pt, t_pt) = best3(|| count(&db, &join_sql("partition", "FILTER", 4)));
    let (c_auto, t_auto) = best3(|| count(&db, &join_sql("auto", "FILTER", 4)));
    let pick = chosen(&db);
    // The honest static tree-join cost on unindexed inputs: build both
    // indexes, query, drop the session. One shot (index builds are not
    // amortizable here — that is the point).
    let (c_ix, t_ix) = timed(|| {
        let db2 = session();
        load_table(&db2, "a", &geoms);
        load_table(&db2, "b", &geoms);
        for t in ["a", "b"] {
            db2.execute(&format!("CREATE INDEX {t}_x ON {t}(geom) INDEXTYPE IS SPATIAL_INDEX"))
                .unwrap();
        }
        count(&db2, &join_sql("rtree", "FILTER", 4))
    });
    assert_eq!(c_pt, c_auto, "auto changed the result");
    assert_eq!(c_pt, c_ix, "engines disagree");
    println!("   partition {}  rtree(build+join) {}  auto picked '{pick}'", secs(t_pt), secs(t_ix));
    report("unindexed-filter", t_auto, &[("partition", t_pt), ("rtree+build", t_ix)], quick);
    assert_eq!(pick, "partition", "unindexed inputs must go straight to the grid partition");

    // -- workload 3: hotspot-skew join, indexed -----------------------------
    println!();
    println!("-- hotspot join, indexed ({n_hot} x {n_hot}, 70% cluster, dop=4) --");
    let geoms = hotspot::generate(n_hot, &US_EXTENT, 0.7, 35);
    let db = session();
    load_table(&db, "a", &geoms);
    load_table(&db, "b", &geoms);
    for t in ["a", "b"] {
        db.execute(&format!("CREATE INDEX {t}_x ON {t}(geom) INDEXTYPE IS SPATIAL_INDEX")).unwrap();
        db.execute(&format!("ANALYZE TABLE {t}")).unwrap();
    }
    let (c_rt, t_rt) = best3(|| count(&db, &join_sql("rtree", "intersect", 4)));
    let (c_pt, t_pt) = best3(|| count(&db, &join_sql("partition", "intersect", 4)));
    let (c_auto, t_auto) = best3(|| count(&db, &join_sql("auto", "intersect", 4)));
    assert_eq!(c_rt, c_pt, "engines disagree");
    assert_eq!(c_rt, c_auto, "auto changed the result");
    let pick = chosen(&db);
    println!("   rtree {}  partition {}  auto picked '{pick}'", secs(t_rt), secs(t_pt));
    report("hotspot-indexed", t_auto, &[("rtree", t_rt), ("partition", t_pt)], quick);

    // -- workload 4: selective window, index vs functional ------------------
    println!();
    println!("-- selective window filter, indexed vs functional ({n_uniform} rows) --");
    let geoms = counties::generate(n_uniform, &US_EXTENT, 33);
    let db = session();
    load_table(&db, "t", &geoms);
    db.execute("CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    db.execute("ANALYZE TABLE t").unwrap();
    // Twin without an index: the functional-scan static plan.
    let twin = session();
    load_table(&twin, "t", &geoms);
    let window = "SELECT COUNT(*) FROM t WHERE SDO_RELATE(geom, \
                  SDO_GEOMETRY('POLYGON ((-104 38, -100 38, -100 41, -104 41, -104 38))'), \
                  'ANYINTERACT') = 'TRUE'";
    let (c_auto, t_auto) = best3(|| count(&db, window));
    let (c_fn, t_fn) = best3(|| count(&twin, window));
    assert_eq!(c_auto, c_fn, "filter paths disagree");
    println!("   index prefilter (auto) {}  functional scan {}", secs(t_auto), secs(t_fn));
    report("selective-window", t_auto, &[("index", t_auto), ("functional", t_fn)], quick);

    // -- workload 5: top-k by distance --------------------------------------
    println!();
    println!("-- top-k by distance, kNN pushdown vs full sort ({n_topk} rows, k=10) --");
    let geoms = counties::generate(n_topk, &US_EXTENT, 34);
    let db = session();
    load_table(&db, "t", &geoms);
    db.execute("CREATE INDEX t_x ON t(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    let knn_q = "SELECT id FROM t \
                 ORDER BY SDO_DISTANCE(geom, SDO_POINT(-100, 38)) LIMIT 10";
    // A second order key defeats the pushdown: the static sort plan.
    let sort_q = "SELECT id FROM t \
                  ORDER BY SDO_DISTANCE(geom, SDO_POINT(-100, 38)), id LIMIT 10";
    let ids = |db: &Database, sql: &str| -> Vec<i64> {
        db.execute(sql).unwrap().rows.iter().map(|r| r[0].as_integer().unwrap()).collect()
    };
    let (r_knn, t_knn) = best3(|| ids(&db, knn_q));
    let res_knn = peak_resident(&db);
    let (r_sort, t_sort) = best3(|| ids(&db, sort_q));
    let res_sort = peak_resident(&db);
    assert_eq!(r_knn, r_sort, "pushdown changed the top-k order");
    println!(
        "   knn pushdown {} ({res_knn} resident rows)  full sort {} ({res_sort} resident rows)",
        secs(t_knn),
        secs(t_sort)
    );
    report("top-k", t_knn, &[("knn", t_knn), ("sort", t_sort)], quick);
    assert!(
        res_knn * 10 <= res_sort,
        "kNN pushdown must hold >=10x fewer resident rows: {res_knn} vs {res_sort}"
    );

    println!();
    println!("OK: auto tracked the best static plan on all workloads");
}
