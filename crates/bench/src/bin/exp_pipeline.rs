//! Streaming vs. materializing executor: peak resident rows and time.
//!
//! A `TABLE(SPATIAL_JOIN)` self-join over a shared-boundary county grid
//! emits roughly nine pairs per county. With `WHERE 1 = 1` the COUNT
//! fast path is defeated, so both executors must drive the full scan +
//! filter pipeline: the materializing executor binds every pair (plus
//! the joined copy) before counting, while the streaming executor keeps
//! only batches in flight. The experiment reports wall-clock time and
//! the `peak_resident_rows` gauge at three join cardinalities, then
//! shows `LIMIT` cutting the traversal short.
//!
//! ```sh
//! cargo run --release -p sdo-bench --bin exp_pipeline
//! SDO_SCALE=0.0001 cargo run -p sdo-bench --bin exp_pipeline   # smoke test
//! ```

use sdo_bench::*;
use sdo_datagen::{counties, US_EXTENT};

fn peak_resident(db: &sdo_dbms::Database) -> u64 {
    db.last_profile()
        .and_then(|p| p.root.metric("peak_resident_rows"))
        .expect("every SELECT reports peak_resident_rows")
}

fn main() {
    println!("== streaming vs materializing pipeline: peak resident rows ==");
    println!(
        "{:>10} {:>10} | {:>11} {:>11} | {:>11} {:>11} | {:>9}",
        "counties", "pairs", "mat time", "mat peak", "strm time", "strm peak", "reduction"
    );

    let mut worst_reduction = f64::INFINITY;
    for target_pairs in [10_000usize, 100_000, 1_000_000] {
        // ~9 intersecting pairs per county (self + 8 jittered neighbours).
        let n = scaled(target_pairs / 9, 64);
        let db = session();
        load_table(&db, "t", &counties::generate(n, &US_EXTENT, 42));
        db.execute("CREATE INDEX t_sidx ON t(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
        // Keep the materialized run within the session budget.
        db.execute("ALTER SESSION SET max_resident_rows = 100000000").unwrap();
        let sql = "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
                   't', 'geom', 't', 'geom', 'intersect')) WHERE 1 = 1";

        db.execute("ALTER SESSION SET materialize = on").unwrap();
        let (pairs, mat_t) = timed(|| count(&db, sql));
        let mat_peak = peak_resident(&db);

        db.execute("ALTER SESSION SET materialize = off").unwrap();
        let (pairs2, strm_t) = timed(|| count(&db, sql));
        let strm_peak = peak_resident(&db);
        assert_eq!(pairs, pairs2, "executors disagree on cardinality");

        let reduction = mat_peak as f64 / strm_peak.max(1) as f64;
        // Only joins much larger than a batch can show the contrast;
        // at smoke scales the whole result fits in one batch.
        if pairs > 8 * 1024 {
            worst_reduction = worst_reduction.min(reduction);
        }
        println!(
            "{:>10} {:>10} | {:>11} {:>11} | {:>11} {:>11} | {:>8.1}x",
            n,
            pairs,
            secs(mat_t),
            mat_peak,
            secs(strm_t),
            strm_peak,
            reduction
        );
    }
    if worst_reduction.is_finite() {
        println!("worst-case peak-memory reduction: {worst_reduction:.1}x");
        assert!(
            worst_reduction >= 5.0,
            "streaming should hold at least 5x fewer resident rows than materializing"
        );
    } else {
        println!("(joins too small to contrast peaks at this scale)");
    }

    // LIMIT early termination: the limited scan closes the pipeline
    // after one batch, abandoning the rest of the R-tree traversal.
    println!("\n== LIMIT early termination on the pair scan ==");
    let n = scaled(40_000, 400);
    let db = session();
    load_table(&db, "t", &counties::generate(n, &US_EXTENT, 42));
    db.execute("CREATE INDEX t_sidx ON t(geom) INDEXTYPE IS SPATIAL_INDEX").unwrap();
    let scan = "SELECT rid1, rid2 FROM TABLE(SPATIAL_JOIN( \
                't', 'geom', 't', 'geom', 'intersect'))";

    let before = db.counters().snapshot();
    let (full, full_t) = timed(|| db.execute(scan).unwrap().rows.len());
    let full_work = db.counters().diff(&before).total();

    let before = db.counters().snapshot();
    let (limited, limited_t) =
        timed(|| db.execute(&format!("{scan} LIMIT 10")).unwrap().rows.len());
    let limited_work = db.counters().diff(&before).total();

    println!("full scan : {:>9} rows  {:>10}  {:>10} work units", full, secs(full_t), full_work);
    println!(
        "LIMIT 10  : {:>9} rows  {:>10}  {:>10} work units ({:.1}% of full)",
        limited,
        secs(limited_t),
        limited_work,
        100.0 * limited_work as f64 / full_work.max(1) as f64
    );
    assert_eq!(limited, 10.min(full));
    if full > 8 * 1024 {
        assert!(limited_work < full_work, "LIMIT must abandon part of the traversal");
    }
}
