//! Crash-recovery smoke: kill a writing process mid-workload, reopen
//! the directory, and verify the recovered state is a consistent
//! committed prefix with heap and spatial index in agreement.
//!
//! ```sh
//! # the whole experiment (spawns its own victim child):
//! cargo run --release -p sdo-bench --bin exp_recovery -- run /tmp/sdo-recovery
//!
//! # the victim child (never exits on its own):
//! cargo run --release -p sdo-bench --bin exp_recovery -- child /tmp/sdo-recovery
//! ```
//!
//! `run` spawns `child` against a fresh directory, lets it commit
//! transactions for a moment, kills it without warning (SIGKILL — no
//! destructors, no flushes), then reopens the directory and checks:
//!
//! 1. recovery succeeds and reports a committed prefix;
//! 2. every committed transaction's two-row pair is all-or-nothing;
//! 3. the rebuilt R-tree answers a window probe at every pair location
//!    exactly like the recovered heap.

use sdo_dbms::Database;
use sdo_storage::Value;
use std::process::{Command, Stdio};
use std::time::Duration;

/// Each transaction inserts this many rows at one location; recovery
/// must keep or discard them together.
const ROWS_PER_TXN: i64 = 2;

fn pair_poly(loc: i64) -> Value {
    let x = (loc * 10) as f64;
    let x1 = x + 1.0;
    let wkt = format!("POLYGON (({x} 0, {x1} 0, {x1} 1, {x} 1, {x} 0))");
    Value::geometry(sdo_geom::wkt::parse_wkt(&wkt).expect("valid wkt"))
}

/// The victim: open `dir`, create schema on first run, then commit
/// two-row transactions at increasing locations forever.
fn child(dir: &str) -> ! {
    let db = Database::open(dir).expect("open data dir");
    sdo_core::register_spatial(&db);
    let fresh = db.execute("SELECT COUNT(*) FROM a").is_err();
    if fresh {
        db.execute("CREATE TABLE a (id NUMBER, geom SDO_GEOMETRY)").expect("create table");
        db.execute(
            "CREATE INDEX a_x ON a(geom) INDEXTYPE IS SPATIAL_INDEX \
             PARAMETERS ('tree_fanout=8')",
        )
        .expect("create index");
    } else {
        db.recover_indexes().expect("recover indexes");
    }
    // Resume after the last committed transaction so locations stay
    // unique across crash-and-restart rounds.
    let committed = if fresh {
        0
    } else {
        db.execute("SELECT COUNT(*) FROM a").expect("count").count().unwrap_or(0) / ROWS_PER_TXN
    };
    let mut loc = committed + 1;
    loop {
        let mut t = db.begin();
        for _ in 0..ROWS_PER_TXN {
            t.insert("a", vec![Value::Integer(loc), pair_poly(loc)]).expect("insert");
        }
        t.commit().expect("commit");
        loc += 1;
    }
}

fn verify(dir: &str) -> Result<(), String> {
    let db = Database::open(dir).map_err(|e| format!("reopen failed: {e}"))?;
    sdo_core::register_spatial(&db);
    let rebuilt = db.recover_indexes().map_err(|e| format!("index recovery failed: {e}"))?;
    let report = db.last_recovery().ok_or("no recovery report")?;
    println!(
        "recovery: {} committed, {} discarded, {} DML applied, {} indexes rebuilt",
        report.committed_txns, report.discarded_txns, report.dml_applied, rebuilt
    );
    if report.committed_txns == 0 {
        return Err("victim was killed before committing anything — raise the sleep".into());
    }
    if rebuilt != 1 {
        return Err(format!("expected 1 rebuilt index, got {rebuilt}"));
    }

    let count = |sql: &str| -> Result<i64, String> {
        db.execute(sql)
            .map_err(|e| format!("{sql}: {e}"))?
            .count()
            .ok_or_else(|| format!("{sql}: no count"))
    };
    let total = count("SELECT COUNT(*) FROM a")?;
    if total % ROWS_PER_TXN != 0 {
        return Err(format!("torn transaction: {total} rows is not a multiple of {ROWS_PER_TXN}"));
    }
    let txns = total / ROWS_PER_TXN;
    println!("heap: {total} rows = {txns} complete transactions");

    // Committed locations are a gapless prefix 1..=txns, each pair
    // all-or-nothing, and the R-tree agrees with the heap everywhere.
    for loc in 1..=txns + 2 {
        let want = if loc <= txns { ROWS_PER_TXN } else { 0 };
        let by_id = count(&format!("SELECT COUNT(*) FROM a WHERE id = {loc}"))?;
        if by_id != want {
            return Err(format!("id {loc}: heap has {by_id} rows, expected {want}"));
        }
        let x0 = (loc * 10) as f64 - 0.5;
        let x1 = (loc * 10) as f64 + 1.5;
        let by_index = count(&format!(
            "SELECT COUNT(*) FROM a WHERE SDO_RELATE(geom, SDO_GEOMETRY('POLYGON (({x0} -0.5, \
             {x1} -0.5, {x1} 1.5, {x0} 1.5, {x0} -0.5))'), 'ANYINTERACT') = 'TRUE'"
        ))?;
        if by_index != want {
            return Err(format!("location {loc}: index found {by_index}, heap implies {want}"));
        }
    }
    println!("ok: committed prefix of {txns} transactions, heap and index agree");
    Ok(())
}

fn run(dir: &str) -> Result<(), String> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut victim = Command::new(exe)
        .args(["child", dir])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn victim: {e}"))?;
    // Let it commit for a moment, then kill it cold: SIGKILL runs no
    // destructors — whatever the WAL holds is all that survives.
    std::thread::sleep(Duration::from_millis(1500));
    victim.kill().map_err(|e| format!("kill victim: {e}"))?;
    let _ = victim.wait();
    verify(dir)?;
    // Second round: reopen-and-keep-writing, then crash again — the
    // recovered directory must stay writable and recoverable.
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut victim = Command::new(exe)
        .args(["child", dir])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("respawn victim: {e}"))?;
    std::thread::sleep(Duration::from_millis(1000));
    victim.kill().map_err(|e| format!("kill victim: {e}"))?;
    let _ = victim.wait();
    verify(dir)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match (args.get(1).map(String::as_str), args.get(2)) {
        (Some("child"), Some(dir)) => child(dir),
        (Some("run"), Some(dir)) => {
            if let Err(e) = run(dir) {
                eprintln!("FAILED: {e}");
                std::process::exit(1);
            }
        }
        _ => {
            eprintln!("usage: exp_recovery run|child <data-dir>");
            std::process::exit(2);
        }
    }
}
