//! Filter-kernel microbench (DESIGN.md "Filter kernels").
//!
//! ```sh
//! cargo run --release -p sdo-bench --bin exp_filter -- all
//! cargo run --release -p sdo-bench --bin exp_filter -- primary
//! cargo run --release -p sdo-bench --bin exp_filter -- secondary
//! cargo run --release -p sdo-bench --bin exp_filter -- --quick
//! ```
//!
//! * `primary` — scalar vs batch (SoA chunk scans + plane-sweep) vs
//!   simd (runtime-dispatched vector scans + vectorized sweep) MBR
//!   candidate generation through [`JoinCursor`] on bulk-loaded trees
//!   with a large fanout, so internal node pairs cross
//!   `SWEEP_THRESHOLD` and leaf scans exercise the chunked kernels.
//! * `--quick` — a small CI smoke: asserts `kernel=simd` beats
//!   `kernel=batch` by ≥1.2× on a large-node join when a vector ISA
//!   is dispatched, or prints a waiver note on hosts stuck on the
//!   scalar fallback (no AVX2/NEON, or `SDO_FORCE_SCALAR_KERNEL`).
//! * `secondary` — naive per-call `relate`/`within_distance` vs
//!   [`PreparedGeometry`] (decoded-once edges + segment index + cached
//!   interior point) over bbox-overlapping candidate pairs on point,
//!   linestring and polygon workloads.
//!
//! Both halves assert the fast path returns exactly the baseline's
//! result counts before reporting a speedup.

use sdo_bench::*;
use sdo_datagen::{block_groups, stars, SKY_EXTENT, US_EXTENT};
use sdo_geom::{
    relate, Geometry, LineString, Point, Polygon, PreparedGeometry, Rect, RelateMask, Ring,
};
use sdo_rtree::{JoinCursor, JoinPredicate, KernelMode, RTree, RTreeParams};
use std::time::Duration;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "primary" => primary(),
        "secondary" => secondary(),
        "all" => {
            primary();
            secondary();
        }
        "--quick" | "quick" => quick(),
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(2);
        }
    }
}

/// Best-of-`reps` wall time of `f`, which must return the same count
/// every repetition.
fn best_of<T: Eq + std::fmt::Debug>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let (mut out, mut best) = timed(&mut f);
    for _ in 1..reps {
        let (o, t) = timed(&mut f);
        assert_eq!(o, out, "non-deterministic benchmark result");
        out = o;
        best = best.min(t);
    }
    (out, best)
}

// ---------------------------------------------------------------- primary

/// Drain a join cursor, counting candidate pairs without buffering
/// them all.
fn drain_join(
    left: &RTree<u32>,
    right: &RTree<u32>,
    pred: JoinPredicate,
    mode: KernelMode,
) -> usize {
    let mut cursor = JoinCursor::new(left, right, pred).with_kernel(mode);
    let mut n = 0usize;
    loop {
        let batch = cursor.next_batch(8192);
        if batch.is_empty() {
            break;
        }
        n += batch.len();
    }
    n
}

fn bulk_tree(geoms: &[Geometry], fanout: usize) -> RTree<u32> {
    let items: Vec<(Rect, u32)> =
        geoms.iter().enumerate().map(|(i, g)| (g.bbox(), i as u32)).collect();
    RTree::bulk_load(items, RTreeParams::with_fanout(fanout))
}

/// Long-thin horizontal strips (roads/hydrology-style MBRs): high
/// x-overlap but rare true overlap, so the filter kernels — not result
/// emission — dominate the join.
fn thin_strips(n: usize, seed: u64) -> Vec<Geometry> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            let (x, y) = (next() * 340.0, next() * 85.0);
            let w = 2.0 + next() * 6.0;
            let h = 0.002 + next() * 0.01;
            Geometry::Polygon(Polygon::from_rect(&Rect::new(x, y, x + w, y + h)))
        })
        .collect()
}

fn primary() {
    println!("== exp_filter: primary filter, scalar vs batch vs simd MBR kernels ==");
    println!("(simd dispatch: {})", sdo_rtree::dispatched().name());
    let fanout = 128;
    let workloads: Vec<(&str, Vec<Geometry>, JoinPredicate)> = vec![
        (
            "stars/intersect",
            stars::generate(scaled(250_000, 20_000), &SKY_EXTENT, 21),
            JoinPredicate::Intersects,
        ),
        (
            "stars/within-dist",
            stars::generate(scaled(250_000, 20_000), &SKY_EXTENT, 22),
            JoinPredicate::WithinDistance(SKY_EXTENT.width() * 2e-4),
        ),
        (
            "blockgroups/intersect",
            block_groups::generate(scaled(230_000, 20_000), &US_EXTENT, 23),
            JoinPredicate::Intersects,
        ),
        (
            "strips/intersect",
            thin_strips(scaled(230_000, 20_000), 0x243F_6A88_85A3_08D3),
            JoinPredicate::Intersects,
        ),
    ];
    println!(
        "{:>22} {:>9} {:>11} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "workload", "n", "cand pairs", "scalar", "batch", "simd", "b/scalar", "simd/b"
    );
    for (name, geoms, pred) in workloads {
        let tree = bulk_tree(&geoms, fanout);
        let (c_scalar, t_scalar) =
            best_of(3, || drain_join(&tree, &tree, pred, KernelMode::Scalar));
        let (c_batch, t_batch) = best_of(3, || drain_join(&tree, &tree, pred, KernelMode::Batch));
        let (c_simd, t_simd) = best_of(3, || drain_join(&tree, &tree, pred, KernelMode::Simd));
        assert_eq!(c_scalar, c_batch, "kernel modes disagree on {name}");
        assert_eq!(c_scalar, c_simd, "kernel modes disagree on {name}");
        println!(
            "{:>22} {:>9} {:>11} {:>10} {:>10} {:>10} {:>9} {:>9}",
            name,
            geoms.len(),
            c_batch,
            secs(t_scalar),
            secs(t_batch),
            secs(t_simd),
            speedup(t_scalar, t_batch),
            speedup(t_batch, t_simd)
        );
    }
    println!("(fanout {fanout}: node pairs cross SWEEP_THRESHOLD, leaves use chunk scans)\n");
}

/// CI smoke: one large-node self-join, batch vs simd, small enough to
/// finish in seconds. Exits non-zero when a vector ISA is dispatched
/// but the simd kernel fails to clear 1.2× over batch.
fn quick() {
    let isa = sdo_rtree::dispatched();
    println!("== exp_filter --quick: simd vs batch smoke (dispatch: {}) ==", isa.name());
    let geoms = thin_strips(60_000, 0x243F_6A88_85A3_08D3);
    let tree = bulk_tree(&geoms, 128);
    let pred = JoinPredicate::Intersects;
    let (c_batch, t_batch) = best_of(5, || drain_join(&tree, &tree, pred, KernelMode::Batch));
    let (c_simd, t_simd) = best_of(5, || drain_join(&tree, &tree, pred, KernelMode::Simd));
    assert_eq!(c_batch, c_simd, "kernel modes disagree");
    let ratio = t_batch.as_secs_f64() / t_simd.as_secs_f64().max(1e-12);
    println!(
        "pairs {} batch {} simd {} speedup {:.2}x",
        c_batch,
        secs(t_batch),
        secs(t_simd),
        ratio
    );
    if isa == sdo_rtree::SimdIsa::Scalar {
        println!("WAIVED: scalar dispatch (no vector ISA or SDO_FORCE_SCALAR_KERNEL set)");
        return;
    }
    assert!(ratio >= 1.2, "simd kernel must beat batch by >=1.2x on vector hosts, got {ratio:.2}x");
    println!("OK: simd >= 1.2x over batch");
}

// -------------------------------------------------------------- secondary

/// A simple 64-vertex wobbled-circle polygon centred at `(cx, cy)`.
fn wobbly_polygon(cx: f64, cy: f64, r: f64, verts: usize, phase: f64) -> Geometry {
    let pts: Vec<Point> = (0..verts)
        .map(|i| {
            let t = i as f64 / verts as f64 * std::f64::consts::TAU;
            let rr = r * (1.0 + 0.25 * (7.0 * t + phase).sin());
            Point::new(cx + rr * t.cos(), cy + rr * t.sin())
        })
        .collect();
    Geometry::Polygon(Polygon::from_exterior(Ring::new(pts).expect("wobbled ring")))
}

/// A `verts`-vertex meandering linestring starting at `(x, y)`.
fn wobbly_line(x: f64, y: f64, step: f64, verts: usize, phase: f64) -> Geometry {
    let pts: Vec<Point> = (0..verts)
        .map(|i| {
            let t = i as f64;
            Point::new(x + t * step, y + step * 2.0 * (0.9 * t + phase).sin())
        })
        .collect();
    Geometry::LineString(LineString::new(pts).expect("line"))
}

/// Lay `n` geometries on a jittered `ceil(sqrt(n))`-column grid whose
/// footprints overlap their neighbours, so a bbox self-join yields a
/// few candidates per geometry (the join's steady state).
fn grid_layout(n: usize, mut make: impl FnMut(f64, f64, f64, f64) -> Geometry) -> Vec<Geometry> {
    let cols = (n as f64).sqrt().ceil() as usize;
    let cell = 10.0;
    (0..n)
        .map(|i| {
            let (gx, gy) = ((i % cols) as f64, (i / cols) as f64);
            let phase = i as f64 * 0.7;
            make(gx * cell + phase.sin(), gy * cell + phase.cos(), cell, phase)
        })
        .collect()
}

/// Bbox-overlapping unordered pairs `(i, j)` with `i < j`, found via a
/// batch R-tree self-join (the primary filter's output).
fn candidate_pairs(geoms: &[Geometry]) -> Vec<(usize, usize)> {
    let tree = bulk_tree(geoms, 32);
    let mut cursor = JoinCursor::new(&tree, &tree, JoinPredicate::Intersects);
    let mut pairs = Vec::new();
    loop {
        let batch = cursor.next_batch(8192);
        if batch.is_empty() {
            break;
        }
        pairs.extend(
            batch
                .iter()
                .filter(|(_, a, _, b)| a < b)
                .map(|(_, a, _, b)| (*a as usize, *b as usize)),
        );
    }
    pairs
}

/// One secondary-filter workload: evaluate `masks`/`dist` over every
/// candidate pair, naive vs prepared, and report hit counts + times.
/// The prepared time INCLUDES building every [`PreparedGeometry`]
/// (the join prepares each row once and reuses it across its pairs).
fn secondary_workload(name: &str, geoms: Vec<Geometry>, masks: &[RelateMask], dist: Option<f64>) {
    let pairs = candidate_pairs(&geoms);
    let (hits_naive, t_naive) = best_of(3, || {
        pairs
            .iter()
            .filter(|&&(i, j)| match dist {
                Some(d) => relate::within_distance(&geoms[i], &geoms[j], d),
                None => relate::relate_any(&geoms[i], &geoms[j], masks),
            })
            .count()
    });
    let (hits_prep, t_prep) = best_of(3, || {
        let prepared: Vec<PreparedGeometry> =
            geoms.iter().map(|g| PreparedGeometry::new(g.clone())).collect();
        pairs
            .iter()
            .filter(|&&(i, j)| match dist {
                Some(d) => prepared[i].within_distance(&prepared[j], d),
                None => prepared[i].relate_any(&prepared[j], masks),
            })
            .count()
    });
    assert_eq!(hits_naive, hits_prep, "prepared path disagrees on {name}");
    println!(
        "{:>24} {:>9} {:>8} {:>12} {:>12} {:>9}",
        name,
        pairs.len(),
        hits_naive,
        secs(t_naive),
        secs(t_prep),
        speedup(t_naive, t_prep)
    );
}

fn secondary() {
    println!("== exp_filter: secondary filter, naive vs prepared geometries ==");
    let n = scaled(40_000, 2_000);
    let anyinteract = [RelateMask::AnyInteract];
    let containment =
        [RelateMask::Inside, RelateMask::Contains, RelateMask::CoveredBy, RelateMask::Covers];
    println!(
        "{:>24} {:>9} {:>8} {:>12} {:>12} {:>9}",
        "workload", "pairs", "hits", "naive", "prepared", "speedup"
    );
    // Polygon-heavy: 64-vertex wobbled circles, the headline case.
    // Radius 0.55*cell leaves a mix of touching and bbox-only-overlap
    // pairs, so the naive path pays full O(n*m) scans on the misses.
    secondary_workload(
        "polygon64/anyinteract",
        grid_layout(n / 4, |x, y, cell, ph| wobbly_polygon(x, y, cell * 0.55, 64, ph)),
        &anyinteract,
        None,
    );
    // Nested pairs: a small polygon sits inside each big one, so the
    // containment masks must fully verify (every vertex + no edge
    // crossing) instead of early-exiting on the first miss.
    let nested: Vec<Geometry> =
        grid_layout(n / 8, |x, y, cell, ph| wobbly_polygon(x, y, cell * 0.72, 256, ph))
            .into_iter()
            .enumerate()
            .flat_map(|(i, big)| {
                let c = big.bbox().center();
                [big, wobbly_polygon(c.x, c.y, 10.0 * 0.26, 256, i as f64 * 1.3)]
            })
            .collect();
    secondary_workload("polygon256/containment", nested, &containment, None);
    secondary_workload(
        "polygon64/withindist",
        grid_layout(n / 4, |x, y, cell, ph| wobbly_polygon(x, y, cell * 0.6, 64, ph)),
        &anyinteract,
        Some(2.5),
    );
    // Linestrings: 32-vertex meanders.
    secondary_workload(
        "line32/anyinteract",
        grid_layout(n / 4, |x, y, cell, ph| wobbly_line(x, y, cell / 24.0, 32, ph)),
        &anyinteract,
        None,
    );
    // Points against fat polygons: covers_point-style probes.
    let mixed: Vec<Geometry> = grid_layout(n / 4, |x, y, cell, ph| {
        if ((ph * 10.0) as usize).is_multiple_of(3) {
            wobbly_polygon(x, y, cell * 0.9, 64, ph)
        } else {
            Geometry::Point(Point::new(x, y))
        }
    });
    secondary_workload("point-vs-polygon64", mixed, &anyinteract, None);
    println!("(prepared time includes building every PreparedGeometry once)\n");
}
