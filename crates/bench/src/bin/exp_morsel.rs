//! Morsel-driven parallel executor: speedup over the serial pipeline.
//!
//! ```sh
//! cargo run --release -p sdo-bench --bin exp_morsel
//! cargo run --release -p sdo-bench --bin exp_morsel -- --quick   # CI smoke
//! SDO_SCALE=0.02 cargo run -p sdo-bench --bin exp_morsel         # tiny
//! ```
//!
//! Three single-table workloads, each swept over
//! `ALTER SESSION SET parallel_dop` 1/2/4/8 (DESIGN.md "Morsel-driven
//! execution"):
//!
//! * **scan + residual filter** — `WHERE id >= 0` keeps every row, so
//!   the exchange's overhead (fan-out, reorder merge, charge
//!   transfer) is measured against near-free per-row work. Speedup
//!   here is bounded by merge bandwidth, not CPU.
//! * **scan + spatial filter** — an unindexed `SDO_RELATE` window
//!   runs one exact geometry test per row: the embarrassingly
//!   parallel case the exchange exists for.
//! * **top-k by distance** — `ORDER BY SDO_DISTANCE(...), id LIMIT k`
//!   (the second key defeats the kNN pushdown) drives the per-worker
//!   partial-sort path with the coordinator merging `dop` runs.
//!
//! Every dop must return bit-identical rows to dop 1; `--quick`
//! additionally asserts the spatial filter reaches ≥1.5× and top-k
//! ≥1.3× at dop 4, or prints an explicit waiver on hosts with fewer
//! than four cores.

use sdo_bench::*;
use sdo_datagen::{counties, US_EXTENT};
use sdo_dbms::Database;
use std::time::Duration;

const DOPS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "quick");
    if quick {
        // CI smoke: fixed size; a smaller morsel keeps every dop
        // saturated with work even at 20k rows.
        sdo_dbms::set_morsel_rows(1024);
        run(20_000, quick);
    } else {
        run(scaled(200_000, 60_000), quick);
    }
}

/// Best-of-3 wall time; the closure must be deterministic.
fn best3<T: PartialEq + std::fmt::Debug>(mut f: impl FnMut() -> T) -> (T, Duration) {
    let (mut out, mut best) = timed(&mut f);
    for _ in 1..3 {
        let (o, t) = timed(&mut f);
        assert_eq!(o, out, "non-deterministic benchmark result");
        out = o;
        best = best.min(t);
    }
    (out, best)
}

fn set_dop(db: &Database, dop: usize) {
    db.execute(&format!("ALTER SESSION SET parallel_dop = {dop}")).unwrap();
}

/// Run `sql` at every dop, asserting each result matches dop 1 and
/// printing one table row per dop. Returns `(dop, best wall)` pairs.
fn sweep(db: &Database, label: &str, sql: &str) -> Vec<(usize, Duration)> {
    println!();
    println!("-- {label} --");
    let mut times = Vec::new();
    let mut baseline: Option<Vec<Vec<sdo_storage::Value>>> = None;
    for dop in DOPS {
        set_dop(db, dop);
        let (rows, t) = best3(|| db.execute(sql).unwrap().rows);
        match &baseline {
            None => baseline = Some(rows),
            Some(b) => assert_eq!(&rows, b, "{label}: dop {dop} changed the result"),
        }
        let base = times.first().map(|&(_, t0)| t0).unwrap_or(t);
        println!("   dop {dop}: {}  ({})", secs(t), speedup(base, t));
        times.push((dop, t));
    }
    set_dop(db, 1);
    times
}

fn at_dop(times: &[(usize, Duration)], dop: usize) -> Duration {
    times.iter().find(|&&(d, _)| d == dop).map(|&(_, t)| t).unwrap()
}

fn run(n: usize, quick: bool) {
    println!("== exp_morsel: morsel-driven parallelism vs the serial pipeline ==");
    println!("   {n} rows, dops {DOPS:?}");

    let geoms = counties::generate(n, &US_EXTENT, 41);
    let db = session();
    load_table(&db, "t", &geoms);

    let residual = sweep(&db, "scan + residual filter", "SELECT COUNT(*) FROM t WHERE id >= 0");
    let spatial = sweep(
        &db,
        "scan + spatial filter (unindexed SDO_RELATE window)",
        "SELECT COUNT(*) FROM t WHERE SDO_RELATE(geom, \
         SDO_GEOMETRY('POLYGON ((-110 32, -90 32, -90 44, -110 44, -110 32))'), \
         'ANYINTERACT') = 'TRUE'",
    );
    let topk = sweep(
        &db,
        "top-k by distance (parallel partial sort, k=10)",
        "SELECT id FROM t ORDER BY SDO_DISTANCE(geom, SDO_POINT(-100, 38)), id LIMIT 10",
    );

    println!();
    let s4 = |t: &[(usize, Duration)]| {
        at_dop(t, 1).as_secs_f64() / at_dop(t, 4).as_secs_f64().max(1e-12)
    };
    println!(
        "   dop-4 speedups: residual {:.2}x | spatial {:.2}x | top-k {:.2}x",
        s4(&residual),
        s4(&spatial),
        s4(&topk)
    );

    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    if cores < 4 {
        println!("   WAIVED: {cores} cores cannot demonstrate a dop-4 speedup");
        return;
    }
    if quick {
        assert!(
            s4(&spatial) >= 1.5,
            "spatial filter at dop 4 must reach 1.5x over serial, got {:.2}x",
            s4(&spatial)
        );
        assert!(
            s4(&topk) >= 1.3,
            "top-k at dop 4 must reach 1.3x over serial, got {:.2}x",
            s4(&topk)
        );
    }
    println!();
    println!("OK: every dop returned the serial rows");
}
