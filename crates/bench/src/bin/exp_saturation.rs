//! Multi-session saturation: N concurrent wire clients vs one engine.
//!
//! Drives the `sdo-server` front door with N concurrent clients each
//! running the partitioned spatial-join workload of `exp_partition`
//! over the wire protocol, and reports tail latency (p50/p95/p99) as
//! concurrency grows. Two regimes:
//!
//! 1. **Headroom** — the admission budget fits several statements;
//!    added clients queue briefly and throughput holds. All
//!    statements succeed.
//! 2. **Overload** — the budget fits two statements and the queue is
//!    zero-length: excess statements get clean, immediate admission
//!    rejections (never crashes, never memory blow-up), and the
//!    server keeps answering.
//!
//! ```sh
//! cargo run --release -p sdo-bench --bin exp_saturation
//! SDO_SCALE=0.0001 cargo run -p sdo-bench --bin exp_saturation   # smoke test
//! ```

use sdo_bench::*;
use sdo_datagen::{counties, US_EXTENT};
use sdo_obs::Histogram;
use sdo_server::{serve, Client, ServerConfig, ServerHandle};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-statement admission cost (the default `max_resident_rows` every
/// wire session inherits). The workload holds far fewer rows resident;
/// the cost is the worst case a statement may pin, which is what
/// admission arbitrates.
const STMT_COST: u64 = 1_000_000;

fn join_sql(dop: usize) -> String {
    format!(
        "SELECT COUNT(*) FROM TABLE( \
         SPATIAL_JOIN('a','geom','b','geom','FILTER', {dop}, -1, 'method=partition'))"
    )
}

fn ns(v: u64) -> String {
    format!("{:.1}ms", v as f64 / 1e6)
}

struct SweepOutcome {
    ok: usize,
    rejected: usize,
    failed: usize,
    wall: Duration,
    latency: Arc<Histogram>,
}

/// Run `nclients` concurrent connections, each executing the workload
/// `per_client` times; per-statement latency lands in one histogram.
fn sweep(handle: &ServerHandle, nclients: usize, per_client: usize, dop: usize) -> SweepOutcome {
    let latency = Arc::new(Histogram::latency());
    let addr = handle.addr();
    let t0 = Instant::now();
    let workers: Vec<_> = (0..nclients)
        .map(|_| {
            let latency = Arc::clone(&latency);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let sql = join_sql(dop);
                let (mut ok, mut rejected, mut failed) = (0usize, 0usize, 0usize);
                let mut counts = Vec::new();
                for _ in 0..per_client {
                    let t = Instant::now();
                    match c.execute(&sql) {
                        Ok((_, rows)) => {
                            latency.record_duration(t.elapsed());
                            ok += 1;
                            if let Some(sdo_storage::Value::Integer(n)) =
                                rows.first().and_then(|r| r.first())
                            {
                                counts.push(*n);
                            }
                        }
                        Err(e) if e.is_admission() => rejected += 1,
                        Err(_) => failed += 1,
                    }
                }
                let _ = c.close();
                (ok, rejected, failed, counts)
            })
        })
        .collect();
    let (mut ok, mut rejected, mut failed) = (0, 0, 0);
    let mut expect: Option<i64> = None;
    for w in workers {
        let (o, r, f, counts) = w.join().expect("client thread");
        ok += o;
        rejected += r;
        failed += f;
        for c in counts {
            let e = *expect.get_or_insert(c);
            assert_eq!(e, c, "concurrent execution changed the join cardinality");
        }
    }
    SweepOutcome { ok, rejected, failed, wall: t0.elapsed(), latency }
}

fn main() {
    let n = scaled(20_000, 200);
    let dop = 2;
    let per_client = 4;
    println!("== server saturation: N wire clients x spatial join ({n} x {n}, dop {dop}) ==");

    let geoms = counties::generate(n, &US_EXTENT, 17);
    let db = Arc::new(session());
    load_table(&db, "a", &geoms);
    load_table(&db, "b", &geoms);
    // Every wire session inherits this cost cap; admission charges it.
    db.set_default_option("max_resident_rows", &STMT_COST.to_string()).unwrap();

    // -- Regime 1: headroom (budget = 4 statements, generous queue) --
    let handle = serve(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig {
            memory_budget: 4 * STMT_COST,
            admission_queue: 256,
            admission_wait: Duration::from_secs(120),
            default_parallel_dop: None,
        },
    )
    .expect("bind server");

    println!();
    println!("-- headroom: budget = 4 concurrent statements, statements queue --");
    println!(
        "{:>8} {:>6} {:>9} {:>10} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "clients", "stmts", "wall", "stmt/s", "p50", "p95", "p99", "queued", "rejects"
    );
    let mut prev_queued = 0u64;
    for nclients in [1usize, 2, 4, 8, 16] {
        let out = sweep(&handle, nclients, per_client, dop);
        assert_eq!(out.failed, 0, "engine errors under load");
        assert_eq!(out.rejected, 0, "headroom regime must not reject");
        assert_eq!(out.ok, nclients * per_client);
        let stats = handle.admission().stats();
        let queued = stats.queued - prev_queued;
        prev_queued = stats.queued;
        println!(
            "{:>8} {:>6} {:>9} {:>10.1} {:>9} {:>9} {:>9} {:>8} {:>8}",
            nclients,
            out.ok,
            secs(out.wall),
            out.ok as f64 / out.wall.as_secs_f64(),
            ns(out.latency.percentile(0.50)),
            ns(out.latency.percentile(0.95)),
            ns(out.latency.percentile(0.99)),
            queued,
            out.rejected,
        );
    }
    let final_stats = handle.admission().stats();
    assert_eq!(final_stats.in_use, 0, "budget must drain after the sweep");
    handle.shutdown();

    // -- Regime 2: overload (budget = 2 statements, no queue) --
    let handle = serve(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig {
            memory_budget: 2 * STMT_COST,
            admission_queue: 0,
            admission_wait: Duration::ZERO,
            default_parallel_dop: None,
        },
    )
    .expect("bind server");

    println!();
    println!("-- overload: budget = 2 concurrent statements, zero queue --");
    println!(
        "{:>8} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "clients", "ok", "rejects", "wall", "p50", "p95", "p99"
    );
    let mut total_rejects = 0usize;
    for nclients in [4usize, 8, 16] {
        let out = sweep(&handle, nclients, per_client, dop);
        assert_eq!(out.failed, 0, "rejection must be the only failure mode");
        assert_eq!(out.ok + out.rejected, nclients * per_client);
        total_rejects += out.rejected;
        println!(
            "{:>8} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9}",
            nclients,
            out.ok,
            out.rejected,
            secs(out.wall),
            ns(out.latency.percentile(0.50)),
            ns(out.latency.percentile(0.95)),
            ns(out.latency.percentile(0.99)),
        );
    }
    println!(
        "total rejections: {total_rejects} (clean pushback; {} statements admitted engine-wide)",
        handle.admission().stats().admitted
    );
    // Overload must shed load by rejecting, and the server must still
    // be alive and correct afterwards.
    assert!(total_rejects > 0, "overload regime produced no rejections");
    let mut c = Client::connect(handle.addr()).expect("reconnect after overload");
    c.ping().expect("server alive after overload");
    let (_, rows) = c.execute("SELECT COUNT(*) FROM a").expect("query after overload");
    assert_eq!(rows, vec![vec![sdo_storage::Value::Integer(n as i64)]]);
    let metrics = c.metrics().expect("metrics after overload");
    assert!(metrics.contains("server_admission_rejected_total"));
    let _ = c.close();
    handle.shutdown();
    println!();
    println!("server alive after overload; admission metrics exported. ok");
}
