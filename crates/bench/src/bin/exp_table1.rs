//! **Table 1** — Counties self-join: nested-loop vs spatial-index join.
//!
//! Paper (Oracle10i alpha, Sun 400 MHz 4-CPU):
//!
//! ```text
//! Distance  Result   Nested   Spatial Index
//!           Size     Loop     Join
//! 0         ...      ...s     144.7s
//! d1        ...      ...s     221.9s
//! d2        ...      ...s     271.8s
//! d3        ...      ...s     331.4s
//! "Spatial-index Join is 33-55% faster"
//! ```
//!
//! We reproduce the *shape*: the table-function join beats the
//! nested-loop join at every distance, and the result size (and both
//! runtimes) grow with distance.
//!
//! Run with `SDO_SCALE=1.0` for the full 3230 counties.

use sdo_bench::*;
use sdo_datagen::{counties, PAPER_COUNTIES, US_EXTENT};

fn main() {
    let profile_flag = std::env::args().any(|a| a == "--profile");
    let n = scaled(PAPER_COUNTIES, 200);
    println!("== Table 1: counties self-join (n = {n}, SDO_SCALE = {}) ==\n", scale());
    let db = session();
    let geoms = counties::generate(n, &US_EXTENT, 2003);
    // Mean county side length controls which distances add neighbours.
    let mean_side = (US_EXTENT.width() * US_EXTENT.height() / n as f64).sqrt();
    load_table(&db, "counties", &geoms);
    let (_, t_index) = timed(|| {
        db.execute(
            "CREATE INDEX counties_sidx ON counties(geom) \
             INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('tree_fanout=32')",
        )
        .unwrap()
    });
    println!("index creation: {}\n", secs(t_index));

    // Wall-clock on an in-memory substrate understates the paper's
    // disk-bound gap, so logical reads (row fetches + index node
    // visits) are reported too: they are the machine-independent cost
    // the paper's buffer-cache-miss-bound timings track.
    println!(
        "{:>10} {:>10} {:>13} {:>13} {:>9} {:>12} {:>12}",
        "distance", "result", "nested-loop", "spatial-join", "gain", "nl reads", "join reads"
    );
    let logical_reads = |c: &sdo_storage::Counters| {
        sdo_storage::Counters::get(&c.row_fetches)
            + sdo_storage::Counters::get(&c.rtree_node_reads)
            + sdo_storage::Counters::get(&c.btree_node_visits)
    };
    for frac in [0.0, 0.5, 1.0, 2.0] {
        let d = mean_side * frac;
        let (nl_pred, tf_pred) = if d == 0.0 {
            (
                "SDO_RELATE(a.geom, b.geom, 'intersect') = 'TRUE'".to_string(),
                "'intersect'".to_string(),
            )
        } else {
            (
                format!("SDO_WITHIN_DISTANCE(a.geom, b.geom, {d}) = 'TRUE'"),
                format!("'distance={d}'"),
            )
        };
        db.counters().reset();
        let (nl, t_nl) = timed(|| {
            count(&db, &format!("SELECT COUNT(*) FROM counties a, counties b WHERE {nl_pred}"))
        });
        let nl_reads = logical_reads(db.counters());
        db.counters().reset();
        let (tf, t_tf) = timed(|| {
            count(
                &db,
                &format!(
                    "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
                     'counties','geom','counties','geom',{tf_pred}))"
                ),
            )
        });
        let tf_reads = logical_reads(db.counters());
        assert_eq!(nl, tf, "strategies disagree at distance {d}");
        println!(
            "{:>10.3} {:>10} {:>13} {:>13} {:>9} {:>12} {:>12}",
            d,
            nl,
            secs(t_nl),
            secs(t_tf),
            speedup(t_nl, t_tf),
            nl_reads,
            tf_reads
        );
    }
    println!("\npaper claim: spatial-index join 33-55% faster than nested loop");

    // `--profile`: re-run the intersect join and dump its operator
    // profile (text, or JSON with SDO_PROFILE=json).
    if profile_flag {
        println!("\n== operator profile: parallel spatial join (dop=2) ==");
        let _ = count(
            &db,
            "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
             'counties','geom','counties','geom','intersect', 2))",
        );
        report_last_profile(&db);
    }
}
