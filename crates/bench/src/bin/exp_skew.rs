//! Skewed-workload parallel join: static round-robin vs work-stealing.
//!
//! One dense Gaussian hotspot plus uniform background
//! ([`sdo_datagen::hotspot`]) is the adversarial case for static task
//! partitioning: nearly all real join work lands in the few subtree
//! pairs covering the hotspot, pinning one slave while the rest idle.
//! The work-stealing schedule (the default) splits oversized pairs and
//! lets idle slaves steal, so no slave starves.
//!
//! ```sh
//! cargo run --release -p sdo-bench --bin exp_skew
//! SDO_SCALE=0.002 cargo run -p sdo-bench --bin exp_skew   # smoke test
//! ```

use sdo_bench::*;
use sdo_datagen::{hotspot, US_EXTENT};
use sdo_obs::OpProfile;

fn main() {
    let n = scaled(250_000, 400);
    println!("== skewed-workload join: static vs work-stealing scheduling ==");
    println!("(hotspot data: {n} boxes, 70% in one Gaussian cluster)");
    let geoms = hotspot::generate(n, &US_EXTENT, 0.7, 7);
    let db = session();
    load_table(&db, "h", &geoms);
    db.execute(
        "CREATE INDEX h_x ON h(geom) INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('tree_fanout=32')",
    )
    .unwrap();

    println!(
        "{:>4} {:>9} {:>12} {:>10} {:>12} {:>8} {:>20}",
        "dop", "schedule", "join time", "wallclock", "work model", "stolen", "slave tasks min/max"
    );
    let mut expect = None;
    let mut static_base = None;
    for dop in [1usize, 2, 4, 8] {
        for schedule in ["static", "steal"] {
            let sql = format!(
                "SELECT COUNT(*) FROM TABLE( \
                 SPATIAL_JOIN('h','geom','h','geom','intersect', {dop}, -1, \
                 'schedule={schedule}'))"
            );
            let (c, t) = timed(|| count(&db, &sql));
            let e = *expect.get_or_insert(c);
            assert_eq!(e, c, "schedule changed the result cardinality");
            let base = *static_base.get_or_insert(t);
            let model = match schedule {
                "steal" => modeled_steal_join_speedup(&geoms, dop),
                _ => modeled_join_speedup(&geoms, dop),
            };
            let (stolen, spread) = slave_task_stats(&db);
            println!(
                "{:>4} {:>9} {:>12} {:>10} {:>11.2}x {:>8} {:>20}",
                dop,
                schedule,
                secs(t),
                speedup(base, t),
                model,
                stolen,
                spread
            );
        }
    }
    println!("(wall-clock is bounded by host cores; the work model is the balance quality)");

    println!();
    println!("-- coarse tasks: fanout-8 index, forced descent level 1, dop=4 --");
    // A shallow-fanout index makes level 1 only a handful of subtree
    // pairs, so one hot pair is an entire slave's static assignment —
    // the adversarial case the work-stealing scheduler exists for.
    load_table(&db, "h2", &geoms);
    db.execute(
        "CREATE INDEX h2_x ON h2(geom) INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('tree_fanout=8')",
    )
    .unwrap();
    for schedule in ["static", "steal"] {
        let sql = format!(
            "SELECT COUNT(*) FROM TABLE( \
             SPATIAL_JOIN('h2','geom','h2','geom','intersect', 4, 1, 'schedule={schedule}'))"
        );
        let (c, t) = timed(|| count(&db, &sql));
        assert_eq!(expect.unwrap_or(c), c, "schedule changed the result cardinality");
        let rows = per_slave_rows(&db);
        let total: u64 = rows.iter().sum();
        let max = rows.iter().copied().max().unwrap_or(1).max(1);
        println!(
            "{:>9}: {} balance {:.2}x (rows per slave: {:?})",
            schedule,
            secs(t),
            total as f64 / max as f64,
            rows
        );
    }
    println!("(balance = total slave output / busiest slave — 4.00x is perfect for dop=4)");

    println!();
    println!("-- EXPLAIN ANALYZE (dop=4, work-stealing) --");
    let out = db
        .execute(
            "EXPLAIN ANALYZE SELECT COUNT(*) FROM TABLE( \
             SPATIAL_JOIN('h','geom','h','geom','intersect', 4))",
        )
        .unwrap();
    for row in &out.rows {
        for v in row {
            if let Some(s) = v.as_text() {
                println!("{s}");
            }
        }
    }
}

/// Per-slave `tasks_executed`/`tasks_stolen` from the most recent
/// statement's profile: total steals plus the min/max executed spread.
/// Static slaves record no task metrics, shown as `-`.
fn slave_task_stats(db: &sdo_dbms::Database) -> (String, String) {
    let Some(profile) = db.last_profile() else {
        return ("-".into(), "-".into());
    };
    let executed: Vec<u64> = slave_metric(&profile.root, "tasks_executed");
    if executed.is_empty() {
        return ("-".into(), "-".into());
    }
    let stolen: u64 = slave_metric(&profile.root, "tasks_stolen").iter().sum();
    let min = executed.iter().min().copied().unwrap_or(0);
    let max = executed.iter().max().copied().unwrap_or(0);
    (stolen.to_string(), format!("{min}/{max}"))
}

/// Values of `name` on every profile node that records it.
fn slave_metric(root: &OpProfile, name: &str) -> Vec<u64> {
    root.walk().into_iter().filter_map(|(_, node)| node.metric(name)).collect()
}

/// Rows produced by each parallel slave in the last statement.
fn per_slave_rows(db: &sdo_dbms::Database) -> Vec<u64> {
    let Some(profile) = db.last_profile() else {
        return Vec::new();
    };
    profile
        .root
        .walk()
        .into_iter()
        .filter(|(_, node)| node.name.starts_with("slave "))
        .map(|(_, node)| node.rows)
        .collect()
}
