//! **Table 2** (and **Figure 1**) — star-catalog self-join scaling.
//!
//! Paper:
//!
//! ```text
//! Data     Result  Nested   Index    Index
//! size     size    loop     Join(1)  Join(2)
//! 25       ...     6.2s*    6.2s     3.47s
//! ...
//! 250K     ...     5024s    864s     676s
//! "Index-based join using table functions is nearly 6 times faster";
//! "gains from parallel processing are nearly 50%"
//! ```
//!
//! We reproduce the shape: at tiny sizes nested loop ≈ index join; as
//! size grows the index join wins by an increasing factor, and DOP=2
//! improves on DOP=1. (Parallel gain tracks the host's core count.)
//!
//! `--figure1` additionally prints the subtree-pair decomposition of
//! the two indexes (Figure 1) and verifies it covers the full join.
//!
//! Run with `SDO_SCALE=1.0` for the full 250K stars.

use sdo_bench::*;
use sdo_datagen::{stars, PAPER_STARS, SKY_EXTENT};
use sdo_storage::Counters;

fn main() {
    let figure1 = std::env::args().any(|a| a == "--figure1");
    let max = scaled(PAPER_STARS, 2_000);
    let all = stars::generate(max, &SKY_EXTENT, 1977);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("== Table 2: star self-join scaling (max = {max}, SDO_SCALE = {}) ==", scale());
    println!(
        "host cores: {cores} — wall-clock parallel gains are bounded by the host; \
         'model(2)' is the work-partition speedup\n(total secondary-filter work / \
         critical-path slave work), the machine-independent analogue of the paper's gain\n"
    );

    // Paper sizes: 25 up to 250K by subset selection; we sweep powers
    // of ~10 from 25 to max.
    let mut sizes = vec![25usize];
    while *sizes.last().unwrap() * 10 <= max {
        sizes.push(sizes.last().unwrap() * 10);
    }
    if *sizes.last().unwrap() != max {
        sizes.push(max);
    }

    println!(
        "{:>9} {:>10} {:>12} {:>12} {:>12} {:>8} {:>8} {:>9} {:>9}",
        "size", "result", "nested", "join(1)", "join(2)", "nl/j1", "j1/j2", "model(2)", "rd nl/j1"
    );
    for &size in &sizes {
        let subset = &all[..size.min(all.len())];
        let db = session();
        load_table(&db, "s", subset);
        db.execute(
            "CREATE INDEX s_sidx ON s(geom) INDEXTYPE IS SPATIAL_INDEX \
             PARAMETERS ('tree_fanout=32')",
        )
        .unwrap();

        // Nested loop becomes prohibitive at scale — exactly the
        // paper's point; cap it like they capped their patience.
        let nl_cap = 30_000;
        let logical_reads = |c: &Counters| {
            Counters::get(&c.row_fetches)
                + Counters::get(&c.rtree_node_reads)
                + Counters::get(&c.btree_node_visits)
        };
        db.counters().reset();
        let (nl_count, t_nl) = if size <= nl_cap {
            let (c, t) = timed(|| {
                count(
                    &db,
                    "SELECT COUNT(*) FROM s a, s b \
                     WHERE SDO_RELATE(a.geom, b.geom, 'intersect') = 'TRUE'",
                )
            });
            (Some(c), Some(t))
        } else {
            (None, None)
        };
        let nl_reads = logical_reads(db.counters());

        // Two runs, keep the faster: the first run of a large join pays
        // one-time allocator growth that would skew the comparison.
        let run = |dop: usize| {
            let sql = format!(
                "SELECT COUNT(*) FROM TABLE( \
                 SPATIAL_JOIN('s','geom','s','geom','intersect', {dop}))"
            );
            let (c1, t1) = timed(|| count(&db, &sql));
            let (c2, t2) = timed(|| count(&db, &sql));
            assert_eq!(c1, c2);
            (c1, t1.min(t2))
        };
        let (c1, t1) = run(1);
        // Separate single execution for the logical-read measurement
        // (the timing runs above execute twice).
        db.counters().reset();
        let _ = count(
            &db,
            "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN('s','geom','s','geom','intersect', 1))",
        );
        let j1_reads = logical_reads(db.counters());
        let (c2, t2) = run(2);
        assert_eq!(c1, c2);
        if let Some(nc) = nl_count {
            assert_eq!(nc, c1, "nested loop disagrees at size {size}");
        }
        let model2 = modeled_join_speedup(subset, 2);
        let reads_ratio = if nl_count.is_some() {
            format!("{:.1}x", nl_reads as f64 / j1_reads.max(1) as f64)
        } else {
            "-".into()
        };
        println!(
            "{:>9} {:>10} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8.2}x {:>9}",
            size,
            c1,
            t_nl.map(secs).unwrap_or_else(|| "(skipped)".into()),
            secs(t1),
            secs(t2),
            t_nl.map(|t| speedup(t, t1)).unwrap_or_else(|| "-".into()),
            speedup(t1, t2),
            model2,
            reads_ratio,
        );
    }

    if figure1 {
        figure1_decomposition(&all);
    }
    println!("\npaper claims: index join ~6x faster than nested loop at scale;");
    println!("parallel gains ~50% on their 4-CPU box (here: bounded by host cores)");
}

/// Figure 1: join pairs of subtrees for parallelism.
fn figure1_decomposition(all: &[sdo_geom::Geometry]) {
    println!("\n== Figure 1: subtree-pair decomposition ==");
    let db = session();
    let n = all.len().min(5_000);
    load_table(&db, "f", &all[..n]);
    db.execute(
        "CREATE INDEX f_sidx ON f(geom) INDEXTYPE IS SPATIAL_INDEX \
         PARAMETERS ('tree_fanout=16')",
    )
    .unwrap();
    let serial =
        count(&db, "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN('f','geom','f','geom','intersect'))");
    for level in [0u32, 1, 2] {
        let pairs = db
            .execute(&format!(
                "SELECT COUNT(*) FROM TABLE(SUBTREE_PAIRS('f_sidx','f_sidx',{level},'intersect'))"
            ))
            .unwrap()
            .count()
            .unwrap();
        let via_pairs = count(
            &db,
            &format!(
                "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
                 CURSOR(SELECT lnode, rnode FROM TABLE( \
                 SUBTREE_PAIRS('f_sidx','f_sidx',{level},'intersect'))), \
                 'f','geom','f','geom','intersect', 2))"
            ),
        );
        println!(
            "  descend {level} level(s): {pairs:>5} subtree-pair tasks -> {via_pairs} rows \
             (serial: {serial})"
        );
        assert_eq!(via_pairs, serial);
    }
}
