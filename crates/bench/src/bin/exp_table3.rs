//! **Table 3** (and **Figure 2**) — parallel index creation on
//! block-group polygons.
//!
//! Paper:
//!
//! ```text
//! Processors  Quadtree Creation  R-tree Creation
//! 1           ...s               454s
//! 2           ...s               296s
//! 4           ...s               258s
//! "index creation speeds up by a factor of 2.6 on 4 processors for
//!  Quadtree ... R-tree creation does not involve expensive
//!  tessellation and is faster even in the sequential case and speeds
//!  up by a factor of 1.8"
//! ```
//!
//! Reproduced shape: quadtree creation is slower than R-tree creation
//! at every DOP (tessellation dominates), and both speed up with DOP,
//! the quadtree by more.
//!
//! `--figure2` prints the tessellation pipeline stage trace.
//! Run with `SDO_SCALE=1.0` for the full 230K block groups.

use parking_lot::RwLock;
use sdo_bench::*;
use sdo_core::create;
use sdo_core::params::{IndexKindParam, SpatialIndexParams};
use sdo_datagen::{block_groups, PAPER_BLOCK_GROUPS, US_EXTENT};
use sdo_storage::{Counters, DataType, Schema, Table, Value};
use std::sync::Arc;

fn main() {
    let figure2 = std::env::args().any(|a| a == "--figure2");
    let n = scaled(PAPER_BLOCK_GROUPS, 1_000);
    println!(
        "== Table 3: parallel index creation (n = {n} complex polygons, SDO_SCALE = {}) ==\n",
        scale()
    );
    let data = block_groups::generate(n, &US_EXTENT, 7);
    let avg: usize = data.iter().map(|g| g.num_points()).sum::<usize>() / n;
    println!("average vertices/polygon: {avg}\n");

    let mut table =
        Table::new("BG", Schema::of(&[("ID", DataType::Integer), ("GEOM", DataType::Geometry)]));
    for (i, g) in data.into_iter().enumerate() {
        table.insert(vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
    }
    let table = Arc::new(RwLock::new(table));
    let counters = Arc::new(Counters::new());

    let qparams = SpatialIndexParams {
        kind: IndexKindParam::Quadtree,
        sdo_level: 8,
        extent: Some(US_EXTENT),
        ..Default::default()
    };
    let rparams = SpatialIndexParams { extent: Some(US_EXTENT), ..Default::default() };

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "host cores: {cores} — wall-clock speedups are bounded by the host. 'model' is the\n\
         Amdahl speedup from the measured serial stage split (parallel stage / dop + \n\
         serial merge stage), the machine-independent analogue of the paper's column.\n"
    );
    println!(
        "{:>11} {:>15} {:>8} {:>15} {:>8}",
        "processors", "quadtree", "model", "r-tree", "model"
    );
    // Warm-up builds: the first heavy allocation pass would otherwise
    // be charged to whichever configuration runs first.
    let _ = create::build_quadtree(&table, 1, &qparams, 1, Arc::clone(&counters)).unwrap();
    let _ = create::build_rtree(&table, 1, &rparams, 1, Arc::clone(&counters)).unwrap();

    // Measure the stage split once at dop = 1 for the Amdahl model.
    let ((_, q1), tq1) =
        timed(|| create::build_quadtree(&table, 1, &qparams, 1, Arc::clone(&counters)).unwrap());
    let ((_, r1), tr1) =
        timed(|| create::build_rtree(&table, 1, &rparams, 1, Arc::clone(&counters)).unwrap());
    let amdahl = |stats: &create::CreationStats, dop: usize| {
        let p = stats.parallel_stage.as_secs_f64();
        let s = stats.merge_stage.as_secs_f64();
        (p + s) / (p / dop as f64 + s)
    };
    println!("{:>11} {:>15} {:>7.2}x {:>15} {:>7.2}x", 1, secs(tq1), 1.0, secs(tr1), 1.0);
    for dop in [2usize, 4] {
        let (_, tq) = timed(|| {
            create::build_quadtree(&table, 1, &qparams, dop, Arc::clone(&counters)).unwrap()
        });
        let (_, tr) =
            timed(|| create::build_rtree(&table, 1, &rparams, dop, Arc::clone(&counters)).unwrap());
        println!(
            "{:>11} {:>15} {:>7.2}x {:>15} {:>7.2}x",
            dop,
            secs(tq),
            amdahl(&q1, dop),
            secs(tr),
            amdahl(&r1, dop)
        );
    }
    println!("\npaper claims: quadtree 2.6x speedup at 4 processors, r-tree 1.8x;");
    println!("r-tree faster than quadtree at every DOP (no tessellation)");

    if figure2 {
        println!("\n== Figure 2: quadtree creation pipeline (dop = 4) ==");
        let (result, _) = timed(|| {
            create::build_quadtree(&table, 1, &qparams, 4, Arc::clone(&counters)).unwrap()
        });
        let (index, stats) = result;
        println!("  stage 1 — table fn partitioning: {:?} input rows", stats.partition_sizes);
        println!(
            "  stage 2 — parallel tessellation:  {} ({} tile rows)",
            secs(stats.parallel_stage),
            stats.stage_rows
        );
        println!("  stage 3 — B-tree bulk pack:       {}", secs(stats.merge_stage));
        println!(
            "  result: {} geometries -> {} tile entries at level {}",
            index.len(),
            index.tile_entries(),
            index.level()
        );
    }
}
