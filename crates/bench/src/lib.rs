//! Shared harness for the experiment binaries and criterion benches.
//!
//! Every table and figure of the paper has a binary here that
//! regenerates it (see DESIGN.md §4 for the index):
//!
//! * `exp_table1` — counties self-join, nested-loop vs spatial join,
//! * `exp_table2` — star-catalog join scaling with 1 and 2 slaves,
//! * `exp_table3` — parallel quadtree/R-tree creation (plus the
//!   Figure 2 stage trace via `--figure2`),
//! * `exp_ablations` — fetch-order, pipeline-memory, bulk-vs-insert,
//!   sdo-level and DOP-sweep ablations.
//!
//! Dataset sizes default to laptop scale; set `SDO_SCALE=1.0` to run
//! the paper's full cardinalities (3230 counties / 250K stars / 230K
//! block groups).

use parking_lot::RwLock;
use sdo_core::join::{ExactPredicate, JoinSide, SpatialJoin, SpatialJoinConfig};
use sdo_dbms::Database;
use sdo_geom::{Geometry, RelateMask};
use sdo_rtree::{RTree, RTreeParams};
use sdo_storage::{Counters, DataType, RowId, Schema, Table, Value};
use sdo_tablefunc::{collect_all, execute_parallel, TableFunction, TaskQueue};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scale factor for dataset sizes, from `SDO_SCALE` (default 0.05).
pub fn scale() -> f64 {
    std::env::var("SDO_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.05)
        .clamp(0.0001, 10.0)
}

/// A paper cardinality scaled by [`scale`], with a floor.
pub fn scaled(paper_n: usize, floor: usize) -> usize {
    ((paper_n as f64 * scale()) as usize).max(floor)
}

/// Fresh session with the spatial cartridge registered.
pub fn session() -> Database {
    let db = Database::new();
    sdo_core::register_spatial(&db);
    db
}

/// Create `name (id NUMBER, geom SDO_GEOMETRY)` and load geometries.
pub fn load_table(db: &Database, name: &str, geoms: &[Geometry]) {
    db.execute(&format!("CREATE TABLE {name} (id NUMBER, geom SDO_GEOMETRY)")).unwrap();
    for (i, g) in geoms.iter().enumerate() {
        db.insert_row(name, vec![Value::Integer(i as i64), Value::geometry(g.clone())]).unwrap();
    }
}

/// Time a closure, returning `(result, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed())
}

/// `COUNT(*)` convenience.
pub fn count(db: &Database, sql: &str) -> i64 {
    db.execute(sql).unwrap().count().expect("COUNT(*) result")
}

/// Print the operator profile of the most recent statement executed on
/// `db`: indented text by default, one JSON object per profile when
/// `SDO_PROFILE=json`. Follows up with the global metrics registry
/// (node-visit counters, span histograms) when it is non-empty.
pub fn report_last_profile(db: &Database) {
    let Some(profile) = db.last_profile() else {
        eprintln!("(no profile recorded)");
        return;
    };
    let json =
        std::env::var("SDO_PROFILE").map(|v| v.eq_ignore_ascii_case("json")).unwrap_or(false);
    if json {
        println!("{}", sdo_obs::export::profile_to_json(&profile));
    } else {
        print!("{}", profile.render_text());
    }
    let snap = sdo_obs::global().snapshot();
    if !(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty()) {
        if json {
            println!("{}", sdo_obs::export::registry_to_json(&snap));
        } else {
            print!("{}", sdo_obs::export::registry_to_text(&snap));
        }
    }
}

/// Pretty seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Speedup string `a/b`.
pub fn speedup(base: Duration, other: Duration) -> String {
    format!("{:.2}x", base.as_secs_f64() / other.as_secs_f64().max(1e-12))
}

/// Direct core-API self-join side over `geoms` (no SQL session needed).
fn self_join_side(geoms: &[Geometry]) -> (Arc<RwLock<Table>>, Arc<RTree<RowId>>) {
    let mut t =
        Table::new("S", Schema::of(&[("ID", DataType::Integer), ("GEOM", DataType::Geometry)]));
    let mut items = Vec::new();
    for (i, g) in geoms.iter().enumerate() {
        let bb = g.bbox();
        let rid = t.insert(vec![Value::Integer(i as i64), Value::geometry(g.clone())]).unwrap();
        items.push((bb, rid));
    }
    (Arc::new(RwLock::new(t)), Arc::new(RTree::bulk_load(items, RTreeParams::with_fanout(32))))
}

/// Work-partition speedup model for a DOP-`dop` self-join: run each
/// slave's share of the subtree-pair decomposition with private
/// counters and compare total work against the maximum slave's work
/// (the parallel critical path).
pub fn modeled_join_speedup(geoms: &[Geometry], dop: usize) -> f64 {
    let (table, tree) = self_join_side(geoms);
    let exact = ExactPredicate::Masks(vec![RelateMask::AnyInteract]);
    let (_, tasks) = sdo_core::functions::choose_descent_level(&tree, &tree, &exact, dop);
    if tasks.is_empty() {
        return 1.0;
    }
    let mut slave_work = vec![0u64; dop];
    for (slot, chunk) in tasks
        .iter()
        .enumerate()
        .fold(vec![Vec::new(); dop], |mut acc, (i, t)| {
            acc[i % dop].push(*t);
            acc
        })
        .into_iter()
        .enumerate()
    {
        let counters = Arc::new(Counters::new());
        let mut join = SpatialJoin::with_stack(
            JoinSide { table: Arc::clone(&table), column: 1, tree: Arc::clone(&tree) },
            JoinSide { table: Arc::clone(&table), column: 1, tree: Arc::clone(&tree) },
            exact.clone(),
            SpatialJoinConfig::default(),
            Arc::clone(&counters),
            chunk,
        );
        let _ = collect_all(&mut join, 4096).unwrap();
        // Secondary-filter exact tests dominate join cost.
        slave_work[slot] =
            Counters::get(&counters.exact_tests) + Counters::get(&counters.mbr_tests);
    }
    let total: u64 = slave_work.iter().sum();
    let max = *slave_work.iter().max().unwrap_or(&1);
    total as f64 / max.max(1) as f64
}

/// The same critical-path model under the work-stealing scheduler: the
/// slaves share one [`TaskQueue`] through the real parallel executor,
/// each with private counters, so per-slave work reflects the dynamic
/// balance (splits + steals) rather than the static task assignment.
pub fn modeled_steal_join_speedup(geoms: &[Geometry], dop: usize) -> f64 {
    let (table, tree) = self_join_side(geoms);
    let exact = ExactPredicate::Masks(vec![RelateMask::AnyInteract]);
    let (_, tasks) = sdo_core::functions::choose_descent_level(&tree, &tree, &exact, dop);
    if tasks.is_empty() {
        return 1.0;
    }
    let queue = TaskQueue::seed_round_robin(tasks, dop);
    let counters: Vec<Arc<Counters>> = (0..dop).map(|_| Arc::new(Counters::new())).collect();
    let instances: Vec<Box<dyn TableFunction>> = (0..dop)
        .map(|worker| {
            Box::new(SpatialJoin::with_shared_tasks(
                JoinSide { table: Arc::clone(&table), column: 1, tree: Arc::clone(&tree) },
                JoinSide { table: Arc::clone(&table), column: 1, tree: Arc::clone(&tree) },
                exact.clone(),
                SpatialJoinConfig::default(),
                Arc::clone(&counters[worker]),
                Arc::clone(&queue),
                worker,
            )) as Box<dyn TableFunction>
        })
        .collect();
    let _ = execute_parallel(instances, 1024).unwrap();
    let work: Vec<u64> = counters
        .iter()
        .map(|c| Counters::get(&c.exact_tests) + Counters::get(&c.mbr_tests))
        .collect();
    let total: u64 = work.iter().sum();
    total as f64 / work.iter().copied().max().unwrap_or(1).max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_datagen::{counties, US_EXTENT};

    #[test]
    fn harness_helpers() {
        let db = session();
        let geoms = counties::generate(20, &US_EXTENT, 1);
        load_table(&db, "t", &geoms);
        assert_eq!(count(&db, "SELECT COUNT(*) FROM t"), 20);
        assert!(scaled(1000, 10) >= 10);
        let (v, _) = timed(|| 41 + 1);
        assert_eq!(v, 42);
    }
}
