//! Microbenchmarks for the substrate primitives every experiment sits
//! on: MBR algebra, exact predicates, WKT, B+tree, R-tree probes and
//! tessellation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdo_datagen::{block_groups, counties, US_EXTENT};
use sdo_geom::{Rect, RelateMask};
use sdo_quadtree::tessellate;
use sdo_rtree::{RTree, RTreeParams};
use sdo_storage::BTree;

fn bench_rect_ops(c: &mut Criterion) {
    let a = Rect::new(0.0, 0.0, 10.0, 10.0);
    let b = Rect::new(5.0, 5.0, 15.0, 15.0);
    c.bench_function("rect/intersects", |bench| {
        bench.iter(|| black_box(&a).intersects(black_box(&b)))
    });
    c.bench_function("rect/mindist", |bench| bench.iter(|| black_box(&a).mindist(black_box(&b))));
    c.bench_function("rect/union_enlargement", |bench| {
        bench.iter(|| black_box(&a).enlargement(black_box(&b)))
    });
}

fn bench_relate(c: &mut Criterion) {
    let polys = counties::generate(64, &US_EXTENT, 3);
    c.bench_function("relate/anyinteract_counties", |bench| {
        let mut i = 0;
        bench.iter(|| {
            i = (i + 1) % 63;
            sdo_geom::relate(
                black_box(&polys[i]),
                black_box(&polys[i + 1]),
                RelateMask::AnyInteract,
            )
        })
    });
    let complex = block_groups::generate(8, &US_EXTENT, 4);
    c.bench_function("relate/anyinteract_complex", |bench| {
        bench.iter(|| {
            sdo_geom::relate(
                black_box(&complex[0]),
                black_box(&complex[1]),
                RelateMask::AnyInteract,
            )
        })
    });
    c.bench_function("relate/distance_complex", |bench| {
        bench.iter(|| sdo_geom::distance(black_box(&complex[2]), black_box(&complex[3])))
    });
}

fn bench_wkt(c: &mut Criterion) {
    let g = &counties::generate(1, &US_EXTENT, 5)[0];
    let wkt = sdo_geom::wkt::to_wkt(g);
    c.bench_function("wkt/parse_county", |bench| {
        bench.iter(|| sdo_geom::wkt::parse_wkt(black_box(&wkt)).unwrap())
    });
    c.bench_function("wkt/write_county", |bench| {
        bench.iter(|| sdo_geom::wkt::to_wkt(black_box(g)))
    });
}

fn bench_btree(c: &mut Criterion) {
    c.bench_function("btree/insert_10k", |bench| {
        bench.iter(|| {
            let mut t = BTree::with_order(64);
            for i in 0..10_000u64 {
                t.insert(i.wrapping_mul(0x9E3779B97F4A7C15));
            }
            t.len()
        })
    });
    let keys: Vec<u64> = (0..100_000u64).collect();
    let t = BTree::bulk_build(keys, 64);
    c.bench_function("btree/contains", |bench| {
        let mut i = 0u64;
        bench.iter(|| {
            i = (i + 7919) % 100_000;
            t.contains(black_box(&i))
        })
    });
}

fn bench_rtree_probe(c: &mut Criterion) {
    let items: Vec<(Rect, u64)> = (0..50_000u64)
        .map(|i| {
            let x = ((i.wrapping_mul(2654435761)) % 100_000) as f64 / 100.0;
            let y = ((i.wrapping_mul(40503)) % 100_000) as f64 / 100.0;
            (Rect::new(x, y, x + 1.0, y + 1.0), i)
        })
        .collect();
    let tree = RTree::bulk_load(items, RTreeParams::with_fanout(32));
    c.bench_function("rtree/window_50k", |bench| {
        let mut i = 0.0f64;
        bench.iter(|| {
            i = (i + 37.0) % 900.0;
            tree.query_window(&Rect::new(i, i, i + 20.0, i + 20.0)).len()
        })
    });
    c.bench_function("rtree/knn10_50k", |bench| {
        bench.iter(|| tree.query_knn(black_box(&sdo_geom::Point::new(500.0, 500.0)), 10))
    });
    c.bench_function("rtree/nearest_iter_100_of_50k", |bench| {
        let q = Rect::new(500.0, 500.0, 501.0, 501.0);
        bench.iter(|| tree.nearest_iter(q).take(100).count())
    });
}

fn bench_tessellate(c: &mut Criterion) {
    let g = &block_groups::generate(4, &US_EXTENT, 6)[0];
    c.bench_function("quadtree/tessellate_complex_l8", |bench| {
        bench.iter(|| tessellate(black_box(g), &US_EXTENT, 8).len())
    });
}

criterion_group!(
    benches,
    bench_rect_ops,
    bench_relate,
    bench_wkt,
    bench_btree,
    bench_rtree_probe,
    bench_tessellate
);
criterion_main!(benches);
