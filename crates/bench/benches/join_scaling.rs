//! Criterion version of Table 2: star self-join over growing subset
//! sizes and degrees of parallelism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdo_bench::{load_table, session};
use sdo_datagen::{stars, SKY_EXTENT};
use sdo_dbms::Database;

fn setup(n: usize) -> Database {
    let db = session();
    let geoms = stars::generate(n, &SKY_EXTENT, 1977);
    load_table(&db, "s", &geoms);
    db.execute(
        "CREATE INDEX s_sidx ON s(geom) INDEXTYPE IS SPATIAL_INDEX \
         PARAMETERS ('tree_fanout=32')",
    )
    .unwrap();
    db
}

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_star_join");
    group.sample_size(10);
    for size in [500usize, 2_000, 8_000] {
        let db = setup(size);
        group.throughput(Throughput::Elements(size as u64));
        for dop in [1usize, 2] {
            let sql = format!(
                "SELECT COUNT(*) FROM TABLE( \
                 SPATIAL_JOIN('s','geom','s','geom','intersect', {dop}))"
            );
            group.bench_with_input(
                BenchmarkId::new(format!("join_dop{dop}"), size),
                &sql,
                |b, sql| b.iter(|| db.execute(sql).unwrap().count().unwrap()),
            );
        }
        if size <= 2_000 {
            group.bench_with_input(BenchmarkId::new("nested_loop", size), &db, |b, db| {
                b.iter(|| {
                    db.execute(
                        "SELECT COUNT(*) FROM s a, s b \
                         WHERE SDO_RELATE(a.geom, b.geom, 'intersect') = 'TRUE'",
                    )
                    .unwrap()
                    .count()
                    .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
