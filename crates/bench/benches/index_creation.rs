//! Criterion version of Table 3: quadtree and R-tree index creation
//! over complex polygons at DOP 1, 2 and 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parking_lot::RwLock;
use sdo_core::create;
use sdo_core::params::{IndexKindParam, SpatialIndexParams};
use sdo_datagen::{block_groups, US_EXTENT};
use sdo_storage::{Counters, DataType, Schema, Table, Value};
use std::sync::Arc;

const N: usize = 1_200;

fn geometry_table() -> Arc<RwLock<Table>> {
    let mut t =
        Table::new("BG", Schema::of(&[("ID", DataType::Integer), ("GEOM", DataType::Geometry)]));
    for (i, g) in block_groups::generate(N, &US_EXTENT, 7).into_iter().enumerate() {
        t.insert(vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
    }
    Arc::new(RwLock::new(t))
}

fn bench_table3(c: &mut Criterion) {
    let table = geometry_table();
    let counters = Arc::new(Counters::new());
    let mut group = c.benchmark_group("table3_index_creation");
    group.sample_size(10);
    let qparams = SpatialIndexParams {
        kind: IndexKindParam::Quadtree,
        sdo_level: 7,
        extent: Some(US_EXTENT),
        ..Default::default()
    };
    let rparams = SpatialIndexParams { extent: Some(US_EXTENT), ..Default::default() };
    for dop in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("quadtree", dop), &dop, |b, &dop| {
            b.iter(|| {
                create::build_quadtree(&table, 1, &qparams, dop, Arc::clone(&counters))
                    .unwrap()
                    .0
                    .tile_entries()
            })
        });
        group.bench_with_input(BenchmarkId::new("rtree", dop), &dop, |b, &dop| {
            b.iter(|| {
                create::build_rtree(&table, 1, &rparams, dop, Arc::clone(&counters))
                    .unwrap()
                    .0
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
