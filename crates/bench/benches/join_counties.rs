//! Criterion version of Table 1: county self-join, nested loop vs
//! table-function spatial join, at intersection and at a distance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdo_bench::{load_table, session};
use sdo_datagen::{counties, US_EXTENT};
use sdo_dbms::Database;

const N: usize = 600;

fn setup() -> Database {
    let db = session();
    let geoms = counties::generate(N, &US_EXTENT, 2003);
    load_table(&db, "counties", &geoms);
    db.execute(
        "CREATE INDEX counties_sidx ON counties(geom) \
         INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('tree_fanout=32')",
    )
    .unwrap();
    db
}

fn bench_table1(c: &mut Criterion) {
    let db = setup();
    let mut group = c.benchmark_group("table1_county_join");
    group.sample_size(10);
    for (label, nl_sql, tf_pred) in [
        (
            "intersect",
            "SELECT COUNT(*) FROM counties a, counties b \
             WHERE SDO_RELATE(a.geom, b.geom, 'intersect') = 'TRUE'",
            "'intersect'",
        ),
        (
            "distance",
            "SELECT COUNT(*) FROM counties a, counties b \
             WHERE SDO_WITHIN_DISTANCE(a.geom, b.geom, 1.5) = 'TRUE'",
            "'distance=1.5'",
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("nested_loop", label), &nl_sql, |b, sql| {
            b.iter(|| db.execute(sql).unwrap().count().unwrap())
        });
        let tf_sql = format!(
            "SELECT COUNT(*) FROM TABLE(SPATIAL_JOIN( \
             'counties','geom','counties','geom',{tf_pred}))"
        );
        group.bench_with_input(BenchmarkId::new("spatial_join", label), &tf_sql, |b, sql| {
            b.iter(|| db.execute(sql).unwrap().count().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
