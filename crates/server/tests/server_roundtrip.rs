//! End-to-end tests over a real TCP socket: DDL/DML/query round
//! trips, prepared statements, session isolation, admission control,
//! and the dual-protocol metrics endpoint.

use sdo_dbms::Database;
use sdo_server::{serve, Client, ClientError, ServerConfig, ServerHandle};
use sdo_storage::Value;
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

fn start(config: ServerConfig) -> (Arc<Database>, ServerHandle) {
    let db = Arc::new(Database::new());
    sdo_core::register_spatial(&db);
    let handle = serve(Arc::clone(&db), "127.0.0.1:0", config).expect("bind server");
    (db, handle)
}

fn client(handle: &ServerHandle) -> Client {
    Client::connect(handle.addr()).expect("connect")
}

#[test]
fn ddl_dml_select_roundtrip() {
    let (_db, handle) = start(ServerConfig::default());
    let mut c = client(&handle);
    c.ping().unwrap();
    c.execute("CREATE TABLE pts (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    for i in 0..10 {
        c.execute(&format!("INSERT INTO pts VALUES ({i}, SDO_GEOMETRY('POINT ({i} {i})'))"))
            .unwrap();
    }
    let (cols, rows) = c.execute("SELECT COUNT(*) FROM pts").unwrap();
    assert_eq!(cols, vec!["COUNT(*)"]);
    assert_eq!(rows, vec![vec![Value::Integer(10)]]);

    // Geometry crosses the wire as WKT and comes back as geometry.
    let (_, rows) = c.execute("SELECT geom FROM pts WHERE id = 3").unwrap();
    match &rows[0][0] {
        Value::Geometry(g) => assert_eq!(sdo_geom::wkt::to_wkt(g), "POINT (3 3)"),
        other => panic!("expected geometry, got {other:?}"),
    }

    // SQL errors come back as statement errors, connection survives.
    let err = c.execute("SELECT nope FROM missing").unwrap_err();
    assert!(matches!(err, ClientError::Server { .. }) && !err.is_admission());
    c.ping().unwrap();
    c.close().unwrap();
    handle.shutdown();
}

#[test]
fn prepared_statements_over_the_wire() {
    let (_db, handle) = start(ServerConfig::default());
    let mut c = client(&handle);
    c.execute("CREATE TABLE t (id NUMBER, name VARCHAR)").unwrap();
    let nparams = c.prepare("ins", "INSERT INTO t VALUES (?, ?)").unwrap();
    assert_eq!(nparams, 2);
    for i in 0..5 {
        c.execute_prepared("ins", &[Value::Integer(i), Value::text(format!("row{i}"))]).unwrap();
    }
    let n = c.prepare("pick", "SELECT name FROM t WHERE id = ?").unwrap();
    assert_eq!(n, 1);
    let (_, rows) = c.execute_prepared("pick", &[Value::Integer(3)]).unwrap();
    assert_eq!(rows, vec![vec![Value::text("row3")]]);

    // Wrong arity is a server-side statement error.
    let err = c.execute_prepared("pick", &[]).unwrap_err();
    assert!(matches!(err, ClientError::Server { .. }));

    c.deallocate("pick").unwrap();
    let err = c.execute_prepared("pick", &[Value::Integer(1)]).unwrap_err();
    assert!(matches!(err, ClientError::Server { .. }));
    c.close().unwrap();
    handle.shutdown();
}

#[test]
fn sessions_are_isolated_across_connections() {
    let (_db, handle) = start(ServerConfig::default());
    let mut c1 = client(&handle);
    let mut c2 = client(&handle);
    c1.execute("CREATE TABLE acc (id NUMBER, bal NUMBER)").unwrap();
    c1.execute("INSERT INTO acc VALUES (1, 100)").unwrap();

    // Both connections hold explicit transactions at the same time —
    // the old engine had a single global transaction slot.
    c1.execute("BEGIN").unwrap();
    c2.execute("BEGIN").unwrap();
    c1.execute("INSERT INTO acc VALUES (2, 200)").unwrap();

    // c2's snapshot predates c1's insert, and the insert is
    // uncommitted besides.
    let (_, rows) = c2.execute("SELECT COUNT(*) FROM acc").unwrap();
    assert_eq!(rows, vec![vec![Value::Integer(1)]]);

    c1.execute("COMMIT").unwrap();
    c2.execute("COMMIT").unwrap();
    let (_, rows) = c2.execute("SELECT COUNT(*) FROM acc").unwrap();
    assert_eq!(rows, vec![vec![Value::Integer(2)]]);

    // ALTER SESSION on c1 does not leak into c2: c1 clamps its
    // resident budget so a scan fails, c2 keeps the default.
    c1.execute("ALTER SESSION SET max_resident_rows = 1").unwrap();
    assert!(c1.execute("SELECT * FROM acc ORDER BY id").is_err());
    c2.execute("SELECT * FROM acc ORDER BY id").unwrap();

    // A dropped connection rolls its transaction back.
    c2.execute("BEGIN").unwrap();
    c2.execute("INSERT INTO acc VALUES (3, 300)").unwrap();
    drop(c2);
    // Give the server thread a moment to notice the hangup.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut c3 = client(&handle);
        let (_, rows) = c3.execute("SELECT COUNT(*) FROM acc").unwrap();
        if rows == vec![vec![Value::Integer(2)]] || std::time::Instant::now() > deadline {
            assert_eq!(rows, vec![vec![Value::Integer(2)]], "uncommitted insert must roll back");
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
}

#[test]
fn spatial_join_over_the_wire() {
    let (db, handle) = start(ServerConfig::default());
    // Load a small grid directly through the embedded API (faster
    // than wire inserts), then query over the wire.
    db.execute("CREATE TABLE sq (id NUMBER, geom SDO_GEOMETRY)").unwrap();
    for i in 0..16i64 {
        let (x, y) = ((i % 4) * 3, (i / 4) * 3);
        let wkt = format!(
            "POLYGON (({x} {y}, {x1} {y}, {x1} {y1}, {x} {y1}, {x} {y}))",
            x1 = x + 2,
            y1 = y + 2
        );
        db.execute(&format!("INSERT INTO sq VALUES ({i}, SDO_GEOMETRY('{wkt}'))")).unwrap();
    }
    let sql = "SELECT COUNT(*) FROM TABLE( \
               SPATIAL_JOIN('sq','geom','sq','geom','ANYINTERACT', 2, -1, 'method=partition'))";
    let expected = db.execute(sql).unwrap().count().unwrap();
    assert!(expected >= 16, "self-join includes self-pairs");

    let mut c = client(&handle);
    let (_, rows) = c.execute(sql).unwrap();
    assert_eq!(rows, vec![vec![Value::Integer(expected)]]);
    c.close().unwrap();
    handle.shutdown();
}

#[test]
fn admission_rejects_oversized_statements_cleanly() {
    let (_db, handle) = start(ServerConfig {
        memory_budget: 1_000_000,
        admission_queue: 2,
        admission_wait: Duration::from_millis(100),
        default_parallel_dop: None,
    });
    let mut c = client(&handle);
    // The default session cost (5M rows) exceeds the 1M budget: every
    // statement is rejected, but the connection stays healthy.
    let err = c.execute("SELECT 1 FROM DUAL").unwrap_err();
    assert!(err.is_admission(), "expected admission rejection, got {err}");

    // Dropping the session's own cap under the budget makes the same
    // connection admissible again.
    // (ALTER SESSION itself pays the old 5M toll, so it is rejected
    //  too — the engine-level API is the escape hatch for operators;
    //  here we just verify rejection is not sticky after reconnect.)
    let stats = handle.admission().stats();
    assert!(stats.rejected >= 1);
    assert_eq!(stats.in_use, 0, "rejected statements must not leak budget");
    handle.shutdown();
}

#[test]
fn admission_admits_within_budget_and_frees_on_completion() {
    let (_db, handle) = start(ServerConfig {
        memory_budget: 10_000_000,
        admission_queue: 2,
        admission_wait: Duration::from_millis(500),
        default_parallel_dop: None,
    });
    let mut c = client(&handle);
    c.execute("CREATE TABLE x (id NUMBER)").unwrap();
    c.execute("INSERT INTO x VALUES (1)").unwrap();
    c.execute("SELECT COUNT(*) FROM x").unwrap();
    let stats = handle.admission().stats();
    assert!(stats.admitted >= 3);
    assert_eq!(stats.in_use, 0, "completed statements release their slice");
    handle.shutdown();
}

#[test]
fn metrics_over_wire_and_http() {
    let (_db, handle) = start(ServerConfig::default());
    let mut c = client(&handle);
    c.execute("CREATE TABLE m (id NUMBER)").unwrap();
    let text = c.metrics().unwrap();
    assert!(text.contains("server_stmt_executed"), "missing stmt counter in:\n{text}");
    assert!(text.contains("server_sessions_active"));
    assert!(text.contains("server_admission_budget_rows"));
    assert!(text.contains("tf_pool_workers_alive"));

    // Same port, HTTP scrape.
    let mut http = std::net::TcpStream::connect(handle.addr()).unwrap();
    http.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    http.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200 OK"), "got: {response}");
    assert!(response.contains("server_stmt_executed"));

    let mut http = std::net::TcpStream::connect(handle.addr()).unwrap();
    http.write_all(b"GET /elsewhere HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    http.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 404"));

    c.close().unwrap();
    handle.shutdown();
}

#[test]
fn concurrent_clients_share_the_engine() {
    let (_db, handle) = start(ServerConfig::default());
    let mut setup = client(&handle);
    setup.execute("CREATE TABLE ledger (id NUMBER, who VARCHAR)").unwrap();
    setup.close().unwrap();

    let addr = handle.addr();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.prepare("ins", "INSERT INTO ledger VALUES (?, ?)").unwrap();
                for i in 0..25 {
                    c.execute_prepared(
                        "ins",
                        &[Value::Integer((t * 100 + i) as i64), Value::text(format!("client{t}"))],
                    )
                    .unwrap();
                }
                c.close().unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mut c = client(&handle);
    let (_, rows) = c.execute("SELECT COUNT(*) FROM ledger").unwrap();
    assert_eq!(rows, vec![vec![Value::Integer(100)]]);
    c.close().unwrap();
    handle.shutdown();
}
