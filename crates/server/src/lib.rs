#![warn(missing_docs)]
//! # sdo-server — multi-session front door for the spatial engine
//!
//! Turns the embedded engine ([`sdo_dbms::Database`]) into a network
//! service without an async runtime:
//!
//! * **Wire protocol** ([`wire`]) — length-prefixed frames
//!   (`[u32 LE len][u8 opcode][body]`) carrying SQL, prepared
//!   statements with positional `?` binds, and tagged result values
//!   (geometry travels as WKT).
//! * **Sessions** — each connection owns an engine [`Session`], so
//!   `ALTER SESSION`, explicit transactions, `EXPLAIN ANALYZE`
//!   profiles, and `PREPARE`d statements stay connection-private
//!   while every connection shares the catalog, MVCC, WAL, and the
//!   process-wide table-function slave pool.
//! * **Admission control** ([`admission`]) — a global resident-row
//!   budget, in the same currency as the engine's
//!   `max_resident_rows` accounting. Statements past the budget
//!   queue (bounded, with timeout) or get a clean retryable
//!   rejection; overload never cascades into memory exhaustion.
//! * **`/metrics`** — the same port answers HTTP `GET /metrics` with
//!   a Prometheus text exposition of engine, pool, and admission
//!   instruments ([`sdo_obs::export::registry_to_prometheus`]).
//!
//! [`Session`]: sdo_dbms::Session

pub mod admission;
pub mod server;
pub mod wire;

pub use admission::{AdmissionController, AdmissionError, AdmissionStats, Permit};
pub use server::{serve, Client, ClientError, ServerConfig, ServerHandle, WireResult};
pub use wire::ErrorKind;
