//! Memory-budget admission control.
//!
//! The engine already accounts resident rows per statement: every
//! operator pipeline charges a [`sdo_obs::MemoryGauge`] and the
//! session option `max_resident_rows` caps what one statement may
//! hold (statements past the cap spill or fail — see the dbms
//! operators). Admission control reuses that cap as its *currency*:
//! a statement's admission cost is its session's `max_resident_rows`
//! — the worst case it is allowed to pin — and the server grants
//! statements against one global budget of resident rows.
//!
//! A statement that does not fit waits in a bounded FIFO queue for
//! capacity to free up; it is *rejected* (never crashed) when the
//! queue is full, when its wait times out, or when its cost exceeds
//! the whole budget. This is how the server saturates gracefully: the
//! saturation bench drives clients past the budget and observes
//! queueing delay and clean rejections instead of memory blow-up.
//!
//! Morsel-driven parallelism does not change the currency: at
//! `parallel_dop > 1` the exchange's workers all charge the *same*
//! statement gauge their coordinator drains, so `max_resident_rows`
//! still bounds the statement's total resident rows and the admission
//! cost above remains the statement's true worst case. Parallel
//! statements burn the budget faster, not deeper.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a statement was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// `cost > budget`: the statement could never run. Carries
    /// (cost, budget).
    ExceedsBudget(u64, u64),
    /// The wait queue is at capacity.
    QueueFull,
    /// Queued, but capacity did not free up within the timeout.
    Timeout,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::ExceedsBudget(cost, budget) => write!(
                f,
                "admission rejected: statement cost {cost} rows exceeds server budget {budget}"
            ),
            AdmissionError::QueueFull => write!(f, "admission rejected: wait queue is full"),
            AdmissionError::Timeout => {
                write!(f, "admission rejected: timed out waiting for memory budget")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Whether `cost` more units fit the budget — overflow-safe, since a
/// full-range `u64` budget (and costs near it) are legal.
fn fits(in_use: u64, cost: u64, budget: u64) -> bool {
    in_use.checked_add(cost).is_some_and(|total| total <= budget)
}

#[derive(Debug, Default)]
struct State {
    /// Budget units currently granted to running statements.
    in_use: u64,
    /// Statements parked waiting for capacity.
    waiters: usize,
}

#[derive(Debug)]
struct Inner {
    state: Mutex<State>,
    freed: Condvar,
    budget: u64,
    max_queue: usize,
    max_wait: Duration,
    admitted: AtomicU64,
    queued: AtomicU64,
    rejected: AtomicU64,
}

/// Counter snapshot for tests and the `/metrics` exporter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Statements granted (including after queueing).
    pub admitted: u64,
    /// Statements that had to queue before the verdict.
    pub queued: u64,
    /// Statements rejected (all three error cases).
    pub rejected: u64,
    /// Budget units currently held by running statements.
    pub in_use: u64,
    /// Statements currently parked in the queue.
    pub waiting: usize,
}

/// Grants statements slices of a global resident-row budget.
///
/// Cloneable handle; all clones share one budget.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    inner: Arc<Inner>,
}

/// A granted budget slice. Dropping it releases the slice and wakes
/// queued statements.
#[derive(Debug)]
pub struct Permit {
    inner: Arc<Inner>,
    cost: u64,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().expect("admission state poisoned");
        st.in_use = st.in_use.saturating_sub(self.cost);
        drop(st);
        // Waiters have heterogeneous costs: a small release may fit
        // any of them, so wake them all and let each re-check.
        self.inner.freed.notify_all();
    }
}

impl AdmissionController {
    /// Controller over `budget` resident rows, parking at most
    /// `max_queue` statements for up to `max_wait` each.
    pub fn new(budget: u64, max_queue: usize, max_wait: Duration) -> Self {
        AdmissionController {
            inner: Arc::new(Inner {
                state: Mutex::new(State::default()),
                freed: Condvar::new(),
                budget,
                max_queue,
                max_wait,
                admitted: AtomicU64::new(0),
                queued: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
            }),
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> u64 {
        self.inner.budget
    }

    /// Request `cost` units, blocking (bounded) if the budget is hot.
    ///
    /// A zero cost is admitted immediately — it means the statement's
    /// session opted out of resident accounting, and admission
    /// control only arbitrates what the engine meters.
    pub fn admit(&self, cost: u64) -> Result<Permit, AdmissionError> {
        let inner = &self.inner;
        if cost > inner.budget {
            inner.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(AdmissionError::ExceedsBudget(cost, inner.budget));
        }
        let mut st = inner.state.lock().expect("admission state poisoned");
        // Fast-path admission only when nobody is parked: arrivals
        // must not overtake the queue, or a large-cost waiter starves
        // under a stream of small statements that each "fit".
        if cost != 0 && (st.waiters > 0 || !fits(st.in_use, cost, inner.budget)) {
            if st.waiters >= inner.max_queue {
                drop(st);
                inner.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(AdmissionError::QueueFull);
            }
            st.waiters += 1;
            inner.queued.fetch_add(1, Ordering::Relaxed);
            let deadline = Instant::now() + inner.max_wait;
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    st.waiters -= 1;
                    drop(st);
                    inner.rejected.fetch_add(1, Ordering::Relaxed);
                    // A departing waiter may have been what kept other
                    // parked statements out of the budget; let them
                    // re-check rather than sit out their own timeout.
                    inner.freed.notify_all();
                    return Err(AdmissionError::Timeout);
                }
                let (guard, _timed_out) =
                    inner.freed.wait_timeout(st, left).expect("admission state poisoned");
                st = guard;
                if fits(st.in_use, cost, inner.budget) {
                    st.waiters -= 1;
                    break;
                }
            }
        }
        st.in_use = st.in_use.saturating_add(cost);
        drop(st);
        inner.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(Permit { inner: Arc::clone(inner), cost })
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> AdmissionStats {
        let st = self.inner.state.lock().expect("admission state poisoned");
        AdmissionStats {
            admitted: self.inner.admitted.load(Ordering::Relaxed),
            queued: self.inner.queued.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            in_use: st.in_use,
            waiting: st.waiters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(budget: u64, queue: usize, wait_ms: u64) -> AdmissionController {
        AdmissionController::new(budget, queue, Duration::from_millis(wait_ms))
    }

    #[test]
    fn admits_within_budget_and_releases_on_drop() {
        let c = ctl(100, 4, 10);
        let p1 = c.admit(60).unwrap();
        let p2 = c.admit(40).unwrap();
        assert_eq!(c.stats().in_use, 100);
        drop(p1);
        assert_eq!(c.stats().in_use, 40);
        drop(p2);
        assert_eq!(c.stats().in_use, 0);
        assert_eq!(c.stats().admitted, 2);
    }

    #[test]
    fn oversized_cost_rejected_outright() {
        let c = ctl(100, 4, 10);
        assert_eq!(c.admit(101).unwrap_err(), AdmissionError::ExceedsBudget(101, 100));
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn zero_cost_always_admitted() {
        let c = ctl(100, 0, 1);
        let _p = c.admit(100).unwrap();
        let _q = c.admit(0).unwrap(); // fits even with a full budget
    }

    #[test]
    fn waiter_wakes_when_capacity_frees() {
        let c = ctl(100, 4, 5_000);
        let p = c.admit(100).unwrap();
        let c2 = c.clone();
        let waiter = std::thread::spawn(move || c2.admit(50).map(|_| ()));
        // Let the waiter park, then free the budget.
        while c.stats().waiting == 0 {
            std::thread::yield_now();
        }
        drop(p);
        assert_eq!(waiter.join().unwrap(), Ok(()));
        let s = c.stats();
        assert_eq!(s.queued, 1);
        assert_eq!(s.rejected, 0);
    }

    #[test]
    fn arrivals_do_not_overtake_waiters() {
        let c = ctl(100, 1, 5_000);
        let p = c.admit(60).unwrap();
        let c2 = c.clone();
        let waiter = std::thread::spawn(move || c2.admit(80).map(drop));
        while c.stats().waiting == 0 {
            std::thread::yield_now();
        }
        // 40 would fit the remaining budget, but the queue head goes
        // first: the arrival joins the queue, and with the queue full
        // it is rejected rather than admitted ahead of the waiter.
        assert_eq!(c.admit(40).unwrap_err(), AdmissionError::QueueFull);
        drop(p);
        assert_eq!(waiter.join().unwrap(), Ok(()));
    }

    #[test]
    fn full_range_budget_does_not_overflow() {
        let c = ctl(u64::MAX, 0, 1);
        let _p = c.admit(u64::MAX).unwrap();
        // in_use + cost would overflow u64; it must read as
        // over-budget, not wrap around and admit.
        assert_eq!(c.admit(u64::MAX).unwrap_err(), AdmissionError::QueueFull);
    }

    #[test]
    fn queue_overflow_and_timeout_reject() {
        let c = ctl(100, 1, 50);
        let _p = c.admit(100).unwrap();
        // First over-budget statement queues (and will time out).
        let c2 = c.clone();
        let queued = std::thread::spawn(move || c2.admit(10));
        while c.stats().waiting == 0 {
            std::thread::yield_now();
        }
        // Second finds the queue full: immediate rejection.
        assert_eq!(c.admit(10).unwrap_err(), AdmissionError::QueueFull);
        // The queued one eventually times out (permit never dropped).
        assert_eq!(queued.join().unwrap().unwrap_err(), AdmissionError::Timeout);
        assert_eq!(c.stats().rejected, 2);
        assert_eq!(c.stats().waiting, 0);
    }
}
