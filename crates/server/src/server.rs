//! The multi-session TCP server.
//!
//! One listener thread accepts connections; each connection gets its
//! own OS thread and its own engine [`Session`], so `ALTER SESSION`,
//! explicit transactions, `EXPLAIN ANALYZE` profiles, and prepared
//! statements are connection-private while all sessions share one
//! [`Database`] — and, through it, the catalog, the MVCC manager, the
//! WAL, and the process-wide table-function slave pool. Threads block
//! on socket reads (the environment has no async reactor), but query
//! *execution* is where the parallelism budget lives: concurrent
//! statements fan their slaves into the same cached pool.
//!
//! Statements pay an admission toll before running (see
//! [`crate::admission`]): the cost is the session's
//! `max_resident_rows` cap, the budget is server-global. Saturation
//! therefore queues or rejects cleanly instead of compounding memory
//! pressure.
//!
//! The listener also speaks just enough HTTP to serve Prometheus
//! scrapes: a connection whose first bytes are `GET ` is answered
//! with the metrics exposition and closed, so one port serves both
//! the wire protocol and `/metrics`.

use crate::admission::{AdmissionController, Permit};
use crate::wire::{self, req, resp, Decoder, Encoder, ErrorKind};
use sdo_dbms::{Database, DbError, Session};
use sdo_storage::Value;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Global admission budget, in resident rows (the same currency
    /// as the per-session `max_resident_rows` option).
    pub memory_budget: u64,
    /// How many statements may queue for admission at once.
    pub admission_queue: usize,
    /// How long one statement may wait for admission.
    pub admission_wait: Duration,
    /// `parallel_dop` applied to every new session (clients can still
    /// override per-connection with `ALTER SESSION`). `None` keeps the
    /// engine default — machine parallelism, clamped to `[1, 16]` —
    /// which on a loaded server lets concurrent statements oversubscribe
    /// the shared slave pool; pinning this to a small value trades
    /// single-statement latency for throughput under concurrency.
    pub default_parallel_dop: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            // Four default-sized statements in flight.
            memory_budget: 4 * sdo_dbms::SessionOptions::default().max_resident_rows,
            admission_queue: 32,
            admission_wait: Duration::from_secs(2),
            default_parallel_dop: None,
        }
    }
}

/// Handle to a running server. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the listener; connection
/// threads exit as their clients disconnect.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    admission: AdmissionController,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The admission controller (shared with live connections).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Stop accepting connections and join the listener thread.
    pub fn shutdown(mut self) {
        self.stop_listener();
    }

    fn stop_listener(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_listener();
        }
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving `db`.
pub fn serve(db: Arc<Database>, addr: &str, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let admission = AdmissionController::new(
        config.memory_budget,
        config.admission_queue,
        config.admission_wait,
    );
    let accept_stop = Arc::clone(&stop);
    let accept_admission = admission.clone();
    let default_dop = config.default_parallel_dop;
    let accept_thread =
        std::thread::Builder::new().name("sdo-server-accept".into()).spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let db = Arc::clone(&db);
                let admission = accept_admission.clone();
                let _ =
                    std::thread::Builder::new().name("sdo-server-conn".into()).spawn(move || {
                        let _ = handle_connection(stream, db, admission, default_dop);
                    });
            }
        })?;
    Ok(ServerHandle { addr: local, stop, accept_thread: Some(accept_thread), admission })
}

/// Refresh scrape-time metrics into the global registry and render
/// the Prometheus exposition.
fn metrics_text(db: &Database, admission: &AdmissionController) -> String {
    let reg = sdo_obs::global();
    // Engine + server gauges are sampled at scrape time; monotone
    // sources held outside the registry are folded in by delta so
    // the registry's counters stay monotone too.
    let set_counter = |name: &str, v: u64| {
        let c = reg.counter(name);
        c.add(v.saturating_sub(c.get()));
    };
    reg.gauge("server_sessions_active").set(db.session_count() as i64);
    let a = admission.stats();
    set_counter("server_admission_admitted_total", a.admitted);
    set_counter("server_admission_queued_total", a.queued);
    set_counter("server_admission_rejected_total", a.rejected);
    // The registry's gauges are i64; a full-range u64 budget must
    // clamp, not wrap negative.
    let as_gauge = |v: u64| v.min(i64::MAX as u64) as i64;
    reg.gauge("server_admission_in_use_rows").set(as_gauge(a.in_use));
    reg.gauge("server_admission_waiting").set(a.waiting as i64);
    reg.gauge("server_admission_budget_rows").set(as_gauge(admission.budget()));
    let p = sdo_tablefunc::pool::global().stats();
    set_counter("tf_pool_workers_spawned_total", p.workers_spawned);
    set_counter("tf_pool_jobs_total", p.jobs_submitted);
    reg.gauge("tf_pool_workers_alive").set(p.workers_alive as i64);
    reg.gauge("tf_pool_workers_idle").set(p.workers_idle as i64);
    sdo_obs::export::registry_to_prometheus(&reg.snapshot())
}

/// Serve one HTTP request on a connection that opened with `GET `.
fn handle_http(mut stream: TcpStream, db: &Database, admission: &AdmissionController) {
    // Read until the end of the request head (we ignore the body —
    // GETs have none). Bounded read so a hostile peer cannot balloon.
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while head.len() < 8192 && !head.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => break,
        }
    }
    let request_line = String::from_utf8_lossy(&head);
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, body) = if path == "/metrics" || path.starts_with("/metrics?") {
        ("200 OK", metrics_text(db, admission))
    } else {
        ("404 Not Found", "only /metrics lives here\n".to_string())
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
}

fn error_payload(kind: ErrorKind, message: &str) -> Vec<u8> {
    let mut e = Encoder::new(resp::ERROR);
    e.u8(kind.code());
    e.str32(message);
    e.finish()
}

/// Run one statement under admission control, recording server
/// metrics, and encode the response payload.
///
/// The admission permit is returned *with* the payload, not dropped
/// here: the materialized rows and their wire encoding stay resident
/// until the frame is on the socket, so the budget they occupy must
/// not be handed to the next statement before then.
fn run_statement(
    session: &Session,
    admission: &AdmissionController,
    exec: impl FnOnce() -> Result<sdo_dbms::QueryResult, DbError>,
) -> (Vec<u8>, Option<Permit>) {
    let reg = sdo_obs::global();
    let cost = session.options().max_resident_rows;
    let queue_t0 = Instant::now();
    let permit = match admission.admit(cost) {
        Ok(p) => p,
        Err(e) => {
            reg.counter("server_stmt_rejected").inc();
            return (error_payload(ErrorKind::Admission, &e.to_string()), None);
        }
    };
    reg.histogram("server_admission_wait_ns").record_duration(queue_t0.elapsed());
    let t0 = Instant::now();
    let out = exec();
    reg.histogram("server_stmt_wall_ns").record_duration(t0.elapsed());
    let payload = match out {
        Ok(r) => {
            reg.counter("server_stmt_executed").inc();
            wire::encode_result(&r.columns, &r.rows)
        }
        Err(e) => {
            reg.counter("server_stmt_errors").inc();
            error_payload(ErrorKind::Statement, &e.to_string())
        }
    };
    (payload, Some(permit))
}

/// Drive one client connection until CLOSE / EOF / protocol error.
fn handle_connection(
    mut stream: TcpStream,
    db: Arc<Database>,
    admission: AdmissionController,
    default_dop: Option<usize>,
) -> io::Result<()> {
    // Dual protocol on one port: an HTTP scrape opens with "GET ",
    // which can never start a wire frame (it would be a 0x20544547
    // ≈ 542 MB length, past MAX_FRAME). Peek may deliver fewer than
    // 4 bytes on a freshly split segment; retry briefly.
    let mut probe = [0u8; 4];
    let mut n = stream.peek(&mut probe)?;
    for _ in 0..50 {
        if n >= 4 || n == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
        n = stream.peek(&mut probe)?;
    }
    if n >= 4 && probe == *b"GET " {
        handle_http(stream, &db, &admission);
        return Ok(());
    }

    let session = db.session();
    if let Some(dop) = default_dop {
        // Same validation as ALTER SESSION; a misconfigured server
        // default must not take the connection down, just fall back.
        let _ = session.set_option("parallel_dop", &dop.to_string());
    }
    sdo_obs::global().counter("server_connections_total").inc();
    loop {
        let payload = match wire::read_frame(&mut stream) {
            Ok(p) => p,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        let (mut response, permit) = match dispatch(&payload, &session, &admission, &db) {
            Ok(Some(r)) => r,
            Ok(None) => return Ok(()), // CLOSE
            // Undecodable frame: report and drop the connection — we
            // cannot trust the stream's framing anymore.
            Err(e) => {
                let p = error_payload(ErrorKind::Protocol, &e.to_string());
                let _ = wire::write_frame(&mut stream, &p);
                return Err(e);
            }
        };
        // A result too big for one frame would be rejected by the
        // client as a corrupt stream; downgrade it to an in-band
        // error so the connection stays usable.
        if response.len() > wire::MAX_FRAME as usize {
            let msg = format!(
                "result of {} bytes exceeds the {} MiB frame limit; \
                 narrow the projection or add LIMIT",
                response.len(),
                wire::MAX_FRAME >> 20
            );
            response = error_payload(ErrorKind::Statement, &msg);
        }
        wire::write_frame(&mut stream, &response)?;
        // Only now may the statement's admission budget fund the next
        // one: the response buffer is off our hands.
        drop(permit);
    }
}

/// Decode and execute one request; `Ok(None)` means CLOSE. Statement
/// responses carry their admission [`Permit`], which the caller holds
/// until the response frame is written.
fn dispatch(
    payload: &[u8],
    session: &Session,
    admission: &AdmissionController,
    db: &Database,
) -> io::Result<Option<(Vec<u8>, Option<Permit>)>> {
    let (opcode, mut d) = Decoder::new(payload)?;
    Ok(Some(match opcode {
        req::EXECUTE => {
            let sql = d.str32()?;
            run_statement(session, admission, || session.execute(&sql))
        }
        req::PREPARE => {
            let name = d.str16()?;
            let sql = d.str32()?;
            let payload = match session.prepare(&name, &sql) {
                Ok(nparams) => {
                    let mut e = Encoder::new(resp::PREPARED);
                    e.u16(nparams as u16);
                    e.finish()
                }
                Err(e) => error_payload(ErrorKind::Statement, &e.to_string()),
            };
            (payload, None)
        }
        req::EXEC_PREPARED => {
            let name = d.str16()?;
            let n = d.u16()? as usize;
            let mut params = Vec::with_capacity(n);
            for _ in 0..n {
                params.push(d.value()?);
            }
            run_statement(session, admission, || session.execute_prepared(&name, &params))
        }
        req::DEALLOCATE => {
            let name = d.str16()?;
            let payload = match session.deallocate(&name) {
                Ok(()) => wire::encode_result(&[], &[]),
                Err(e) => error_payload(ErrorKind::Statement, &e.to_string()),
            };
            (payload, None)
        }
        req::METRICS => {
            let mut e = Encoder::new(resp::TEXT);
            e.str32(&metrics_text(db, admission));
            (e.finish(), None)
        }
        req::PING => (vec![resp::PONG], None),
        req::CLOSE => return Ok(None),
        other => {
            (error_payload(ErrorKind::Protocol, &format!("unknown opcode 0x{other:02x}")), None)
        }
    }))
}

/// A blocking wire-protocol client.
pub struct Client {
    stream: TcpStream,
}

/// Client-side failure: transport trouble or a server-reported error.
#[derive(Debug)]
pub enum ClientError {
    /// Socket / framing failure.
    Io(io::Error),
    /// The server answered with an ERROR frame.
    Server {
        /// Error class (admission errors are retryable).
        kind: ErrorKind,
        /// Human-readable message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server { kind, message } => {
                write!(f, "server error ({kind:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// Whether this is an admission rejection (load, not a bug).
    pub fn is_admission(&self) -> bool {
        matches!(self, ClientError::Server { kind: ErrorKind::Admission, .. })
    }
}

/// Columns + rows as decoded from a RESULT frame.
pub type WireResult = (Vec<String>, Vec<Vec<Value>>);

impl Client {
    /// Connect to a serving address.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    fn roundtrip(&mut self, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        wire::write_frame(&mut self.stream, payload)?;
        Ok(wire::read_frame(&mut self.stream)?)
    }

    fn expect_result(&mut self, payload: &[u8]) -> Result<WireResult, ClientError> {
        let answer = self.roundtrip(payload)?;
        let (opcode, mut d) = Decoder::new(&answer)?;
        match opcode {
            resp::RESULT => Ok(wire::decode_result(&mut d)?),
            resp::ERROR => Err(decode_error(&mut d)?),
            other => Err(unexpected(other)),
        }
    }

    /// Execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<WireResult, ClientError> {
        let mut e = Encoder::new(req::EXECUTE);
        e.str32(sql);
        self.expect_result(&e.finish())
    }

    /// Cache a statement server-side; returns its bind-param count.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<usize, ClientError> {
        let mut e = Encoder::new(req::PREPARE);
        e.str16(name);
        e.str32(sql);
        let answer = self.roundtrip(&e.finish())?;
        let (opcode, mut d) = Decoder::new(&answer)?;
        match opcode {
            resp::PREPARED => Ok(d.u16()? as usize),
            resp::ERROR => Err(decode_error(&mut d)?),
            other => Err(unexpected(other)),
        }
    }

    /// Execute a prepared statement with positional bind values.
    pub fn execute_prepared(
        &mut self,
        name: &str,
        params: &[Value],
    ) -> Result<WireResult, ClientError> {
        let mut e = Encoder::new(req::EXEC_PREPARED);
        e.str16(name);
        e.u16(params.len() as u16);
        for p in params {
            e.value(p);
        }
        self.expect_result(&e.finish())
    }

    /// Drop a server-side prepared statement.
    pub fn deallocate(&mut self, name: &str) -> Result<(), ClientError> {
        let mut e = Encoder::new(req::DEALLOCATE);
        e.str16(name);
        self.expect_result(&e.finish()).map(|_| ())
    }

    /// Fetch the Prometheus metrics exposition over the wire protocol.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let answer = self.roundtrip(&[req::METRICS])?;
        let (opcode, mut d) = Decoder::new(&answer)?;
        match opcode {
            resp::TEXT => Ok(d.str32()?),
            resp::ERROR => Err(decode_error(&mut d)?),
            other => Err(unexpected(other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let answer = self.roundtrip(&[req::PING])?;
        match Decoder::new(&answer)?.0 {
            resp::PONG => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Orderly shutdown of this connection.
    pub fn close(mut self) -> Result<(), ClientError> {
        wire::write_frame(&mut self.stream, &[req::CLOSE])?;
        Ok(())
    }
}

fn decode_error(d: &mut Decoder<'_>) -> Result<ClientError, ClientError> {
    let kind = ErrorKind::from_code(d.u8()?);
    let message = d.str32()?;
    Ok(ClientError::Server { kind, message })
}

fn unexpected(opcode: u8) -> ClientError {
    ClientError::Io(io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response opcode 0x{opcode:02x}"),
    ))
}
