//! The length-prefixed wire protocol.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by the payload, whose first byte is an opcode. Requests
//! and responses share the framing; response opcodes have the high
//! bit set. The format is deliberately trivial — no negotiation, no
//! compression, no pipelining — because the interesting machinery
//! (sessions, admission control, shared slave pool) lives behind it.
//!
//! ## Requests
//!
//! | opcode | name            | body                                   |
//! |--------|-----------------|----------------------------------------|
//! | 0x01   | `EXECUTE`       | `str32` SQL text                       |
//! | 0x02   | `PREPARE`       | `str16` name, `str32` SQL              |
//! | 0x03   | `EXEC_PREPARED` | `str16` name, `u16` n, n × value       |
//! | 0x04   | `DEALLOCATE`    | `str16` name                           |
//! | 0x05   | `METRICS`       | —                                      |
//! | 0x06   | `PING`          | —                                      |
//! | 0x07   | `CLOSE`         | —                                      |
//!
//! ## Responses
//!
//! | opcode | name       | body                                            |
//! |--------|------------|-------------------------------------------------|
//! | 0x81   | `RESULT`   | `u16` ncols, ncols × `str16`, `u32` nrows, rows |
//! | 0x82   | `ERROR`    | `u8` kind, `str32` message                      |
//! | 0x83   | `PONG`     | —                                               |
//! | 0x84   | `TEXT`     | `str32` (metrics exposition)                    |
//! | 0x85   | `PREPARED` | `u16` bind-parameter count                      |
//!
//! `str16`/`str32` are UTF-8 bytes behind a LE `u16`/`u32` length.
//! Values are tagged: 0 NULL; 1 integer (`i64` LE); 2 double (`f64`
//! bits LE); 3 text (`str32`); 4 rowid (`u64` LE); 5 geometry as WKT
//! (`str32`) — geometry crosses the wire in its text form, so clients
//! need no geometry codec.

use sdo_storage::{RowId, Value};
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Largest frame either side accepts (64 MiB). A length prefix past
/// this is treated as a corrupt stream, not an allocation request.
pub const MAX_FRAME: u32 = 64 << 20;

/// Request opcodes (client → server).
pub mod req {
    /// Parse + execute one SQL statement.
    pub const EXECUTE: u8 = 0x01;
    /// Cache a parsed statement under a name.
    pub const PREPARE: u8 = 0x02;
    /// Execute a prepared statement with bind values.
    pub const EXEC_PREPARED: u8 = 0x03;
    /// Drop a prepared statement.
    pub const DEALLOCATE: u8 = 0x04;
    /// Fetch the metrics exposition text.
    pub const METRICS: u8 = 0x05;
    /// Liveness probe.
    pub const PING: u8 = 0x06;
    /// Orderly connection shutdown.
    pub const CLOSE: u8 = 0x07;
}

/// Response opcodes (server → client).
pub mod resp {
    /// Tabular result.
    pub const RESULT: u8 = 0x81;
    /// Statement failed; body is an [`ErrorKind`](super::ErrorKind)
    /// byte plus a message.
    pub const ERROR: u8 = 0x82;
    /// Reply to `PING`.
    pub const PONG: u8 = 0x83;
    /// Plain-text body (metrics).
    pub const TEXT: u8 = 0x84;
    /// Reply to `PREPARE`: bind-parameter count.
    pub const PREPARED: u8 = 0x85;
}

/// Classifies server-reported errors so clients (and the saturation
/// bench) can distinguish engine errors from admission pushback
/// without parsing message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Engine/SQL error: the statement itself failed.
    Statement,
    /// Admission control rejected the statement (budget exceeded,
    /// queue full, or queue wait timed out). The connection stays
    /// usable; retrying later may succeed.
    Admission,
    /// The request frame could not be decoded.
    Protocol,
}

impl ErrorKind {
    /// Wire byte for this kind.
    pub fn code(self) -> u8 {
        match self {
            ErrorKind::Statement => 0,
            ErrorKind::Admission => 1,
            ErrorKind::Protocol => 2,
        }
    }

    /// Decode a wire byte (unknown codes map to `Statement`).
    pub fn from_code(c: u8) -> Self {
        match c {
            1 => ErrorKind::Admission,
            2 => ErrorKind::Protocol,
            _ => ErrorKind::Statement,
        }
    }
}

/// Read one frame payload (opcode byte included) from `r`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, format!("bad frame length {len}")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Write one frame with the given payload.
///
/// An empty or over-[`MAX_FRAME`] payload is refused *before* any
/// bytes hit the stream: the peer would reject the frame as corrupt
/// anyway (and a >4 GiB payload would silently truncate the `u32`
/// length prefix, desyncing the connection for good).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.is_empty() || payload.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame payload of {} bytes outside 1..={MAX_FRAME}", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Incremental big-endian-free encoder for frame payloads.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Start a payload with `opcode`.
    pub fn new(opcode: u8) -> Self {
        Encoder { buf: vec![opcode] }
    }

    /// Append a raw byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a LE `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a LE `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `str16` (length-prefixed short string).
    pub fn str16(&mut self, s: &str) -> &mut Self {
        debug_assert!(s.len() <= u16::MAX as usize);
        self.u16(s.len() as u16);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Append a `str32` (length-prefixed string).
    pub fn str32(&mut self, s: &str) -> &mut Self {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Append one tagged [`Value`].
    pub fn value(&mut self, v: &Value) -> &mut Self {
        match v {
            Value::Null => {
                self.u8(0);
            }
            Value::Integer(i) => {
                self.u8(1);
                self.buf.extend_from_slice(&i.to_le_bytes());
            }
            Value::Double(d) => {
                self.u8(2);
                self.buf.extend_from_slice(&d.to_bits().to_le_bytes());
            }
            Value::Text(s) => {
                self.u8(3);
                self.str32(s);
            }
            Value::RowId(rid) => {
                self.u8(4);
                self.buf.extend_from_slice(&rid.0.to_le_bytes());
            }
            Value::Geometry(g) => {
                self.u8(5);
                let wkt = sdo_geom::wkt::to_wkt(g);
                self.str32(&wkt);
            }
        }
        self
    }

    /// Finish, yielding the payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over a received frame payload.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("corrupt frame: {what}"))
}

impl<'a> Decoder<'a> {
    /// Decode `payload`, returning the opcode and a cursor over the
    /// body.
    pub fn new(payload: &'a [u8]) -> io::Result<(u8, Self)> {
        let (&opcode, body) = payload.split_first().ok_or_else(|| corrupt("empty payload"))?;
        Ok((opcode, Decoder { buf: body, pos: 0 }))
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(corrupt("truncated body"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a LE `u16`.
    pub fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a LE `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `str16`.
    pub fn str16(&mut self) -> io::Result<String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| corrupt("non-UTF-8 string"))
    }

    /// Read a `str32`.
    pub fn str32(&mut self) -> io::Result<String> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME as usize {
            return Err(corrupt("oversized string"));
        }
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| corrupt("non-UTF-8 string"))
    }

    /// Read one tagged [`Value`].
    pub fn value(&mut self) -> io::Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Integer(i64::from_le_bytes(self.take(8)?.try_into().unwrap())),
            2 => {
                Value::Double(f64::from_bits(u64::from_le_bytes(self.take(8)?.try_into().unwrap())))
            }
            3 => Value::Text(Arc::from(self.str32()?.as_str())),
            4 => Value::RowId(RowId(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))),
            5 => {
                let wkt = self.str32()?;
                let g = sdo_geom::wkt::parse_wkt(&wkt)
                    .map_err(|e| corrupt(&format!("bad geometry WKT: {e}")))?;
                Value::Geometry(Arc::new(g))
            }
            t => return Err(corrupt(&format!("unknown value tag {t}"))),
        })
    }

    /// Whether the cursor consumed the whole body.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Encode a tabular result (columns + value rows) as a `RESULT`
/// payload.
pub fn encode_result(columns: &[String], rows: &[Vec<Value>]) -> Vec<u8> {
    let mut e = Encoder::new(resp::RESULT);
    e.u16(columns.len() as u16);
    for c in columns {
        e.str16(c);
    }
    e.u32(rows.len() as u32);
    for row in rows {
        for v in row {
            e.value(v);
        }
    }
    e.finish()
}

/// Decode a `RESULT` body (opcode already stripped).
pub fn decode_result(d: &mut Decoder<'_>) -> io::Result<(Vec<String>, Vec<Vec<Value>>)> {
    let ncols = d.u16()? as usize;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push(d.str16()?);
    }
    let nrows = d.u32()? as usize;
    let mut rows = Vec::with_capacity(nrows.min(4096));
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(d.value()?);
        }
        rows.push(row);
    }
    Ok((columns, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let g = sdo_geom::wkt::parse_wkt("POLYGON ((0 0, 4 0, 4 4, 0 0))").unwrap();
        let vals = vec![
            Value::Null,
            Value::Integer(-42),
            Value::Double(2.5),
            Value::text("héllo\nworld"),
            Value::RowId(RowId(7)),
            Value::Geometry(Arc::new(g.clone())),
        ];
        let mut e = Encoder::new(resp::RESULT);
        for v in &vals {
            e.value(v);
        }
        let payload = e.finish();
        let (op, mut d) = Decoder::new(&payload).unwrap();
        assert_eq!(op, resp::RESULT);
        for v in &vals {
            assert_eq!(&d.value().unwrap(), v);
        }
        assert!(d.at_end());
    }

    #[test]
    fn result_roundtrip() {
        let columns = vec!["A".to_string(), "B".to_string()];
        let rows =
            vec![vec![Value::Integer(1), Value::text("x")], vec![Value::Null, Value::Double(0.5)]];
        let payload = encode_result(&columns, &rows);
        let (op, mut d) = Decoder::new(&payload).unwrap();
        assert_eq!(op, resp::RESULT);
        let (c2, r2) = decode_result(&mut d).unwrap();
        assert_eq!(c2, columns);
        assert_eq!(r2, rows);
        assert!(d.at_end());
    }

    #[test]
    fn frame_roundtrip_and_bad_lengths() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[resp::PONG]).unwrap();
        let payload = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(payload, vec![resp::PONG]);

        // Zero-length and oversized frames are corrupt, not allocations.
        let zero = 0u32.to_le_bytes();
        assert!(read_frame(&mut zero.as_slice()).is_err());
        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert!(read_frame(&mut huge.as_slice()).is_err());
    }

    #[test]
    fn oversized_and_empty_writes_rejected_before_any_bytes() {
        let mut out = Vec::new();
        assert!(write_frame(&mut out, &[]).is_err());
        let big = vec![0u8; MAX_FRAME as usize + 1];
        assert!(write_frame(&mut out, &big).is_err());
        assert!(out.is_empty(), "a refused frame must not desync the stream");
    }

    #[test]
    fn truncated_bodies_error_cleanly() {
        let mut e = Encoder::new(req::EXECUTE);
        e.str32("SELECT 1");
        let payload = e.finish();
        // Chop the body mid-string: decoding must fail, not panic.
        let (_, mut d) = Decoder::new(&payload[..payload.len() - 3]).unwrap();
        assert!(d.str32().is_err());
    }
}
