//! The `SPATIAL_INDEX` indextype: R-tree and quadtree domain indexes.

use crate::create;
use crate::params::{IndexKindParam, SpatialIndexParams};
use parking_lot::RwLock;
use sdo_dbms::extensible::{DomainIndex, IndexType, OperatorCall};
use sdo_dbms::{Database, DbError};
use sdo_geom::{Geometry, Polygon, Rect, RelateMask};
use sdo_quadtree::QuadtreeIndex;
use sdo_rtree::RTree;
use sdo_storage::{Counters, IndexKind, IndexMetadata, RowId, Snapshot, Table, Value};
use std::sync::Arc;

/// The indextype registered as `SPATIAL_INDEX`.
///
/// `CREATE INDEX ... INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('...')
/// PARALLEL n` routes here; parameters choose between the R-tree and
/// the linear quadtree (paper §3: "Quadtree and R-tree indexes are
/// supported as part of this spatial index indextype").
pub struct SpatialIndexType;

impl IndexType for SpatialIndexType {
    fn create_index(
        &self,
        db: &Database,
        index_name: &str,
        table: &str,
        column: &str,
        params: &str,
        dop: usize,
    ) -> Result<Box<dyn DomainIndex>, DbError> {
        let p = SpatialIndexParams::parse(params)?;
        let t = db.table(table)?;
        let col = t
            .read()
            .schema()
            .column_index(column)
            .ok_or_else(|| DbError::Plan(format!("no column {column} on {table}")))?;
        let counters = Arc::clone(db.counters());
        let (index, kind): (Box<dyn DomainIndex>, IndexKind) = match p.kind {
            IndexKindParam::RTree => {
                let (tree, _stats) = create::build_rtree(&t, col, &p, dop, Arc::clone(&counters))?;
                (
                    Box::new(RTreeSpatialIndex {
                        name: index_name.to_string(),
                        table: Arc::clone(&t),
                        column: col,
                        tree: Arc::new(RwLock::new(tree)),
                        counters: Arc::clone(&counters),
                    }),
                    IndexKind::RTree,
                )
            }
            IndexKindParam::Quadtree => {
                let (qt, _stats) = create::build_quadtree(&t, col, &p, dop, Arc::clone(&counters))?;
                (
                    Box::new(QuadtreeSpatialIndex {
                        name: index_name.to_string(),
                        table: Arc::clone(&t),
                        column: col,
                        index: Arc::new(RwLock::new(qt)),
                        counters: Arc::clone(&counters),
                    }),
                    IndexKind::Quadtree,
                )
            }
        };
        db.catalog().register_index(IndexMetadata {
            index_name: index_name.to_string(),
            table_name: table.to_ascii_uppercase(),
            column_name: column.to_ascii_uppercase(),
            kind,
            dimensions: 2,
            fanout: (kind == IndexKind::RTree).then_some(p.tree_fanout),
            tiling_level: (kind == IndexKind::Quadtree).then_some(p.sdo_level),
            create_dop: dop,
            parameters: params.to_string(),
        })?;
        Ok(index)
    }

    fn operators(&self) -> &[&'static str] {
        &["SDO_RELATE", "SDO_WITHIN_DISTANCE", "SDO_FILTER", "SDO_NN"]
    }
}

// ---------------------------------------------------------------------------
// Shared operator plumbing
// ---------------------------------------------------------------------------

/// Decode an operator call into its query geometry and predicate.
enum DecodedOp {
    Relate(Arc<Geometry>, Vec<RelateMask>),
    WithinDistance(Arc<Geometry>, f64),
    Filter(Arc<Geometry>),
    /// k-nearest-neighbour (`SDO_NN(col, q, 'sdo_num_res=k')`).
    Nn(Arc<Geometry>, usize),
}

fn decode_op(call: &OperatorCall) -> Result<DecodedOp, DbError> {
    let q = call
        .args
        .first()
        .and_then(|v| v.as_geometry())
        .cloned()
        .ok_or_else(|| DbError::Index(format!("{}: missing query geometry", call.name)))?;
    match call.name.to_ascii_uppercase().as_str() {
        "SDO_RELATE" => {
            let mask = call.args.get(1).and_then(|v| v.as_text()).unwrap_or("ANYINTERACT");
            Ok(DecodedOp::Relate(q, RelateMask::parse_list(mask)?))
        }
        "SDO_WITHIN_DISTANCE" => {
            let d = sdo_dbms::exec::parse_distance(&call.args[1..])?;
            Ok(DecodedOp::WithinDistance(q, d))
        }
        "SDO_FILTER" => Ok(DecodedOp::Filter(q)),
        "SDO_NN" => {
            let k = parse_num_res(&call.args[1..])?;
            Ok(DecodedOp::Nn(q, k))
        }
        other => Err(DbError::Index(format!("unsupported operator {other}"))),
    }
}

/// Parse `SDO_NN`'s result-count argument: a bare integer or Oracle's
/// `'sdo_num_res=k'` parameter string (default 1).
pub fn parse_num_res(extra: &[Value]) -> Result<usize, DbError> {
    let Some(v) = extra.first() else { return Ok(1) };
    if let Some(k) = v.as_integer() {
        if k < 1 {
            return Err(DbError::Index("SDO_NN result count must be >= 1".into()));
        }
        return Ok(k as usize);
    }
    if let Some(s) = v.as_text() {
        let params = sdo_dbms::extensible::parse_params(s);
        if let Some(k) = sdo_dbms::extensible::param(&params, "sdo_num_res") {
            return k
                .parse::<usize>()
                .map_err(|_| DbError::Index(format!("bad sdo_num_res '{k}'")))
                .and_then(|k| {
                    if k >= 1 {
                        Ok(k)
                    } else {
                        Err(DbError::Index("sdo_num_res must be >= 1".into()))
                    }
                });
        }
    }
    Err(DbError::Index("SDO_NN needs a result count (k or 'sdo_num_res=k')".into()))
}

/// Exact secondary filter: `relate(data, query, masks)` per candidate,
/// fetching the data geometry by rowid *under the statement snapshot*.
/// The index may hold entries for versions the snapshot cannot see
/// (eager maintenance of in-flight transactions), so the snapshot
/// fetch is the visibility filter, and the result is deduplicated —
/// an in-flight UPDATE briefly gives one rowid two entries.
fn secondary_filter(
    table: &Arc<RwLock<Table>>,
    column: usize,
    counters: &Arc<Counters>,
    snap: &Snapshot,
    candidates: impl IntoIterator<Item = (RowId, bool)>,
    mut keep: impl FnMut(&Geometry) -> bool,
) -> Result<Vec<RowId>, DbError> {
    let guard = table.read();
    let mut out = Vec::new();
    for (rid, definite) in candidates {
        let Ok(row) = guard.get_at(rid, snap) else { continue };
        if definite {
            out.push(rid);
            continue;
        }
        let Some(g) = row[column].as_geometry() else { continue };
        Counters::bump(&counters.exact_tests);
        if keep(g) {
            out.push(rid);
        }
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

// ---------------------------------------------------------------------------
// R-tree spatial index
// ---------------------------------------------------------------------------

/// The R-tree flavour of the spatial index.
pub struct RTreeSpatialIndex {
    name: String,
    table: Arc<RwLock<Table>>,
    column: usize,
    tree: Arc<RwLock<RTree<RowId>>>,
    counters: Arc<Counters>,
}

impl RTreeSpatialIndex {
    /// The underlying tree — used by the `SPATIAL_JOIN` table function,
    /// which (unlike extensible-indexing operators) joins *two*
    /// indexes.
    pub fn tree(&self) -> &Arc<RwLock<RTree<RowId>>> {
        &self.tree
    }

    /// Consistent-read snapshot of the tree for long-running joins.
    pub fn tree_snapshot(&self) -> Arc<RTree<RowId>> {
        Arc::new(self.tree.read().clone())
    }

    /// The indexed base table.
    pub fn table(&self) -> &Arc<RwLock<Table>> {
        &self.table
    }

    /// Index of the geometry column in the base table.
    pub fn geometry_column(&self) -> usize {
        self.column
    }

    fn geom_bbox(&self, row: &[Value]) -> Option<Rect> {
        row.get(self.column).and_then(|v| v.as_geometry()).map(|g| g.bbox())
    }

    /// Filter-refine k-NN: pull MBR candidates in mindist order; stop
    /// once the next lower bound exceeds the current k-th exact
    /// distance. Returns `(exact distance, rowid)` ascending, ties by
    /// rowid — the same order a stable full sort over a rowid-ordered
    /// scan produces, so pushdown is result-identical to ORDER BY.
    fn knn(&self, q: &Geometry, k: usize, snap: &Snapshot) -> Vec<(f64, RowId)> {
        let tree = self.tree.read();
        let table = self.table.read();
        let qbb = q.bbox();
        // Current top-k by exact distance (k is small: linear
        // maintenance beats heap overhead).
        let mut best: Vec<(f64, RowId)> = Vec::with_capacity(k);
        let worst =
            |best: &Vec<(f64, RowId)>| best.last().map(|(d, _)| *d).unwrap_or(f64::INFINITY);
        for (lower, _, rid) in tree.nearest_iter(qbb) {
            if best.len() == k && lower > worst(&best) {
                break; // no remaining candidate can improve top-k
            }
            if best.iter().any(|&(_, r)| r == rid) {
                continue; // duplicate entry from an in-flight update
            }
            let Ok(row) = table.get_at(rid, snap) else { continue };
            let Some(g) = row[self.column].as_geometry() else { continue };
            Counters::bump(&self.counters.exact_tests);
            let d = sdo_geom::distance(g, q);
            // Admit on the full (distance, rowid) order: a candidate
            // tying the k-th distance with a smaller rowid must evict
            // it, or pushdown diverges from the stable sort on ties.
            let admit = best.len() < k || {
                let &(wd, wrid) = best.last().expect("len == k > 0");
                (d, rid) < (wd, wrid)
            };
            if admit {
                let pos = best.partition_point(|&(bd, brid)| (bd, brid) < (d, rid));
                best.insert(pos, (d, rid));
                best.truncate(k);
            }
        }
        best
    }
}

impl DomainIndex for RTreeSpatialIndex {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_insert(&mut self, rid: RowId, row: &[Value]) -> Result<(), DbError> {
        if let Some(bb) = self.geom_bbox(row) {
            self.tree.write().insert(bb, rid);
        }
        Ok(())
    }

    fn on_delete(&mut self, rid: RowId, row: &[Value]) -> Result<(), DbError> {
        if let Some(bb) = self.geom_bbox(row) {
            self.tree.write().delete(&bb, &rid);
        }
        Ok(())
    }

    fn evaluate(&self, call: &OperatorCall) -> Result<Vec<RowId>, DbError> {
        let snap = call.snap;
        match decode_op(call)? {
            DecodedOp::Filter(q) => {
                // Primary filter only, per Oracle SDO_FILTER semantics
                // — but answered for the statement's snapshot: each
                // candidate's MBR test repeats against the version the
                // snapshot actually sees.
                let qbb = q.bbox();
                let tree = self.tree.read();
                Counters::add(&self.counters.mbr_tests, tree.len() as u64 / 2);
                let guard = self.table.read();
                let mut out: Vec<RowId> = tree
                    .query_window(&qbb)
                    .into_iter()
                    .filter_map(|(_, rid)| {
                        let row = guard.get_at(rid, &snap).ok()?;
                        let g = row[self.column].as_geometry()?;
                        g.bbox().intersects(&qbb).then_some(rid)
                    })
                    .collect();
                out.sort_unstable();
                out.dedup();
                Ok(out)
            }
            DecodedOp::Relate(q, masks) => {
                if masks.contains(&RelateMask::Disjoint) {
                    // DISJOINT cannot use an intersection-based index:
                    // evaluate exactly over a full snapshot scan.
                    let guard = self.table.read();
                    let mut out = Vec::new();
                    for (rid, row) in guard.scan_at(snap) {
                        let Some(g) = row[self.column].as_geometry() else { continue };
                        Counters::bump(&self.counters.exact_tests);
                        if sdo_geom::relate::relate_any(g, &q, &masks) {
                            out.push(rid);
                        }
                    }
                    return Ok(out);
                }
                let candidates: Vec<(RowId, bool)> = {
                    let tree = self.tree.read();
                    tree.query_window(&q.bbox()).into_iter().map(|(_, rid)| (rid, false)).collect()
                };
                secondary_filter(&self.table, self.column, &self.counters, &snap, candidates, |g| {
                    sdo_geom::relate::relate_any(g, &q, &masks)
                })
            }
            DecodedOp::WithinDistance(q, d) => {
                let candidates: Vec<(RowId, bool)> = {
                    let tree = self.tree.read();
                    tree.query_within_distance(&q.bbox(), d)
                        .into_iter()
                        .map(|(_, rid)| (rid, false))
                        .collect()
                };
                secondary_filter(&self.table, self.column, &self.counters, &snap, candidates, |g| {
                    sdo_geom::within_distance(g, &q, d)
                })
            }
            DecodedOp::Nn(q, k) => Ok(self.knn(&q, k, &snap).into_iter().map(|(_, r)| r).collect()),
        }
    }

    fn nearest(
        &self,
        query: &Geometry,
        k: usize,
        snap: &Snapshot,
    ) -> Result<Option<Vec<(f64, RowId)>>, DbError> {
        Ok(Some(self.knn(query, k, snap)))
    }

    fn describe(&self) -> String {
        let tree = self.tree.read();
        format!(
            "RTREE {} items={} height={} nodes={} fanout={}",
            self.name,
            tree.len(),
            tree.height(),
            tree.node_count(),
            tree.params().max_entries
        )
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

// ---------------------------------------------------------------------------
// Quadtree spatial index
// ---------------------------------------------------------------------------

/// The linear-quadtree flavour of the spatial index.
pub struct QuadtreeSpatialIndex {
    name: String,
    table: Arc<RwLock<Table>>,
    column: usize,
    index: Arc<RwLock<QuadtreeIndex>>,
    counters: Arc<Counters>,
}

impl QuadtreeSpatialIndex {
    /// The underlying linear quadtree.
    pub fn index(&self) -> &Arc<RwLock<QuadtreeIndex>> {
        &self.index
    }

    /// Consistent-read snapshot for joins.
    pub fn index_snapshot(&self) -> Arc<QuadtreeIndex> {
        Arc::new(self.index.read().clone())
    }

    /// The indexed base table.
    pub fn table(&self) -> &Arc<RwLock<Table>> {
        &self.table
    }

    /// Index of the geometry column in the base table.
    pub fn geometry_column(&self) -> usize {
        self.column
    }
}

impl DomainIndex for QuadtreeSpatialIndex {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_insert(&mut self, rid: RowId, row: &[Value]) -> Result<(), DbError> {
        if let Some(g) = row.get(self.column).and_then(|v| v.as_geometry()) {
            Counters::bump(&self.counters.tessellations);
            self.index.write().insert(rid, g);
        }
        Ok(())
    }

    fn on_delete(&mut self, rid: RowId, row: &[Value]) -> Result<(), DbError> {
        if let Some(g) = row.get(self.column).and_then(|v| v.as_geometry()) {
            self.index.write().delete(rid, g);
        }
        Ok(())
    }

    fn evaluate(&self, call: &OperatorCall) -> Result<Vec<RowId>, DbError> {
        let snap = call.snap;
        match decode_op(call)? {
            DecodedOp::Filter(q) => {
                let idx = self.index.read();
                let guard = self.table.read();
                let mut out: Vec<RowId> = idx
                    .query_window(&q)
                    .into_iter()
                    .filter(|c| guard.get_at(c.rowid, &snap).is_ok())
                    .map(|c| c.rowid)
                    .collect();
                out.sort_unstable();
                out.dedup();
                Ok(out)
            }
            DecodedOp::Relate(q, masks) => {
                if masks.contains(&RelateMask::Disjoint) {
                    let guard = self.table.read();
                    let mut out = Vec::new();
                    for (rid, row) in guard.scan_at(snap) {
                        let Some(g) = row[self.column].as_geometry() else { continue };
                        Counters::bump(&self.counters.exact_tests);
                        if sdo_geom::relate::relate_any(g, &q, &masks) {
                            out.push(rid);
                        }
                    }
                    return Ok(out);
                }
                // Interior-tile evidence proves ANYINTERACT only.
                let prove_by_tiles = masks == [RelateMask::AnyInteract];
                let candidates: Vec<(RowId, bool)> = {
                    let idx = self.index.read();
                    idx.query_window(&q)
                        .into_iter()
                        .map(|c| (c.rowid, prove_by_tiles && c.definite))
                        .collect()
                };
                secondary_filter(&self.table, self.column, &self.counters, &snap, candidates, |g| {
                    sdo_geom::relate::relate_any(g, &q, &masks)
                })
            }
            DecodedOp::WithinDistance(q, d) => {
                // Expand the query window by d for the tile-level filter.
                let window = Geometry::Polygon(Polygon::from_rect(&q.bbox().expanded(d)));
                let candidates: Vec<(RowId, bool)> = {
                    let idx = self.index.read();
                    idx.query_window(&window).into_iter().map(|c| (c.rowid, false)).collect()
                };
                secondary_filter(&self.table, self.column, &self.counters, &snap, candidates, |g| {
                    sdo_geom::within_distance(g, &q, d)
                })
            }
            DecodedOp::Nn(..) => Err(DbError::Index(
                "SDO_NN requires an R-tree index (create with 'layer_gtype=RTREE')".into(),
            )),
        }
    }

    fn describe(&self) -> String {
        let idx = self.index.read();
        format!(
            "QUADTREE {} geometries={} tile_rows={} level={}",
            self.name,
            idx.len(),
            idx.tile_entries(),
            idx.level()
        )
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}
