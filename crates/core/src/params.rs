//! `PARAMETERS ('...')` strings for the `SPATIAL_INDEX` indextype.

use sdo_dbms::extensible::{param, parse_params};
use sdo_dbms::DbError;
use sdo_geom::Rect;
use sdo_rtree::SplitStrategy;

/// Parsed spatial index parameters, mirroring the knobs Oracle exposes
/// through `CREATE INDEX ... PARAMETERS ('...')` and the
/// `USER_SDO_GEOM_METADATA` extent.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialIndexParams {
    /// `layer_gtype=QUADTREE|RTREE` (Oracle models this as separate
    /// index types selected by parameters; default R-tree).
    pub kind: IndexKindParam,
    /// `sdo_level=<n>`: quadtree tiling level.
    pub sdo_level: u32,
    /// `tree_fanout=<n>`: R-tree node capacity.
    pub tree_fanout: usize,
    /// `split=linear|quadratic|rstar`.
    pub split: SplitStrategy,
    /// `reinsert=true`: R*-style forced reinsertion on dynamic inserts.
    pub forced_reinsert: bool,
    /// Optional explicit world extent
    /// (`extent=min_x:min_y:max_x:max_y`); computed from the data when
    /// absent, like deriving it from `USER_SDO_GEOM_METADATA`.
    pub extent: Option<Rect>,
}

/// Which index structure `PARAMETERS` selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKindParam {
    /// R-tree (the default).
    RTree,
    /// Linear quadtree (implied by `sdo_level=`).
    Quadtree,
}

impl Default for SpatialIndexParams {
    fn default() -> Self {
        SpatialIndexParams {
            kind: IndexKindParam::RTree,
            sdo_level: sdo_quadtree::DEFAULT_LEVEL,
            tree_fanout: sdo_rtree::DEFAULT_FANOUT,
            split: SplitStrategy::default(),
            forced_reinsert: false,
            extent: None,
        }
    }
}

impl SpatialIndexParams {
    /// Parse an Oracle-style parameters string; unknown keys error (a
    /// typo in index parameters should never pass silently).
    pub fn parse(s: &str) -> Result<Self, DbError> {
        let mut out = SpatialIndexParams::default();
        let pairs = parse_params(s);
        for (k, _) in &pairs {
            if !matches!(
                k.as_str(),
                "layer_gtype"
                    | "index_type"
                    | "sdo_level"
                    | "tree_fanout"
                    | "split"
                    | "extent"
                    | "reinsert"
            ) {
                return Err(DbError::Plan(format!("unknown index parameter '{k}'")));
            }
        }
        if let Some(v) = param(&pairs, "layer_gtype").or_else(|| param(&pairs, "index_type")) {
            out.kind = match v.to_ascii_uppercase().as_str() {
                "QUADTREE" => IndexKindParam::Quadtree,
                "RTREE" => IndexKindParam::RTree,
                other => return Err(DbError::Plan(format!("unknown index kind '{other}'"))),
            };
        }
        if let Some(v) = param(&pairs, "sdo_level") {
            out.sdo_level = v.parse().map_err(|_| DbError::Plan(format!("bad sdo_level '{v}'")))?;
            // sdo_level implies a quadtree unless the kind was forced.
            if param(&pairs, "layer_gtype").is_none() && param(&pairs, "index_type").is_none() {
                out.kind = IndexKindParam::Quadtree;
            }
            if out.sdo_level == 0 || out.sdo_level > sdo_quadtree::MAX_LEVEL {
                return Err(DbError::Plan(format!(
                    "sdo_level must be in 1..={}",
                    sdo_quadtree::MAX_LEVEL
                )));
            }
        }
        if let Some(v) = param(&pairs, "tree_fanout") {
            out.tree_fanout =
                v.parse().map_err(|_| DbError::Plan(format!("bad tree_fanout '{v}'")))?;
            if out.tree_fanout < 4 {
                return Err(DbError::Plan("tree_fanout must be at least 4".into()));
            }
        }
        if let Some(v) = param(&pairs, "split") {
            out.split = match v.to_ascii_lowercase().as_str() {
                "linear" => SplitStrategy::Linear,
                "quadratic" => SplitStrategy::Quadratic,
                "rstar" => SplitStrategy::RStar,
                other => return Err(DbError::Plan(format!("unknown split strategy '{other}'"))),
            };
        }
        if let Some(v) = param(&pairs, "reinsert") {
            out.forced_reinsert = match v.to_ascii_lowercase().as_str() {
                "true" | "on" | "1" => true,
                "false" | "off" | "0" => false,
                other => return Err(DbError::Plan(format!("bad reinsert flag '{other}'"))),
            };
        }
        if let Some(v) = param(&pairs, "extent") {
            let parts: Vec<f64> = v
                .split(':')
                .map(|p| p.parse::<f64>())
                .collect::<Result<_, _>>()
                .map_err(|_| DbError::Plan(format!("bad extent '{v}'")))?;
            if parts.len() != 4 {
                return Err(DbError::Plan("extent needs min_x:min_y:max_x:max_y".into()));
            }
            let r = Rect::new(parts[0], parts[1], parts[2], parts[3]);
            if r.is_empty() {
                return Err(DbError::Plan("extent is empty".into()));
            }
            out.extent = Some(r);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let p = SpatialIndexParams::parse("").unwrap();
        assert_eq!(p, SpatialIndexParams::default());
        assert_eq!(p.kind, IndexKindParam::RTree);
    }

    #[test]
    fn sdo_level_implies_quadtree() {
        let p = SpatialIndexParams::parse("sdo_level=6").unwrap();
        assert_eq!(p.kind, IndexKindParam::Quadtree);
        assert_eq!(p.sdo_level, 6);
        // ...unless overridden
        let p = SpatialIndexParams::parse("sdo_level=6, layer_gtype=RTREE").unwrap();
        assert_eq!(p.kind, IndexKindParam::RTree);
    }

    #[test]
    fn rtree_knobs() {
        let p = SpatialIndexParams::parse("tree_fanout=16 split=rstar reinsert=true").unwrap();
        assert_eq!(p.tree_fanout, 16);
        assert_eq!(p.split, SplitStrategy::RStar);
        assert!(p.forced_reinsert);
        assert!(SpatialIndexParams::parse("reinsert=maybe").is_err());
    }

    #[test]
    fn extent_parses() {
        let p = SpatialIndexParams::parse("extent=0:0:100:50").unwrap();
        assert_eq!(p.extent, Some(Rect::new(0.0, 0.0, 100.0, 50.0)));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(SpatialIndexParams::parse("bogus_key=1").is_err());
        assert!(SpatialIndexParams::parse("sdo_level=0").is_err());
        assert!(SpatialIndexParams::parse("sdo_level=99").is_err());
        assert!(SpatialIndexParams::parse("tree_fanout=2").is_err());
        assert!(SpatialIndexParams::parse("split=zigzag").is_err());
        assert!(SpatialIndexParams::parse("extent=1:2:3").is_err());
        assert!(SpatialIndexParams::parse("extent=5:5:1:1").is_err());
    }
}
