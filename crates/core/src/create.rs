//! Serial and parallel spatial index creation (paper §5).
//!
//! Both builders drive the **same table-function machinery the paper
//! describes**:
//!
//! * Quadtree (Figure 2): the geometry cursor is chunked into slot
//!   ranges that `dop` tessellation slaves pull from a shared
//!   work-stealing queue ([`sdo_tablefunc::scheduler`]); tile rows
//!   funnel back and the B-tree over tile codes is bulk-packed from
//!   the merged sorted run.
//! * R-tree: stage 1 loads geometries and computes MBRs in parallel
//!   (the same dynamically-scheduled cursor chunks); stage 2 spatially
//!   slices the MBR stream and *clusters subtrees in parallel* — each
//!   slave STR-packs its slice into a subtree — and the subtrees are
//!   merged at the end ([`sdo_rtree::RTree::merge`]).
//!
//! Earlier versions RANGE-partitioned the cursor statically, one slice
//! per slave, as Oracle does; with clustered data and variable-cost
//! geometries that loads slaves unevenly, so both stages now pull
//! chunks on demand instead. The chunk set covers the same slot space
//! exactly once, so results are unchanged.

use crate::params::SpatialIndexParams;
use parking_lot::{Mutex, RwLock};
use sdo_dbms::DbError;
use sdo_geom::Rect;
use sdo_quadtree::QuadtreeIndex;
use sdo_rtree::{RTree, RTreeParams};
use sdo_storage::{Counters, RowId, Table, Value};
use sdo_tablefunc::scheduler::{TaskQueue, WorkStealingFn};
use sdo_tablefunc::source::{RowSource, TableCursor};
use sdo_tablefunc::{execute_parallel, Row, TableFunction, TfError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timing and shape data from one index build, reported by the
/// experiment harness (Table 3 and the Figure 2 stage trace).
#[derive(Debug, Clone)]
pub struct CreationStats {
    /// Degree of parallelism used.
    pub dop: usize,
    /// Wall-clock of the parallel stage (tessellation / MBR-load +
    /// subtree clustering).
    pub parallel_stage: Duration,
    /// Wall-clock of the final merge/B-tree pack.
    pub merge_stage: Duration,
    /// Rows produced by the parallel stage (tile rows or MBR rows).
    pub stage_rows: usize,
    /// Input slots actually processed per slave. Under dynamic
    /// scheduling this reflects how the load really spread (a slave
    /// that stalls processes fewer slots), not a predetermined split.
    pub partition_sizes: Vec<usize>,
}

/// Chunk a table's slot space into work-stealing range tasks: several
/// chunks per worker, so slaves pull often enough for load balancing
/// without paying a queue pop per row.
fn range_tasks(hwm: usize, dop: usize) -> Vec<(usize, usize)> {
    let chunk = hwm.div_ceil(dop.max(1) * 8).max(1);
    let mut tasks = Vec::new();
    let mut lo = 0;
    while lo < hwm {
        let hi = (lo + chunk).min(hwm);
        tasks.push((lo, hi));
        lo = hi;
    }
    tasks
}

/// Build `dop` work-stealing slave instances over a geometry cursor:
/// each slave pulls `(lo, hi)` slot ranges from a shared [`TaskQueue`]
/// and maps every `(rowid, geometry)` row through `body`. Returns the
/// instances plus the per-worker processed-slot counters that become
/// [`CreationStats::partition_sizes`].
fn stealing_cursor_stage(
    table: &Arc<RwLock<Table>>,
    column: usize,
    dop: usize,
    body: impl Fn(Row) -> Result<Vec<Row>, TfError> + Send + Sync + 'static,
) -> (Vec<Box<dyn TableFunction>>, Arc<Vec<AtomicUsize>>) {
    let hwm = table.read().high_water_mark();
    let queue = TaskQueue::seed_round_robin(range_tasks(hwm, dop), dop);
    let processed: Arc<Vec<AtomicUsize>> =
        Arc::new((0..dop).map(|_| AtomicUsize::new(0)).collect());
    let body = Arc::new(body);
    let instances = (0..dop)
        .map(|worker| {
            let table = Arc::clone(table);
            let body = Arc::clone(&body);
            let processed = Arc::clone(&processed);
            Box::new(WorkStealingFn::new(
                Arc::clone(&queue),
                worker,
                move |(lo, hi): (usize, usize)| {
                    let mut cursor = TableCursor::slice(Arc::clone(&table), lo, hi)
                        .with_projection(vec![column]);
                    let mut out = Vec::new();
                    loop {
                        let batch = cursor.next_batch(256);
                        if batch.is_empty() {
                            break;
                        }
                        for row in batch {
                            out.extend(body(row)?);
                        }
                    }
                    processed[worker].fetch_add(hi - lo, Ordering::Relaxed);
                    Ok(out)
                },
            )) as Box<dyn TableFunction>
        })
        .collect();
    (instances, processed)
}

/// Compute (or adopt) the world extent for a quadtree.
pub fn world_extent_of(
    table: &Arc<RwLock<Table>>,
    column: usize,
    params: &SpatialIndexParams,
) -> Result<Rect, DbError> {
    if let Some(r) = params.extent {
        return Ok(r);
    }
    let guard = table.read();
    let mut bb = Rect::EMPTY;
    for (_, row) in guard.scan() {
        if let Some(g) = row[column].as_geometry() {
            bb = bb.union(&g.bbox());
        }
    }
    if bb.is_empty() {
        return Err(DbError::Index(
            "cannot derive a quadtree extent from an empty geometry column; \
             pass extent=min_x:min_y:max_x:max_y"
                .into(),
        ));
    }
    // Pad 1% so boundary geometries never fall outside.
    Ok(bb.expanded((bb.width() + bb.height()) * 0.005 + f64::EPSILON))
}

// ---------------------------------------------------------------------------
// Quadtree creation
// ---------------------------------------------------------------------------

/// Build a quadtree index with `dop`-way parallel tessellation.
pub fn build_quadtree(
    table: &Arc<RwLock<Table>>,
    column: usize,
    params: &SpatialIndexParams,
    dop: usize,
    counters: Arc<Counters>,
) -> Result<(QuadtreeIndex, CreationStats), DbError> {
    let dop = dop.max(1);
    let _span = sdo_obs::span("create.quadtree");
    let world = world_extent_of(table, column, params)?;
    let level = params.sdo_level;
    let geometry_count = table.read().len();
    let prof = sdo_obs::current().map(|p| {
        let n = p.child("quadtree build");
        n.set_attr("dop", dop.to_string());
        n.set_attr("level", level.to_string());
        n
    });

    // Stage 1: parallel tessellation through work-stealing table
    // functions pulling cursor chunks on demand.
    let t0 = Instant::now();
    let stage_counters = Arc::clone(&counters);
    let (instances, processed) = stealing_cursor_stage(table, column, dop, move |row: Row| {
        tessellate_row(&row, &world, level, &stage_counters)
    });
    let tess_node = prof.as_ref().map(|p| p.child("parallel tessellation"));
    let tile_rows = {
        let _scope = tess_node.clone().map(sdo_obs::enter);
        execute_parallel(instances, 1024).map_err(DbError::from)?
    };
    let partition_sizes: Vec<usize> = processed.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    let parallel_stage = t0.elapsed();
    if let Some(n) = &tess_node {
        n.add_wall(parallel_stage);
        n.add_rows(tile_rows.len() as u64);
    }

    // Stage 2: decode, sort, pack the B-tree bottom-up.
    let t1 = Instant::now();
    let entries: Vec<(u64, RowId, bool)> = tile_rows
        .iter()
        .map(|r| {
            (
                r[0].as_integer().unwrap_or(0) as u64,
                r[1].as_rowid().unwrap_or(RowId::new(0)),
                r[2].as_integer() == Some(1),
            )
        })
        .collect();
    let stage_rows = entries.len();
    let index =
        QuadtreeIndex::bulk_build(world, level, entries, geometry_count).with_counters(counters);
    let merge_stage = t1.elapsed();
    if let Some(p) = &prof {
        let n = p.child("btree pack");
        n.add_wall(merge_stage);
        n.add_rows(stage_rows as u64);
    }

    Ok((index, CreationStats { dop, parallel_stage, merge_stage, stage_rows, partition_sizes }))
}

/// The tessellation table-function body: `(rowid, geometry)` in,
/// `(tile_code, rowid, interior)` rows out.
pub fn tessellate_row(
    row: &Row,
    world: &Rect,
    level: u32,
    counters: &Counters,
) -> Result<Vec<Row>, TfError> {
    let rid = row[0]
        .as_rowid()
        .ok_or_else(|| TfError::Execution("tessellate: first column must be rowid".into()))?;
    let Some(g) = row.get(1).and_then(|v| v.as_geometry()) else {
        return Ok(Vec::new()); // NULL geometry: no tiles
    };
    Counters::bump(&counters.tessellations);
    Ok(sdo_quadtree::tessellate(g, world, level)
        .into_iter()
        .map(|t| {
            vec![
                Value::Integer(t.code as i64),
                Value::RowId(rid),
                Value::Integer(i64::from(t.interior)),
            ]
        })
        .collect())
}

// ---------------------------------------------------------------------------
// R-tree creation
// ---------------------------------------------------------------------------

/// Build an R-tree index: parallel MBR load, parallel subtree
/// clustering, final merge.
pub fn build_rtree(
    table: &Arc<RwLock<Table>>,
    column: usize,
    params: &SpatialIndexParams,
    dop: usize,
    counters: Arc<Counters>,
) -> Result<(RTree<RowId>, CreationStats), DbError> {
    let dop = dop.max(1);
    let _span = sdo_obs::span("create.rtree");
    let rt_params = RTreeParams::with_fanout(params.tree_fanout)
        .with_split(params.split)
        .with_forced_reinsert(params.forced_reinsert);
    let prof = sdo_obs::current().map(|p| {
        let n = p.child("rtree build");
        n.set_attr("dop", dop.to_string());
        n
    });

    // Stage 1: parallel geometry load + MBR computation, pulling
    // cursor chunks from a shared work-stealing queue.
    let t0 = Instant::now();
    let (instances, processed) = stealing_cursor_stage(table, column, dop, move |row: Row| {
        let rid = row[0]
            .as_rowid()
            .ok_or_else(|| TfError::Execution("mbr load: first column must be rowid".into()))?;
        let Some(g) = row.get(1).and_then(|v| v.as_geometry()) else {
            return Ok(Vec::new());
        };
        let bb = g.bbox();
        Ok(vec![vec![
            Value::RowId(rid),
            Value::Double(bb.min_x),
            Value::Double(bb.min_y),
            Value::Double(bb.max_x),
            Value::Double(bb.max_y),
        ]])
    });
    let load_node = prof.as_ref().map(|p| p.child("parallel mbr load"));
    let mbr_rows = {
        let _scope = load_node.clone().map(sdo_obs::enter);
        execute_parallel(instances, 1024).map_err(DbError::from)?
    };
    let partition_sizes: Vec<usize> = processed.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    let stage_rows = mbr_rows.len();
    if let Some(n) = &load_node {
        n.add_wall(t0.elapsed());
        n.add_rows(stage_rows as u64);
    }

    // Decode and spatially slice by x-center so per-slave subtrees have
    // low mutual overlap (better merged tree quality).
    let mut items: Vec<(Rect, RowId)> = mbr_rows
        .iter()
        .map(|r| {
            let rect = Rect::new(
                r[1].as_double().unwrap_or(0.0),
                r[2].as_double().unwrap_or(0.0),
                r[3].as_double().unwrap_or(0.0),
                r[4].as_double().unwrap_or(0.0),
            );
            (rect, r[0].as_rowid().unwrap_or(RowId::new(0)))
        })
        .collect();
    items.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
    let chunk = items.len().div_ceil(dop).max(1);
    let slices: Vec<Vec<(Rect, RowId)>> = items.chunks(chunk).map(|c| c.to_vec()).collect();

    // Stage 2: cluster subtrees in parallel. Each slave is a table
    // function whose payload is an STR bulk load; it reports one
    // summary row and deposits the subtree in a shared slot.
    let subtrees: Arc<Mutex<Vec<Option<RTree<RowId>>>>> =
        Arc::new(Mutex::new((0..slices.len()).map(|_| None).collect()));
    let build_instances: Vec<Box<dyn TableFunction>> = slices
        .into_iter()
        .enumerate()
        .map(|(slot, slice)| {
            let subtrees = Arc::clone(&subtrees);
            Box::new(sdo_tablefunc::table_function::BufferedFn::new(move || {
                let n = slice.len();
                let tree = RTree::bulk_load(slice, rt_params);
                let mbr = tree.mbr();
                subtrees.lock()[slot] = Some(tree);
                Ok(vec![vec![
                    Value::Integer(slot as i64),
                    Value::Integer(n as i64),
                    Value::Double(mbr.min_x),
                    Value::Double(mbr.min_y),
                    Value::Double(mbr.max_x),
                    Value::Double(mbr.max_y),
                ]])
            })) as Box<dyn TableFunction>
        })
        .collect();
    let cluster_node = prof.as_ref().map(|p| p.child("parallel subtree cluster"));
    let t_cluster = Instant::now();
    {
        let _scope = cluster_node.clone().map(sdo_obs::enter);
        execute_parallel(build_instances, 16).map_err(DbError::from)?;
    }
    let parallel_stage = t0.elapsed();
    if let Some(n) = &cluster_node {
        n.add_wall(t_cluster.elapsed());
    }

    // Stage 3: merge subtrees.
    let t1 = Instant::now();
    let trees: Vec<RTree<RowId>> = subtrees.lock().iter_mut().filter_map(|s| s.take()).collect();
    let mut merged = RTree::merge(trees);
    if merged.counters().is_none() {
        merged = merged.with_counters(counters);
    }
    let merge_stage = t1.elapsed();
    if let Some(p) = &prof {
        let n = p.child("subtree merge");
        n.add_wall(merge_stage);
        n.add_rows(merged.len() as u64);
    }

    Ok((merged, CreationStats { dop, parallel_stage, merge_stage, stage_rows, partition_sizes }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::IndexKindParam;
    use sdo_geom::{Geometry, Polygon};
    use sdo_storage::{DataType, Schema};

    fn geometry_table(n: usize) -> Arc<RwLock<Table>> {
        let mut t =
            Table::new("G", Schema::of(&[("ID", DataType::Integer), ("GEOM", DataType::Geometry)]));
        for i in 0..n {
            let x = ((i * 37) % 500) as f64;
            let y = ((i * 91) % 500) as f64;
            let g = Geometry::Polygon(Polygon::from_rect(&Rect::new(x, y, x + 5.0, y + 5.0)));
            t.insert(vec![Value::Integer(i as i64), Value::geometry(g)]).unwrap();
        }
        Arc::new(RwLock::new(t))
    }

    fn params(kind: IndexKindParam) -> SpatialIndexParams {
        SpatialIndexParams { kind, sdo_level: 6, ..Default::default() }
    }

    #[test]
    fn quadtree_parallel_equals_serial() {
        let table = geometry_table(200);
        let counters = Arc::new(Counters::new());
        let (serial, s1) =
            build_quadtree(&table, 1, &params(IndexKindParam::Quadtree), 1, Arc::clone(&counters))
                .unwrap();
        for dop in [2usize, 4] {
            let (parallel, stats) = build_quadtree(
                &table,
                1,
                &params(IndexKindParam::Quadtree),
                dop,
                Arc::clone(&counters),
            )
            .unwrap();
            assert_eq!(stats.dop, dop);
            assert_eq!(stats.partition_sizes.len(), dop);
            assert_eq!(stats.partition_sizes.iter().sum::<usize>(), 200);
            assert_eq!(parallel.tile_entries(), serial.tile_entries(), "dop={dop}");
            let a: Vec<_> = parallel.iter_entries().collect();
            let b: Vec<_> = serial.iter_entries().collect();
            assert_eq!(a, b, "dop={dop}");
        }
        assert_eq!(s1.stage_rows, serial.tile_entries());
    }

    #[test]
    fn rtree_parallel_equals_serial_items() {
        let table = geometry_table(300);
        let counters = Arc::new(Counters::new());
        let (serial, _) =
            build_rtree(&table, 1, &params(IndexKindParam::RTree), 1, Arc::clone(&counters))
                .unwrap();
        for dop in [2usize, 3, 4] {
            let (parallel, _) =
                build_rtree(&table, 1, &params(IndexKindParam::RTree), dop, Arc::clone(&counters))
                    .unwrap();
            parallel.check_invariants().unwrap_or_else(|e| panic!("dop={dop}: {e}"));
            assert_eq!(parallel.len(), serial.len());
            let mut a: Vec<RowId> = parallel.iter_items().map(|(_, r)| *r).collect();
            let mut b: Vec<RowId> = serial.iter_items().map(|(_, r)| *r).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "dop={dop}");
        }
    }

    #[test]
    fn rtree_parallel_query_equivalence() {
        let table = geometry_table(250);
        let counters = Arc::new(Counters::new());
        let (t1, _) =
            build_rtree(&table, 1, &params(IndexKindParam::RTree), 1, Arc::clone(&counters))
                .unwrap();
        let (t4, _) =
            build_rtree(&table, 1, &params(IndexKindParam::RTree), 4, Arc::clone(&counters))
                .unwrap();
        let w = Rect::new(100.0, 100.0, 260.0, 300.0);
        let mut a: Vec<RowId> = t1.query_window(&w).into_iter().map(|(_, r)| r).collect();
        let mut b: Vec<RowId> = t4.query_window(&w).into_iter().map(|(_, r)| r).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_table_errors_without_extent() {
        let t = Arc::new(RwLock::new(Table::new(
            "E",
            Schema::of(&[("ID", DataType::Integer), ("GEOM", DataType::Geometry)]),
        )));
        let counters = Arc::new(Counters::new());
        let err =
            build_quadtree(&t, 1, &params(IndexKindParam::Quadtree), 2, Arc::clone(&counters));
        assert!(err.is_err());
        // with an explicit extent it builds an empty index
        let p = SpatialIndexParams {
            extent: Some(Rect::new(0.0, 0.0, 1.0, 1.0)),
            ..params(IndexKindParam::Quadtree)
        };
        let (idx, _) = build_quadtree(&t, 1, &p, 2, counters).unwrap();
        assert!(idx.is_empty());
    }

    #[test]
    fn dop_exceeding_rows_is_fine() {
        let table = geometry_table(3);
        let counters = Arc::new(Counters::new());
        let (tree, stats) =
            build_rtree(&table, 1, &params(IndexKindParam::RTree), 8, counters).unwrap();
        assert_eq!(tree.len(), 3);
        assert_eq!(stats.partition_sizes.iter().sum::<usize>(), 3);
        tree.check_invariants().unwrap();
    }
}
