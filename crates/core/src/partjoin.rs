//! Partition-parallel spatial join with two-layer duplicate avoidance.
//!
//! The paper parallelizes its join by descending both R-trees and
//! fanning out subtree pairs (Figure 1) — which presumes both inputs
//! *have* R-trees. This module is the second join engine
//! (`SPATIAL_JOIN(... 'method=partition')`): a space-oriented grid
//! partition join in the style of Tsitsigkos & Mamoulis (arXiv
//! 1908.11740), needing no index at all, with the two-layer class
//! scheme of arXiv 2307.09256 so results need **no dedup or sort
//! pass** despite objects being replicated to every tile they overlap.
//!
//! ## The two-layer classes
//!
//! A uniform `nx x ny` grid is sized from [`SpatialSample`] stats.
//! Each MBR is assigned to every tile it overlaps and *classified*
//! per tile by where its low corner falls, using the clamped monotone
//! tile maps `fx`/`fy` (out-of-range coordinates clamp to the edge
//! tiles, so edge tiles act as half-open strips to infinity and the
//! sampled extent need not cover the data):
//!
//! * **A** — `fx(min_x)` and `fy(min_y)` are both this tile: the MBR
//!   *starts* here,
//! * **B** — starts in this tile column, entered from below
//!   (`fy(min_y)` earlier),
//! * **C** — starts in this tile row, entered from the left,
//! * **D** — entered diagonally: both coordinates started earlier.
//!
//! Per tile, only the class combinations `A x A`, `A x B`, `B x A`,
//! `A x C`, `C x A`, `A x D`, `D x A`, `B x C`, `C x B` are joined.
//!
//! **Exactly-once argument.** For rects `l`, `r` define the reference
//! tile `T*(l,r) = (max(fx(l.min_x), fx(r.min_x)), max(fy(l.min_y),
//! fy(r.min_y)))` — the tile holding the low corner of the pair's
//! x/y-range intersection. Direct case analysis shows the combination
//! `(class_T(l), class_T(r))` is in the allowed set **iff** `T =
//! T*(l,r)`: the allowed set is exactly the combinations where the
//! *later* of the two starting columns and the later of the two
//! starting rows are this tile's. `T*` is unique, so any pair is
//! MBR-tested in at most one tile. Conversely, every pair whose MBRs
//! satisfy the join predicate overlaps in both axes (within-distance
//! joins expand the left rect by `d` first, and `mindist <= d`
//! implies per-axis gaps `<= d`), hence `max(min) <= min(max)`
//! per axis, hence both rects are assigned to `T*` — the pair *is*
//! tested there. One tile, one test, zero duplicates, zero misses.
//!
//! ## Execution
//!
//! Tiles with entries on both sides become [`TileTask`]s on the
//! work-stealing [`TaskQueue`]. A pulled task whose occupancy product
//! exceeds `split_threshold` is halved over its left-entry range and
//! re-queued, so one hot tile spreads across slaves (skew handling
//! beyond what static tile assignment could do). Each slave matches
//! class runs with the SoA batch kernels — the plane sweep above
//! `sweep_threshold`, chunked scans below — into a candidate array
//! that funnels through the *same* [`SecondaryFilter`] (rowid-sorted
//! fetches, per-side [`GeomCache`]) as the tree join, and streams
//! rowid pairs out of the ordinary `start`/`fetch`/`close` protocol,
//! so `LIMIT` pushdown and memory accounting work unchanged.

use crate::join::{ExactPredicate, GeomCache, JoinPhases, SecondaryFilter, SpatialJoinConfig};
use parking_lot::RwLock;
use sdo_geom::Rect;
use sdo_obs::ProfileNode;
use sdo_rtree::join::CandidatePair;
use sdo_rtree::kernel::simd::QUANT_SWEEP_SCALE;
use sdo_rtree::kernel::{sweep_pairs, SoaMbrs, SweepScratch};
use sdo_rtree::{
    dispatched, scan_pred_quantized, sweep_pairs_simd, JoinPredicate, KernelMode, KernelStats,
    QuantCounters, QuantizedMbrs, SweepScratchSimd,
};
use sdo_storage::{Counters, RowId, Snapshot, SpatialSample, Table};
use sdo_tablefunc::{Row, TableFunction, TaskQueue, TfError};
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

/// Rows sampled per side to size the grid.
const SAMPLE_SIZE: usize = 1024;
/// Grid sizing target: mean entries (both sides) per tile. Balances
/// per-tile sweep cost, which grows with the square of occupancy
/// (every x-overlapping pair in a tile is tested), against per-tile
/// setup cost (nine class-combo kernel launches each), which makes a
/// too-fine grid pay more in overhead than it saves in tests.
/// Replication stays bounded by the tile-edge ≥ 2× object-size cap in
/// [`GridSpec::from_samples`].
const TARGET_OCCUPANCY: usize = 32;
/// Upper bound on grid cells per axis.
const MAX_AXIS_TILES: usize = 256;
/// Floor on the left-entry range of a split task (see
/// [`PartitionJoin::pull_task`] — kept in lockstep with the
/// blocked right-side emission so candidate chunks stay within one
/// geometry-cache-sized working set per side).
const MIN_SPLIT_LEFTS: u32 = 64;

/// Class indices: A = starts in tile, B = entered from below,
/// C = entered from the left, D = entered diagonally.
const CLASS_A: usize = 0;
const CLASS_B: usize = 1;
const CLASS_C: usize = 2;
const CLASS_D: usize = 3;

/// The per-tile class combinations that make each pair's MBR test run
/// in exactly one tile (see the module docs for the argument).
const ALLOWED_COMBOS: [(usize, usize); 9] = [
    (CLASS_A, CLASS_A),
    (CLASS_A, CLASS_B),
    (CLASS_B, CLASS_A),
    (CLASS_A, CLASS_C),
    (CLASS_C, CLASS_A),
    (CLASS_A, CLASS_D),
    (CLASS_D, CLASS_A),
    (CLASS_B, CLASS_C),
    (CLASS_C, CLASS_B),
];

/// The uniform grid: origin, tile dimensions, tile counts. Index maps
/// clamp, so coordinates outside the (sampled, hence possibly
/// understated) extent land in edge tiles and correctness never
/// depends on sample accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpec {
    /// Grid origin (low corner of the sampled extent).
    pub x0: f64,
    /// Grid origin (low corner of the sampled extent).
    pub y0: f64,
    /// Tile width.
    pub tile_w: f64,
    /// Tile height.
    pub tile_h: f64,
    /// Tile columns.
    pub nx: usize,
    /// Tile rows.
    pub ny: usize,
}

impl GridSpec {
    /// Size a grid from per-side samples: aim for [`TARGET_OCCUPANCY`]
    /// entries per tile and at least `4 * dop` tiles for parallel
    /// fan-out, but keep tiles at least twice the typical object
    /// footprint so the expected replication factor stays O(1).
    pub fn from_samples(left: &SpatialSample, right: &SpatialSample, dop: usize) -> GridSpec {
        let extent = left.extent.union(&right.extent);
        let total = left.rows + right.rows;
        let want_tiles = (total / TARGET_OCCUPANCY).max(4 * dop.max(1)).max(1);
        let axis = (want_tiles as f64).sqrt().ceil().clamp(1.0, MAX_AXIS_TILES as f64) as usize;
        let (mut nx, mut ny) = (axis, axis);

        let w = extent.width().max(0.0);
        let h = extent.height().max(0.0);
        let samples = (left.sampled + right.sampled).max(1) as f64;
        let avg_w = (left.avg_width * left.sampled as f64 + right.avg_width * right.sampled as f64)
            / samples;
        let avg_h = (left.avg_height * left.sampled as f64
            + right.avg_height * right.sampled as f64)
            / samples;
        if avg_w > 0.0 && w > 0.0 {
            nx = nx.min((w / (2.0 * avg_w)).floor().clamp(1.0, MAX_AXIS_TILES as f64) as usize);
        }
        if avg_h > 0.0 && h > 0.0 {
            ny = ny.min((h / (2.0 * avg_h)).floor().clamp(1.0, MAX_AXIS_TILES as f64) as usize);
        }

        let tile_w = if w > 0.0 { w / nx as f64 } else { 1.0 };
        let tile_h = if h > 0.0 { h / ny as f64 } else { 1.0 };
        GridSpec { x0: extent.min_x, y0: extent.min_y, tile_w, tile_h, nx, ny }
    }

    #[inline]
    fn axis_index(v: f64, origin: f64, width: f64, n: usize) -> usize {
        let i = (v - origin) / width;
        if !i.is_finite() || i < 0.0 {
            0
        } else if i >= n as f64 {
            n - 1
        } else {
            i as usize
        }
    }

    /// Clamped tile column of an x coordinate.
    #[inline]
    pub fn col(&self, x: f64) -> usize {
        Self::axis_index(x, self.x0, self.tile_w, self.nx)
    }

    /// Clamped tile row of a y coordinate.
    #[inline]
    pub fn row(&self, y: f64) -> usize {
        Self::axis_index(y, self.y0, self.tile_h, self.ny)
    }

    /// Total tile count.
    pub fn tiles(&self) -> usize {
        self.nx * self.ny
    }
}

/// One side's entries replicated into a tile, grouped into the four
/// class runs (`off[c]..off[c+1]` is class `c`'s run). Rects are the
/// *original* MBRs — classification used the (possibly expanded)
/// assignment rect, but predicates must see the real geometry bounds.
struct TileSide {
    rects: Vec<Rect>,
    rids: Vec<RowId>,
    off: [u32; 5],
}

impl TileSide {
    fn len(&self) -> usize {
        self.rects.len()
    }

    fn class_range(&self, class: usize) -> Range<usize> {
        self.off[class] as usize..self.off[class + 1] as usize
    }
}

/// One fully partitioned input: a [`TileSide`] per grid tile.
struct PartitionedSide {
    tiles: Vec<TileSide>,
}

#[inline]
fn class_of(tx: usize, ty: usize, start_col: usize, start_row: usize) -> usize {
    match (tx == start_col, ty == start_row) {
        (true, true) => CLASS_A,
        (true, false) => CLASS_B,
        (false, true) => CLASS_C,
        (false, false) => CLASS_D,
    }
}

/// Scan a table snapshot and replicate every valid MBR into its tiles
/// with class tags. `expand` widens the *assignment* rect by a
/// distance-join radius (stored rects stay exact); rows without a
/// geometry or with an empty/NaN bbox are skipped — they never join.
fn partition_side(
    table: &Table,
    column: usize,
    grid: &GridSpec,
    expand: f64,
    snap: &Snapshot,
) -> PartitionedSide {
    let mut items: Vec<(Rect, RowId)> = Vec::with_capacity(table.len());
    for (rid, row) in table.scan_at(*snap) {
        if let Some(b) = row.get(column).and_then(|v| v.as_geometry()).map(|g| g.bbox()) {
            if !b.is_empty() {
                items.push((b, rid));
            }
        }
    }
    let coverage = |r: &Rect| {
        let e = if expand > 0.0 {
            Rect::new(r.min_x - expand, r.min_y - expand, r.max_x + expand, r.max_y + expand)
        } else {
            *r
        };
        (grid.col(e.min_x), grid.col(e.max_x), grid.row(e.min_y), grid.row(e.max_y))
    };

    // Counting pass, then placement into exact-sized class runs — two
    // cheap passes over the MBR list instead of per-tile Vec churn.
    let mut counts = vec![[0u32; 4]; grid.tiles()];
    for (r, _) in &items {
        let (c0, c1, r0, r1) = coverage(r);
        for ty in r0..=r1 {
            for tx in c0..=c1 {
                counts[ty * grid.nx + tx][class_of(tx, ty, c0, r0)] += 1;
            }
        }
    }
    let mut tiles: Vec<TileSide> = counts
        .iter()
        .map(|c| {
            let mut off = [0u32; 5];
            for k in 0..4 {
                off[k + 1] = off[k] + c[k];
            }
            let n = off[4] as usize;
            TileSide { rects: vec![Rect::EMPTY; n], rids: vec![RowId::new(0); n], off }
        })
        .collect();
    let mut cursor: Vec<[u32; 4]> =
        tiles.iter().map(|t| [t.off[0], t.off[1], t.off[2], t.off[3]]).collect();
    for (r, rid) in &items {
        let (c0, c1, r0, r1) = coverage(r);
        for ty in r0..=r1 {
            for tx in c0..=c1 {
                let t = ty * grid.nx + tx;
                let class = class_of(tx, ty, c0, r0);
                let slot = cursor[t][class] as usize;
                cursor[t][class] += 1;
                tiles[t].rects[slot] = *r;
                tiles[t].rids[slot] = *rid;
            }
        }
    }
    PartitionedSide { tiles }
}

/// One unit of partitioned join work: a tile plus a range over its
/// left-side entries. Tasks start as whole tiles and get halved by
/// occupancy-based splitting when skew concentrates work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileTask {
    tile: u32,
    lo: u32,
    hi: u32,
}

/// The shared, immutable build product of a partitioned join: the
/// grid, both partitioned sides, and the seeded task queue every
/// slave pulls from. Built once in the table-function factory.
pub struct PartitionState {
    grid: GridSpec,
    left: PartitionedSide,
    right: PartitionedSide,
    queue: Arc<TaskQueue<TileTask>>,
    /// Tiles holding entries on both sides (= seeded tasks).
    pub partition_tiles: u64,
    /// Max entries (both sides) resident in any single tile — the
    /// skew figure `EXPLAIN ANALYZE` reports.
    pub tile_max_occupancy: u64,
}

impl PartitionState {
    /// Sample both inputs, size the grid, partition both sides, and
    /// seed one task per non-empty tile round-robin across `dop`
    /// queue shards.
    pub fn build(
        left_table: &Arc<RwLock<Table>>,
        left_column: usize,
        right_table: &Arc<RwLock<Table>>,
        right_column: usize,
        exact: &ExactPredicate,
        dop: usize,
        snap: &Snapshot,
    ) -> Arc<PartitionState> {
        let ls = SpatialSample::collect(&left_table.read(), left_column, SAMPLE_SIZE);
        let rs = SpatialSample::collect(&right_table.read(), right_column, SAMPLE_SIZE);
        let grid = GridSpec::from_samples(&ls, &rs, dop);
        let expand = match exact.join_predicate() {
            JoinPredicate::WithinDistance(d) => d.max(0.0),
            JoinPredicate::Intersects => 0.0,
        };
        let left = partition_side(&left_table.read(), left_column, &grid, expand, snap);
        let right = partition_side(&right_table.read(), right_column, &grid, 0.0, snap);

        let mut tasks = Vec::new();
        let mut max_occupancy = 0u64;
        for (i, (lt, rt)) in left.tiles.iter().zip(&right.tiles).enumerate() {
            max_occupancy = max_occupancy.max((lt.len() + rt.len()) as u64);
            if lt.len() > 0 && rt.len() > 0 {
                tasks.push(TileTask { tile: i as u32, lo: 0, hi: lt.len() as u32 });
            }
        }
        let partition_tiles = tasks.len() as u64;
        let queue = TaskQueue::seed_round_robin(tasks, dop.max(1));
        Arc::new(PartitionState {
            grid,
            left,
            right,
            queue,
            partition_tiles,
            tile_max_occupancy: max_occupancy,
        })
    }

    /// The grid this state partitioned both sides on.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }
}

/// One slave of the partitioned join — a pipelined table function
/// pulling [`TileTask`]s from the shared queue, matching class runs
/// with the SoA kernels, and running candidates through the shared
/// [`SecondaryFilter`]. Serial joins are just `dop = 1` with a single
/// slave owning every task.
pub struct PartitionJoin {
    state: Arc<PartitionState>,
    left_table: Arc<RwLock<Table>>,
    left_column: usize,
    right_table: Arc<RwLock<Table>>,
    right_column: usize,
    exact: ExactPredicate,
    config: SpatialJoinConfig,
    counters: Arc<Counters>,
    worker: usize,
    executed: u64,
    stolen: u64,
    soa_left: SoaMbrs,
    soa_right: SoaMbrs,
    sweep: SweepScratch,
    sweep_simd: SweepScratchSimd,
    quant_right: QuantizedMbrs,
    carry: VecDeque<CandidatePair<RowId, RowId>>,
    out: VecDeque<Row>,
    lcache: GeomCache,
    rcache: GeomCache,
    started: bool,
    exhausted: bool,
    peak_candidates: usize,
    kernel_stats: KernelStats,
    result_rows: usize,
    attached: Option<ProfileNode>,
    phases: Option<JoinPhases>,
}

impl PartitionJoin {
    /// A slave pulling from `state`'s queue as `worker`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        state: Arc<PartitionState>,
        left_table: Arc<RwLock<Table>>,
        left_column: usize,
        right_table: Arc<RwLock<Table>>,
        right_column: usize,
        exact: ExactPredicate,
        config: SpatialJoinConfig,
        counters: Arc<Counters>,
        worker: usize,
    ) -> Self {
        let cache = config.cache_size;
        let snap = config.snapshot;
        PartitionJoin {
            state,
            left_table,
            left_column,
            right_table,
            right_column,
            exact,
            config,
            counters,
            worker,
            executed: 0,
            stolen: 0,
            soa_left: SoaMbrs::new(),
            soa_right: SoaMbrs::new(),
            sweep: SweepScratch::new(),
            sweep_simd: SweepScratchSimd::new(),
            quant_right: QuantizedMbrs::new(),
            carry: VecDeque::new(),
            out: VecDeque::new(),
            lcache: GeomCache::new(cache).at_snapshot(snap),
            rcache: GeomCache::new(cache).at_snapshot(snap),
            started: false,
            exhausted: false,
            peak_candidates: 0,
            kernel_stats: KernelStats::default(),
            result_rows: 0,
            attached: None,
            phases: None,
        }
    }

    /// Geometry-cache statistics `(hits, misses)` across both sides.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.lcache.hits + self.rcache.hits, self.lcache.misses + self.rcache.misses)
    }

    /// Kernel accounting accumulated across all processed tiles.
    pub fn kernel_stats(&self) -> KernelStats {
        self.kernel_stats
    }

    /// Total result rows delivered so far.
    pub fn rows_returned(&self) -> usize {
        self.result_rows
    }

    /// Pull the next task, halving oversized ones (occupancy product
    /// above `split_threshold`) back onto the own shard first so idle
    /// siblings can steal the other half. Tasks never shrink below
    /// [`MIN_SPLIT_LEFTS`] left entries: narrower slivers make each
    /// sorted candidate chunk span many right-side blocks (few lefts
    /// → few candidates per block), defeating the cache-sized blocked
    /// emission in [`Self::join_tile`].
    fn pull_task(&mut self) -> Option<TileTask> {
        loop {
            let pulled = self.state.queue.pop(self.worker)?;
            self.executed += 1;
            self.stolen += u64::from(pulled.stolen);
            let t = pulled.task;
            let rlen = self.state.right.tiles[t.tile as usize].len() as u64;
            let work = u64::from(t.hi - t.lo).saturating_mul(rlen);
            if work > self.config.split_threshold && t.hi - t.lo >= 2 * MIN_SPLIT_LEFTS {
                let mid = t.lo + (t.hi - t.lo) / 2;
                self.state.queue.push(self.worker, TileTask { tile: t.tile, lo: t.lo, hi: mid });
                self.state.queue.push(self.worker, TileTask { tile: t.tile, lo: mid, hi: t.hi });
                continue;
            }
            return Some(t);
        }
    }

    /// MBR-match one task's left range against the tile's right side,
    /// class combination by class combination, appending candidate
    /// pairs to `carry`.
    fn join_tile(&mut self, task: TileTask) {
        let state = Arc::clone(&self.state);
        let lt = &state.left.tiles[task.tile as usize];
        let rt = &state.right.tiles[task.tile as usize];
        let pred = self.exact.join_predicate();
        let (lo, hi) = (task.lo as usize, task.hi as usize);
        for &(lclass, rclass) in &ALLOWED_COMBOS {
            let lr = lt.class_range(lclass);
            let lr = lr.start.max(lo)..lr.end.min(hi);
            if lr.start >= lr.end {
                continue;
            }
            let rr = rt.class_range(rclass);
            if rr.is_empty() {
                continue;
            }
            let (lrects, lrids) = (&lt.rects[lr.clone()], &lt.rids[lr]);
            let (rrects_all, rrids_all) = (&rt.rects[rr.clone()], &rt.rids[rr]);
            // Emit candidates in right-side blocks sized to the
            // geometry cache. A dense tile holds thousands of rows; an
            // unblocked kernel interleaves them all into every
            // candidate chunk and the secondary filter's per-side LRU
            // thrashes (one miss per pair). Blocked emission keeps
            // each chunk's right working set resident — same pair
            // set, cache-friendly order. Task splitting already
            // bounds the left range the same way.
            let block = (self.config.cache_size / 2).clamp(128, 2048);
            let carry = &mut self.carry;
            for b0 in (0..rrects_all.len()).step_by(block) {
                let b1 = (b0 + block).min(rrects_all.len());
                let (rrects, rrids) = (&rrects_all[b0..b1], &rrids_all[b0..b1]);
                match self.config.kernel {
                    KernelMode::Scalar => {
                        for (i, a) in lrects.iter().enumerate() {
                            for (j, b) in rrects.iter().enumerate() {
                                if pred.matches(a, b) {
                                    carry.push_back((*a, lrids[i], *b, rrids[j]));
                                }
                            }
                        }
                    }
                    KernelMode::Batch => {
                        self.soa_right.fill(rrects.iter());
                        if lrects.len() * rrects.len() >= self.config.sweep_threshold {
                            self.soa_left.fill(lrects.iter());
                            let tests = sweep_pairs(
                                &self.soa_left,
                                &self.soa_right,
                                pred,
                                &mut self.sweep,
                                |i, j| carry.push_back((lrects[i], lrids[i], rrects[j], rrids[j])),
                            );
                            self.kernel_stats.sweeps += 1;
                            self.kernel_stats.tests += tests;
                        } else {
                            let mut tests = 0;
                            for (i, a) in lrects.iter().enumerate() {
                                tests += self.soa_right.scan_pred(pred, a, |j| {
                                    carry.push_back((*a, lrids[i], rrects[j], rrids[j]))
                                });
                            }
                            self.kernel_stats.scans += 1;
                            self.kernel_stats.tests += tests;
                        }
                    }
                    KernelMode::Simd => {
                        self.soa_right.fill(rrects.iter());
                        // Quantized scans move the sweep crossover up
                        // (see QUANT_SWEEP_SCALE in sdo-rtree).
                        let cutoff = self.config.sweep_threshold.saturating_mul(QUANT_SWEEP_SCALE);
                        if lrects.len() * rrects.len() >= cutoff {
                            self.soa_left.fill(lrects.iter());
                            let tests = sweep_pairs_simd(
                                &self.soa_left,
                                &self.soa_right,
                                pred,
                                &mut self.sweep_simd,
                                |i, j| carry.push_back((lrects[i], lrids[i], rrects[j], rrids[j])),
                            );
                            self.kernel_stats.sweeps += 1;
                            self.kernel_stats.tests += tests;
                        } else {
                            // Quantized right-side scan: one u16 encode
                            // of the block amortized over every left
                            // probe, exact f64 recheck on hit.
                            self.quant_right.fill_from_soa(&self.soa_right);
                            let mut qc = QuantCounters::default();
                            let mut tests = 0;
                            for (i, a) in lrects.iter().enumerate() {
                                tests += scan_pred_quantized(
                                    &self.quant_right,
                                    &self.soa_right,
                                    pred,
                                    a,
                                    &mut qc,
                                    |j| carry.push_back((*a, lrids[i], rrects[j], rrids[j])),
                                );
                            }
                            self.kernel_stats.scans += 1;
                            self.kernel_stats.tests += tests;
                            self.kernel_stats.quantized_hits += qc.quantized_hits;
                            self.kernel_stats.exact_rejects += qc.exact_rejects;
                        }
                    }
                }
            }
        }
    }

    /// Pull and process one task end to end: tile kernels into the
    /// candidate array, then the shared secondary filter in
    /// `candidate_array`-sized chunks.
    fn process_next_task(&mut self) {
        let Some(task) = self.pull_task() else {
            self.exhausted = true;
            return;
        };
        let t_mbr = self.phases.as_ref().map(|_| Instant::now());
        self.join_tile(task);
        let produced = self.carry.len();
        if let (Some(p), Some(t0)) = (&self.phases, t_mbr) {
            p.mbr.add_wall(t0.elapsed());
            p.mbr.add_batches(1);
            p.mbr.add_rows(produced as u64);
        }
        Counters::add(&self.counters.mbr_tests, produced as u64);
        while !self.carry.is_empty() {
            let n = self.carry.len().min(self.config.candidate_array);
            self.peak_candidates = self.peak_candidates.max(n);
            let batch: Vec<_> = self.carry.drain(..n).collect();
            let filter = SecondaryFilter {
                left_table: &self.left_table,
                left_column: self.left_column,
                right_table: &self.right_table,
                right_column: self.right_column,
                exact: &self.exact,
                prepare: self.config.prepare,
                fetch_order: self.config.fetch_order,
            };
            filter.run(
                batch,
                &mut self.lcache,
                &mut self.rcache,
                &self.counters,
                self.phases.as_ref(),
                &mut self.out,
            );
        }
    }
}

impl TableFunction for PartitionJoin {
    fn start(&mut self) -> Result<(), TfError> {
        if self.started {
            return Err(TfError::Protocol("start called twice"));
        }
        self.started = true;
        if let Some(node) =
            self.attached.clone().or_else(|| sdo_obs::current().map(|c| c.child("partition join")))
        {
            self.phases = Some(JoinPhases::new(node));
        }
        Ok(())
    }

    fn fetch(&mut self, max_rows: usize) -> Result<Vec<Row>, TfError> {
        if !self.started {
            return Err(TfError::Protocol("fetch before start"));
        }
        while self.out.len() < max_rows && !self.exhausted {
            self.process_next_task();
        }
        let n = self.out.len().min(max_rows);
        self.result_rows += n;
        Ok(self.out.drain(..n).collect())
    }

    fn close(&mut self) {
        self.carry.clear();
        self.out.clear();
        if let Some(p) = self.phases.take() {
            p.node.add_metric("geom_cache_hits", self.lcache.hits + self.rcache.hits);
            p.node.add_metric("geom_cache_misses", self.lcache.misses + self.rcache.misses);
            p.filter.set_metric("cache_hits", self.lcache.hits + self.rcache.hits);
            p.filter.set_metric("cache_misses", self.lcache.misses + self.rcache.misses);
            p.node.add_metric("peak_candidates", self.peak_candidates as u64);
            p.node.add_metric("kernel_sweeps", self.kernel_stats.sweeps);
            p.node.add_metric("kernel_scans", self.kernel_stats.scans);
            p.node.add_metric("kernel_tests", self.kernel_stats.tests);
            if self.config.kernel == KernelMode::Simd {
                // set_metric: zeros must render so a plan that never
                // took the quantized path is visible as such.
                p.node.set_attr("kernel_isa", dispatched().name());
                p.node.set_metric("quantized_hits", self.kernel_stats.quantized_hits);
                p.node.set_metric("exact_rejects", self.kernel_stats.exact_rejects);
            }
            // set_metric: a slave at 0 tasks must still render — that
            // imbalance is what EXPLAIN ANALYZE exists to expose.
            p.node.set_metric("tasks_executed", self.executed);
            p.node.set_metric("tasks_stolen", self.stolen);
        }
        self.lcache.clear();
        self.rcache.clear();
    }

    fn attach_profile(&mut self, node: &ProfileNode) {
        self.attached = Some(node.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_geom::{Geometry, Polygon};
    use sdo_storage::{DataType, Schema, Value};
    use sdo_tablefunc::table_function::collect_all;

    fn geom_table(name: &str, rects: &[Rect]) -> Arc<RwLock<Table>> {
        let mut t = Table::new(name, Schema::of(&[("GEOM", DataType::Geometry)]));
        for r in rects {
            t.insert(vec![Value::geometry(Geometry::Polygon(Polygon::from_rect(r)))]).unwrap();
        }
        Arc::new(RwLock::new(t))
    }

    fn rects(offset: f64, n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = offset + ((i * 2654435761) % 1000) as f64 / 5.0;
                let y = ((i * 40503) % 1000) as f64 / 5.0;
                Rect::new(x, y, x + 2.0, y + 2.0)
            })
            .collect()
    }

    fn run_join(
        left: &Arc<RwLock<Table>>,
        right: &Arc<RwLock<Table>>,
        exact: ExactPredicate,
        dop: usize,
        config: SpatialJoinConfig,
    ) -> Vec<(u64, u64)> {
        let state = PartitionState::build(left, 0, right, 0, &exact, dop, &Snapshot::LATEST);
        let mut pairs = Vec::new();
        for worker in 0..dop {
            let mut f = PartitionJoin::new(
                Arc::clone(&state),
                Arc::clone(left),
                0,
                Arc::clone(right),
                0,
                exact.clone(),
                config.clone(),
                Arc::new(Counters::new()),
                worker,
            );
            for row in collect_all(&mut f, 777).unwrap() {
                pairs.push((
                    row[0].as_rowid().unwrap().as_u64(),
                    row[1].as_rowid().unwrap().as_u64(),
                ));
            }
        }
        pairs
    }

    fn brute(a: &[Rect], b: &[Rect], pred: JoinPredicate) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (i, ra) in a.iter().enumerate() {
            for (j, rb) in b.iter().enumerate() {
                if pred.matches(ra, rb) {
                    out.push((i as u64, j as u64));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn partition_join_matches_nested_loop_with_zero_duplicates() {
        let (ra, rb) = (rects(0.0, 400), rects(50.0, 300));
        let (ta, tb) = (geom_table("a", &ra), geom_table("b", &rb));
        for exact in [ExactPredicate::PrimaryOnly, ExactPredicate::Distance(3.0)] {
            let want = brute(&ra, &rb, exact.join_predicate());
            for dop in [1usize, 3] {
                let mut got = run_join(&ta, &tb, exact.clone(), dop, SpatialJoinConfig::default());
                let n = got.len();
                got.sort_unstable();
                got.dedup();
                assert_eq!(n, got.len(), "duplicates emitted at dop={dop} {exact:?}");
                assert_eq!(got, want, "dop={dop} {exact:?}");
            }
        }
    }

    #[test]
    fn splitting_and_thresholds_preserve_results() {
        let (ra, rb) = (rects(0.0, 500), rects(10.0, 500));
        let (ta, tb) = (geom_table("a", &ra), geom_table("b", &rb));
        let want = brute(&ra, &rb, JoinPredicate::Intersects);
        for (split, threshold, kernel) in [
            (8u64, 0usize, KernelMode::Batch),
            (8, usize::MAX, KernelMode::Batch),
            (u64::MAX, 256, KernelMode::Scalar),
            (8, 0, KernelMode::Simd),
            (8, usize::MAX, KernelMode::Simd),
        ] {
            let config = SpatialJoinConfig {
                split_threshold: split,
                sweep_threshold: threshold,
                kernel,
                ..SpatialJoinConfig::default()
            };
            let mut got = run_join(&ta, &tb, ExactPredicate::PrimaryOnly, 4, config);
            let n = got.len();
            got.sort_unstable();
            got.dedup();
            assert_eq!(n, got.len(), "split={split} threshold={threshold}");
            assert_eq!(got, want, "split={split} threshold={threshold}");
        }
    }

    #[test]
    fn grid_clamps_out_of_extent_coordinates() {
        // A sample understating the extent must not lose pairs: rects
        // far outside the grid clamp into edge tiles.
        let sample = SpatialSample {
            rows: 10,
            sampled: 2,
            extent: Rect::new(0.0, 0.0, 10.0, 10.0),
            avg_width: 1.0,
            avg_height: 1.0,
        };
        let grid = GridSpec::from_samples(&sample, &sample, 2);
        assert_eq!(grid.col(-1e9), 0);
        assert_eq!(grid.row(1e9), grid.ny - 1);
        assert_eq!(grid.col(f64::NAN), 0);
    }
}
