//! The `SPATIAL_JOIN` pipelined table function (paper §4).
//!
//! Evaluation follows §4.2 to the letter:
//!
//! > "In the start method, the metadata of the two R-tree indexes ...
//! > is loaded and the subtree roots ... are pushed onto a stack. In
//! > each fetch call, the spatial join processing is resumed using the
//! > contents of the stack ... First the index-based MBRs are compared
//! > for intersection with each other. An array of candidate pairs of
//! > geometries are computed using the two indexes. The size of this
//! > array is determined by existing memory resources. Once the
//! > candidate array is processed, the array is filled by resuming the
//! > index-based join ... Each candidate pair ... [is] processed by
//! > first fetching the exact geometries from the two tables and then
//! > comparing them using a secondary (geometry-geometry) filter. ...
//! > sorting the candidate pair based on the first rowid is much
//! > better"
//!
//! [`SpatialJoin`] holds the explicit stack (via
//! [`sdo_rtree::JoinCursor`]'s suspend/resume parts), a memory-bounded
//! candidate array, and a small geometry buffer cache that makes the
//! rowid-sort fetch-order optimization measurable.

use parking_lot::RwLock;
use sdo_geom::{PreparedGeometry, RelateMask};
use sdo_obs::ProfileNode;
use sdo_rtree::join::{subtree_pair_tasks, CandidatePair};
use sdo_rtree::{JoinCursor, JoinPredicate, KernelMode, KernelStats, NodeId, RTree};
use sdo_storage::{Counters, RowId, Snapshot, Table, Value};
use sdo_tablefunc::{Row, TableFunction, TfError};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Per-phase profile nodes for one join instance — the four §4.2
/// phases, reported under the operator (or slave) node when a
/// [`sdo_obs::ProfileSession`] is active. Absent (`None`) otherwise,
/// so the un-profiled path pays nothing. Shared with the partitioned
/// join (`partjoin`), whose "mbr join" phase is the per-tile kernel
/// pass instead of a tree traversal — the names stay identical so
/// profiles compare across `method=` settings.
pub(crate) struct JoinPhases {
    pub(crate) node: ProfileNode,
    pub(crate) mbr: ProfileNode,
    pub(crate) sort: ProfileNode,
    pub(crate) fetch: ProfileNode,
    pub(crate) filter: ProfileNode,
}

impl JoinPhases {
    pub(crate) fn new(node: ProfileNode) -> Self {
        JoinPhases {
            mbr: node.child("mbr join"),
            sort: node.child("candidate sort"),
            fetch: node.child("geometry fetch"),
            filter: node.child("exact filter"),
            node,
        }
    }
}

/// Order in which candidate-pair geometries are fetched (§4.2's
/// optimization; the `Arrival` setting exists for the ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FetchOrder {
    /// Sort each candidate array by the first rowid — the paper's
    /// choice, "expected to be within 20% of the best approximate
    /// solutions".
    #[default]
    RowidSorted,
    /// Process candidates in MBR-join arrival order (leaf-pair order,
    /// which already has spatial locality).
    Arrival,
    /// Process candidates in a pseudo-random order — the strawman the
    /// paper compares against ("Instead of a random order of fetching
    /// the geometries, sorting ... is much better").
    Random,
}

/// The exact predicate applied by the secondary filter.
#[derive(Debug, Clone, PartialEq)]
pub enum ExactPredicate {
    /// `SDO_RELATE`-style mask union.
    Masks(Vec<RelateMask>),
    /// Within-distance join.
    Distance(f64),
    /// Primary filter only: emit every MBR candidate (mask `FILTER`).
    PrimaryOnly,
}

impl ExactPredicate {
    /// Parse the paper's interaction argument: `'intersect'`,
    /// `'mask=...'` masks, or `'distance=d'`.
    pub fn parse(s: &str) -> Result<ExactPredicate, TfError> {
        let t = s.trim();
        if t.eq_ignore_ascii_case("filter") {
            return Ok(ExactPredicate::PrimaryOnly);
        }
        // Prefix match is case-insensitive, like Oracle keyword syntax
        // ('Distance=2.5' must not fall through to mask parsing).
        let dist_prefix = "distance=".len();
        if t.len() >= dist_prefix
            && t.is_char_boundary(dist_prefix)
            && t[..dist_prefix].eq_ignore_ascii_case("distance=")
        {
            let d = &t[dist_prefix..];
            return d
                .trim()
                .parse()
                .map(ExactPredicate::Distance)
                .map_err(|_| TfError::Execution(format!("bad distance '{d}'")));
        }
        RelateMask::parse_list(t)
            .map(ExactPredicate::Masks)
            .map_err(|e| TfError::Execution(e.to_string()))
    }

    /// The MBR-level predicate implied by this exact predicate.
    pub fn join_predicate(&self) -> JoinPredicate {
        match self {
            ExactPredicate::Distance(d) => JoinPredicate::WithinDistance(*d),
            _ => JoinPredicate::Intersects,
        }
    }
}

/// How subtree-pair tasks are distributed across parallel slaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinSchedule {
    /// Work-stealing: slaves share a [`sdo_tablefunc::TaskQueue`] and
    /// pull tasks on demand, stealing from busy siblings when their own
    /// share runs dry. Robust to skewed data — the default.
    #[default]
    Steal,
    /// Oracle's static split: tasks are dealt round-robin up front and
    /// each slave owns its list. Kept for the ablation bench and as the
    /// faithful reproduction of the paper's cursor partitioning.
    Static,
}

/// Which join engine evaluates `SPATIAL_JOIN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinMethod {
    /// The paper's synchronized R-tree traversal (requires spatial
    /// indexes on both sides) — the default.
    #[default]
    Rtree,
    /// Grid-partitioned join with two-layer duplicate avoidance
    /// (`partjoin`): no index required, per-tile plane sweeps fanned
    /// out over the work-stealing scheduler.
    Partition,
    /// Let the planner pick per query from table stats and index
    /// availability; the decision lands in `EXPLAIN ANALYZE`.
    Auto,
}

impl JoinMethod {
    /// Parse the SQL option value (`rtree` | `partition` | `auto`).
    pub fn parse(s: &str) -> Option<JoinMethod> {
        match s.to_ascii_lowercase().as_str() {
            "rtree" | "tree" => Some(JoinMethod::Rtree),
            "partition" | "grid" => Some(JoinMethod::Partition),
            "auto" => Some(JoinMethod::Auto),
            _ => None,
        }
    }
}

/// Tuning for the join function.
#[derive(Debug, Clone)]
pub struct SpatialJoinConfig {
    /// Maximum candidate pairs held between primary and secondary
    /// filter — "the size of this array is determined by existing
    /// memory resources".
    pub candidate_array: usize,
    /// Order in which candidate geometries are fetched (§4.2).
    pub fetch_order: FetchOrder,
    /// Geometry buffer-cache entries per side (0 disables caching).
    pub cache_size: usize,
    /// Parallel task distribution policy (ignored when serial).
    pub schedule: JoinSchedule,
    /// Work-stealing granularity: a pulled task whose estimated work
    /// ([`sdo_rtree::join::estimate_pair_work`]) exceeds this is split
    /// one level and re-queued, so a single dense subtree pair cannot
    /// pin one slave.
    pub split_threshold: u64,
    /// Primary-filter MBR kernel: batched SoA scans and plane sweeps
    /// (`batch`, the default) or the entry-by-entry scalar loops
    /// (`scalar`, kept for ablation).
    pub kernel: KernelMode,
    /// Secondary filter on [`PreparedGeometry`] fast paths (`true`,
    /// the default) or the naive allocating `relate` family (`false`,
    /// kept for ablation).
    pub prepare: bool,
    /// Join engine: synchronized R-tree traversal, grid partition, or
    /// planner's choice (`method=rtree|partition|auto`).
    pub method: JoinMethod,
    /// Pair-product cutoff above which batch-mode node/tile matching
    /// switches from per-probe scans to the plane-sweep
    /// (`sweep_threshold=N`; default [`sdo_rtree::SWEEP_THRESHOLD`]).
    /// `0` forces the sweep everywhere, `usize::MAX` forces scans.
    pub sweep_threshold: usize,
    /// MVCC read view for geometry fetches and partition scans. The
    /// SQL layer pins this at pipeline instantiation so a streaming
    /// join never mixes rows from before and after a concurrent
    /// commit; [`Snapshot::LATEST`] (the default) preserves the
    /// non-transactional behavior.
    pub snapshot: Snapshot,
}

impl Default for SpatialJoinConfig {
    fn default() -> Self {
        SpatialJoinConfig {
            candidate_array: 4096,
            fetch_order: FetchOrder::default(),
            cache_size: 512,
            schedule: JoinSchedule::default(),
            // One fanout^2 descent below the default task size: coarse
            // enough that splitting stays rare on uniform data, fine
            // enough that a hot cluster spreads across slaves.
            split_threshold: 32_768,
            kernel: KernelMode::default(),
            prepare: true,
            method: JoinMethod::default(),
            sweep_threshold: sdo_rtree::SWEEP_THRESHOLD,
            snapshot: Snapshot::LATEST,
        }
    }
}

/// One side of the join: table + geometry column + R-tree snapshot.
pub struct JoinSide {
    /// The side's base table (geometries fetched by rowid).
    pub table: Arc<RwLock<Table>>,
    /// Geometry column index.
    pub column: usize,
    /// Snapshot of the side's R-tree index.
    pub tree: Arc<RTree<RowId>>,
}

/// A tiny LRU buffer cache for fetched geometries.
///
/// Models the block buffer cache that makes the paper's rowid-sorted
/// fetch order pay off: consecutive fetches of nearby rowids hit the
/// cache, random order thrashes it. Hits promote the entry to
/// most-recently-used; eviction drops the least-recently-used entry.
/// A fetch that finds no geometry (row deleted mid-join) is neither a
/// hit nor a miss — the statistics count real geometry loads only.
///
/// Entries are [`PreparedGeometry`] wrappers: the decoded edge arrays
/// and segment index a prepared predicate builds on first use stay
/// cached with the geometry, so a hot geometry is prepared once no
/// matter how many candidate pairs it appears in. The wrapper itself
/// is lazy — with `prepare=off` nothing beyond the naive `Arc` clone
/// is ever built.
pub(crate) struct GeomCache {
    cap: usize,
    map: std::collections::HashMap<RowId, Arc<PreparedGeometry>>,
    order: VecDeque<RowId>,
    /// MVCC read view: a fetch of a rowid invisible to the snapshot
    /// (uncommitted insert, or committed after the join was pinned)
    /// skips the candidate, exactly like a deleted row.
    snap: Snapshot,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
}

impl GeomCache {
    pub(crate) fn new(cap: usize) -> Self {
        GeomCache {
            cap,
            map: std::collections::HashMap::new(),
            order: VecDeque::new(),
            snap: Snapshot::LATEST,
            hits: 0,
            misses: 0,
        }
    }

    /// Pin geometry fetches to an MVCC read snapshot.
    pub(crate) fn at_snapshot(mut self, snap: Snapshot) -> Self {
        self.snap = snap;
        self
    }

    /// Drop cached geometries but keep hit/miss statistics (used by
    /// `close`, after which the stats remain readable).
    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    pub(crate) fn get(
        &mut self,
        table: &Arc<RwLock<Table>>,
        column: usize,
        rid: RowId,
    ) -> Option<Arc<PreparedGeometry>> {
        if self.cap > 0 {
            if let Some(g) = self.map.get(&rid) {
                self.hits += 1;
                // LRU promotion: the entry moves to the MRU end so a
                // re-referenced geometry outlives one-shot fills.
                if let Some(pos) = self.order.iter().position(|&o| o == rid) {
                    self.order.remove(pos);
                    self.order.push_back(rid);
                }
                return Some(Arc::clone(g));
            }
        }
        let row = table.read().get_at(rid, &self.snap).ok()?;
        let g = Arc::new(PreparedGeometry::from_arc(row.get(column)?.as_geometry().cloned()?));
        self.misses += 1;
        if self.cap > 0 {
            if self.map.len() >= self.cap {
                if let Some(evict) = self.order.pop_front() {
                    self.map.remove(&evict);
                }
            }
            self.map.insert(rid, Arc::clone(&g));
            self.order.push_back(rid);
        }
        Some(g)
    }
}

/// The shared secondary-filter engine — §4.2's second half. Orders one
/// candidate array by the configured [`FetchOrder`], fetches exact
/// geometries through the per-side LRU caches, applies the exact
/// predicate, and appends qualifying rowid pairs to `out`. Both join
/// engines ([`SpatialJoin`]'s tree traversal and the partitioned join
/// in [`crate::partjoin`]) funnel their MBR candidates through here,
/// so fetch-order behavior, exact-test counting, and cache accounting
/// stay identical across `method=` settings.
pub(crate) struct SecondaryFilter<'a> {
    pub(crate) left_table: &'a Arc<RwLock<Table>>,
    pub(crate) left_column: usize,
    pub(crate) right_table: &'a Arc<RwLock<Table>>,
    pub(crate) right_column: usize,
    pub(crate) exact: &'a ExactPredicate,
    pub(crate) prepare: bool,
    pub(crate) fetch_order: FetchOrder,
}

impl SecondaryFilter<'_> {
    pub(crate) fn run(
        &self,
        mut candidates: Vec<CandidatePair<RowId, RowId>>,
        lcache: &mut GeomCache,
        rcache: &mut GeomCache,
        counters: &Counters,
        phases: Option<&JoinPhases>,
        out: &mut VecDeque<Row>,
    ) {
        // §4.2: sort the candidate array by the first rowid before
        // fetching geometries.
        let t_sort = phases.map(|_| Instant::now());
        match self.fetch_order {
            FetchOrder::RowidSorted => candidates.sort_by_key(|&(_, l, _, r)| (l, r)),
            FetchOrder::Random => candidates.sort_by_key(|&(_, l, _, r)| {
                // Deterministic shuffle: multiplicative hash of the pair.
                (l.as_u64() ^ r.as_u64().rotate_left(31)).wrapping_mul(0x9E3779B97F4A7C15)
            }),
            FetchOrder::Arrival => {}
        }
        if let (Some(p), Some(t0)) = (phases, t_sort) {
            p.sort.add_wall(t0.elapsed());
        }

        for (lrect, lrid, rrect, rrid) in candidates {
            if matches!(self.exact, ExactPredicate::PrimaryOnly) {
                out.push_back(vec![Value::RowId(lrid), Value::RowId(rrid)]);
                continue;
            }
            let t_fetch = phases.map(|_| Instant::now());
            let lg = lcache.get(self.left_table, self.left_column, lrid);
            let rg = lg
                .is_some()
                .then(|| rcache.get(self.right_table, self.right_column, rrid))
                .flatten();
            if let (Some(p), Some(t0)) = (phases, t_fetch) {
                p.fetch.add_wall(t0.elapsed());
                p.fetch.add_rows(u64::from(lg.is_some()) + u64::from(rg.is_some()));
            }
            let (Some(lg), Some(rg)) = (lg, rg) else {
                continue; // row deleted mid-join: skip, like a CR miss
            };
            // MVCC staleness guard: an in-flight UPDATE leaves the
            // row's old and new index entries side by side until
            // commit prunes one. Both entries fetch the same
            // (snapshot-visible) heap geometry, so only the entry
            // whose MBR matches that geometry may emit — the other
            // belongs to a version this snapshot cannot see, and
            // emitting through it would duplicate the pair.
            if lg.geometry().bbox() != lrect || rg.geometry().bbox() != rrect {
                continue;
            }
            Counters::bump(&counters.exact_tests);
            let t_filter = phases.map(|_| Instant::now());
            let keep = match (self.exact, self.prepare) {
                (ExactPredicate::Masks(masks), true) => lg.relate_any(&rg, masks),
                (ExactPredicate::Masks(masks), false) => {
                    sdo_geom::relate::relate_any(lg.geometry(), rg.geometry(), masks)
                }
                (ExactPredicate::Distance(d), true) => lg.within_distance(&rg, *d),
                (ExactPredicate::Distance(d), false) => {
                    sdo_geom::within_distance(lg.geometry(), rg.geometry(), *d)
                }
                (ExactPredicate::PrimaryOnly, _) => unreachable!(),
            };
            if let (Some(p), Some(t0)) = (phases, t_filter) {
                p.filter.add_wall(t0.elapsed());
                p.filter.add_rows(1);
            }
            if keep {
                out.push_back(vec![Value::RowId(lrid), Value::RowId(rrid)]);
            }
        }
    }
}

/// A parallel slave's handle on the shared work-stealing task queue:
/// where to pull the next subtree-pair task from, plus per-slave
/// scheduling statistics for `EXPLAIN ANALYZE`.
struct SharedTasks {
    queue: Arc<sdo_tablefunc::TaskQueue<(NodeId, NodeId)>>,
    worker: usize,
    executed: u64,
    stolen: u64,
}

/// The pipelined spatial join over two R-tree-indexed tables.
pub struct SpatialJoin {
    left: JoinSide,
    right: JoinSide,
    exact: ExactPredicate,
    config: SpatialJoinConfig,
    counters: Arc<Counters>,
    /// Present in work-stealing parallel mode: tasks are pulled from
    /// this shared queue instead of living on the private stack.
    tasks: Option<SharedTasks>,
    /// Suspended traversal state: pending node pairs + undelivered MBR
    /// candidates.
    stack: Vec<(NodeId, NodeId)>,
    carry: VecDeque<CandidatePair<RowId, RowId>>,
    /// Secondary-filtered rows awaiting delivery.
    out: VecDeque<Row>,
    lcache: GeomCache,
    rcache: GeomCache,
    started: bool,
    mbr_exhausted: bool,
    /// Peak candidate-array occupancy (pipelining-memory ablation).
    peak_candidates: usize,
    /// MBR-kernel accounting merged across every resumed cursor.
    kernel_stats: KernelStats,
    result_rows: usize,
    attached: Option<ProfileNode>,
    phases: Option<JoinPhases>,
}

impl SpatialJoin {
    /// Serial join: seeded with the two root nodes.
    pub fn new(
        left: JoinSide,
        right: JoinSide,
        exact: ExactPredicate,
        config: SpatialJoinConfig,
        counters: Arc<Counters>,
    ) -> Self {
        let mut stack = Vec::new();
        if !left.tree.is_empty() && !right.tree.is_empty() {
            stack.push((left.tree.root_id(), right.tree.root_id()));
        }
        Self::with_stack(left, right, exact, config, counters, stack)
    }

    /// Parallel-slave join: seeded with assigned subtree-root pairs
    /// (the paper's Figure 1 decomposition).
    pub fn with_stack(
        left: JoinSide,
        right: JoinSide,
        exact: ExactPredicate,
        config: SpatialJoinConfig,
        counters: Arc<Counters>,
        stack: Vec<(NodeId, NodeId)>,
    ) -> Self {
        let cache = config.cache_size;
        let snap = config.snapshot;
        SpatialJoin {
            left,
            right,
            exact,
            config,
            counters,
            tasks: None,
            stack,
            carry: VecDeque::new(),
            out: VecDeque::new(),
            lcache: GeomCache::new(cache).at_snapshot(snap),
            rcache: GeomCache::new(cache).at_snapshot(snap),
            started: false,
            mbr_exhausted: false,
            peak_candidates: 0,
            kernel_stats: KernelStats::default(),
            result_rows: 0,
            attached: None,
            phases: None,
        }
    }

    /// Work-stealing parallel slave: instead of owning a fixed task
    /// stack, this instance pulls subtree-pair tasks from the shared
    /// `queue` as worker `worker`, stealing from siblings when its own
    /// shard runs dry. Oversized tasks (estimated work above
    /// `config.split_threshold`) are split one level and re-queued so
    /// a dense cluster spreads across slaves instead of pinning one.
    pub fn with_shared_tasks(
        left: JoinSide,
        right: JoinSide,
        exact: ExactPredicate,
        config: SpatialJoinConfig,
        counters: Arc<Counters>,
        queue: Arc<sdo_tablefunc::TaskQueue<(NodeId, NodeId)>>,
        worker: usize,
    ) -> Self {
        let mut join = Self::with_stack(left, right, exact, config, counters, Vec::new());
        join.tasks = Some(SharedTasks { queue, worker, executed: 0, stolen: 0 });
        join
    }

    /// Pull the next task from the shared queue onto the private stack,
    /// splitting oversized tasks into re-queued children first. Returns
    /// `false` when the queue is dry (or in static/serial mode, where
    /// there is no queue).
    fn pull_task(&mut self) -> bool {
        let Some(ts) = &mut self.tasks else { return false };
        let pred = self.exact.join_predicate();
        loop {
            let Some(pulled) = ts.queue.pop(ts.worker) else { return false };
            ts.executed += 1;
            ts.stolen += u64::from(pulled.stolen);
            let (l, r) = pulled.task;
            let work = sdo_rtree::join::estimate_pair_work(&self.left.tree, &self.right.tree, l, r);
            if work > self.config.split_threshold {
                if let Some(children) =
                    sdo_rtree::join::split_pair(&self.left.tree, &self.right.tree, pred, l, r)
                {
                    // Children go to the own shard: this worker keeps
                    // descending depth-first while idle siblings steal
                    // the oldest (largest) children from the far end.
                    for c in children {
                        ts.queue.push(ts.worker, c);
                    }
                    continue;
                }
            }
            self.stack.push((l, r));
            return true;
        }
    }

    /// Compute the MBR-filtered subtree-root pair tasks for a parallel
    /// join at `levels_down` (Figure 1).
    pub fn parallel_tasks(
        left: &RTree<RowId>,
        right: &RTree<RowId>,
        exact: &ExactPredicate,
        levels_down: u32,
    ) -> Vec<(NodeId, NodeId)> {
        subtree_pair_tasks(left, right, exact.join_predicate(), levels_down)
    }

    /// Geometry-cache statistics `(hits, misses)` across both sides.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.lcache.hits + self.rcache.hits, self.lcache.misses + self.rcache.misses)
    }

    /// Largest candidate array held at any point.
    pub fn peak_candidates(&self) -> usize {
        self.peak_candidates
    }

    /// MBR-kernel accounting accumulated across all resumed cursors.
    pub fn kernel_stats(&self) -> KernelStats {
        self.kernel_stats
    }

    /// Total result rows delivered so far.
    pub fn rows_returned(&self) -> usize {
        self.result_rows
    }

    /// Refill the candidate array by resuming the index-based join,
    /// then run the secondary filter over it.
    fn process_one_candidate_array(&mut self) -> Result<(), TfError> {
        // Work-stealing mode: with no private work left, pull the next
        // shared task; a dry queue means this slave is done.
        if self.stack.is_empty()
            && self.carry.is_empty()
            && self.tasks.is_some()
            && !self.pull_task()
        {
            self.mbr_exhausted = true;
            return Ok(());
        }
        // Resume the synchronized traversal from the saved stack.
        let mut cursor = JoinCursor::from_parts(
            &self.left.tree,
            &self.right.tree,
            self.exact.join_predicate(),
            std::mem::take(&mut self.stack),
            std::mem::take(&mut self.carry),
        )
        .with_kernel(self.config.kernel)
        .with_sweep_threshold(self.config.sweep_threshold);
        let t_mbr = self.phases.as_ref().map(|_| Instant::now());
        let candidates = cursor.next_batch(self.config.candidate_array);
        self.kernel_stats.merge(&cursor.kernel_stats());
        if let (Some(p), Some(t0)) = (&self.phases, t_mbr) {
            p.mbr.add_wall(t0.elapsed());
            p.mbr.add_batches(1);
            p.mbr.add_rows(candidates.len() as u64);
        }
        Counters::add(&self.counters.mbr_tests, candidates.len() as u64);
        let (stack, carry) = cursor.into_parts();
        self.stack = stack;
        self.carry = carry;
        if candidates.is_empty() && self.stack.is_empty() && self.carry.is_empty() {
            // In work-stealing mode a task may legitimately produce no
            // candidates; the next call pulls again and only a dry
            // queue (above) ends the slave.
            if self.tasks.is_none() {
                self.mbr_exhausted = true;
            }
            return Ok(());
        }
        self.peak_candidates = self.peak_candidates.max(candidates.len());

        let filter = SecondaryFilter {
            left_table: &self.left.table,
            left_column: self.left.column,
            right_table: &self.right.table,
            right_column: self.right.column,
            exact: &self.exact,
            prepare: self.config.prepare,
            fetch_order: self.config.fetch_order,
        };
        filter.run(
            candidates,
            &mut self.lcache,
            &mut self.rcache,
            &self.counters,
            self.phases.as_ref(),
            &mut self.out,
        );
        Ok(())
    }
}

impl TableFunction for SpatialJoin {
    fn start(&mut self) -> Result<(), TfError> {
        if self.started {
            return Err(TfError::Protocol("start called twice"));
        }
        self.started = true;
        // Resolve the profile target: an explicitly attached node (the
        // executor's operator node, or a parallel slave's node), else a
        // child of the ambient profile if a session is active.
        if let Some(node) =
            self.attached.clone().or_else(|| sdo_obs::current().map(|c| c.child("spatial join")))
        {
            self.phases = Some(JoinPhases::new(node));
        }
        Ok(())
    }

    fn fetch(&mut self, max_rows: usize) -> Result<Vec<Row>, TfError> {
        if !self.started {
            return Err(TfError::Protocol("fetch before start"));
        }
        while self.out.len() < max_rows && !self.mbr_exhausted {
            self.process_one_candidate_array()?;
        }
        let n = self.out.len().min(max_rows);
        self.result_rows += n;
        Ok(self.out.drain(..n).collect())
    }

    fn close(&mut self) {
        self.stack.clear();
        self.carry.clear();
        self.out.clear();
        // Flush once: close is idempotent, so take() the phases.
        if let Some(p) = self.phases.take() {
            p.node.add_metric("geom_cache_hits", self.lcache.hits + self.rcache.hits);
            p.node.add_metric("geom_cache_misses", self.lcache.misses + self.rcache.misses);
            // The cache serves the secondary (exact) filter, so its
            // hit rate belongs on that phase node too — set_metric so
            // a cold cache (0 hits) still renders.
            p.filter.set_metric("cache_hits", self.lcache.hits + self.rcache.hits);
            p.filter.set_metric("cache_misses", self.lcache.misses + self.rcache.misses);
            p.node.add_metric("peak_candidates", self.peak_candidates as u64);
            p.node.add_metric("kernel_sweeps", self.kernel_stats.sweeps);
            p.node.add_metric("kernel_scans", self.kernel_stats.scans);
            p.node.add_metric("kernel_tests", self.kernel_stats.tests);
            if self.config.kernel == KernelMode::Simd {
                // set_metric: zeros must render so a plan that never
                // took the quantized/packet path is visible as such.
                p.node.set_attr("kernel_isa", sdo_rtree::dispatched().name());
                p.node.set_metric("quantized_hits", self.kernel_stats.quantized_hits);
                p.node.set_metric("exact_rejects", self.kernel_stats.exact_rejects);
                p.node.set_metric("packet_descents", self.kernel_stats.packet_descents);
            }
            if let Some(ts) = &self.tasks {
                // set_metric: zeros must render — a slave at 0 tasks
                // is the imbalance EXPLAIN ANALYZE exists to expose.
                p.node.set_metric("tasks_executed", ts.executed);
                p.node.set_metric("tasks_stolen", ts.stolen);
            }
        }
        self.lcache.clear();
        self.rcache.clear();
    }

    fn attach_profile(&mut self, node: &ProfileNode) {
        self.attached = Some(node.clone());
    }
}

// ---------------------------------------------------------------------------
// Quadtree join
// ---------------------------------------------------------------------------

/// One side of a quadtree join.
pub struct QtJoinSide {
    /// The side's base table (geometries fetched by rowid).
    pub table: Arc<RwLock<Table>>,
    /// Geometry column index.
    pub column: usize,
    /// Snapshot of the side's quadtree index.
    pub index: Arc<sdo_quadtree::QuadtreeIndex>,
}

/// Spatial join over two quadtree indexes: a sorted merge over tile
/// codes (the quadtree counterpart of the R-tree tree-matching join),
/// followed by the same pipelined secondary filter.
///
/// The merge pass materializes the candidate set up front — unlike the
/// R-tree join it is a single linear pass over both B-trees, so there
/// is no deep traversal state to suspend; the secondary filter still
/// streams through `fetch`.
pub struct QuadtreeJoin {
    left: QtJoinSide,
    right: QtJoinSide,
    exact: ExactPredicate,
    config: SpatialJoinConfig,
    counters: Arc<Counters>,
    candidates: VecDeque<sdo_quadtree::join::JoinCandidate>,
    out: VecDeque<Row>,
    lcache: GeomCache,
    rcache: GeomCache,
    started: bool,
    merged: bool,
    result_rows: usize,
    attached: Option<ProfileNode>,
    phases: Option<QtPhases>,
}

/// Profile nodes for the quadtree join's two phases.
struct QtPhases {
    node: ProfileNode,
    merge: ProfileNode,
    filter: ProfileNode,
}

impl QuadtreeJoin {
    /// A quadtree join over two snapshot sides. Distance predicates
    /// are rejected (use R-tree indexes for those).
    pub fn new(
        left: QtJoinSide,
        right: QtJoinSide,
        exact: ExactPredicate,
        config: SpatialJoinConfig,
        counters: Arc<Counters>,
    ) -> Result<Self, TfError> {
        if matches!(exact, ExactPredicate::Distance(_)) {
            return Err(TfError::Execution(
                "quadtree joins support interaction masks, not distances; \
                 use R-tree indexes for distance joins"
                    .into(),
            ));
        }
        let cache = config.cache_size;
        let snap = config.snapshot;
        Ok(QuadtreeJoin {
            left,
            right,
            exact,
            config,
            counters,
            candidates: VecDeque::new(),
            out: VecDeque::new(),
            lcache: GeomCache::new(cache).at_snapshot(snap),
            rcache: GeomCache::new(cache).at_snapshot(snap),
            started: false,
            merged: false,
            result_rows: 0,
            attached: None,
            phases: None,
        })
    }

    /// Total result rows delivered so far.
    pub fn rows_returned(&self) -> usize {
        self.result_rows
    }

    fn refill(&mut self) -> Result<(), TfError> {
        if !self.merged {
            let t_merge = self.phases.as_ref().map(|_| Instant::now());
            let cands = sdo_quadtree::join::merge_join(&self.left.index, &self.right.index);
            if let (Some(p), Some(t0)) = (&self.phases, t_merge) {
                p.merge.add_wall(t0.elapsed());
                p.merge.add_batches(1);
                p.merge.add_rows(cands.len() as u64);
            }
            Counters::add(&self.counters.mbr_tests, cands.len() as u64);
            self.candidates = cands.into();
            self.merged = true;
        }
        // Secondary-filter one candidate-array's worth.
        let t_filter = self.phases.as_ref().map(|_| Instant::now());
        let take = self.candidates.len().min(self.config.candidate_array);
        let mut batch: Vec<_> = self.candidates.drain(..take).collect();
        if self.config.fetch_order == FetchOrder::RowidSorted {
            batch.sort_by_key(|c| (c.left, c.right));
        }
        let prove_by_tiles =
            matches!(&self.exact, ExactPredicate::Masks(m) if m == &[RelateMask::AnyInteract]);
        // Candidates actually filtered; pairs whose row vanished
        // mid-join are skipped and must not inflate the filter's row
        // count past the delivered cardinality.
        let mut processed = 0u64;
        for c in batch {
            let keep = if matches!(self.exact, ExactPredicate::PrimaryOnly)
                || (prove_by_tiles && c.definite)
            {
                true
            } else {
                let Some(lg) = self.lcache.get(&self.left.table, self.left.column, c.left) else {
                    continue;
                };
                let Some(rg) = self.rcache.get(&self.right.table, self.right.column, c.right)
                else {
                    continue;
                };
                Counters::bump(&self.counters.exact_tests);
                match &self.exact {
                    ExactPredicate::Masks(masks) if self.config.prepare => {
                        lg.relate_any(&rg, masks)
                    }
                    ExactPredicate::Masks(masks) => {
                        sdo_geom::relate::relate_any(lg.geometry(), rg.geometry(), masks)
                    }
                    _ => unreachable!("distance rejected at construction"),
                }
            };
            processed += 1;
            if keep {
                self.out.push_back(vec![Value::RowId(c.left), Value::RowId(c.right)]);
            }
        }
        if let (Some(p), Some(t0)) = (&self.phases, t_filter) {
            p.filter.add_wall(t0.elapsed());
            p.filter.add_rows(processed);
        }
        Ok(())
    }
}

impl TableFunction for QuadtreeJoin {
    fn start(&mut self) -> Result<(), TfError> {
        if self.started {
            return Err(TfError::Protocol("start called twice"));
        }
        self.started = true;
        if let Some(node) =
            self.attached.clone().or_else(|| sdo_obs::current().map(|c| c.child("quadtree join")))
        {
            self.phases = Some(QtPhases {
                merge: node.child("tile merge"),
                filter: node.child("exact filter"),
                node,
            });
        }
        Ok(())
    }

    fn fetch(&mut self, max_rows: usize) -> Result<Vec<Row>, TfError> {
        if !self.started {
            return Err(TfError::Protocol("fetch before start"));
        }
        while self.out.len() < max_rows && (!self.merged || !self.candidates.is_empty()) {
            self.refill()?;
        }
        let n = self.out.len().min(max_rows);
        self.result_rows += n;
        Ok(self.out.drain(..n).collect())
    }

    fn close(&mut self) {
        self.candidates.clear();
        self.out.clear();
        if let Some(p) = self.phases.take() {
            p.node.add_metric("geom_cache_hits", self.lcache.hits + self.rcache.hits);
            p.node.add_metric("geom_cache_misses", self.lcache.misses + self.rcache.misses);
            p.filter.set_metric("cache_hits", self.lcache.hits + self.rcache.hits);
            p.filter.set_metric("cache_misses", self.lcache.misses + self.rcache.misses);
        }
        self.lcache.clear();
        self.rcache.clear();
    }

    fn attach_profile(&mut self, node: &ProfileNode) {
        self.attached = Some(node.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdo_geom::Geometry;
    use sdo_geom::Polygon;
    use sdo_geom::Rect;
    use sdo_rtree::RTreeParams;
    use sdo_storage::{DataType, Schema};
    use sdo_tablefunc::collect_all;

    fn make_side(offset: f64, n: usize) -> (JoinSide, Vec<Geometry>) {
        let mut t =
            Table::new("T", Schema::of(&[("ID", DataType::Integer), ("GEOM", DataType::Geometry)]));
        let mut geoms = Vec::new();
        let mut items = Vec::new();
        for i in 0..n {
            let x = offset + ((i * 53) % 300) as f64;
            let y = ((i * 97) % 300) as f64;
            let g = Geometry::Polygon(Polygon::from_rect(&Rect::new(x, y, x + 8.0, y + 8.0)));
            let rid = t.insert(vec![Value::Integer(i as i64), Value::geometry(g.clone())]).unwrap();
            items.push((g.bbox(), rid));
            geoms.push(g);
        }
        let tree = Arc::new(RTree::bulk_load(items, RTreeParams::with_fanout(8)));
        (JoinSide { table: Arc::new(RwLock::new(t)), column: 1, tree }, geoms)
    }

    fn brute(a: &[Geometry], b: &[Geometry], exact: &ExactPredicate) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (i, ga) in a.iter().enumerate() {
            for (j, gb) in b.iter().enumerate() {
                let keep = match exact {
                    ExactPredicate::Masks(m) => sdo_geom::relate::relate_any(ga, gb, m),
                    ExactPredicate::Distance(d) => sdo_geom::within_distance(ga, gb, *d),
                    ExactPredicate::PrimaryOnly => ga.bbox().intersects(&gb.bbox()),
                };
                if keep {
                    out.push((i as u64, j as u64));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn run(join: &mut SpatialJoin, fetch: usize) -> Vec<(u64, u64)> {
        let rows = collect_all(join, fetch).unwrap();
        let mut out: Vec<(u64, u64)> = rows
            .iter()
            .map(|r| (r[0].as_rowid().unwrap().as_u64(), r[1].as_rowid().unwrap().as_u64()))
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn join_matches_brute_force_for_all_predicates() {
        let (l, lg) = make_side(0.0, 120);
        let (r, rg) = make_side(15.0, 90);
        for exact in [
            ExactPredicate::Masks(vec![RelateMask::AnyInteract]),
            ExactPredicate::Distance(6.0),
            ExactPredicate::PrimaryOnly,
        ] {
            let mut join = SpatialJoin::new(
                JoinSide { table: Arc::clone(&l.table), column: 1, tree: Arc::clone(&l.tree) },
                JoinSide { table: Arc::clone(&r.table), column: 1, tree: Arc::clone(&r.tree) },
                exact.clone(),
                SpatialJoinConfig::default(),
                Arc::new(Counters::new()),
            );
            assert_eq!(run(&mut join, 64), brute(&lg, &rg, &exact), "{exact:?}");
        }
    }

    #[test]
    fn fetch_size_and_candidate_array_do_not_change_results() {
        let (l, lg) = make_side(0.0, 100);
        let (r, rg) = make_side(10.0, 100);
        let want = brute(&lg, &rg, &ExactPredicate::Masks(vec![RelateMask::AnyInteract]));
        for (fetch, cap, order) in [
            (1usize, 7usize, FetchOrder::RowidSorted),
            (5, 64, FetchOrder::Arrival),
            (1000, 2, FetchOrder::RowidSorted),
            (17, 4096, FetchOrder::Arrival),
        ] {
            let mut join = SpatialJoin::new(
                JoinSide { table: Arc::clone(&l.table), column: 1, tree: Arc::clone(&l.tree) },
                JoinSide { table: Arc::clone(&r.table), column: 1, tree: Arc::clone(&r.tree) },
                ExactPredicate::Masks(vec![RelateMask::AnyInteract]),
                SpatialJoinConfig {
                    candidate_array: cap,
                    fetch_order: order,
                    cache_size: 16,
                    ..Default::default()
                },
                Arc::new(Counters::new()),
            );
            assert_eq!(run(&mut join, fetch), want, "fetch={fetch} cap={cap} {order:?}");
            assert!(join.peak_candidates() <= cap.max(1));
        }
    }

    #[test]
    fn parallel_subtree_decomposition_covers_serial_result() {
        let (l, lg) = make_side(0.0, 150);
        let (r, rg) = make_side(5.0, 150);
        let exact = ExactPredicate::Masks(vec![RelateMask::AnyInteract]);
        let want = brute(&lg, &rg, &exact);
        for levels in [1u32, 2] {
            let tasks = SpatialJoin::parallel_tasks(&l.tree, &r.tree, &exact, levels);
            assert!(!tasks.is_empty());
            // Emulate slaves: run each task list slice separately.
            let mut got = Vec::new();
            for chunk in tasks.chunks(tasks.len().div_ceil(3).max(1)) {
                let mut join = SpatialJoin::with_stack(
                    JoinSide { table: Arc::clone(&l.table), column: 1, tree: Arc::clone(&l.tree) },
                    JoinSide { table: Arc::clone(&r.table), column: 1, tree: Arc::clone(&r.tree) },
                    exact.clone(),
                    SpatialJoinConfig::default(),
                    Arc::new(Counters::new()),
                    chunk.to_vec(),
                );
                got.extend(run(&mut join, 128));
            }
            got.sort_unstable();
            assert_eq!(got, want, "levels={levels}");
        }
    }

    #[test]
    fn rowid_sorted_fetch_improves_cache_hits() {
        let (l, _) = make_side(0.0, 500);
        let (r, _) = make_side(3.0, 500);
        let hits = |order: FetchOrder| {
            let mut join = SpatialJoin::new(
                JoinSide { table: Arc::clone(&l.table), column: 1, tree: Arc::clone(&l.tree) },
                JoinSide { table: Arc::clone(&r.table), column: 1, tree: Arc::clone(&r.tree) },
                ExactPredicate::Masks(vec![RelateMask::AnyInteract]),
                SpatialJoinConfig {
                    candidate_array: 4096,
                    fetch_order: order,
                    cache_size: 8,
                    ..Default::default()
                },
                Arc::new(Counters::new()),
            );
            let _ = collect_all(&mut join, 256).unwrap();
            join.cache_stats()
        };
        let (h_sorted, m_sorted) = hits(FetchOrder::RowidSorted);
        let (h_random, m_random) = hits(FetchOrder::Random);
        assert!(h_sorted + m_sorted > 0, "cache statistics must survive close()");
        assert_eq!(h_sorted + m_sorted, h_random + m_random, "same total lookups");
        // The paper's claim: sorted beats random fetch order.
        assert!(
            h_sorted > h_random,
            "sorted fetch order must beat random: {h_sorted} vs {h_random}"
        );
    }

    #[test]
    fn empty_inputs() {
        let (l, _) = make_side(0.0, 0);
        let (r, _) = make_side(0.0, 10);
        let mut join = SpatialJoin::new(
            l,
            r,
            ExactPredicate::Masks(vec![RelateMask::AnyInteract]),
            SpatialJoinConfig::default(),
            Arc::new(Counters::new()),
        );
        assert!(collect_all(&mut join, 16).unwrap().is_empty());
    }

    #[test]
    fn work_stealing_slaves_match_serial_join() {
        let (l, lg) = make_side(0.0, 200);
        let (r, rg) = make_side(5.0, 200);
        let exact = ExactPredicate::Masks(vec![RelateMask::AnyInteract]);
        let want = brute(&lg, &rg, &exact);
        for dop in [1usize, 2, 4] {
            let tasks = SpatialJoin::parallel_tasks(&l.tree, &r.tree, &exact, 1);
            let queue = sdo_tablefunc::TaskQueue::seed_round_robin(tasks, dop);
            // Tiny threshold forces split-and-requeue on every internal
            // pair, exercising mid-run pushes and steals.
            let config = SpatialJoinConfig { split_threshold: 4, ..Default::default() };
            let mut got = Vec::new();
            for worker in 0..dop {
                let mut join = SpatialJoin::with_shared_tasks(
                    JoinSide { table: Arc::clone(&l.table), column: 1, tree: Arc::clone(&l.tree) },
                    JoinSide { table: Arc::clone(&r.table), column: 1, tree: Arc::clone(&r.tree) },
                    exact.clone(),
                    config.clone(),
                    Arc::new(Counters::new()),
                    Arc::clone(&queue),
                    worker,
                );
                got.extend(run(&mut join, 64));
            }
            got.sort_unstable();
            assert_eq!(got, want, "dop={dop}");
        }
    }

    #[test]
    fn distance_prefix_is_case_insensitive() {
        for s in ["distance=2.5", "Distance=2.5", "DISTANCE=2.5", "DiStAnCe= 2.5"] {
            assert_eq!(ExactPredicate::parse(s).unwrap(), ExactPredicate::Distance(2.5), "{s}");
        }
        assert!(ExactPredicate::parse("Distance=abc").is_err());
    }

    #[test]
    fn geom_cache_promotes_on_hit() {
        // cap=2 with access pattern A,B,A,C,A: LRU keeps A alive (B is
        // evicted for C), pure FIFO would evict A for C.
        let (side, _) = make_side(0.0, 3);
        let rid = |i: u64| RowId::new(i);
        let mut cache = GeomCache::new(2);
        for i in [0u64, 1, 0, 2, 0] {
            assert!(cache.get(&side.table, side.column, rid(i)).is_some());
        }
        assert_eq!((cache.hits, cache.misses), (2, 3), "A,B,miss A,hit C,miss A,hit");
    }

    #[test]
    fn deleted_row_fetch_is_not_a_miss() {
        let (side, _) = make_side(0.0, 2);
        let victim = RowId::new(1);
        side.table.write().delete(victim).unwrap();
        let mut cache = GeomCache::new(4);
        assert!(cache.get(&side.table, side.column, RowId::new(0)).is_some());
        assert!(cache.get(&side.table, side.column, victim).is_none());
        assert_eq!((cache.hits, cache.misses), (0, 1), "failed fetch counts as neither");
    }

    #[test]
    fn quadtree_join_reports_delivered_cardinality() {
        // Build two quadtree-indexed sides, delete a right-side row
        // after indexing, and check that (a) rows_returned matches the
        // delivered rows and (b) the profiled filter row count excludes
        // the candidates skipped for the deleted row.
        let make_qt = |n: usize| {
            let (side, _) = make_side(0.0, n);
            let params = crate::params::SpatialIndexParams {
                kind: crate::params::IndexKindParam::Quadtree,
                sdo_level: 5,
                ..Default::default()
            };
            let (index, _) = crate::create::build_quadtree(
                &side.table,
                1,
                &params,
                1,
                Arc::new(Counters::new()),
            )
            .unwrap();
            QtJoinSide { table: side.table, column: 1, index: Arc::new(index) }
        };
        let left = make_qt(40);
        let right = make_qt(40);
        right.table.write().delete(RowId::new(7)).unwrap();

        let session = sdo_obs::ProfileSession::begin("qt join");
        let node = session.root().child("QUADTREE JOIN");
        let mut join = QuadtreeJoin::new(
            QtJoinSide {
                table: Arc::clone(&left.table),
                column: 1,
                index: Arc::clone(&left.index),
            },
            QtJoinSide {
                table: Arc::clone(&right.table),
                column: 1,
                index: Arc::clone(&right.index),
            },
            // OVERLAP is never tile-provable, so every surviving
            // candidate passes through the geometry filter.
            ExactPredicate::Masks(vec![RelateMask::Overlap, RelateMask::Equal]),
            SpatialJoinConfig::default(),
            Arc::new(Counters::new()),
        )
        .unwrap();
        join.attach_profile(&node);
        let rows = collect_all(&mut join, 16).unwrap();
        assert_eq!(join.rows_returned(), rows.len(), "delivered cardinality is tracked");
        let profile = session.finish();
        let op = profile.root.find("QUADTREE JOIN").unwrap();
        let merged = op.find("tile merge").unwrap().rows;
        let filtered = op.find("exact filter").unwrap().rows;
        assert!(
            filtered < merged,
            "candidates touching the deleted row must not count as filtered \
             ({filtered} vs {merged} merged)"
        );
        assert!(filtered >= rows.len() as u64);
    }

    #[test]
    fn predicate_parsing() {
        assert_eq!(
            ExactPredicate::parse("intersect").unwrap(),
            ExactPredicate::Masks(vec![RelateMask::AnyInteract])
        );
        assert_eq!(
            ExactPredicate::parse("mask=TOUCH+OVERLAP").unwrap(),
            ExactPredicate::Masks(vec![RelateMask::Touch, RelateMask::Overlap])
        );
        assert_eq!(ExactPredicate::parse("distance=2.5").unwrap(), ExactPredicate::Distance(2.5));
        assert_eq!(ExactPredicate::parse("FILTER").unwrap(), ExactPredicate::PrimaryOnly);
        assert!(ExactPredicate::parse("distance=abc").is_err());
        assert!(ExactPredicate::parse("nonsense").is_err());
        assert_eq!(
            ExactPredicate::Distance(1.0).join_predicate(),
            JoinPredicate::WithinDistance(1.0)
        );
    }
}
