//! Registration of the spatial indextype and table functions.

use crate::index::{QuadtreeSpatialIndex, RTreeSpatialIndex, SpatialIndexType};
use crate::join::{
    ExactPredicate, JoinMethod, JoinSchedule, JoinSide, QtJoinSide, QuadtreeJoin, SpatialJoin,
    SpatialJoinConfig,
};
use crate::partjoin::{PartitionJoin, PartitionState};
use crate::FetchOrder;
use sdo_dbms::db::TfInstance;
use sdo_dbms::extensible::{param, parse_params};
use sdo_dbms::{Database, DbError, TfArg};
use sdo_rtree::{NodeId, RTree};
use sdo_storage::{RowId, Value};
use sdo_tablefunc::parallel::ParallelTableFunction;
use sdo_tablefunc::partition::{partition_rows, PartitionMethod};
use sdo_tablefunc::table_function::BufferedFn;
use sdo_tablefunc::TableFunction;
use std::sync::Arc;

/// Register everything the paper's SQL uses into a session:
///
/// * the `SPATIAL_INDEX` indextype,
/// * `SPATIAL_JOIN(left_table, left_col, right_table, right_col,
///   interaction [, dop [, level [, options]]])` — the pipelined
///   (and, with `dop > 1`, parallel) spatial join table function.
///   A negative `level` means "choose automatically" (the SQL dialect
///   has no NULL literal, so `-1` is the explicit don't-care).
///   `interaction` is `'intersect'`/`'mask=...'`/`'distance=d'`;
///   `options` is `'fetch_order=arrival, candidates=N, cache=N,
///   schedule=steal|static, split=N, method=rtree|partition|auto,
///   sweep_threshold=N'` (`schedule` picks work-stealing vs. the
///   paper's static task split; `split` is the work-stealing
///   task-split threshold; `method` selects the tree traversal, the
///   two-layer grid partition join — which needs no index — or a
///   stats-driven automatic choice; `sweep_threshold` tunes when MBR
///   kernels switch from scans to plane sweeps, `0` forcing sweeps
///   and `max` forcing scans).
///   A leading `CURSOR(SELECT * FROM TABLE(SUBTREE_PAIRS(...)))`
///   argument supplies explicit subtree-pair tasks, matching the
///   paper's cursor-driven form,
/// * `SUBTREE_ROOT(index_name, levels_down)` — subtree roots of an
///   R-tree index at a level,
/// * `SUBTREE_PAIRS(left_index, right_index, levels_down,
///   interaction)` — the MBR-filtered cross product of subtree roots
///   (Figure 1),
/// * `TESSELLATE(table_name, column, level)` — the quadtree
///   tessellation as a standalone table function (Figure 2's middle
///   stage).
pub fn register_spatial(db: &Database) {
    db.register_indextype("SPATIAL_INDEX", Arc::new(SpatialIndexType));

    db.register_table_function("SPATIAL_JOIN", spatial_join_factory);
    // Oracle's production name for the same function.
    db.register_table_function("SDO_JOIN", spatial_join_factory);
    db.register_table_function("SUBTREE_ROOT", subtree_root_factory);
    db.register_table_function("SUBTREE_PAIRS", subtree_pairs_factory);
    db.register_table_function("TESSELLATE", tessellate_factory);
}

/// Look up the R-tree spatial index on `(table, column)` and snapshot
/// its side of a join.
fn rtree_side(db: &Database, table: &str, column: &str) -> Result<Option<JoinSide>, DbError> {
    let Some((_, inst)) = db.index_on(table, column) else {
        return Err(DbError::Index(format!(
            "SPATIAL_JOIN requires a spatial index on {table}.{column}"
        )));
    };
    let guard = inst.read();
    let Some(rt) = guard.as_any().downcast_ref::<RTreeSpatialIndex>() else {
        return Ok(None);
    };
    Ok(Some(JoinSide {
        table: Arc::clone(rt.table()),
        column: rt.geometry_column(),
        tree: rt.tree_snapshot(),
    }))
}

/// Like [`rtree_side`] but quiet: `None` when the side has no index
/// at all or a non-R-tree one — the `method=auto` availability probe.
fn try_rtree_side(db: &Database, table: &str, column: &str) -> Option<JoinSide> {
    let (_, inst) = db.index_on(table, column)?;
    let guard = inst.read();
    let rt = guard.as_any().downcast_ref::<RTreeSpatialIndex>()?;
    Some(JoinSide {
        table: Arc::clone(rt.table()),
        column: rt.geometry_column(),
        tree: rt.tree_snapshot(),
    })
}

fn quadtree_side(db: &Database, table: &str, column: &str) -> Result<QtJoinSide, DbError> {
    let (_, inst) = db
        .index_on(table, column)
        .ok_or_else(|| DbError::Index(format!("no spatial index on {table}.{column}")))?;
    let guard = inst.read();
    let qt = guard
        .as_any()
        .downcast_ref::<QuadtreeSpatialIndex>()
        .ok_or_else(|| DbError::Index(format!("index on {table}.{column} is not a quadtree")))?;
    Ok(QtJoinSide {
        table: Arc::clone(qt.table()),
        column: qt.geometry_column(),
        index: qt.index_snapshot(),
    })
}

fn parse_join_options(s: &str) -> Result<SpatialJoinConfig, DbError> {
    let mut cfg = SpatialJoinConfig::default();
    let pairs = parse_params(s);
    for (k, _) in &pairs {
        if !matches!(
            k.as_str(),
            "fetch_order"
                | "candidates"
                | "cache"
                | "schedule"
                | "split"
                | "kernel"
                | "prepare"
                | "method"
                | "sweep_threshold"
        ) {
            return Err(DbError::Plan(format!("unknown SPATIAL_JOIN option '{k}'")));
        }
    }
    if let Some(v) = param(&pairs, "fetch_order") {
        cfg.fetch_order = match v.to_ascii_lowercase().as_str() {
            "sorted" | "rowid" | "rowid_sorted" => FetchOrder::RowidSorted,
            "arrival" => FetchOrder::Arrival,
            other => return Err(DbError::Plan(format!("unknown fetch order '{other}'"))),
        };
    }
    if let Some(v) = param(&pairs, "candidates") {
        cfg.candidate_array =
            v.parse::<usize>().map_err(|_| DbError::Plan(format!("bad candidates '{v}'")))?.max(1);
    }
    if let Some(v) = param(&pairs, "cache") {
        cfg.cache_size = v.parse().map_err(|_| DbError::Plan(format!("bad cache '{v}'")))?;
    }
    if let Some(v) = param(&pairs, "schedule") {
        cfg.schedule = match v.to_ascii_lowercase().as_str() {
            "steal" | "dynamic" => JoinSchedule::Steal,
            "static" => JoinSchedule::Static,
            other => return Err(DbError::Plan(format!("unknown schedule '{other}'"))),
        };
    }
    if let Some(v) = param(&pairs, "split") {
        cfg.split_threshold =
            v.parse::<u64>().map_err(|_| DbError::Plan(format!("bad split '{v}'")))?.max(1);
    }
    if let Some(v) = param(&pairs, "kernel") {
        cfg.kernel = sdo_rtree::KernelMode::parse(v)
            .ok_or_else(|| DbError::Plan(format!("unknown kernel '{v}' (scalar|batch|simd)")))?;
    }
    if let Some(v) = param(&pairs, "prepare") {
        cfg.prepare = match v.to_ascii_lowercase().as_str() {
            "on" | "true" | "1" => true,
            "off" | "false" | "0" => false,
            other => return Err(DbError::Plan(format!("unknown prepare '{other}' (on|off)"))),
        };
    }
    if let Some(v) = param(&pairs, "method") {
        cfg.method = JoinMethod::parse(v)
            .ok_or_else(|| DbError::Plan(format!("unknown method '{v}' (rtree|partition|auto)")))?;
    }
    if let Some(v) = param(&pairs, "sweep_threshold") {
        cfg.sweep_threshold = if v.eq_ignore_ascii_case("max") {
            usize::MAX
        } else {
            v.parse::<usize>().map_err(|_| DbError::Plan(format!("bad sweep_threshold '{v}'")))?
        };
    }
    Ok(cfg)
}

/// Pick the subtree descent depth: "we descend both trees as far below
/// as to get appropriate number of subtree-joins" — the shallowest
/// level producing at least `4 * dop` tasks.
pub fn choose_descent_level(
    left: &RTree<RowId>,
    right: &RTree<RowId>,
    exact: &ExactPredicate,
    dop: usize,
) -> (u32, Vec<(NodeId, NodeId)>) {
    let max_down = left.height().min(right.height()).saturating_sub(1);
    let mut best = (0, SpatialJoin::parallel_tasks(left, right, exact, 0));
    for level in 1..=max_down {
        let tasks = SpatialJoin::parallel_tasks(left, right, exact, level);
        let enough = tasks.len() >= 4 * dop;
        best = (level, tasks);
        if enough {
            break;
        }
    }
    best
}

fn spatial_join_factory(db: &Database, args: Vec<TfArg>) -> Result<TfInstance, DbError> {
    let columns = vec!["RID1".to_string(), "RID2".to_string()];
    // Optional leading cursor of (lnode, rnode) subtree pairs.
    type TaskSplit<'a> = (Option<Vec<(NodeId, NodeId)>>, &'a [TfArg]);
    let (explicit_tasks, rest): TaskSplit<'_> = match args.first() {
        Some(TfArg::Cursor(rows)) => {
            let pairs = rows
                .iter()
                .map(|r| {
                    let l = r.first().and_then(|v| v.as_integer());
                    let rr = r.get(1).and_then(|v| v.as_integer());
                    match (l, rr) {
                        (Some(l), Some(rr)) => Ok((l as NodeId, rr as NodeId)),
                        _ => Err(DbError::Plan(
                            "SPATIAL_JOIN cursor must supply (lnode, rnode) pairs".into(),
                        )),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            (Some(pairs), &args[1..])
        }
        _ => (None, &args[..]),
    };
    if rest.len() < 5 {
        return Err(DbError::Plan(
            "SPATIAL_JOIN(left_table, left_col, right_table, right_col, interaction, ...)".into(),
        ));
    }
    let lt = rest[0].text()?;
    let lc = rest[1].text()?;
    let rt = rest[2].text()?;
    let rc = rest[3].text()?;
    let exact = ExactPredicate::parse(rest[4].text()?).map_err(DbError::from)?;
    let dop = rest.get(5).map(|a| a.integer()).transpose()?.unwrap_or(1).max(1) as usize;
    // Negative level = auto (lets SQL callers reach the options
    // argument without forcing a descent level).
    let forced_level = rest.get(6).map(|a| a.integer()).transpose()?.filter(|&l| l >= 0);
    let mut config = match rest.get(7) {
        Some(a) => parse_join_options(a.text()?)?,
        None => SpatialJoinConfig::default(),
    };
    // Pin the MVCC read view at pipeline instantiation: a streaming
    // join delivers one consistent snapshot no matter what commits
    // while it runs (inside a transaction, the session's own view).
    // The commit fence makes the snapshot and the tree clones below
    // one atomic capture — without it a DELETE could commit in
    // between and its post-commit index maintenance would prune
    // entries this snapshot still needs.
    let _fence = db.txn_manager().commit_fence();
    config.snapshot = db.read_snapshot();
    let counters = Arc::clone(db.counters());

    // Resolve the join engine. The default (`rtree`) preserves the
    // paper's behavior exactly — index required, quadtree fallback.
    // `auto` consults index availability and table stats; its verdict
    // and reason land on the operator's profile node so EXPLAIN
    // ANALYZE shows why a plan was picked.
    let mut attrs: Vec<(&'static str, String)> = Vec::new();
    let mut metrics: Vec<(&'static str, u64)> = Vec::new();
    let method = match config.method {
        JoinMethod::Auto => {
            if explicit_tasks.is_some() || forced_level.is_some() {
                attrs.push(("method_reason", "explicit subtree tasks pin the tree join".into()));
                JoinMethod::Rtree
            } else {
                let (m, why) = choose_method(db, lt, lc, rt, rc, dop)?;
                attrs.push(("method_reason", why));
                m
            }
        }
        m => m,
    };

    let func: Box<dyn TableFunction> = match method {
        JoinMethod::Partition => {
            if explicit_tasks.is_some() || forced_level.is_some() {
                return Err(DbError::Plan(
                    "explicit subtree tasks/levels apply to method=rtree only".into(),
                ));
            }
            attrs.push(("method_chosen", "partition".into()));
            let (func, state) =
                partition_join_func(db, lt, lc, rt, rc, &exact, dop, &config, &counters)?;
            metrics.push(("partition_tiles", state.partition_tiles));
            metrics.push(("tile_max_occupancy", state.tile_max_occupancy));
            func
        }
        _ => {
            let (func, engine) = rtree_join_func(
                db,
                lt,
                lc,
                rt,
                rc,
                exact,
                dop,
                explicit_tasks,
                forced_level,
                config,
                counters,
            )?;
            attrs.push(("method_chosen", engine.into()));
            func
        }
    };
    Ok(TfInstance {
        func: Box::new(TaggedJoin { inner: func, attrs, metrics, node: None }),
        columns,
    })
}

/// `method=auto`: rank the engines numerically. Any unindexed side
/// forces partition (the tree join cannot run without built trees).
/// Otherwise both candidates are costed from persisted ANALYZE
/// statistics when available:
///
/// * tree join — synchronized descent touches every node once and the
///   candidate pairs dominate the leaves; parallel speedup is sublinear
///   (root contention, work-stealing): `(2·total + 1.2·pairs) / √dop`,
/// * partition join — pays a serial grid build over all rows, then
///   per-tile sweeps scale near-linearly with dop:
///   `1.6·total + (total + 1.2·pairs) / dop`.
///
/// The estimated pair count comes from overlaying the two tables'
/// spatial histograms ([`sdo_storage::TableStats`]); without ANALYZE
/// the estimate degrades to one match per row of the larger input,
/// and stale statistics (heavy DML since ANALYZE) are flagged in the
/// reason string but still used. The reason records every number so
/// `EXPLAIN ANALYZE` shows why the flip happened.
fn choose_method(
    db: &Database,
    lt: &str,
    lc: &str,
    rt: &str,
    rc: &str,
    dop: usize,
) -> Result<(JoinMethod, String), DbError> {
    let indexed = try_rtree_side(db, lt, lc).is_some() && try_rtree_side(db, rt, rc).is_some();
    let lrows = db.table(lt)?.read().len() as u64;
    let rrows = db.table(rt)?.read().len() as u64;
    let total = lrows + rrows;
    if !indexed {
        return Ok((
            JoinMethod::Partition,
            format!("unindexed input ({total} rows): grid partition needs no index build"),
        ));
    }

    // Estimated join pairs from persisted spatial histograms.
    let side = |table: &str, column: &str| -> Result<_, DbError> {
        let t = db.table(table)?;
        let col = t.read().schema().column_index(column);
        let mods = t.read().mod_count();
        let stats = db.catalog().table_stats(table);
        Ok((col, mods, stats))
    };
    let (lcol_ix, lmods, lstats) = side(lt, lc)?;
    let (rcol_ix, rmods, rstats) = side(rt, rc)?;
    let mut stale = false;
    let hist = |col: Option<usize>,
                stats: &Option<std::sync::Arc<sdo_storage::TableStats>>,
                mods: u64,
                stale: &mut bool| {
        let s = stats.as_ref()?;
        if s.is_stale(mods) {
            *stale = true;
        }
        s.spatial_histogram(col?).cloned()
    };
    let lhist = hist(lcol_ix, &lstats, lmods, &mut stale);
    let rhist = hist(rcol_ix, &rstats, rmods, &mut stale);
    let (pairs, pairs_src) = match (&lhist, &rhist) {
        (Some(lh), Some(rh)) => (lh.estimate_join_pairs(lrows, rh, rrows), "histogram overlay"),
        _ => (lrows.max(rrows) as f64, "default 1 match/row (no stats; run ANALYZE)"),
    };

    // Tile count the partition join would size itself to (mirrors
    // GridSpec::from_samples: ~32 rows/tile, ≥4 tiles/worker).
    let dop = dop.max(1);
    let want_tiles = (total as usize / 32).max(4 * dop).max(1);
    let axis = (want_tiles as f64).sqrt().ceil().clamp(1.0, 256.0) as u64;
    let tiles = axis * axis;

    let totf = total as f64;
    let dopf = dop as f64;
    let tree_cost = (2.0 * totf + 1.2 * pairs) / dopf.sqrt();
    let part_cost = 1.6 * totf + (totf + 1.2 * pairs) / dopf;
    let method = if part_cost < tree_cost { JoinMethod::Partition } else { JoinMethod::Rtree };
    let picked = match method {
        JoinMethod::Partition => format!("partition ({part_cost:.0} < tree {tree_cost:.0})"),
        _ => format!("rtree ({tree_cost:.0} <= partition {part_cost:.0})"),
    };
    let mut why = format!(
        "est {pairs:.0} pairs ({pairs_src}); {lrows}+{rrows} rows, dop={dop}, \
         ~{tiles} tiles; picked {picked}"
    );
    if stale {
        why.push_str("; STALE stats — estimates degraded, re-run ANALYZE");
    }
    Ok((method, why))
}

/// Build the partitioned join: resolve base tables and geometry
/// columns (no index needed), build the shared [`PartitionState`],
/// and spin up `dop` slave instances over its task queue.
#[allow(clippy::too_many_arguments)]
fn partition_join_func(
    db: &Database,
    lt: &str,
    lc: &str,
    rt: &str,
    rc: &str,
    exact: &ExactPredicate,
    dop: usize,
    config: &SpatialJoinConfig,
    counters: &Arc<sdo_storage::Counters>,
) -> Result<(Box<dyn TableFunction>, Arc<PartitionState>), DbError> {
    let resolve = |table: &str, column: &str| -> Result<_, DbError> {
        let t = db.table(table)?;
        let col = t
            .read()
            .schema()
            .column_index(column)
            .ok_or_else(|| DbError::Plan(format!("no column {column} on {table}")))?;
        Ok((t, col))
    };
    let (ltab, lcol) = resolve(lt, lc)?;
    let (rtab, rcol) = resolve(rt, rc)?;
    let state = PartitionState::build(&ltab, lcol, &rtab, rcol, exact, dop, &config.snapshot);
    let mut instances: Vec<Box<dyn TableFunction>> = (0..dop)
        .map(|worker| {
            Box::new(PartitionJoin::new(
                Arc::clone(&state),
                Arc::clone(&ltab),
                lcol,
                Arc::clone(&rtab),
                rcol,
                exact.clone(),
                config.clone(),
                Arc::clone(counters),
                worker,
            )) as Box<dyn TableFunction>
        })
        .collect();
    let func = if dop > 1 {
        Box::new(ParallelTableFunction::new(instances)) as Box<dyn TableFunction>
    } else {
        instances.remove(0)
    };
    Ok((func, state))
}

/// The paper's engines: the synchronized R-tree traversal (serial,
/// static-parallel, or work-stealing) with the quadtree merge join as
/// fallback when the left index is a quadtree. Returns the function
/// plus the engine name recorded as `method_chosen`.
#[allow(clippy::too_many_arguments)]
fn rtree_join_func(
    db: &Database,
    lt: &str,
    lc: &str,
    rt: &str,
    rc: &str,
    exact: ExactPredicate,
    dop: usize,
    explicit_tasks: Option<Vec<(NodeId, NodeId)>>,
    forced_level: Option<i64>,
    config: SpatialJoinConfig,
    counters: Arc<sdo_storage::Counters>,
) -> Result<(Box<dyn TableFunction>, &'static str), DbError> {
    // Quadtree pairing: both sides must be quadtrees.
    if rtree_side(db, lt, lc)?.is_none() {
        let left = quadtree_side(db, lt, lc)?;
        let right = quadtree_side(db, rt, rc)?;
        if dop > 1 {
            return Err(DbError::Plan(
                "parallel SPATIAL_JOIN is implemented for R-tree indexes \
                 (quadtree joins are a single merge pass)"
                    .into(),
            ));
        }
        let func =
            QuadtreeJoin::new(left, right, exact, config, counters).map_err(DbError::from)?;
        return Ok((Box::new(func), "quadtree"));
    }

    let left = rtree_side(db, lt, lc)?.expect("checked above");
    let right = rtree_side(db, rt, rc)?.ok_or_else(|| {
        DbError::Index("SPATIAL_JOIN requires both indexes to be the same kind".into())
    })?;

    let tasks: Vec<(NodeId, NodeId)> = match (explicit_tasks, forced_level) {
        (Some(t), _) => t,
        (None, Some(level)) => {
            SpatialJoin::parallel_tasks(&left.tree, &right.tree, &exact, level.max(0) as u32)
        }
        (None, None) if dop > 1 => choose_descent_level(&left.tree, &right.tree, &exact, dop).1,
        (None, None) => {
            // Serial: single root pair.
            let func = SpatialJoin::new(left, right, exact, config, counters);
            return Ok((Box::new(func), "rtree"));
        }
    };

    if dop <= 1 {
        let func = SpatialJoin::with_stack(left, right, exact, config, counters, tasks);
        return Ok((Box::new(func), "rtree"));
    }

    // Parallel: distribute the subtree-pair tasks across dop slave
    // instances of the join function. The default work-stealing
    // schedule shares one task queue — slaves pull on demand and steal
    // across shards, so a dense cluster cannot pin a single slave. The
    // static schedule reproduces the paper's fixed cursor partitioning
    // (kept for the skew ablation and regression comparison).
    let instances: Vec<Box<dyn TableFunction>> = match config.schedule {
        JoinSchedule::Steal => {
            let queue = sdo_tablefunc::TaskQueue::seed_round_robin(tasks, dop);
            (0..dop)
                .map(|worker| {
                    Box::new(SpatialJoin::with_shared_tasks(
                        JoinSide {
                            table: Arc::clone(&left.table),
                            column: left.column,
                            tree: Arc::clone(&left.tree),
                        },
                        JoinSide {
                            table: Arc::clone(&right.table),
                            column: right.column,
                            tree: Arc::clone(&right.tree),
                        },
                        exact.clone(),
                        config.clone(),
                        Arc::clone(&counters),
                        Arc::clone(&queue),
                        worker,
                    )) as Box<dyn TableFunction>
                })
                .collect()
        }
        JoinSchedule::Static => {
            let task_rows: Vec<sdo_tablefunc::Row> = tasks
                .iter()
                .map(|&(l, r)| vec![Value::Integer(l as i64), Value::Integer(r as i64)])
                .collect();
            partition_rows(task_rows, PartitionMethod::Any, dop)
                .into_iter()
                .map(|rows| {
                    let stack: Vec<(NodeId, NodeId)> = rows
                        .iter()
                        .map(|r| {
                            (
                                r[0].as_integer().unwrap() as NodeId,
                                r[1].as_integer().unwrap() as NodeId,
                            )
                        })
                        .collect();
                    Box::new(SpatialJoin::with_stack(
                        JoinSide {
                            table: Arc::clone(&left.table),
                            column: left.column,
                            tree: Arc::clone(&left.tree),
                        },
                        JoinSide {
                            table: Arc::clone(&right.table),
                            column: right.column,
                            tree: Arc::clone(&right.tree),
                        },
                        exact.clone(),
                        config.clone(),
                        Arc::clone(&counters),
                        stack,
                    )) as Box<dyn TableFunction>
                })
                .collect()
        }
    };
    Ok((Box::new(ParallelTableFunction::new(instances)), "rtree"))
}

/// Wraps a join engine to stamp planner verdicts (`method_chosen`,
/// `method_reason`) and partition-build metrics onto the operator's
/// profile node — the executor-attached node when there is one, else
/// the ambient profile session's current node.
struct TaggedJoin {
    inner: Box<dyn TableFunction>,
    attrs: Vec<(&'static str, String)>,
    metrics: Vec<(&'static str, u64)>,
    node: Option<sdo_obs::ProfileNode>,
}

impl TableFunction for TaggedJoin {
    fn start(&mut self) -> Result<(), sdo_tablefunc::TfError> {
        if let Some(node) = self.node.clone().or_else(sdo_obs::current) {
            for (k, v) in self.attrs.drain(..) {
                node.set_attr(k, v);
            }
            for (k, v) in self.metrics.drain(..) {
                node.set_metric(k, v);
            }
        }
        self.inner.start()
    }

    fn fetch(
        &mut self,
        max_rows: usize,
    ) -> Result<Vec<sdo_tablefunc::Row>, sdo_tablefunc::TfError> {
        self.inner.fetch(max_rows)
    }

    fn close(&mut self) {
        self.inner.close();
    }

    fn attach_profile(&mut self, node: &sdo_obs::ProfileNode) {
        self.node = Some(node.clone());
        self.inner.attach_profile(node);
    }
}

fn subtree_root_factory(db: &Database, args: Vec<TfArg>) -> Result<TfInstance, DbError> {
    if args.len() != 2 {
        return Err(DbError::Plan("SUBTREE_ROOT(index_name, levels_down)".into()));
    }
    let index_name = args[0].text()?.to_string();
    let levels = args[1].integer()?.max(0) as u32;
    let inst = db
        .index_instance(&index_name)
        .ok_or_else(|| DbError::Index(format!("no such index {index_name}")))?;
    let guard = inst.read();
    let rt = guard
        .as_any()
        .downcast_ref::<RTreeSpatialIndex>()
        .ok_or_else(|| DbError::Index("SUBTREE_ROOT requires an R-tree index".into()))?;
    let tree = rt.tree_snapshot();
    let rows: Vec<sdo_tablefunc::Row> = tree
        .subtree_roots(levels)
        .into_iter()
        .map(|s| {
            vec![
                Value::Integer(s.node as i64),
                Value::Integer(s.level as i64),
                Value::Double(s.mbr.min_x),
                Value::Double(s.mbr.min_y),
                Value::Double(s.mbr.max_x),
                Value::Double(s.mbr.max_y),
            ]
        })
        .collect();
    Ok(TfInstance {
        func: Box::new(BufferedFn::new(move || Ok(rows))),
        columns: vec![
            "NODE".into(),
            "NODE_LEVEL".into(),
            "MIN_X".into(),
            "MIN_Y".into(),
            "MAX_X".into(),
            "MAX_Y".into(),
        ],
    })
}

fn subtree_pairs_factory(db: &Database, args: Vec<TfArg>) -> Result<TfInstance, DbError> {
    if args.len() != 4 {
        return Err(DbError::Plan(
            "SUBTREE_PAIRS(left_index, right_index, levels_down, interaction)".into(),
        ));
    }
    let exact = ExactPredicate::parse(args[3].text()?).map_err(DbError::from)?;
    let levels = args[2].integer()?.max(0) as u32;
    let mut trees = Vec::new();
    for a in &args[..2] {
        let name = a.text()?;
        let inst = db
            .index_instance(name)
            .ok_or_else(|| DbError::Index(format!("no such index {name}")))?;
        let guard = inst.read();
        let rt = guard
            .as_any()
            .downcast_ref::<RTreeSpatialIndex>()
            .ok_or_else(|| DbError::Index("SUBTREE_PAIRS requires R-tree indexes".into()))?;
        trees.push(rt.tree_snapshot());
    }
    let pairs = SpatialJoin::parallel_tasks(&trees[0], &trees[1], &exact, levels);
    let rows: Vec<sdo_tablefunc::Row> = pairs
        .into_iter()
        .map(|(l, r)| vec![Value::Integer(l as i64), Value::Integer(r as i64)])
        .collect();
    Ok(TfInstance {
        func: Box::new(BufferedFn::new(move || Ok(rows))),
        columns: vec!["LNODE".into(), "RNODE".into()],
    })
}

fn tessellate_factory(db: &Database, args: Vec<TfArg>) -> Result<TfInstance, DbError> {
    if args.len() < 3 {
        return Err(DbError::Plan("TESSELLATE(table, column, level)".into()));
    }
    let table = db.table(args[0].text()?)?;
    let column = args[1].text()?.to_string();
    let level = args[2].integer()?.max(1) as u32;
    let col = table
        .read()
        .schema()
        .column_index(&column)
        .ok_or_else(|| DbError::Plan(format!("no column {column}")))?;
    let params = crate::params::SpatialIndexParams { sdo_level: level, ..Default::default() };
    let world = crate::create::world_extent_of(&table, col, &params)?;
    let counters = Arc::clone(db.counters());
    let cursor = sdo_tablefunc::source::TableCursor::full(Arc::clone(&table))
        .with_projection(vec![col])
        .at_snapshot(db.read_snapshot());
    let func = sdo_tablefunc::pipeline::CursorFn::new(cursor, move |row| {
        crate::create::tessellate_row(&row, &world, level, &counters)
    });
    Ok(TfInstance {
        func: Box::new(func),
        columns: vec!["TILE_CODE".into(), "RID".into(), "INTERIOR".into()],
    })
}
