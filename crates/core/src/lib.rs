#![warn(missing_docs)]
//! # sdo-core — spatial processing using table functions
//!
//! The primary contribution of the ICDE 2003 paper, rebuilt on the
//! substrate crates:
//!
//! * [`index`] — the `SPATIAL_INDEX` indextype: R-tree and linear
//!   quadtree indexes behind the extensible-indexing
//!   [`sdo_dbms::DomainIndex`] seam, evaluating `SDO_RELATE`,
//!   `SDO_WITHIN_DISTANCE` and `SDO_FILTER` with a two-stage
//!   primary/secondary filter,
//! * [`create`] — serial and **parallel index creation** (paper §5):
//!   quadtree tessellation runs inside parallel table functions over a
//!   partitioned geometry cursor (Figure 2), R-tree creation loads MBRs
//!   and clusters subtrees in parallel, merging them at the end,
//! * [`join`] — the **`SPATIAL_JOIN` pipelined table function**
//!   (paper §4): a restartable two-R-tree traversal producing rowid
//!   pairs through `start`/`fetch`/`close`, with a memory-bounded
//!   candidate array, rowid-sorted geometry fetches, and subtree-pair
//!   decomposition for parallel execution (Figure 1),
//! * [`functions`] — registration of the indextype and the
//!   `SPATIAL_JOIN` / `SUBTREE_ROOT` / `TESSELLATE` table functions
//!   into a [`sdo_dbms::Database`] session.
//!
//! ## Quick start
//!
//! ```
//! use sdo_dbms::Database;
//!
//! let db = Database::new();
//! sdo_core::register_spatial(&db);
//!
//! db.execute("CREATE TABLE cities (name VARCHAR2, geom SDO_GEOMETRY)").unwrap();
//! db.execute("INSERT INTO cities VALUES ('a', \
//!             SDO_GEOMETRY('POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))'))").unwrap();
//! db.execute("CREATE INDEX cities_sidx ON cities(geom) \
//!             INDEXTYPE IS SPATIAL_INDEX PARAMETERS ('tree_fanout=16')").unwrap();
//! let hits = db.execute(
//!     "SELECT COUNT(*) FROM cities WHERE \
//!      SDO_RELATE(geom, SDO_GEOMETRY('POINT (1 1)'), 'ANYINTERACT') = 'TRUE'",
//! ).unwrap();
//! assert_eq!(hits.count(), Some(1));
//! ```

pub mod create;
pub mod functions;
pub mod index;
pub mod join;
pub mod params;
pub mod partjoin;

pub use functions::register_spatial;
pub use index::{QuadtreeSpatialIndex, RTreeSpatialIndex, SpatialIndexType};
pub use join::{FetchOrder, JoinMethod, SpatialJoin, SpatialJoinConfig};
pub use params::SpatialIndexParams;
pub use partjoin::{PartitionJoin, PartitionState};
