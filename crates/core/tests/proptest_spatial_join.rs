//! Property-based testing of the SPATIAL_JOIN table function: for
//! arbitrary data, predicates and configurations, results equal brute
//! force.

use parking_lot::RwLock;
use proptest::prelude::*;
use sdo_core::join::{ExactPredicate, JoinSide, SpatialJoin, SpatialJoinConfig};
use sdo_core::FetchOrder;
use sdo_geom::{Geometry, Polygon, Rect, RelateMask};
use sdo_rtree::{RTree, RTreeParams};
use sdo_storage::{Counters, DataType, Schema, Table, Value};
use sdo_tablefunc::collect_all;
use sdo_tablefunc::{execute_parallel, TableFunction, TaskQueue};
use std::sync::Arc;

fn arb_rect_poly() -> impl Strategy<Value = Geometry> {
    ((0.0f64..200.0), (0.0f64..200.0), (0.5f64..25.0), (0.5f64..25.0)).prop_map(|(x, y, w, h)| {
        Geometry::Polygon(Polygon::from_rect(&Rect::new(x, y, x + w, y + h)))
    })
}

fn side(geoms: &[Geometry], fanout: usize) -> JoinSide {
    let mut t =
        Table::new("T", Schema::of(&[("ID", DataType::Integer), ("GEOM", DataType::Geometry)]));
    let mut items = Vec::new();
    for (i, g) in geoms.iter().enumerate() {
        let bb = g.bbox();
        let rid = t.insert(vec![Value::Integer(i as i64), Value::geometry(g.clone())]).unwrap();
        items.push((bb, rid));
    }
    JoinSide {
        table: Arc::new(RwLock::new(t)),
        column: 1,
        tree: Arc::new(RTree::bulk_load(items, RTreeParams::with_fanout(fanout))),
    }
}

fn run_join(
    l: &JoinSide,
    r: &JoinSide,
    exact: ExactPredicate,
    config: SpatialJoinConfig,
    fetch: usize,
) -> Vec<(u64, u64)> {
    let mut join = SpatialJoin::new(
        JoinSide { table: Arc::clone(&l.table), column: 1, tree: Arc::clone(&l.tree) },
        JoinSide { table: Arc::clone(&r.table), column: 1, tree: Arc::clone(&r.tree) },
        exact,
        config,
        Arc::new(Counters::new()),
    );
    let mut out: Vec<(u64, u64)> = collect_all(&mut join, fetch)
        .unwrap()
        .iter()
        .map(|row| (row[0].as_rowid().unwrap().as_u64(), row[1].as_rowid().unwrap().as_u64()))
        .collect();
    out.sort_unstable();
    out
}

fn brute(a: &[Geometry], b: &[Geometry], exact: &ExactPredicate) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for (i, ga) in a.iter().enumerate() {
        for (j, gb) in b.iter().enumerate() {
            let keep = match exact {
                ExactPredicate::Masks(m) => sdo_geom::relate::relate_any(ga, gb, m),
                ExactPredicate::Distance(d) => sdo_geom::within_distance(ga, gb, *d),
                ExactPredicate::PrimaryOnly => ga.bbox().intersects(&gb.bbox()),
            };
            if keep {
                out.push((i as u64, j as u64));
            }
        }
    }
    out.sort_unstable();
    out
}

fn arb_exact() -> impl Strategy<Value = ExactPredicate> {
    prop_oneof![
        Just(ExactPredicate::Masks(vec![RelateMask::AnyInteract])),
        Just(ExactPredicate::Masks(vec![RelateMask::Touch, RelateMask::Overlap])),
        Just(ExactPredicate::Masks(vec![RelateMask::Inside])),
        (0.1f64..30.0).prop_map(ExactPredicate::Distance),
        Just(ExactPredicate::PrimaryOnly),
    ]
}

fn arb_config() -> impl Strategy<Value = SpatialJoinConfig> {
    (
        1usize..512,
        prop_oneof![
            Just(FetchOrder::RowidSorted),
            Just(FetchOrder::Arrival),
            Just(FetchOrder::Random)
        ],
        0usize..64,
    )
        .prop_map(|(candidate_array, fetch_order, cache_size)| SpatialJoinConfig {
            candidate_array,
            fetch_order,
            cache_size,
            ..Default::default()
        })
}

/// Skewed input: one dense cluster of small rectangles plus a uniform
/// background — the distribution where static task partitioning loads
/// one slave and work stealing has to rebalance.
fn arb_clustered_polys() -> impl Strategy<Value = Vec<Geometry>> {
    let cluster = ((20.0f64..180.0), (20.0f64..180.0)).prop_flat_map(|(cx, cy)| {
        proptest::collection::vec(
            ((-8.0f64..8.0), (-8.0f64..8.0), (0.5f64..4.0)).prop_map(move |(dx, dy, w)| {
                let (x, y) = (cx + dx, cy + dy);
                Geometry::Polygon(Polygon::from_rect(&Rect::new(x, y, x + w, y + w)))
            }),
            30..70,
        )
    });
    let background = proptest::collection::vec(arb_rect_poly(), 5..30);
    (cluster, background).prop_map(|(mut c, b)| {
        c.extend(b);
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn join_equals_brute_force_under_any_config(
        a in proptest::collection::vec(arb_rect_poly(), 0..60),
        b in proptest::collection::vec(arb_rect_poly(), 0..60),
        exact in arb_exact(),
        config in arb_config(),
        fetch in 1usize..200,
        lf in 5usize..16,
        rf in 5usize..16,
    ) {
        let l = side(&a, lf);
        let r = side(&b, rf);
        let got = run_join(&l, &r, exact.clone(), config, fetch);
        prop_assert_eq!(got, brute(&a, &b, &exact));
    }

    #[test]
    fn parallel_tasks_cover_serial(
        a in proptest::collection::vec(arb_rect_poly(), 20..80),
        levels in 0u32..3,
    ) {
        let s = side(&a, 6);
        let exact = ExactPredicate::Masks(vec![RelateMask::AnyInteract]);
        let serial = run_join(&s, &s, exact.clone(), SpatialJoinConfig::default(), 97);
        let tasks = SpatialJoin::parallel_tasks(&s.tree, &s.tree, &exact, levels);
        let mut got = Vec::new();
        for chunk in tasks.chunks(3.max(tasks.len() / 4)) {
            let mut join = SpatialJoin::with_stack(
                JoinSide { table: Arc::clone(&s.table), column: 1, tree: Arc::clone(&s.tree) },
                JoinSide { table: Arc::clone(&s.table), column: 1, tree: Arc::clone(&s.tree) },
                exact.clone(),
                SpatialJoinConfig::default(),
                Arc::new(Counters::new()),
                chunk.to_vec(),
            );
            got.extend(collect_all(&mut join, 64).unwrap().iter().map(|row| {
                (row[0].as_rowid().unwrap().as_u64(), row[1].as_rowid().unwrap().as_u64())
            }));
        }
        got.sort_unstable();
        prop_assert_eq!(got, serial);
    }

    /// The work-stealing scheduler is invisible in results: on skewed
    /// (clustered) inputs, any DOP and any split threshold yields the
    /// serial rowid-pair multiset — dynamic scheduling repartitions the
    /// same task set, it never changes it.
    #[test]
    fn work_stealing_matches_serial_on_skewed_inputs(
        a in arb_clustered_polys(),
        b in arb_clustered_polys(),
        split in prop_oneof![Just(16u64), Just(4096), Just(u64::MAX)],
    ) {
        let l = side(&a, 6);
        let r = side(&b, 6);
        let exact = ExactPredicate::Masks(vec![RelateMask::AnyInteract]);
        let serial = run_join(&l, &r, exact.clone(), SpatialJoinConfig::default(), 128);
        for dop in [1usize, 2, 4] {
            let tasks = SpatialJoin::parallel_tasks(&l.tree, &r.tree, &exact, 1);
            let queue = TaskQueue::seed_round_robin(tasks, dop);
            let config = SpatialJoinConfig { split_threshold: split, ..Default::default() };
            let instances: Vec<Box<dyn TableFunction>> = (0..dop)
                .map(|worker| {
                    Box::new(SpatialJoin::with_shared_tasks(
                        JoinSide {
                            table: Arc::clone(&l.table),
                            column: 1,
                            tree: Arc::clone(&l.tree),
                        },
                        JoinSide {
                            table: Arc::clone(&r.table),
                            column: 1,
                            tree: Arc::clone(&r.tree),
                        },
                        exact.clone(),
                        config.clone(),
                        Arc::new(Counters::new()),
                        Arc::clone(&queue),
                        worker,
                    )) as Box<dyn TableFunction>
                })
                .collect();
            let mut got: Vec<(u64, u64)> = execute_parallel(instances, 64)
                .unwrap()
                .iter()
                .map(|row| {
                    (row[0].as_rowid().unwrap().as_u64(), row[1].as_rowid().unwrap().as_u64())
                })
                .collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &serial, "dop={} split={}", dop, split);
        }
    }
}
