//! Property-based testing of the SPATIAL_JOIN table function: for
//! arbitrary data, predicates and configurations, results equal brute
//! force.

use parking_lot::RwLock;
use proptest::prelude::*;
use sdo_core::join::{ExactPredicate, JoinSide, SpatialJoin, SpatialJoinConfig};
use sdo_core::FetchOrder;
use sdo_geom::{Geometry, Polygon, Rect, RelateMask};
use sdo_rtree::{RTree, RTreeParams};
use sdo_storage::{Counters, DataType, Schema, Table, Value};
use sdo_tablefunc::collect_all;
use std::sync::Arc;

fn arb_rect_poly() -> impl Strategy<Value = Geometry> {
    ((0.0f64..200.0), (0.0f64..200.0), (0.5f64..25.0), (0.5f64..25.0)).prop_map(|(x, y, w, h)| {
        Geometry::Polygon(Polygon::from_rect(&Rect::new(x, y, x + w, y + h)))
    })
}

fn side(geoms: &[Geometry], fanout: usize) -> JoinSide {
    let mut t =
        Table::new("T", Schema::of(&[("ID", DataType::Integer), ("GEOM", DataType::Geometry)]));
    let mut items = Vec::new();
    for (i, g) in geoms.iter().enumerate() {
        let bb = g.bbox();
        let rid = t.insert(vec![Value::Integer(i as i64), Value::geometry(g.clone())]).unwrap();
        items.push((bb, rid));
    }
    JoinSide {
        table: Arc::new(RwLock::new(t)),
        column: 1,
        tree: Arc::new(RTree::bulk_load(items, RTreeParams::with_fanout(fanout))),
    }
}

fn run_join(
    l: &JoinSide,
    r: &JoinSide,
    exact: ExactPredicate,
    config: SpatialJoinConfig,
    fetch: usize,
) -> Vec<(u64, u64)> {
    let mut join = SpatialJoin::new(
        JoinSide { table: Arc::clone(&l.table), column: 1, tree: Arc::clone(&l.tree) },
        JoinSide { table: Arc::clone(&r.table), column: 1, tree: Arc::clone(&r.tree) },
        exact,
        config,
        Arc::new(Counters::new()),
    );
    let mut out: Vec<(u64, u64)> = collect_all(&mut join, fetch)
        .unwrap()
        .iter()
        .map(|row| (row[0].as_rowid().unwrap().as_u64(), row[1].as_rowid().unwrap().as_u64()))
        .collect();
    out.sort_unstable();
    out
}

fn brute(a: &[Geometry], b: &[Geometry], exact: &ExactPredicate) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for (i, ga) in a.iter().enumerate() {
        for (j, gb) in b.iter().enumerate() {
            let keep = match exact {
                ExactPredicate::Masks(m) => sdo_geom::relate::relate_any(ga, gb, m),
                ExactPredicate::Distance(d) => sdo_geom::within_distance(ga, gb, *d),
                ExactPredicate::PrimaryOnly => ga.bbox().intersects(&gb.bbox()),
            };
            if keep {
                out.push((i as u64, j as u64));
            }
        }
    }
    out.sort_unstable();
    out
}

fn arb_exact() -> impl Strategy<Value = ExactPredicate> {
    prop_oneof![
        Just(ExactPredicate::Masks(vec![RelateMask::AnyInteract])),
        Just(ExactPredicate::Masks(vec![RelateMask::Touch, RelateMask::Overlap])),
        Just(ExactPredicate::Masks(vec![RelateMask::Inside])),
        (0.1f64..30.0).prop_map(ExactPredicate::Distance),
        Just(ExactPredicate::PrimaryOnly),
    ]
}

fn arb_config() -> impl Strategy<Value = SpatialJoinConfig> {
    (
        1usize..512,
        prop_oneof![
            Just(FetchOrder::RowidSorted),
            Just(FetchOrder::Arrival),
            Just(FetchOrder::Random)
        ],
        0usize..64,
    )
        .prop_map(|(candidate_array, fetch_order, cache_size)| SpatialJoinConfig {
            candidate_array,
            fetch_order,
            cache_size,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn join_equals_brute_force_under_any_config(
        a in proptest::collection::vec(arb_rect_poly(), 0..60),
        b in proptest::collection::vec(arb_rect_poly(), 0..60),
        exact in arb_exact(),
        config in arb_config(),
        fetch in 1usize..200,
        lf in 5usize..16,
        rf in 5usize..16,
    ) {
        let l = side(&a, lf);
        let r = side(&b, rf);
        let got = run_join(&l, &r, exact.clone(), config, fetch);
        prop_assert_eq!(got, brute(&a, &b, &exact));
    }

    #[test]
    fn parallel_tasks_cover_serial(
        a in proptest::collection::vec(arb_rect_poly(), 20..80),
        levels in 0u32..3,
    ) {
        let s = side(&a, 6);
        let exact = ExactPredicate::Masks(vec![RelateMask::AnyInteract]);
        let serial = run_join(&s, &s, exact.clone(), SpatialJoinConfig::default(), 97);
        let tasks = SpatialJoin::parallel_tasks(&s.tree, &s.tree, &exact, levels);
        let mut got = Vec::new();
        for chunk in tasks.chunks(3.max(tasks.len() / 4)) {
            let mut join = SpatialJoin::with_stack(
                JoinSide { table: Arc::clone(&s.table), column: 1, tree: Arc::clone(&s.tree) },
                JoinSide { table: Arc::clone(&s.table), column: 1, tree: Arc::clone(&s.tree) },
                exact.clone(),
                SpatialJoinConfig::default(),
                Arc::new(Counters::new()),
                chunk.to_vec(),
            );
            got.extend(collect_all(&mut join, 64).unwrap().iter().map(|row| {
                (row[0].as_rowid().unwrap().as_u64(), row[1].as_rowid().unwrap().as_u64())
            }));
        }
        got.sort_unstable();
        prop_assert_eq!(got, serial);
    }
}
