//! Property-based R-tree testing: every query answers are compared
//! against brute force, and structural invariants hold after arbitrary
//! update interleavings.

use proptest::prelude::*;
use sdo_geom::{Point, Rect};
use sdo_rtree::join::subtree_pair_tasks;
use sdo_rtree::{JoinCursor, JoinPredicate, KernelMode, RTree, RTreeParams, SplitStrategy};

fn arb_rect() -> impl Strategy<Value = Rect> {
    ((-100.0f64..100.0), (-100.0f64..100.0), (0.1f64..20.0), (0.1f64..20.0))
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_params() -> impl Strategy<Value = RTreeParams> {
    (
        4usize..24,
        prop_oneof![
            Just(SplitStrategy::Linear),
            Just(SplitStrategy::Quadratic),
            Just(SplitStrategy::RStar)
        ],
        any::<bool>(),
    )
        .prop_map(|(fanout, split, reinsert)| {
            RTreeParams::with_fanout(fanout.max(5)).with_split(split).with_forced_reinsert(reinsert)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn window_query_matches_brute_force(
        rects in proptest::collection::vec(arb_rect(), 0..300),
        window in arb_rect(),
        params in arb_params(),
    ) {
        let mut tree = RTree::new(params);
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i);
        }
        tree.check_invariants().map_err(TestCaseError::fail)?;
        let mut got: Vec<usize> = tree.query_window(&window).into_iter().map(|(_, i)| i).collect();
        got.sort_unstable();
        let want: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&window))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn distance_query_matches_brute_force(
        rects in proptest::collection::vec(arb_rect(), 0..200),
        q in arb_rect(),
        d in 0.0f64..50.0,
    ) {
        let items: Vec<(Rect, usize)> = rects.iter().cloned().zip(0..).collect();
        let tree = RTree::bulk_load(items, RTreeParams::with_fanout(8));
        let mut got: Vec<usize> =
            tree.query_within_distance(&q, d).into_iter().map(|(_, i)| i).collect();
        got.sort_unstable();
        let want: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.mindist(&q) <= d)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn knn_matches_brute_force(
        rects in proptest::collection::vec(arb_rect(), 1..200),
        qx in -100.0f64..100.0,
        qy in -100.0f64..100.0,
        k in 1usize..20,
    ) {
        let q = Point::new(qx, qy);
        let items: Vec<(Rect, usize)> = rects.iter().cloned().zip(0..).collect();
        let tree = RTree::bulk_load(items, RTreeParams::with_fanout(8));
        let got = tree.query_knn(&q, k);
        prop_assert_eq!(got.len(), k.min(rects.len()));
        let mut want: Vec<f64> = rects.iter().map(|r| r.mindist_point(&q)).collect();
        want.sort_by(f64::total_cmp);
        for (i, (d, _, _)) in got.iter().enumerate() {
            prop_assert!((d - want[i]).abs() < 1e-9, "rank {i}: {d} != {}", want[i]);
        }
    }

    #[test]
    fn insert_delete_interleaving_preserves_invariants(
        rects in proptest::collection::vec(arb_rect(), 1..120),
        delete_mask in proptest::collection::vec(any::<bool>(), 1..120),
        params in arb_params(),
    ) {
        let mut tree = RTree::new(params);
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i);
        }
        let mut live: Vec<usize> = (0..rects.len()).collect();
        for (i, &del) in delete_mask.iter().enumerate() {
            if del && i < rects.len() {
                prop_assert!(tree.delete(&rects[i], &i), "delete of live item {i} failed");
                live.retain(|&x| x != i);
                tree.check_invariants().map_err(TestCaseError::fail)?;
            }
        }
        prop_assert_eq!(tree.len(), live.len());
        let mut remaining: Vec<usize> = tree.iter_items().map(|(_, i)| *i).collect();
        remaining.sort_unstable();
        prop_assert_eq!(remaining, live);
    }

    #[test]
    fn bulk_load_same_contents_as_incremental(
        rects in proptest::collection::vec(arb_rect(), 0..250),
    ) {
        let items: Vec<(Rect, usize)> = rects.iter().cloned().zip(0..).collect();
        let bulk = RTree::bulk_load(items.clone(), RTreeParams::with_fanout(8));
        bulk.check_invariants().map_err(TestCaseError::fail)?;
        let mut incr = RTree::new(RTreeParams::with_fanout(8));
        for (r, i) in items {
            incr.insert(r, i);
        }
        let mut a: Vec<usize> = bulk.iter_items().map(|(_, i)| *i).collect();
        let mut b: Vec<usize> = incr.iter_items().map(|(_, i)| *i).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn join_matches_nested_loop(
        left in proptest::collection::vec(arb_rect(), 0..120),
        right in proptest::collection::vec(arb_rect(), 0..120),
        d in 0.0f64..20.0,
    ) {
        let lt = RTree::bulk_load(
            left.iter().cloned().zip(0..).collect(),
            RTreeParams::with_fanout(6),
        );
        let rt = RTree::bulk_load(
            right.iter().cloned().zip(0..).collect(),
            RTreeParams::with_fanout(10),
        );
        for pred in [JoinPredicate::Intersects, JoinPredicate::WithinDistance(d)] {
            let mut got: Vec<(usize, usize)> = JoinCursor::new(&lt, &rt, pred)
                .collect_all()
                .into_iter()
                .map(|(_, a, _, b)| (a, b))
                .collect();
            got.sort_unstable();
            let mut want = Vec::new();
            for (i, a) in left.iter().enumerate() {
                for (j, b) in right.iter().enumerate() {
                    if pred.matches(a, b) {
                        want.push((i, j));
                    }
                }
            }
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn subtree_decomposition_is_lossless(
        rects in proptest::collection::vec(arb_rect(), 30..200),
        levels in 0u32..3,
    ) {
        let tree = RTree::bulk_load(
            rects.iter().cloned().zip(0..).collect(),
            RTreeParams::with_fanout(6),
        );
        let mut serial: Vec<(usize, usize)> =
            JoinCursor::new(&tree, &tree, JoinPredicate::Intersects)
                .collect_all()
                .into_iter()
                .map(|(_, a, _, b)| (a, b))
                .collect();
        serial.sort_unstable();
        let tasks = subtree_pair_tasks(&tree, &tree, JoinPredicate::Intersects, levels);
        let mut parallel = Vec::new();
        for (l, r) in tasks {
            parallel.extend(
                JoinCursor::from_pairs(&tree, &tree, JoinPredicate::Intersects, vec![(l, r)])
                    .collect_all()
                    .into_iter()
                    .map(|(_, a, _, b)| (a, b)),
            );
        }
        parallel.sort_unstable();
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn batch_join_equals_scalar_join(
        ra in proptest::collection::vec(arb_rect(), 0..250),
        rb in proptest::collection::vec(arb_rect(), 0..250),
        fanout in 4usize..40,
        use_dist in any::<bool>(),
        d in 0.0f64..30.0,
    ) {
        let pred =
            if use_dist { JoinPredicate::WithinDistance(d) } else { JoinPredicate::Intersects };
        let ta = RTree::bulk_load(
            ra.iter().cloned().zip(0..).collect(),
            RTreeParams::with_fanout(fanout),
        );
        let tb = RTree::bulk_load(
            rb.iter().cloned().zip(0..).collect(),
            RTreeParams::with_fanout(fanout),
        );
        let run = |mode: KernelMode| {
            let mut pairs: Vec<(usize, usize)> = JoinCursor::new(&ta, &tb, pred)
                .with_kernel(mode)
                .collect_all()
                .into_iter()
                .map(|(_, a, _, b)| (a, b))
                .collect();
            pairs.sort_unstable();
            pairs
        };
        prop_assert_eq!(run(KernelMode::Batch), run(KernelMode::Scalar));
    }

    #[test]
    fn merge_preserves_items(
        a in proptest::collection::vec(arb_rect(), 0..120),
        b in proptest::collection::vec(arb_rect(), 0..120),
        c in proptest::collection::vec(arb_rect(), 0..40),
    ) {
        let offset_b = a.len();
        let offset_c = a.len() + b.len();
        let ta = RTree::bulk_load(a.iter().cloned().zip(0..).collect(), RTreeParams::with_fanout(6));
        let tb = RTree::bulk_load(
            b.iter().cloned().zip(offset_b..).collect(),
            RTreeParams::with_fanout(6),
        );
        let tc = RTree::bulk_load(
            c.iter().cloned().zip(offset_c..).collect(),
            RTreeParams::with_fanout(6),
        );
        let merged = RTree::merge(vec![ta, tb, tc]);
        merged.check_invariants().map_err(TestCaseError::fail)?;
        let mut items: Vec<usize> = merged.iter_items().map(|(_, i)| *i).collect();
        items.sort_unstable();
        prop_assert_eq!(items, (0..a.len() + b.len() + c.len()).collect::<Vec<_>>());
    }
}
