//! Property-based equivalence of the SIMD filter kernels: for random
//! rectangle sets seeded with NaN / EMPTY / degenerate entries, every
//! dispatched ISA (scalar, SSE2, NEON, AVX2 — unavailable ones
//! downgrade to scalar inside the `*_isa` entry points) must emit the
//! same indices, in the same order, with the same test counts as the
//! scalar batch kernels. Run with `SDO_FORCE_SCALAR_KERNEL=1` to pin
//! the runtime-dispatched paths (`sweep_pairs_simd`, the quantized
//! fallback) to scalar for CI fallback coverage.

use proptest::prelude::*;
use sdo_geom::Rect;
use sdo_rtree::kernel::simd::{
    scan_contained_isa, scan_intersects_isa, scan_pred_quantized, scan_within_isa, sweep_pairs_simd,
};
use sdo_rtree::kernel::{sweep_pairs, SweepScratch};
use sdo_rtree::{JoinPredicate, QuantCounters, QuantizedMbrs, SimdIsa, SoaMbrs, SweepScratchSimd};

/// Every ISA the dispatcher can name. Entry points downgrade
/// unavailable ones to scalar, so iterating all four is safe on any
/// host while exercising each vector path the host supports.
const ALL_ISAS: [SimdIsa; 4] = [SimdIsa::Scalar, SimdIsa::Sse2, SimdIsa::Neon, SimdIsa::Avx2];

/// A rectangle that is usually well-formed but regularly degenerate
/// (zero-width point, horizontal line), EMPTY, or NaN-poisoned —
/// exactly the entries the validity lanes must mask out.
fn arb_mixed_rect() -> impl Strategy<Value = Rect> {
    prop_oneof![
        ((-100.0f64..100.0), (-100.0f64..100.0), (0.0f64..20.0), (0.0f64..20.0))
            .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h)),
        ((-100.0f64..100.0), (-100.0f64..100.0), (0.0f64..20.0), (0.0f64..20.0))
            .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h)),
        ((-100.0f64..100.0), (-100.0f64..100.0), (0.0f64..20.0), (0.0f64..20.0))
            .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h)),
        ((-100.0f64..100.0), (-100.0f64..100.0)).prop_map(|(x, y)| Rect::new(x, y, x, y)),
        ((-100.0f64..100.0), (-100.0f64..100.0), (0.0f64..20.0)).prop_map(|(x, y, w)| Rect::new(
            x,
            y,
            x + w,
            y
        )),
        Just(Rect::EMPTY),
        ((-100.0f64..100.0), (-100.0f64..100.0), 0u8..4).prop_map(|(x, y, which)| {
            let mut c = [x, y, x + 1.0, y + 1.0];
            c[which as usize] = f64::NAN;
            Rect::new(c[0], c[1], c[2], c[3])
        }),
    ]
}

fn soa(rects: &[Rect]) -> SoaMbrs {
    let mut s = SoaMbrs::new();
    s.fill(rects.iter());
    s
}

fn arb_pred() -> impl Strategy<Value = JoinPredicate> {
    prop_oneof![
        Just(JoinPredicate::Intersects),
        (0.0f64..30.0).prop_map(JoinPredicate::WithinDistance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scan_intersects_equivalent_on_every_isa(
        rects in proptest::collection::vec(arb_mixed_rect(), 0..120),
        q in arb_mixed_rect(),
    ) {
        let s = soa(&rects);
        let mut want = Vec::new();
        let want_tests = s.scan_intersects(&q, |i| want.push(i));
        for isa in ALL_ISAS {
            let mut got = Vec::new();
            let tests = scan_intersects_isa(&s, &q, isa, |i| got.push(i));
            prop_assert_eq!(&got, &want, "isa={:?}", isa);
            prop_assert_eq!(tests, want_tests, "isa={:?}", isa);
        }
    }

    #[test]
    fn scan_within_equivalent_on_every_isa(
        rects in proptest::collection::vec(arb_mixed_rect(), 0..120),
        q in arb_mixed_rect(),
        d in prop_oneof![
            0.0f64..40.0,
            Just(0.0),
            Just(f64::NAN),
            Just(-1.0),
        ],
    ) {
        let s = soa(&rects);
        let mut want = Vec::new();
        let want_tests = s.scan_within(&q, d, |i| want.push(i));
        for isa in ALL_ISAS {
            let mut got = Vec::new();
            let tests = scan_within_isa(&s, &q, d, isa, |i| got.push(i));
            prop_assert_eq!(&got, &want, "isa={:?} d={}", isa, d);
            prop_assert_eq!(tests, want_tests, "isa={:?} d={}", isa, d);
        }
    }

    #[test]
    fn scan_contained_equivalent_on_every_isa(
        rects in proptest::collection::vec(arb_mixed_rect(), 0..120),
        q in arb_mixed_rect(),
    ) {
        let s = soa(&rects);
        let mut want = Vec::new();
        let want_tests = s.scan_contained_in(&q, |i| want.push(i));
        for isa in ALL_ISAS {
            let mut got = Vec::new();
            let tests = scan_contained_isa(&s, &q, isa, |i| got.push(i));
            prop_assert_eq!(&got, &want, "isa={:?}", isa);
            prop_assert_eq!(tests, want_tests, "isa={:?}", isa);
        }
    }

    /// The vectorized sweep must preserve the scalar sweep's emission
    /// order and exact test count — the join's stats assertions and
    /// restartability depend on both.
    #[test]
    fn sweep_pairs_simd_equivalent_to_scalar_sweep(
        a in proptest::collection::vec(arb_mixed_rect(), 0..80),
        b in proptest::collection::vec(arb_mixed_rect(), 0..80),
        pred in arb_pred(),
    ) {
        let (sa, sb) = (soa(&a), soa(&b));
        let mut want = Vec::new();
        let want_tests =
            sweep_pairs(&sa, &sb, pred, &mut SweepScratch::new(), |i, j| want.push((i, j)));
        let mut got = Vec::new();
        let tests =
            sweep_pairs_simd(&sa, &sb, pred, &mut SweepScratchSimd::new(), |i, j| got.push((i, j)));
        prop_assert_eq!(got, want);
        prop_assert_eq!(tests, want_tests);
    }

    /// Conservative quantization: the u16 prefilter plus exact f64
    /// recheck must emit exactly the scalar scan's indices (order
    /// included), and the hit/reject funnel must reconcile with the
    /// emitted count when the frame was usable.
    #[test]
    fn quantized_scan_equivalent_to_scalar_scan(
        rects in proptest::collection::vec(arb_mixed_rect(), 0..120),
        q in arb_mixed_rect(),
        pred in arb_pred(),
    ) {
        let s = soa(&rects);
        let mut qm = QuantizedMbrs::new();
        qm.fill_from_soa(&s);
        let mut want = Vec::new();
        s.scan_pred(pred, &q, |i| want.push(i));
        let mut got = Vec::new();
        let mut qc = QuantCounters::default();
        scan_pred_quantized(&qm, &s, pred, &q, &mut qc, |i| got.push(i));
        prop_assert_eq!(&got, &want);
        if qm.usable() {
            prop_assert_eq!(
                qc.quantized_hits - qc.exact_rejects,
                got.len() as u64,
                "hit/reject funnel must reconcile with emissions"
            );
        } else {
            prop_assert_eq!(qc.quantized_hits, 0);
            prop_assert_eq!(qc.exact_rejects, 0);
        }
    }
}
