//! Explicit SIMD filter kernels with runtime ISA dispatch.
//!
//! The batch kernels in the parent module are *auto*-vectorized at
//! best: the 64-entry bitmask loops compile to packed compares only
//! when LLVM feels like it, and the plane-sweep's inner run is scalar
//! by construction. Following *SIMD-ified R-tree Query Processing and
//! Optimization*, this module adds hand-written vector kernels on
//! stable `core::arch` intrinsics with one runtime dispatch point
//! ([`sdo_geom::simd::dispatched`]):
//!
//! | ISA    | f64 lanes | u16 lanes | sweep runs | how selected |
//! |--------|-----------|-----------|------------|--------------|
//! | AVX2   | 4         | 16        | vectorized | `is_x86_feature_detected!("avx2")` |
//! | SSE2   | 2         | 8         | scalar     | x86-64 baseline |
//! | NEON   | 2         | 8         | scalar     | AArch64 baseline |
//! | scalar | 1         | 1         | scalar     | fallback / [`FORCE_SCALAR_ENV`] |
//!
//! Three kernel families live here:
//!
//! * **f64 scans** — [`scan_intersects_isa`] / [`scan_within_isa`] /
//!   [`scan_contained_isa`] mirror the parent module's scans lane for
//!   lane. Ordered vector compares (`_CMP_LE_OQ`) return false on NaN
//!   exactly like scalar `<=`, so EMPTY/NaN validity semantics carry
//!   over unchanged, and within-distance uses the vector square root
//!   (correctly rounded per IEEE 754) so results are bit-identical to
//!   `Rect::mindist`.
//! * **quantized scans** — [`QuantizedMbrs`] stores node MBRs as u16
//!   keys relative to a per-node frame (min keys rounded down, max
//!   keys rounded up, so the quantized test can never reject a true
//!   hit), packing a rectangle into 8 bytes instead of 32 for ~4×
//!   denser node scans; every quantized hit is re-checked exactly in
//!   f64 ([`QuantCounters`] records hits and exact rejects).
//! * **vectorized sweep** — [`sweep_pairs_simd`] gathers both sides
//!   into sorted contiguous arrays and tests each sweep run 4 lanes at
//!   a time (AVX2; other ISAs delegate to the scalar sweep), emitting
//!   pairs in exactly the order [`sweep_pairs`](super::sweep_pairs)
//!   would.
//!
//! Every explicit-ISA entry point checks [`SimdIsa::available`] and
//! falls back to scalar rather than fault, so the equivalence
//! proptests can iterate over all ISAs unconditionally.

use super::{sweep_pairs, sweep_sort_orders, SoaMbrs, SweepScratch};
use crate::join::JoinPredicate;
use sdo_geom::{axis_mindist, Rect};

pub use sdo_geom::simd::{dispatched, SimdIsa, FORCE_SCALAR_ENV};

/// Factor applied to the sweep crossover under `KernelMode::Simd`: the
/// quantized scan tests 16 u16 keys per vector op with no sort, so the
/// pair product at which sorting pays for itself moves up by orders of
/// magnitude. Measured on AVX2 (thin-strip and block-group workloads),
/// quantized scans win up to roughly 512×512-entry node pairs —
/// `SWEEP_THRESHOLD * 1024 = 256 Ki`, right at that crossover. `0` and
/// `usize::MAX` sweep-threshold overrides keep their force-sweep /
/// force-scan meaning (`0 * 1024 == 0`; `MAX` saturates).
pub const QUANT_SWEEP_SCALE: usize = 1024;

// ---------------------------------------------------------------------------
// f64 scans
// ---------------------------------------------------------------------------

/// Vectorized [`SoaMbrs::scan_intersects`]: same emitted indices, same
/// returned test count, dispatched to `isa` (downgraded to scalar when
/// `isa` is not executable on this machine).
pub fn scan_intersects_isa(
    s: &SoaMbrs,
    q: &Rect,
    isa: SimdIsa,
    mut emit: impl FnMut(usize),
) -> u64 {
    if !(q.min_x <= q.max_x && q.min_y <= q.max_y) {
        return 0;
    }
    match runnable(isa) {
        #[cfg(target_arch = "x86_64")]
        SimdIsa::Avx2 => unsafe { scan_intersects_avx2(s, q, &mut emit) },
        #[cfg(target_arch = "x86_64")]
        SimdIsa::Sse2 => unsafe { scan_intersects_sse2(s, q, &mut emit) },
        #[cfg(target_arch = "aarch64")]
        SimdIsa::Neon => unsafe { scan_intersects_neon(s, q, &mut emit) },
        _ => s.scan_intersects(q, emit),
    }
}

/// Vectorized [`SoaMbrs::scan_within`] (see [`scan_intersects_isa`]).
pub fn scan_within_isa(
    s: &SoaMbrs,
    q: &Rect,
    d: f64,
    isa: SimdIsa,
    mut emit: impl FnMut(usize),
) -> u64 {
    if !(q.min_x <= q.max_x && q.min_y <= q.max_y) || d.is_nan() || d < 0.0 {
        return 0;
    }
    match runnable(isa) {
        #[cfg(target_arch = "x86_64")]
        SimdIsa::Avx2 => unsafe { scan_within_avx2(s, q, d, &mut emit) },
        #[cfg(target_arch = "x86_64")]
        SimdIsa::Sse2 => unsafe { scan_within_sse2(s, q, d, &mut emit) },
        #[cfg(target_arch = "aarch64")]
        SimdIsa::Neon => unsafe { scan_within_neon(s, q, d, &mut emit) },
        _ => s.scan_within(q, d, emit),
    }
}

/// Vectorized [`SoaMbrs::scan_contained_in`] (see [`scan_intersects_isa`]).
pub fn scan_contained_isa(s: &SoaMbrs, q: &Rect, isa: SimdIsa, mut emit: impl FnMut(usize)) -> u64 {
    match runnable(isa) {
        #[cfg(target_arch = "x86_64")]
        SimdIsa::Avx2 => unsafe { scan_contained_avx2(s, q, &mut emit) },
        #[cfg(target_arch = "x86_64")]
        SimdIsa::Sse2 => unsafe { scan_contained_sse2(s, q, &mut emit) },
        #[cfg(target_arch = "aarch64")]
        SimdIsa::Neon => unsafe { scan_contained_neon(s, q, &mut emit) },
        _ => s.scan_contained_in(q, emit),
    }
}

/// Join-predicate dispatcher over the explicit-ISA scans, mirroring
/// [`SoaMbrs::scan_pred`].
#[inline]
pub fn scan_pred_isa(
    s: &SoaMbrs,
    pred: JoinPredicate,
    q: &Rect,
    isa: SimdIsa,
    emit: impl FnMut(usize),
) -> u64 {
    match pred {
        JoinPredicate::Intersects => scan_intersects_isa(s, q, isa, emit),
        JoinPredicate::WithinDistance(d) => scan_within_isa(s, q, d, isa, emit),
    }
}

/// [`scan_pred_isa`] at the process-wide [`dispatched`] ISA.
#[inline]
pub fn scan_pred_simd(s: &SoaMbrs, pred: JoinPredicate, q: &Rect, emit: impl FnMut(usize)) -> u64 {
    scan_pred_isa(s, pred, q, dispatched(), emit)
}

/// Downgrade a requested ISA to one this machine can execute.
#[inline]
fn runnable(isa: SimdIsa) -> SimdIsa {
    if isa.available() {
        isa
    } else {
        SimdIsa::Scalar
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use core::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scan_intersects_avx2(
        s: &SoaMbrs,
        q: &Rect,
        emit: &mut impl FnMut(usize),
    ) -> u64 {
        let n = s.len();
        let qminx = _mm256_set1_pd(q.min_x);
        let qminy = _mm256_set1_pd(q.min_y);
        let qmaxx = _mm256_set1_pd(q.max_x);
        let qmaxy = _mm256_set1_pd(q.max_y);
        let mut i = 0;
        while i + 4 <= n {
            let minx = _mm256_loadu_pd(s.min_x.as_ptr().add(i));
            let miny = _mm256_loadu_pd(s.min_y.as_ptr().add(i));
            let maxx = _mm256_loadu_pd(s.max_x.as_ptr().add(i));
            let maxy = _mm256_loadu_pd(s.max_y.as_ptr().add(i));
            let m = _mm256_and_pd(
                _mm256_and_pd(
                    _mm256_cmp_pd::<_CMP_LE_OQ>(minx, qmaxx),
                    _mm256_cmp_pd::<_CMP_LE_OQ>(qminx, maxx),
                ),
                _mm256_and_pd(
                    _mm256_cmp_pd::<_CMP_LE_OQ>(miny, qmaxy),
                    _mm256_cmp_pd::<_CMP_LE_OQ>(qminy, maxy),
                ),
            );
            let mut bits = _mm256_movemask_pd(m) as u32;
            while bits != 0 {
                emit(i + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
            i += 4;
        }
        scan_intersects_tail(s, q, i, emit);
        n as u64
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scan_within_avx2(
        s: &SoaMbrs,
        q: &Rect,
        d: f64,
        emit: &mut impl FnMut(usize),
    ) -> u64 {
        let n = s.len();
        let qminx = _mm256_set1_pd(q.min_x);
        let qminy = _mm256_set1_pd(q.min_y);
        let qmaxx = _mm256_set1_pd(q.max_x);
        let qmaxy = _mm256_set1_pd(q.max_y);
        let dv = _mm256_set1_pd(d);
        let zero = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= n {
            let minx = _mm256_loadu_pd(s.min_x.as_ptr().add(i));
            let miny = _mm256_loadu_pd(s.min_y.as_ptr().add(i));
            let maxx = _mm256_loadu_pd(s.max_x.as_ptr().add(i));
            let maxy = _mm256_loadu_pd(s.max_y.as_ptr().add(i));
            // axis_mindist: max(entry.min - q.max, q.min - entry.max, 0)
            let dx = _mm256_max_pd(
                _mm256_max_pd(_mm256_sub_pd(minx, qmaxx), _mm256_sub_pd(qminx, maxx)),
                zero,
            );
            let dy = _mm256_max_pd(
                _mm256_max_pd(_mm256_sub_pd(miny, qmaxy), _mm256_sub_pd(qminy, maxy)),
                zero,
            );
            let dist = _mm256_sqrt_pd(_mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
            let valid = _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_LE_OQ>(minx, maxx),
                _mm256_cmp_pd::<_CMP_LE_OQ>(miny, maxy),
            );
            let m = _mm256_and_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(dist, dv), valid);
            let mut bits = _mm256_movemask_pd(m) as u32;
            while bits != 0 {
                emit(i + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
            i += 4;
        }
        scan_within_tail(s, q, d, i, emit);
        n as u64
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scan_contained_avx2(
        s: &SoaMbrs,
        q: &Rect,
        emit: &mut impl FnMut(usize),
    ) -> u64 {
        let n = s.len();
        let qminx = _mm256_set1_pd(q.min_x);
        let qminy = _mm256_set1_pd(q.min_y);
        let qmaxx = _mm256_set1_pd(q.max_x);
        let qmaxy = _mm256_set1_pd(q.max_y);
        let mut i = 0;
        while i + 4 <= n {
            let minx = _mm256_loadu_pd(s.min_x.as_ptr().add(i));
            let miny = _mm256_loadu_pd(s.min_y.as_ptr().add(i));
            let maxx = _mm256_loadu_pd(s.max_x.as_ptr().add(i));
            let maxy = _mm256_loadu_pd(s.max_y.as_ptr().add(i));
            let m = _mm256_and_pd(
                _mm256_and_pd(
                    _mm256_and_pd(
                        _mm256_cmp_pd::<_CMP_LE_OQ>(qminx, minx),
                        _mm256_cmp_pd::<_CMP_LE_OQ>(qminy, miny),
                    ),
                    _mm256_and_pd(
                        _mm256_cmp_pd::<_CMP_LE_OQ>(maxx, qmaxx),
                        _mm256_cmp_pd::<_CMP_LE_OQ>(maxy, qmaxy),
                    ),
                ),
                _mm256_and_pd(
                    _mm256_cmp_pd::<_CMP_LE_OQ>(minx, maxx),
                    _mm256_cmp_pd::<_CMP_LE_OQ>(miny, maxy),
                ),
            );
            let mut bits = _mm256_movemask_pd(m) as u32;
            while bits != 0 {
                emit(i + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
            i += 4;
        }
        scan_contained_tail(s, q, i, emit);
        n as u64
    }

    /// # Safety
    /// SSE2 is part of the x86-64 baseline; the only obligation is the
    /// usual in-bounds pointer arithmetic, which `s` guarantees.
    pub(super) unsafe fn scan_intersects_sse2(
        s: &SoaMbrs,
        q: &Rect,
        emit: &mut impl FnMut(usize),
    ) -> u64 {
        let n = s.len();
        let qminx = _mm_set1_pd(q.min_x);
        let qminy = _mm_set1_pd(q.min_y);
        let qmaxx = _mm_set1_pd(q.max_x);
        let qmaxy = _mm_set1_pd(q.max_y);
        let mut i = 0;
        while i + 2 <= n {
            let minx = _mm_loadu_pd(s.min_x.as_ptr().add(i));
            let miny = _mm_loadu_pd(s.min_y.as_ptr().add(i));
            let maxx = _mm_loadu_pd(s.max_x.as_ptr().add(i));
            let maxy = _mm_loadu_pd(s.max_y.as_ptr().add(i));
            let m = _mm_and_pd(
                _mm_and_pd(_mm_cmple_pd(minx, qmaxx), _mm_cmple_pd(qminx, maxx)),
                _mm_and_pd(_mm_cmple_pd(miny, qmaxy), _mm_cmple_pd(qminy, maxy)),
            );
            let mut bits = _mm_movemask_pd(m) as u32;
            while bits != 0 {
                emit(i + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
            i += 2;
        }
        scan_intersects_tail(s, q, i, emit);
        n as u64
    }

    /// # Safety
    /// See [`scan_intersects_sse2`].
    pub(super) unsafe fn scan_within_sse2(
        s: &SoaMbrs,
        q: &Rect,
        d: f64,
        emit: &mut impl FnMut(usize),
    ) -> u64 {
        let n = s.len();
        let qminx = _mm_set1_pd(q.min_x);
        let qminy = _mm_set1_pd(q.min_y);
        let qmaxx = _mm_set1_pd(q.max_x);
        let qmaxy = _mm_set1_pd(q.max_y);
        let dv = _mm_set1_pd(d);
        let zero = _mm_setzero_pd();
        let mut i = 0;
        while i + 2 <= n {
            let minx = _mm_loadu_pd(s.min_x.as_ptr().add(i));
            let miny = _mm_loadu_pd(s.min_y.as_ptr().add(i));
            let maxx = _mm_loadu_pd(s.max_x.as_ptr().add(i));
            let maxy = _mm_loadu_pd(s.max_y.as_ptr().add(i));
            let dx = _mm_max_pd(_mm_max_pd(_mm_sub_pd(minx, qmaxx), _mm_sub_pd(qminx, maxx)), zero);
            let dy = _mm_max_pd(_mm_max_pd(_mm_sub_pd(miny, qmaxy), _mm_sub_pd(qminy, maxy)), zero);
            let dist = _mm_sqrt_pd(_mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)));
            let valid = _mm_and_pd(_mm_cmple_pd(minx, maxx), _mm_cmple_pd(miny, maxy));
            let m = _mm_and_pd(_mm_cmple_pd(dist, dv), valid);
            let mut bits = _mm_movemask_pd(m) as u32;
            while bits != 0 {
                emit(i + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
            i += 2;
        }
        scan_within_tail(s, q, d, i, emit);
        n as u64
    }

    /// # Safety
    /// See [`scan_intersects_sse2`].
    pub(super) unsafe fn scan_contained_sse2(
        s: &SoaMbrs,
        q: &Rect,
        emit: &mut impl FnMut(usize),
    ) -> u64 {
        let n = s.len();
        let qminx = _mm_set1_pd(q.min_x);
        let qminy = _mm_set1_pd(q.min_y);
        let qmaxx = _mm_set1_pd(q.max_x);
        let qmaxy = _mm_set1_pd(q.max_y);
        let mut i = 0;
        while i + 2 <= n {
            let minx = _mm_loadu_pd(s.min_x.as_ptr().add(i));
            let miny = _mm_loadu_pd(s.min_y.as_ptr().add(i));
            let maxx = _mm_loadu_pd(s.max_x.as_ptr().add(i));
            let maxy = _mm_loadu_pd(s.max_y.as_ptr().add(i));
            let m = _mm_and_pd(
                _mm_and_pd(
                    _mm_and_pd(_mm_cmple_pd(qminx, minx), _mm_cmple_pd(qminy, miny)),
                    _mm_and_pd(_mm_cmple_pd(maxx, qmaxx), _mm_cmple_pd(maxy, qmaxy)),
                ),
                _mm_and_pd(_mm_cmple_pd(minx, maxx), _mm_cmple_pd(miny, maxy)),
            );
            let mut bits = _mm_movemask_pd(m) as u32;
            while bits != 0 {
                emit(i + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
            i += 2;
        }
        scan_contained_tail(s, q, i, emit);
        n as u64
    }
}

#[cfg(target_arch = "x86_64")]
use x86::*;

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::*;
    use core::arch::aarch64::*;

    #[inline]
    unsafe fn lane_bits(m: uint64x2_t) -> u32 {
        (vgetq_lane_u64::<0>(m) & 1) as u32 | ((vgetq_lane_u64::<1>(m) & 1) << 1) as u32
    }

    /// # Safety
    /// NEON is part of the AArch64 baseline; pointer arithmetic stays
    /// in bounds of `s`'s arrays.
    pub(super) unsafe fn scan_intersects_neon(
        s: &SoaMbrs,
        q: &Rect,
        emit: &mut impl FnMut(usize),
    ) -> u64 {
        let n = s.len();
        let qminx = vdupq_n_f64(q.min_x);
        let qminy = vdupq_n_f64(q.min_y);
        let qmaxx = vdupq_n_f64(q.max_x);
        let qmaxy = vdupq_n_f64(q.max_y);
        let mut i = 0;
        while i + 2 <= n {
            let minx = vld1q_f64(s.min_x.as_ptr().add(i));
            let miny = vld1q_f64(s.min_y.as_ptr().add(i));
            let maxx = vld1q_f64(s.max_x.as_ptr().add(i));
            let maxy = vld1q_f64(s.max_y.as_ptr().add(i));
            let m = vandq_u64(
                vandq_u64(vcleq_f64(minx, qmaxx), vcleq_f64(qminx, maxx)),
                vandq_u64(vcleq_f64(miny, qmaxy), vcleq_f64(qminy, maxy)),
            );
            let mut bits = lane_bits(m);
            while bits != 0 {
                emit(i + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
            i += 2;
        }
        scan_intersects_tail(s, q, i, emit);
        n as u64
    }

    /// # Safety
    /// See [`scan_intersects_neon`].
    pub(super) unsafe fn scan_within_neon(
        s: &SoaMbrs,
        q: &Rect,
        d: f64,
        emit: &mut impl FnMut(usize),
    ) -> u64 {
        let n = s.len();
        let qminx = vdupq_n_f64(q.min_x);
        let qminy = vdupq_n_f64(q.min_y);
        let qmaxx = vdupq_n_f64(q.max_x);
        let qmaxy = vdupq_n_f64(q.max_y);
        let dv = vdupq_n_f64(d);
        let zero = vdupq_n_f64(0.0);
        let mut i = 0;
        while i + 2 <= n {
            let minx = vld1q_f64(s.min_x.as_ptr().add(i));
            let miny = vld1q_f64(s.min_y.as_ptr().add(i));
            let maxx = vld1q_f64(s.max_x.as_ptr().add(i));
            let maxy = vld1q_f64(s.max_y.as_ptr().add(i));
            let dx = vmaxq_f64(vmaxq_f64(vsubq_f64(minx, qmaxx), vsubq_f64(qminx, maxx)), zero);
            let dy = vmaxq_f64(vmaxq_f64(vsubq_f64(miny, qmaxy), vsubq_f64(qminy, maxy)), zero);
            let dist = vsqrtq_f64(vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy)));
            let valid = vandq_u64(vcleq_f64(minx, maxx), vcleq_f64(miny, maxy));
            let m = vandq_u64(vcleq_f64(dist, dv), valid);
            let mut bits = lane_bits(m);
            while bits != 0 {
                emit(i + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
            i += 2;
        }
        scan_within_tail(s, q, d, i, emit);
        n as u64
    }

    /// # Safety
    /// See [`scan_intersects_neon`].
    pub(super) unsafe fn scan_contained_neon(
        s: &SoaMbrs,
        q: &Rect,
        emit: &mut impl FnMut(usize),
    ) -> u64 {
        let n = s.len();
        let qminx = vdupq_n_f64(q.min_x);
        let qminy = vdupq_n_f64(q.min_y);
        let qmaxx = vdupq_n_f64(q.max_x);
        let qmaxy = vdupq_n_f64(q.max_y);
        let mut i = 0;
        while i + 2 <= n {
            let minx = vld1q_f64(s.min_x.as_ptr().add(i));
            let miny = vld1q_f64(s.min_y.as_ptr().add(i));
            let maxx = vld1q_f64(s.max_x.as_ptr().add(i));
            let maxy = vld1q_f64(s.max_y.as_ptr().add(i));
            let m = vandq_u64(
                vandq_u64(
                    vandq_u64(vcleq_f64(qminx, minx), vcleq_f64(qminy, miny)),
                    vandq_u64(vcleq_f64(maxx, qmaxx), vcleq_f64(maxy, qmaxy)),
                ),
                vandq_u64(vcleq_f64(minx, maxx), vcleq_f64(miny, maxy)),
            );
            let mut bits = lane_bits(m);
            while bits != 0 {
                emit(i + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
            i += 2;
        }
        scan_contained_tail(s, q, i, emit);
        n as u64
    }
}

#[cfg(target_arch = "aarch64")]
use arm::*;

/// Scalar remainder of a vector intersect scan, starting at `from`.
#[allow(dead_code)]
fn scan_intersects_tail(s: &SoaMbrs, q: &Rect, from: usize, emit: &mut impl FnMut(usize)) {
    for i in from..s.len() {
        if (s.min_x[i] <= q.max_x)
            & (q.min_x <= s.max_x[i])
            & (s.min_y[i] <= q.max_y)
            & (q.min_y <= s.max_y[i])
        {
            emit(i);
        }
    }
}

/// Scalar remainder of a vector within-distance scan.
#[allow(dead_code)]
fn scan_within_tail(s: &SoaMbrs, q: &Rect, d: f64, from: usize, emit: &mut impl FnMut(usize)) {
    for i in from..s.len() {
        let dx = axis_mindist(q.min_x, q.max_x, s.min_x[i], s.max_x[i]);
        let dy = axis_mindist(q.min_y, q.max_y, s.min_y[i], s.max_y[i]);
        if ((dx * dx + dy * dy).sqrt() <= d)
            & (s.min_x[i] <= s.max_x[i])
            & (s.min_y[i] <= s.max_y[i])
        {
            emit(i);
        }
    }
}

/// Scalar remainder of a vector containment scan.
#[allow(dead_code)]
fn scan_contained_tail(s: &SoaMbrs, q: &Rect, from: usize, emit: &mut impl FnMut(usize)) {
    for i in from..s.len() {
        if (q.min_x <= s.min_x[i])
            & (q.min_y <= s.min_y[i])
            & (s.max_x[i] <= q.max_x)
            & (s.max_y[i] <= q.max_y)
            & (s.min_x[i] <= s.max_x[i])
            & (s.min_y[i] <= s.max_y[i])
        {
            emit(i);
        }
    }
}

// ---------------------------------------------------------------------------
// Quantized node layout
// ---------------------------------------------------------------------------

/// Node MBRs quantized to u16 keys relative to a per-node frame.
///
/// A rectangle packs into 8 bytes instead of 32, so a 128-entry node's
/// keys fit in two cache lines per axis pair and a 16-lane AVX2 compare
/// covers 16 rectangles per instruction — the "~4× denser node scans"
/// of the SIMD R-tree literature.
///
/// **Conservative rounding.** Every min key rounds *down* and every
/// max key rounds *up* (queries quantize the same way). Because the
/// encoding `v ↦ clamp(⌊(v − origin)·inv_step⌋)` is monotone, the
/// quantized overlap test is implied by the exact f64 overlap test —
/// a true hit can never be rejected. False positives are possible (a
/// grid cell is up to frame/65535 wide), so every quantized hit is
/// re-checked exactly in f64; [`QuantCounters`] records both sides of
/// that funnel (`quantized_hits` / `exact_rejects`).
///
/// Degenerate entries (EMPTY / NaN) encode as the impossible key pair
/// `(min=65535, max=0)`; if a full-frame query still matches one, the
/// exact re-check rejects it. Frames with non-finite bounds mark the
/// whole view unusable and scans fall back to the f64 kernels.
#[derive(Debug, Default, Clone)]
pub struct QuantizedMbrs {
    qmin_x: Vec<u16>,
    qmin_y: Vec<u16>,
    qmax_x: Vec<u16>,
    qmax_y: Vec<u16>,
    origin_x: f64,
    origin_y: f64,
    inv_step_x: f64,
    inv_step_y: f64,
    usable: bool,
}

impl QuantizedMbrs {
    /// An empty quantized view; fill with [`QuantizedMbrs::fill_from_soa`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rectangles in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.qmin_x.len()
    }

    /// True when the view holds no rectangles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.qmin_x.is_empty()
    }

    /// True when the frame admits quantized testing (finite bounds).
    #[inline]
    pub fn usable(&self) -> bool {
        self.usable
    }

    /// Rebuild the quantized keys from an SoA view (clears first). The
    /// frame is the union of the valid rectangles; invalid entries get
    /// the impossible key pair.
    pub fn fill_from_soa(&mut self, s: &SoaMbrs) {
        self.qmin_x.clear();
        self.qmin_y.clear();
        self.qmax_x.clear();
        self.qmax_y.clear();
        let n = s.len();
        let mut frame = Rect::EMPTY;
        for i in 0..n {
            if s.min_x[i] <= s.max_x[i] && s.min_y[i] <= s.max_y[i] {
                frame = frame.union(&s.get(i));
            }
        }
        self.origin_x = frame.min_x;
        self.origin_y = frame.min_y;
        let wx = frame.max_x - frame.min_x;
        let wy = frame.max_y - frame.min_y;
        self.usable =
            frame.min_x.is_finite() && frame.min_y.is_finite() && wx.is_finite() && wy.is_finite();
        self.inv_step_x = if wx > 0.0 { 65535.0 / wx } else { 1.0 };
        self.inv_step_y = if wy > 0.0 { 65535.0 / wy } else { 1.0 };
        if !self.usable {
            return;
        }
        for i in 0..n {
            if s.min_x[i] <= s.max_x[i] && s.min_y[i] <= s.max_y[i] {
                self.qmin_x.push(enc_down(s.min_x[i], self.origin_x, self.inv_step_x));
                self.qmin_y.push(enc_down(s.min_y[i], self.origin_y, self.inv_step_y));
                self.qmax_x.push(enc_up(s.max_x[i], self.origin_x, self.inv_step_x));
                self.qmax_y.push(enc_up(s.max_y[i], self.origin_y, self.inv_step_y));
            } else {
                self.qmin_x.push(u16::MAX);
                self.qmin_y.push(u16::MAX);
                self.qmax_x.push(0);
                self.qmax_y.push(0);
            }
        }
    }

    /// Quantize a query rectangle with the same conservative rounding
    /// as the entries: `[qmin_x, qmin_y, qmax_x, qmax_y]`.
    #[inline]
    fn quantize_query(&self, q: &Rect) -> [u16; 4] {
        [
            enc_down(q.min_x, self.origin_x, self.inv_step_x),
            enc_down(q.min_y, self.origin_y, self.inv_step_y),
            enc_up(q.max_x, self.origin_x, self.inv_step_x),
            enc_up(q.max_y, self.origin_y, self.inv_step_y),
        ]
    }
}

/// Quantize rounding down (min keys): monotone, clamped to `[0, 65535]`.
#[inline]
fn enc_down(v: f64, origin: f64, inv_step: f64) -> u16 {
    let t = (v - origin) * inv_step;
    if t >= 65535.0 {
        u16::MAX
    } else if t >= 0.0 {
        t as u16 // truncation == floor for non-negative t
    } else {
        0
    }
}

/// Quantize rounding up (max keys): monotone, clamped to `[0, 65535]`.
#[inline]
fn enc_up(v: f64, origin: f64, inv_step: f64) -> u16 {
    let t = ((v - origin) * inv_step).ceil();
    if t >= 65535.0 {
        u16::MAX
    } else if t >= 0.0 {
        t as u16
    } else {
        0
    }
}

/// Counters of the quantized filter funnel, surfaced in
/// `EXPLAIN ANALYZE` as `quantized_hits` / `exact_rejects`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QuantCounters {
    /// Rectangles that passed the u16 quantized test.
    pub quantized_hits: u64,
    /// Quantized hits the exact f64 re-check then rejected.
    pub exact_rejects: u64,
}

impl QuantCounters {
    /// Accumulate another funnel's counts.
    pub fn merge(&mut self, other: &QuantCounters) {
        self.quantized_hits += other.quantized_hits;
        self.exact_rejects += other.exact_rejects;
    }
}

/// Quantized scan with exact f64 re-check: emits exactly the indices
/// [`SoaMbrs::scan_pred`] would emit for `pred`/`q`, testing the u16
/// keys first (16 lanes per AVX2 compare) and re-checking hits against
/// `soa` (which must be the view `qm` was filled from). Falls back to
/// the f64 vector scans when the frame is unusable. Returns rectangles
/// tested.
pub fn scan_pred_quantized(
    qm: &QuantizedMbrs,
    soa: &SoaMbrs,
    pred: JoinPredicate,
    q: &Rect,
    counters: &mut QuantCounters,
    mut emit: impl FnMut(usize),
) -> u64 {
    debug_assert!(!qm.usable || qm.len() == soa.len());
    if !(q.min_x <= q.max_x && q.min_y <= q.max_y) {
        return 0;
    }
    let expand = match pred {
        JoinPredicate::Intersects => *q,
        JoinPredicate::WithinDistance(d) => {
            if d.is_nan() || d < 0.0 {
                return 0;
            }
            q.expanded(d)
        }
    };
    if !qm.usable {
        return scan_pred_isa(soa, pred, q, dispatched(), emit);
    }
    let qq = qm.quantize_query(&expand);
    quant_candidates(qm, qq, dispatched(), |i| {
        counters.quantized_hits += 1;
        let exact = match pred {
            JoinPredicate::Intersects => {
                (soa.min_x[i] <= q.max_x)
                    & (q.min_x <= soa.max_x[i])
                    & (soa.min_y[i] <= q.max_y)
                    & (q.min_y <= soa.max_y[i])
            }
            JoinPredicate::WithinDistance(d) => {
                let dx = axis_mindist(q.min_x, q.max_x, soa.min_x[i], soa.max_x[i]);
                let dy = axis_mindist(q.min_y, q.max_y, soa.min_y[i], soa.max_y[i]);
                ((dx * dx + dy * dy).sqrt() <= d)
                    & (soa.min_x[i] <= soa.max_x[i])
                    & (soa.min_y[i] <= soa.max_y[i])
            }
        };
        if exact {
            emit(i);
        } else {
            counters.exact_rejects += 1;
        }
    });
    qm.len() as u64
}

/// Emit the indices passing the quantized overlap test
/// `entry.min <= q.max && q.min <= entry.max` on both axes (u16,
/// unsigned), in ascending order.
fn quant_candidates(qm: &QuantizedMbrs, qq: [u16; 4], isa: SimdIsa, mut on: impl FnMut(usize)) {
    match runnable(isa) {
        #[cfg(target_arch = "x86_64")]
        SimdIsa::Avx2 => unsafe { quant_candidates_avx2(qm, qq, &mut on) },
        #[cfg(target_arch = "x86_64")]
        SimdIsa::Sse2 => unsafe { quant_candidates_sse2(qm, qq, &mut on) },
        #[cfg(target_arch = "aarch64")]
        SimdIsa::Neon => unsafe { quant_candidates_neon(qm, qq, &mut on) },
        _ => quant_candidates_tail(qm, qq, 0, &mut on),
    }
}

/// Scalar quantized candidate loop from `from`.
#[allow(dead_code)]
fn quant_candidates_tail(
    qm: &QuantizedMbrs,
    qq: [u16; 4],
    from: usize,
    on: &mut impl FnMut(usize),
) {
    for i in from..qm.len() {
        if (qm.qmin_x[i] <= qq[2])
            & (qq[0] <= qm.qmax_x[i])
            & (qm.qmin_y[i] <= qq[3])
            & (qq[1] <= qm.qmax_y[i])
        {
            on(i);
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86_quant {
    use super::*;
    use core::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn quant_candidates_avx2(
        qm: &QuantizedMbrs,
        qq: [u16; 4],
        on: &mut impl FnMut(usize),
    ) {
        let n = qm.len();
        let zero = _mm256_setzero_si256();
        let qminx = _mm256_set1_epi16(qq[0] as i16);
        let qminy = _mm256_set1_epi16(qq[1] as i16);
        let qmaxx = _mm256_set1_epi16(qq[2] as i16);
        let qmaxy = _mm256_set1_epi16(qq[3] as i16);
        // a <= b (unsigned u16) ⟺ saturating_sub(a, b) == 0
        let le = |a: __m256i, b: __m256i| _mm256_cmpeq_epi16(_mm256_subs_epu16(a, b), zero);
        let mut i = 0;
        while i + 16 <= n {
            let eminx = _mm256_loadu_si256(qm.qmin_x.as_ptr().add(i) as *const __m256i);
            let eminy = _mm256_loadu_si256(qm.qmin_y.as_ptr().add(i) as *const __m256i);
            let emaxx = _mm256_loadu_si256(qm.qmax_x.as_ptr().add(i) as *const __m256i);
            let emaxy = _mm256_loadu_si256(qm.qmax_y.as_ptr().add(i) as *const __m256i);
            let m = _mm256_and_si256(
                _mm256_and_si256(le(eminx, qmaxx), le(qminx, emaxx)),
                _mm256_and_si256(le(eminy, qmaxy), le(qminy, emaxy)),
            );
            // Two movemask bits per u16 lane; keep the even bits.
            let mut bits = _mm256_movemask_epi8(m) as u32 & 0x5555_5555;
            while bits != 0 {
                on(i + (bits.trailing_zeros() >> 1) as usize);
                bits &= bits - 1;
            }
            i += 16;
        }
        quant_candidates_tail(qm, qq, i, on);
    }

    /// # Safety
    /// SSE2 is part of the x86-64 baseline.
    pub(super) unsafe fn quant_candidates_sse2(
        qm: &QuantizedMbrs,
        qq: [u16; 4],
        on: &mut impl FnMut(usize),
    ) {
        let n = qm.len();
        let zero = _mm_setzero_si128();
        let qminx = _mm_set1_epi16(qq[0] as i16);
        let qminy = _mm_set1_epi16(qq[1] as i16);
        let qmaxx = _mm_set1_epi16(qq[2] as i16);
        let qmaxy = _mm_set1_epi16(qq[3] as i16);
        let le = |a: __m128i, b: __m128i| _mm_cmpeq_epi16(_mm_subs_epu16(a, b), zero);
        let mut i = 0;
        while i + 8 <= n {
            let eminx = _mm_loadu_si128(qm.qmin_x.as_ptr().add(i) as *const __m128i);
            let eminy = _mm_loadu_si128(qm.qmin_y.as_ptr().add(i) as *const __m128i);
            let emaxx = _mm_loadu_si128(qm.qmax_x.as_ptr().add(i) as *const __m128i);
            let emaxy = _mm_loadu_si128(qm.qmax_y.as_ptr().add(i) as *const __m128i);
            let m = _mm_and_si128(
                _mm_and_si128(le(eminx, qmaxx), le(qminx, emaxx)),
                _mm_and_si128(le(eminy, qmaxy), le(qminy, emaxy)),
            );
            let mut bits = _mm_movemask_epi8(m) as u32 & 0x5555;
            while bits != 0 {
                on(i + (bits.trailing_zeros() >> 1) as usize);
                bits &= bits - 1;
            }
            i += 8;
        }
        quant_candidates_tail(qm, qq, i, on);
    }
}

#[cfg(target_arch = "x86_64")]
use x86_quant::*;

#[cfg(target_arch = "aarch64")]
mod arm_quant {
    use super::*;
    use core::arch::aarch64::*;

    /// # Safety
    /// NEON is part of the AArch64 baseline.
    pub(super) unsafe fn quant_candidates_neon(
        qm: &QuantizedMbrs,
        qq: [u16; 4],
        on: &mut impl FnMut(usize),
    ) {
        let n = qm.len();
        let qminx = vdupq_n_u16(qq[0]);
        let qminy = vdupq_n_u16(qq[1]);
        let qmaxx = vdupq_n_u16(qq[2]);
        let qmaxy = vdupq_n_u16(qq[3]);
        let mut lanes = [0u16; 8];
        let mut i = 0;
        while i + 8 <= n {
            let eminx = vld1q_u16(qm.qmin_x.as_ptr().add(i));
            let eminy = vld1q_u16(qm.qmin_y.as_ptr().add(i));
            let emaxx = vld1q_u16(qm.qmax_x.as_ptr().add(i));
            let emaxy = vld1q_u16(qm.qmax_y.as_ptr().add(i));
            let m = vandq_u16(
                vandq_u16(vcleq_u16(eminx, qmaxx), vcleq_u16(qminx, emaxx)),
                vandq_u16(vcleq_u16(eminy, qmaxy), vcleq_u16(qminy, emaxy)),
            );
            vst1q_u16(lanes.as_mut_ptr(), m);
            for (l, &hit) in lanes.iter().enumerate() {
                if hit != 0 {
                    on(i + l);
                }
            }
            i += 8;
        }
        quant_candidates_tail(qm, qq, i, on);
    }
}

#[cfg(target_arch = "aarch64")]
use arm_quant::*;

// ---------------------------------------------------------------------------
// Vectorized plane-sweep
// ---------------------------------------------------------------------------

/// Scratch buffers for [`sweep_pairs_simd`]: the sorted index orders
/// plus gathered contiguous copies of both sides' coordinates in sweep
/// order, so the vector runs read sequential memory with no
/// permutation indirection. Reused across node pairs.
#[derive(Debug, Default)]
pub struct SweepScratchSimd {
    base: SweepScratch,
    order_a: Vec<u32>,
    order_b: Vec<u32>,
    ax0: Vec<f64>,
    ay0: Vec<f64>,
    ax1: Vec<f64>,
    ay1: Vec<f64>,
    bx0: Vec<f64>,
    by0: Vec<f64>,
    bx1: Vec<f64>,
    by1: Vec<f64>,
}

impl SweepScratchSimd {
    /// Fresh scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Vectorized [`sweep_pairs`](super::sweep_pairs): identical emitted
/// pairs in the identical order, identical returned test count. The
/// sorted runs are tested 4 lanes per AVX2 iteration (the run's
/// `min_x <= stop` condition is a prefix mask over sorted input, so a
/// partially-open block both counts and terminates exactly like the
/// scalar loop). On non-AVX2 ISAs this delegates to the scalar sweep.
pub fn sweep_pairs_simd(
    a: &SoaMbrs,
    b: &SoaMbrs,
    pred: JoinPredicate,
    scratch: &mut SweepScratchSimd,
    mut emit: impl FnMut(usize, usize),
) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if dispatched() == SimdIsa::Avx2 {
        let reach = match pred {
            JoinPredicate::Intersects => 0.0,
            JoinPredicate::WithinDistance(d) => {
                if d.is_nan() || d < 0.0 {
                    return 0;
                }
                d
            }
        };
        sweep_sort_orders(a, b, &mut scratch.order_a, &mut scratch.order_b);
        gather(
            a,
            &scratch.order_a,
            &mut scratch.ax0,
            &mut scratch.ay0,
            &mut scratch.ax1,
            &mut scratch.ay1,
        );
        gather(
            b,
            &scratch.order_b,
            &mut scratch.bx0,
            &mut scratch.by0,
            &mut scratch.bx1,
            &mut scratch.by1,
        );
        let (la, lb) = (scratch.order_a.len(), scratch.order_b.len());
        let mut tests = 0u64;
        let (mut i, mut j) = (0usize, 0usize);
        while i < la && j < lb {
            if scratch.ax0[i] <= scratch.bx0[j] {
                let probe = [scratch.ax0[i], scratch.ay0[i], scratch.ax1[i], scratch.ay1[i]];
                let stop = probe[2] + reach;
                let ai = scratch.order_a[i] as usize;
                let (order_b, bx0, by0, bx1, by1) =
                    (&scratch.order_b, &scratch.bx0, &scratch.by0, &scratch.bx1, &scratch.by1);
                tests += unsafe {
                    sweep_run_avx2(bx0, by0, bx1, by1, j, stop, probe, pred, &mut |k| {
                        emit(ai, order_b[k] as usize)
                    })
                };
                i += 1;
            } else {
                let probe = [scratch.bx0[j], scratch.by0[j], scratch.bx1[j], scratch.by1[j]];
                let stop = probe[2] + reach;
                let bj = scratch.order_b[j] as usize;
                let (order_a, ax0, ay0, ax1, ay1) =
                    (&scratch.order_a, &scratch.ax0, &scratch.ay0, &scratch.ax1, &scratch.ay1);
                tests += unsafe {
                    sweep_run_avx2(ax0, ay0, ax1, ay1, i, stop, probe, pred, &mut |k| {
                        emit(order_a[k] as usize, bj)
                    })
                };
                j += 1;
            }
        }
        return tests;
    }
    sweep_pairs(a, b, pred, &mut scratch.base, emit)
}

/// Gather a side's coordinates into contiguous sweep-order arrays.
#[allow(dead_code)]
fn gather(
    s: &SoaMbrs,
    order: &[u32],
    x0: &mut Vec<f64>,
    y0: &mut Vec<f64>,
    x1: &mut Vec<f64>,
    y1: &mut Vec<f64>,
) {
    x0.clear();
    y0.clear();
    x1.clear();
    y1.clear();
    for &i in order {
        let i = i as usize;
        x0.push(s.min_x[i]);
        y0.push(s.min_y[i]);
        x1.push(s.max_x[i]);
        y1.push(s.max_y[i]);
    }
}

/// One forward sweep run over sorted, gathered coordinates: test the
/// rectangles from `start` while their `min_x` stays within `stop`,
/// 4 lanes at a time, invoking `on_hit` with the sorted position of
/// each match (ascending). Returns the number of rectangles tested —
/// exactly the scalar sweep's inner trip count.
///
/// # Safety
/// Caller must ensure AVX2 is available; the four slices must have
/// equal length.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn sweep_run_avx2(
    min_x: &[f64],
    min_y: &[f64],
    max_x: &[f64],
    max_y: &[f64],
    start: usize,
    stop: f64,
    probe: [f64; 4],
    pred: JoinPredicate,
    on_hit: &mut impl FnMut(usize),
) -> u64 {
    use core::arch::x86_64::*;
    let n = min_x.len();
    let stop_v = _mm256_set1_pd(stop);
    let p_min_x = _mm256_set1_pd(probe[0]);
    let p_min_y = _mm256_set1_pd(probe[1]);
    let p_max_x = _mm256_set1_pd(probe[2]);
    let p_max_y = _mm256_set1_pd(probe[3]);
    let zero = _mm256_setzero_pd();
    let mut tests = 0u64;
    let mut k = start;
    while k + 4 <= n {
        let bminx = _mm256_loadu_pd(min_x.as_ptr().add(k));
        // Sorted input ⇒ the open mask is a prefix of the block.
        let open = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(bminx, stop_v)) as u32 & 0xF;
        if open == 0 {
            return tests;
        }
        let run = open.trailing_ones();
        let hits = match pred {
            JoinPredicate::Intersects => {
                let bminy = _mm256_loadu_pd(min_y.as_ptr().add(k));
                let bmaxy = _mm256_loadu_pd(max_y.as_ptr().add(k));
                _mm256_and_pd(
                    _mm256_cmp_pd::<_CMP_LE_OQ>(bminy, p_max_y),
                    _mm256_cmp_pd::<_CMP_LE_OQ>(p_min_y, bmaxy),
                )
            }
            JoinPredicate::WithinDistance(d) => {
                let bminy = _mm256_loadu_pd(min_y.as_ptr().add(k));
                let bmaxx = _mm256_loadu_pd(max_x.as_ptr().add(k));
                let bmaxy = _mm256_loadu_pd(max_y.as_ptr().add(k));
                let dx = _mm256_max_pd(
                    _mm256_max_pd(_mm256_sub_pd(bminx, p_max_x), _mm256_sub_pd(p_min_x, bmaxx)),
                    zero,
                );
                let dy = _mm256_max_pd(
                    _mm256_max_pd(_mm256_sub_pd(bminy, p_max_y), _mm256_sub_pd(p_min_y, bmaxy)),
                    zero,
                );
                let dist =
                    _mm256_sqrt_pd(_mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
                _mm256_cmp_pd::<_CMP_LE_OQ>(dist, _mm256_set1_pd(d))
            }
        };
        let mut hm = _mm256_movemask_pd(hits) as u32 & open;
        while hm != 0 {
            on_hit(k + hm.trailing_zeros() as usize);
            hm &= hm - 1;
        }
        tests += run as u64;
        if run < 4 {
            return tests;
        }
        k += 4;
    }
    // Scalar tail (fewer than 4 rectangles left).
    while k < n {
        if min_x[k] > stop {
            break;
        }
        tests += 1;
        let hit = match pred {
            JoinPredicate::Intersects => min_y[k] <= probe[3] && probe[1] <= max_y[k],
            JoinPredicate::WithinDistance(d) => {
                let dx = axis_mindist(probe[0], probe[2], min_x[k], max_x[k]);
                let dy = axis_mindist(probe[1], probe[3], min_y[k], max_y[k]);
                (dx * dx + dy * dy).sqrt() <= d
            }
        };
        if hit {
            on_hit(k);
        }
        k += 1;
    }
    tests
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_ISAS: [SimdIsa; 4] = [SimdIsa::Scalar, SimdIsa::Sse2, SimdIsa::Neon, SimdIsa::Avx2];

    fn soa(rects: &[Rect]) -> SoaMbrs {
        let mut s = SoaMbrs::new();
        s.fill(rects.iter());
        s
    }

    /// Pseudo-random rect set salted with NaN / EMPTY / degenerate
    /// entries at fixed positions.
    fn mixed_rects(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = ((i * 2654435761) % 997) as f64 / 3.0;
                let y = ((i * 40503) % 991) as f64 / 3.0;
                match i % 11 {
                    3 => Rect::EMPTY,
                    5 => Rect { min_x: f64::NAN, min_y: y, max_x: x, max_y: y + 1.0 },
                    7 => Rect::new(x, y, x, y),       // point
                    9 => Rect::new(x, y, x + 9.0, y), // horizontal line
                    _ => Rect::new(x, y, x + 4.0, y + 4.0),
                }
            })
            .collect()
    }

    #[test]
    fn every_isa_matches_the_scalar_scans() {
        let rs = mixed_rects(301);
        let s = soa(&rs);
        let queries = [
            Rect::new(10.0, 10.0, 120.0, 120.0),
            Rect::new(50.0, 50.0, 50.0, 50.0), // degenerate point query
            Rect::new(-10.0, -10.0, 400.0, 400.0),
            Rect::EMPTY,
        ];
        for q in &queries {
            let mut want_i = Vec::new();
            let base_i = s.scan_intersects(q, |i| want_i.push(i));
            let mut want_c = Vec::new();
            let base_c = s.scan_contained_in(q, |i| want_c.push(i));
            for isa in ALL_ISAS {
                let mut got = Vec::new();
                let n = scan_intersects_isa(&s, q, isa, |i| got.push(i));
                assert_eq!(got, want_i, "intersects {isa:?} {q}");
                assert_eq!(n, base_i, "intersects tests {isa:?}");
                let mut got = Vec::new();
                let n = scan_contained_isa(&s, q, isa, |i| got.push(i));
                assert_eq!(got, want_c, "contained {isa:?} {q}");
                assert_eq!(n, base_c, "contained tests {isa:?}");
                for d in [0.0, 2.5, 30.0, f64::NAN] {
                    let mut want_w = Vec::new();
                    let base_w = s.scan_within(q, d, |i| want_w.push(i));
                    let mut got = Vec::new();
                    let n = scan_within_isa(&s, q, d, isa, |i| got.push(i));
                    assert_eq!(got, want_w, "within {isa:?} {q} d={d}");
                    assert_eq!(n, base_w, "within tests {isa:?} d={d}");
                }
            }
        }
    }

    #[test]
    fn scan_pred_isa_routes_both_predicates() {
        let rs = mixed_rects(97);
        let s = soa(&rs);
        let q = Rect::new(30.0, 30.0, 90.0, 90.0);
        for isa in ALL_ISAS {
            let mut a = Vec::new();
            scan_pred_isa(&s, JoinPredicate::Intersects, &q, isa, |i| a.push(i));
            let mut b = Vec::new();
            s.scan_intersects(&q, |i| b.push(i));
            assert_eq!(a, b);
            let mut a = Vec::new();
            scan_pred_isa(&s, JoinPredicate::WithinDistance(5.0), &q, isa, |i| a.push(i));
            let mut b = Vec::new();
            s.scan_within(&q, 5.0, |i| b.push(i));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn quantized_scan_is_exact_with_conservative_funnel() {
        let rs = mixed_rects(230);
        let s = soa(&rs);
        let mut qm = QuantizedMbrs::new();
        qm.fill_from_soa(&s);
        assert!(qm.usable(), "finite data frames are usable");
        assert_eq!(qm.len(), s.len());
        for q in [
            Rect::new(20.0, 20.0, 80.0, 80.0),
            Rect::new(-5.0, -5.0, 0.5, 0.5),
            Rect::new(100.0, 100.0, 100.0, 100.0),
        ] {
            for pred in [JoinPredicate::Intersects, JoinPredicate::WithinDistance(3.0)] {
                let mut want = Vec::new();
                s.scan_pred(pred, &q, |i| want.push(i));
                let mut counters = QuantCounters::default();
                let mut got = Vec::new();
                let tests = scan_pred_quantized(&qm, &s, pred, &q, &mut counters, |i| got.push(i));
                assert_eq!(got, want, "{pred:?} {q}");
                assert_eq!(tests, s.len() as u64);
                // Conservative: every true hit passed the u16 test.
                assert_eq!(
                    counters.quantized_hits - counters.exact_rejects,
                    want.len() as u64,
                    "funnel accounting {pred:?} {q}"
                );
            }
        }
    }

    #[test]
    fn quantized_unusable_frame_falls_back_to_f64() {
        // A rectangle with infinite extent poisons the frame.
        let rs = vec![
            Rect::new(0.0, 0.0, 4.0, 4.0),
            Rect::new(f64::NEG_INFINITY, 0.0, f64::INFINITY, 1.0),
            Rect::new(8.0, 8.0, 12.0, 12.0),
        ];
        let s = soa(&rs);
        let mut qm = QuantizedMbrs::new();
        qm.fill_from_soa(&s);
        assert!(!qm.usable());
        let q = Rect::new(1.0, 0.5, 9.0, 9.0);
        let mut want = Vec::new();
        s.scan_pred(JoinPredicate::Intersects, &q, |i| want.push(i));
        let mut counters = QuantCounters::default();
        let mut got = Vec::new();
        scan_pred_quantized(&qm, &s, JoinPredicate::Intersects, &q, &mut counters, |i| got.push(i));
        assert_eq!(got, want);
        assert_eq!(counters, QuantCounters::default(), "fallback skips the funnel");
    }

    #[test]
    fn quantized_invalid_entries_never_emit() {
        let rs = mixed_rects(66);
        let s = soa(&rs);
        let mut qm = QuantizedMbrs::new();
        qm.fill_from_soa(&s);
        // Full-frame query: everything valid matches, nothing invalid does.
        let q = Rect::new(-1e6, -1e6, 1e6, 1e6);
        let mut counters = QuantCounters::default();
        let mut got = Vec::new();
        scan_pred_quantized(&qm, &s, JoinPredicate::Intersects, &q, &mut counters, |i| got.push(i));
        for &i in &got {
            assert!(rs[i].min_x <= rs[i].max_x && rs[i].min_y <= rs[i].max_y);
        }
        let valid = (0..rs.len())
            .filter(|&i| rs[i].min_x <= rs[i].max_x && rs[i].min_y <= rs[i].max_y)
            .count();
        assert_eq!(got.len(), valid);
    }

    #[test]
    fn simd_sweep_matches_scalar_sweep_exactly() {
        let a_rs = mixed_rects(180);
        let b_rs: Vec<Rect> = mixed_rects(211)
            .into_iter()
            .map(|r| Rect {
                min_x: r.min_x + 1.5,
                min_y: r.min_y + 0.5,
                max_x: r.max_x + 1.5,
                max_y: r.max_y + 0.5,
            })
            .collect();
        let (a, b) = (soa(&a_rs), soa(&b_rs));
        for pred in [
            JoinPredicate::Intersects,
            JoinPredicate::WithinDistance(0.0),
            JoinPredicate::WithinDistance(4.5),
        ] {
            let mut base = SweepScratch::default();
            let mut want = Vec::new();
            let want_tests = sweep_pairs(&a, &b, pred, &mut base, |i, j| want.push((i, j)));
            let mut scratch = SweepScratchSimd::new();
            let mut got = Vec::new();
            let got_tests = sweep_pairs_simd(&a, &b, pred, &mut scratch, |i, j| got.push((i, j)));
            assert_eq!(got, want, "pairs+order {pred:?}");
            assert_eq!(got_tests, want_tests, "test count {pred:?}");
        }
    }
}
