//! R-tree queries: window, within-distance, nearest-neighbour, and
//! packet (multi-query) traversal.

use crate::join::JoinPredicate;
use crate::kernel::simd::scan_pred_simd;
use crate::kernel::SoaMbrs;
use crate::node::Payload;
use crate::tree::RTree;
use sdo_geom::{Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Accounting from a packet traversal: how many nodes were loaded
/// (once per packet, not once per probe) and how many probe-vs-MBR
/// tests ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PacketStats {
    /// Nodes visited; with `p` probes sharing a node this counts 1
    /// where `p` independent traversals would count up to `p`.
    pub descents: u64,
    /// Probe-vs-entry MBR tests executed.
    pub tests: u64,
}

impl PacketStats {
    /// Accumulate another traversal's stats.
    pub fn merge(&mut self, other: &PacketStats) {
        self.descents += other.descents;
        self.tests += other.tests;
    }
}

impl<T: Clone> RTree<T> {
    /// Items whose MBRs intersect `window` (the primary filter for
    /// `SDO_FILTER`/`SDO_RELATE` window queries).
    pub fn query_window(&self, window: &Rect) -> Vec<(Rect, T)> {
        let mut out = Vec::new();
        self.query_window_visit(window, &mut |mbr, item| out.push((mbr, item.clone())));
        out
    }

    /// Visitor-form window query, avoiding result materialization.
    ///
    /// Each visited node's MBRs are scanned through the batched SoA
    /// intersection kernel ([`SoaMbrs::scan_intersects`]) rather than
    /// entry-by-entry `Rect::intersects` calls; the SoA scratch view
    /// is reused across nodes so the loop does not allocate after the
    /// first node at each fanout.
    pub fn query_window_visit(&self, window: &Rect, visit: &mut impl FnMut(Rect, &T)) {
        if self.is_empty() {
            return;
        }
        let mut soa = SoaMbrs::new();
        let mut stack = vec![self.root_id()];
        while let Some(id) = stack.pop() {
            let n = self.node(id);
            soa.fill_from_entries(&n.entries);
            soa.scan_intersects(window, |i| {
                let e = &n.entries[i];
                match &e.payload {
                    Payload::Item(t) => visit(e.mbr, t),
                    Payload::Node(c) => stack.push(*c),
                }
            });
        }
    }

    /// Items whose MBRs lie within `d` of `window` (`mindist <= d`),
    /// the primary filter for `SDO_WITHIN_DISTANCE`. Runs the batched
    /// SoA within-distance kernel per node, like
    /// [`RTree::query_window_visit`].
    pub fn query_within_distance(&self, window: &Rect, d: f64) -> Vec<(Rect, T)> {
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        let mut soa = SoaMbrs::new();
        let mut stack = vec![self.root_id()];
        while let Some(id) = stack.pop() {
            let n = self.node(id);
            soa.fill_from_entries(&n.entries);
            soa.scan_within(window, d, |i| {
                let e = &n.entries[i];
                match &e.payload {
                    Payload::Item(t) => out.push((e.mbr, t.clone())),
                    Payload::Node(c) => stack.push(*c),
                }
            });
        }
        out
    }

    /// The `k` items whose MBRs are nearest to `q` (by `mindist`),
    /// best-first traversal with a priority queue (Hjaltason & Samet
    /// ranking, cited as \[9\] in the paper).
    pub fn query_knn(&self, q: &Point, k: usize) -> Vec<(f64, Rect, T)> {
        let mut out = Vec::new();
        if k == 0 || self.is_empty() {
            return out;
        }
        let mut heap: BinaryHeap<HeapEntry<T>> = BinaryHeap::new();
        heap.push(HeapEntry { dist: 0.0, kind: HeapKind::Node(self.root_id()) });
        while let Some(HeapEntry { dist, kind }) = heap.pop() {
            match kind {
                HeapKind::Node(id) => {
                    let n = self.node(id);
                    for e in &n.entries {
                        let d = e.mbr.mindist_point(q);
                        match &e.payload {
                            Payload::Item(t) => heap.push(HeapEntry {
                                dist: d,
                                kind: HeapKind::Item(e.mbr, t.clone()),
                            }),
                            Payload::Node(c) => {
                                heap.push(HeapEntry { dist: d, kind: HeapKind::Node(*c) })
                            }
                        }
                    }
                }
                HeapKind::Item(mbr, t) => {
                    out.push((dist, mbr, t));
                    if out.len() == k {
                        break;
                    }
                }
            }
        }
        out
    }
}

impl<T: Clone> RTree<T> {
    /// Ray-packet-style multi-window query: descend up to 8 windows at
    /// a time through the tree together, loading each node once for
    /// the whole packet and testing its entries against all windows
    /// with one SIMD SoA scan per entry. `visit` receives
    /// `(window_index, item_mbr, item)` for every window/item hit —
    /// exactly the hits `query_window_visit` would produce per window.
    ///
    /// Packets shine when the windows are spatially correlated (tile
    /// sweeps, batched point probes): lanes share upper-level node
    /// loads that independent traversals would repeat.
    pub fn query_windows_packet(
        &self,
        windows: &[Rect],
        visit: &mut impl FnMut(usize, Rect, &T),
    ) -> PacketStats {
        let mut stats = PacketStats::default();
        if self.is_empty() {
            return stats;
        }
        let mut probes = SoaMbrs::new();
        let mut stack: Vec<(crate::node::NodeId, u8)> = Vec::new();
        for (chunk, group) in windows.chunks(8).enumerate() {
            let base = chunk * 8;
            probes.fill(group.iter());
            let full = ((1u16 << group.len()) - 1) as u8;
            stack.clear();
            stack.push((self.root_id(), full));
            while let Some((id, mask)) = stack.pop() {
                stats.descents += 1;
                let n = self.node(id);
                for e in &n.entries {
                    let mut bits = 0u8;
                    stats.tests +=
                        scan_pred_simd(&probes, JoinPredicate::Intersects, &e.mbr, |p| {
                            bits |= 1 << p
                        });
                    let active = bits & mask;
                    if active == 0 {
                        continue;
                    }
                    match &e.payload {
                        Payload::Item(t) => {
                            let mut lanes = active;
                            while lanes != 0 {
                                visit(base + lanes.trailing_zeros() as usize, e.mbr, t);
                                lanes &= lanes - 1;
                            }
                        }
                        Payload::Node(c) => stack.push((*c, active)),
                    }
                }
            }
        }
        stats
    }

    /// Packet k-nearest-neighbour: answer up to 8 point queries per
    /// descent, sharing node loads. Each lane keeps its own best-`k`
    /// max-heap; a subtree is descended for a lane only while the
    /// lane's heap is not full or the subtree's `mindist` beats the
    /// lane's current k-th distance (the packet analogue of best-first
    /// pruning). Results per query are sorted by ascending distance
    /// and match [`RTree::query_knn`]'s distance multiset.
    #[allow(clippy::type_complexity)]
    pub fn query_knn_packet(
        &self,
        queries: &[Point],
        k: usize,
    ) -> (Vec<Vec<(f64, Rect, T)>>, PacketStats) {
        let mut stats = PacketStats::default();
        let mut results: Vec<Vec<(f64, Rect, T)>> = vec![Vec::new(); queries.len()];
        if k == 0 || self.is_empty() {
            return (results, stats);
        }
        let mut stack: Vec<(crate::node::NodeId, u8)> = Vec::new();
        for (chunk, group) in queries.chunks(8).enumerate() {
            let base = chunk * 8;
            // One bounded max-heap per lane: the root is the current
            // k-th (worst kept) distance, the lane's pruning bound.
            let mut heaps: Vec<BinaryHeap<KnnCand<T>>> =
                (0..group.len()).map(|_| BinaryHeap::new()).collect();
            let full = ((1u16 << group.len()) - 1) as u8;
            stack.clear();
            stack.push((self.root_id(), full));
            while let Some((id, mask)) = stack.pop() {
                stats.descents += 1;
                let n = self.node(id);
                for e in &n.entries {
                    let mut active = 0u8;
                    let mut lanes = mask;
                    while lanes != 0 {
                        let p = lanes.trailing_zeros() as usize;
                        lanes &= lanes - 1;
                        stats.tests += 1;
                        let d = e.mbr.mindist_point(&group[p]);
                        let heap = &mut heaps[p];
                        let tau = heap.peek().map(|c| c.dist);
                        if heap.len() < k || tau.is_some_and(|t| d <= t) {
                            match &e.payload {
                                Payload::Item(t) => {
                                    heap.push(KnnCand { dist: d, mbr: e.mbr, item: t.clone() });
                                    if heap.len() > k {
                                        heap.pop();
                                    }
                                }
                                Payload::Node(_) => active |= 1 << p,
                            }
                        }
                    }
                    if active != 0 {
                        if let Payload::Node(c) = &e.payload {
                            stack.push((*c, active));
                        }
                    }
                }
            }
            for (p, heap) in heaps.into_iter().enumerate() {
                let mut lane: Vec<(f64, Rect, T)> =
                    heap.into_iter().map(|c| (c.dist, c.mbr, c.item)).collect();
                lane.sort_by(|a, b| a.0.total_cmp(&b.0));
                results[base + p] = lane;
            }
        }
        (results, stats)
    }
}

/// A kept nearest-neighbour candidate; ordered max-first by distance
/// so `BinaryHeap::peek` exposes the lane's pruning bound.
struct KnnCand<T> {
    dist: f64,
    mbr: Rect,
    item: T,
}

impl<T> PartialEq for KnnCand<T> {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}

impl<T> Eq for KnnCand<T> {}

impl<T> PartialOrd for KnnCand<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for KnnCand<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist.total_cmp(&other.dist)
    }
}

impl<T: Clone> RTree<T> {
    /// Lazy best-first nearest-neighbour scan ordered by `mindist` to a
    /// query rectangle (Hjaltason & Samet's incremental ranking).
    ///
    /// The filter-refine nearest-neighbour search of `SDO_NN` pulls
    /// from this iterator until the next MBR lower bound exceeds the
    /// current k-th exact distance.
    pub fn nearest_iter(&self, q: Rect) -> NearestIter<'_, T> {
        let mut heap = BinaryHeap::new();
        if !self.is_empty() {
            heap.push(HeapEntry { dist: 0.0, kind: HeapKind::Node(self.root_id()) });
        }
        NearestIter { tree: self, q, heap }
    }
}

/// Iterator over `(mindist, mbr, item)` in ascending `mindist` order.
pub struct NearestIter<'a, T: Clone> {
    tree: &'a RTree<T>,
    q: Rect,
    heap: BinaryHeap<HeapEntry<T>>,
}

impl<'a, T: Clone> Iterator for NearestIter<'a, T> {
    type Item = (f64, Rect, T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(HeapEntry { dist, kind }) = self.heap.pop() {
            match kind {
                HeapKind::Node(id) => {
                    let n = self.tree.node(id);
                    for e in &n.entries {
                        let d = e.mbr.mindist(&self.q);
                        match &e.payload {
                            Payload::Item(t) => self.heap.push(HeapEntry {
                                dist: d,
                                kind: HeapKind::Item(e.mbr, t.clone()),
                            }),
                            Payload::Node(c) => {
                                self.heap.push(HeapEntry { dist: d, kind: HeapKind::Node(*c) })
                            }
                        }
                    }
                }
                HeapKind::Item(mbr, t) => return Some((dist, mbr, t)),
            }
        }
        None
    }
}

struct HeapEntry<T> {
    dist: f64,
    kind: HeapKind<T>,
}

enum HeapKind<T> {
    Node(crate::node::NodeId),
    Item(Rect, T),
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}

impl<T> Eq for HeapEntry<T> {}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need nearest first.
        other.dist.total_cmp(&self.dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeParams;

    fn grid_tree(n: usize) -> (RTree<usize>, Vec<Rect>) {
        let mut t = RTree::new(RTreeParams::with_fanout(8));
        let mut rects = Vec::new();
        for i in 0..n {
            let x = (i % 50) as f64 * 3.0;
            let y = (i / 50) as f64 * 3.0;
            let r = Rect::new(x, y, x + 1.0, y + 1.0);
            t.insert(r, i);
            rects.push(r);
        }
        (t, rects)
    }

    #[test]
    fn window_query_matches_brute_force() {
        let (t, rects) = grid_tree(1000);
        for window in [
            Rect::new(0.0, 0.0, 10.0, 10.0),
            Rect::new(50.0, 20.0, 80.0, 45.0),
            Rect::new(-5.0, -5.0, -1.0, -1.0),
            Rect::new(0.0, 0.0, 1000.0, 1000.0),
        ] {
            let mut got: Vec<usize> = t.query_window(&window).into_iter().map(|(_, i)| i).collect();
            got.sort_unstable();
            let want: Vec<usize> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.intersects(&window))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want, "window {window}");
        }
    }

    #[test]
    fn distance_query_matches_brute_force() {
        let (t, rects) = grid_tree(600);
        let q = Rect::new(30.0, 30.0, 31.0, 31.0);
        for d in [0.0, 1.5, 5.0, 20.0] {
            let mut got: Vec<usize> =
                t.query_within_distance(&q, d).into_iter().map(|(_, i)| i).collect();
            got.sort_unstable();
            let want: Vec<usize> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.mindist(&q) <= d)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want, "d={d}");
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let (t, rects) = grid_tree(500);
        let q = Point::new(47.3, 12.9);
        for k in [1usize, 5, 20, 100] {
            let got = t.query_knn(&q, k);
            assert_eq!(got.len(), k.min(500));
            // distances non-decreasing
            assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
            // compare distance multiset against brute force
            let mut want: Vec<f64> = rects.iter().map(|r| r.mindist_point(&q)).collect();
            want.sort_by(f64::total_cmp);
            for (i, (d, _, _)) in got.iter().enumerate() {
                assert!((d - want[i]).abs() < 1e-9, "k={k} i={i}: {d} vs {}", want[i]);
            }
        }
    }

    #[test]
    fn queries_on_empty_tree() {
        let t: RTree<usize> = RTree::new(RTreeParams::with_fanout(8));
        assert!(t.query_window(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(t.query_within_distance(&Rect::new(0.0, 0.0, 1.0, 1.0), 10.0).is_empty());
        assert!(t.query_knn(&Point::new(0.0, 0.0), 5).is_empty());
    }

    #[test]
    fn knn_k_zero() {
        let (t, _) = grid_tree(10);
        assert!(t.query_knn(&Point::new(0.0, 0.0), 0).is_empty());
    }

    #[test]
    fn packet_windows_match_single_window_queries() {
        let (t, _) = grid_tree(900);
        // 11 windows: two packets (8 + 3), mixing hits, misses, and a
        // degenerate window.
        let windows: Vec<Rect> = (0..11)
            .map(|i| {
                let x = (i * 13 % 40) as f64 * 3.0;
                let y = (i * 7 % 15) as f64 * 3.0;
                match i {
                    4 => Rect::new(-50.0, -50.0, -40.0, -40.0),
                    9 => Rect::new(x, y, x, y),
                    _ => Rect::new(x, y, x + 8.0, y + 5.0),
                }
            })
            .collect();
        let mut got: Vec<Vec<usize>> = vec![Vec::new(); windows.len()];
        let stats = t.query_windows_packet(&windows, &mut |w, _, &i| got[w].push(i));
        assert!(stats.descents > 0 && stats.tests > 0);
        for (w, window) in windows.iter().enumerate() {
            let mut lane = got[w].clone();
            lane.sort_unstable();
            let mut want: Vec<usize> = t.query_window(window).into_iter().map(|(_, i)| i).collect();
            want.sort_unstable();
            assert_eq!(lane, want, "window {w}");
        }
    }

    #[test]
    fn packet_knn_matches_best_first_knn() {
        let (t, rects) = grid_tree(640);
        let queries: Vec<Point> =
            (0..9).map(|i| Point::new((i * 17 % 150) as f64, (i * 29 % 40) as f64)).collect();
        for k in [1usize, 7, 33] {
            let (got, stats) = t.query_knn_packet(&queries, k);
            assert!(stats.descents > 0);
            assert_eq!(got.len(), queries.len());
            for (qi, lane) in got.iter().enumerate() {
                assert_eq!(lane.len(), k.min(rects.len()), "q{qi} k={k}");
                assert!(lane.windows(2).all(|w| w[0].0 <= w[1].0));
                let mut want: Vec<f64> =
                    rects.iter().map(|r| r.mindist_point(&queries[qi])).collect();
                want.sort_by(f64::total_cmp);
                for (i, (d, _, _)) in lane.iter().enumerate() {
                    assert!((d - want[i]).abs() < 1e-9, "q{qi} k={k} i={i}");
                }
            }
        }
    }

    #[test]
    fn packet_queries_on_empty_input() {
        let (t, _) = grid_tree(50);
        let stats = t.query_windows_packet(&[], &mut |_, _, _| panic!("no windows"));
        assert_eq!(stats, PacketStats::default());
        let (res, _) = t.query_knn_packet(&[], 5);
        assert!(res.is_empty());
        let (res, _) = t.query_knn_packet(&[Point::new(0.0, 0.0)], 0);
        assert_eq!(res, vec![Vec::new()]);
        let empty: RTree<usize> = RTree::new(RTreeParams::with_fanout(8));
        let stats = empty.query_windows_packet(&[Rect::new(0.0, 0.0, 1.0, 1.0)], &mut |_, _, _| {
            panic!("empty tree")
        });
        assert_eq!(stats, PacketStats::default());
    }

    #[test]
    fn nearest_iter_is_sorted_and_complete() {
        let (t, rects) = grid_tree(300);
        let q = Rect::new(70.0, 40.0, 72.0, 41.0);
        let seq: Vec<(f64, Rect, usize)> = t.nearest_iter(q).collect();
        assert_eq!(seq.len(), 300, "iterator must visit every item");
        assert!(seq.windows(2).all(|w| w[0].0 <= w[1].0), "distances must be non-decreasing");
        let mut want: Vec<f64> = rects.iter().map(|r| r.mindist(&q)).collect();
        want.sort_by(f64::total_cmp);
        for (i, (d, _, _)) in seq.iter().enumerate() {
            assert!((d - want[i]).abs() < 1e-9);
        }
        // empty tree yields nothing
        let empty: RTree<usize> = RTree::new(RTreeParams::with_fanout(8));
        assert_eq!(empty.nearest_iter(q).count(), 0);
    }
}
