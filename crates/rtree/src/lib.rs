#![warn(missing_docs)]
//! # sdo-rtree — a from-scratch R-tree
//!
//! The R-tree index underneath Oracle Spatial's `spatial_index`
//! indextype, rebuilt from the literature the paper cites: Guttman's
//! original dynamic structure \[8\], R*-style split heuristics \[1\],
//! STR bulk loading (Leutenegger et al. \[13\]), and the synchronized
//! tree-matching spatial join of Brinkhoff/Huang et al. \[10\].
//!
//! Highlights:
//!
//! * generic payloads (`RTree<T>`; the spatial layer stores `RowId`s),
//! * dynamic inserts with selectable split strategy
//!   ([`SplitStrategy`]), deletes with tree condensation,
//! * [`bulk`] — Sort-Tile-Recursive packing plus [`RTree::merge`],
//!   the "build subtrees in parallel, merge at the end" primitive the
//!   paper's parallel index creation uses,
//! * [`query`] — window, within-distance and k-nearest-neighbour scans,
//!   plus packet traversal (up to 8 window/kNN probes descending
//!   together, sharing node loads),
//! * [`kernel::simd`] — explicit SIMD filter kernels with runtime ISA
//!   dispatch (AVX2/SSE2/NEON/scalar), a quantized u16 node layout
//!   with conservative rounding, and a vectorized plane-sweep,
//! * [`join::JoinCursor`] — a *restartable* synchronized traversal of
//!   two R-trees producing candidate pairs in batches, built to sit
//!   inside a pipelined table function's `fetch` loop (the paper's §4.2
//!   stack-based resumable join),
//! * [`RTree::subtree_roots`] — the roots at a given level, feeding the
//!   paper's `subtree_root(index, level)` table function for parallel
//!   joins.

pub mod bulk;
pub mod join;
pub mod kernel;
pub mod node;
pub mod query;
pub mod split;
pub mod tree;
pub mod validate;

pub use join::{JoinCursor, JoinPredicate, KernelMode, KernelStats};
pub use kernel::simd::{
    dispatched, scan_pred_quantized, scan_pred_simd, sweep_pairs_simd, QuantCounters,
    QuantizedMbrs, SimdIsa, SweepScratchSimd, FORCE_SCALAR_ENV,
};
pub use kernel::{SoaMbrs, SWEEP_THRESHOLD};
pub use node::{Entry, Node, NodeId};
pub use query::PacketStats;
pub use split::SplitStrategy;
pub use tree::{RTree, RTreeParams, SubtreeRef};

/// Default maximum entries per node (Oracle's default R-tree fanout is
/// in the mid-tens; 32 keeps trees shallow at paper-scale cardinality).
pub const DEFAULT_FANOUT: usize = 32;
